"""Pytest bootstrap: make ``src/repro`` importable without an installed package.

The project is normally installed with ``pip install -e .``; on offline
machines without the ``wheel`` package the editable install can fail, so the
test and benchmark suites fall back to adding ``src/`` to ``sys.path`` here.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
