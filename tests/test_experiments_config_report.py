"""Unit tests for experiment configuration and report formatting."""

import pytest

from repro.experiments.config import (
    PAPER_TABLE2_BASELINE,
    PAPER_TABLE2_OURS,
    PAPER_TABLE3_MODEL_SIZES,
    TABLE2_ERROR_BOUNDS,
    TABLE2_EXPERIMENTS,
    ExperimentScale,
    dataset_shapes,
    default_training_config,
    resolve_scale,
)
from repro.experiments.report import format_markdown_table, format_table


class TestConfig:
    def test_scales_resolve(self):
        assert resolve_scale("smoke") is ExperimentScale.SMOKE
        assert resolve_scale(ExperimentScale.PAPER) is ExperimentScale.PAPER

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
        assert resolve_scale(None) is ExperimentScale.SMOKE

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            resolve_scale("gigantic")

    def test_dataset_shapes_ranks(self):
        shapes = dataset_shapes("smoke")
        assert len(shapes["scale"]) == 3
        assert len(shapes["hurricane"]) == 3
        assert len(shapes["cesm"]) == 2

    def test_paper_scale_matches_table1(self):
        shapes = dataset_shapes("paper")
        assert shapes["scale"] == (98, 1200, 1200)
        assert shapes["cesm"] == (1800, 3600)
        assert shapes["hurricane"] == (100, 500, 500)

    def test_training_config_by_ndim(self):
        cfg2 = default_training_config(2, "default")
        cfg3 = default_training_config(3, "default")
        cfg2.validate()
        cfg3.validate()
        smoke = default_training_config(3, "smoke")
        assert smoke.epochs <= cfg3.epochs

    def test_experiment_grid_consistent_with_paper_tables(self):
        for experiment in TABLE2_EXPERIMENTS:
            assert set(experiment.error_bounds).issubset(set(TABLE2_ERROR_BOUNDS))
            paper_cells = PAPER_TABLE2_BASELINE[experiment.key]
            assert set(experiment.error_bounds) == set(paper_cells)
            assert set(PAPER_TABLE2_OURS[experiment.key]) == set(paper_cells)
            assert experiment.key in PAPER_TABLE3_MODEL_SIZES

    def test_anchor_specs_resolvable(self):
        for experiment in TABLE2_EXPERIMENTS:
            spec = experiment.anchor_spec
            assert spec.target == experiment.target


class TestReport:
    def test_plain_table(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", 3.25]])
        assert "a" in text and "bb" in text
        assert "2.50" in text and "3.25" in text

    def test_markdown_table(self):
        text = format_markdown_table(["col"], [[1]])
        assert text.startswith("| col |")
        assert "---" in text

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])
        with pytest.raises(ValueError):
            format_markdown_table(["a"], [[1, 2]])
