"""Unit tests for the channel attention block."""

import numpy as np
import pytest

from repro.nn import ChannelAttention, MSELoss, Sequential, Conv2d


class TestChannelAttention:
    def test_output_shape_2d(self):
        rng = np.random.default_rng(0)
        block = ChannelAttention(8, reduction=4, rng=rng)
        x = rng.normal(size=(2, 8, 6, 7))
        assert block(x).shape == x.shape

    def test_output_shape_3d(self):
        rng = np.random.default_rng(1)
        block = ChannelAttention(4, rng=rng)
        x = rng.normal(size=(2, 4, 3, 5, 6))
        assert block(x).shape == x.shape

    def test_attention_bounded(self):
        rng = np.random.default_rng(2)
        block = ChannelAttention(4, rng=rng)
        x = np.abs(rng.normal(size=(1, 4, 8, 8))) + 0.1
        out = block(x)
        # sigmoid weights are in (0, 1): output magnitude never exceeds input
        assert np.all(np.abs(out) <= np.abs(x) + 1e-12)

    def test_parameter_count(self):
        block = ChannelAttention(16, reduction=4)
        hidden = 4
        expected = 16 * hidden + hidden + hidden * 16 + 16
        assert block.num_parameters() == expected

    def test_gradients_match_finite_differences(self):
        rng = np.random.default_rng(3)
        block = ChannelAttention(4, reduction=2, rng=rng)
        x = rng.normal(size=(2, 4, 5, 5))
        loss = MSELoss()
        target = np.zeros_like(block(x))

        block.zero_grad()
        loss(block(x), target)
        grad_input = block.backward(loss.backward())

        eps = 1e-6
        flat = x.ravel()
        for idx in rng.choice(flat.size, size=6, replace=False):
            orig = flat[idx]
            flat[idx] = orig + eps
            plus = loss(block(x), target)
            flat[idx] = orig - eps
            minus = loss(block(x), target)
            flat[idx] = orig
            numeric = (plus - minus) / (2 * eps)
            assert np.isclose(numeric, grad_input.ravel()[idx], atol=1e-5)

        block.zero_grad()
        loss(block(x), target)
        block.backward(loss.backward())
        for param in block.parameters():
            flat_p = param.data.ravel()
            idx = int(rng.integers(flat_p.size))
            orig = flat_p[idx]
            flat_p[idx] = orig + eps
            plus = loss(block(x), target)
            flat_p[idx] = orig - eps
            minus = loss(block(x), target)
            flat_p[idx] = orig
            numeric = (plus - minus) / (2 * eps)
            assert np.isclose(numeric, param.grad.ravel()[idx], atol=1e-5)

    def test_inside_sequential(self):
        rng = np.random.default_rng(4)
        model = Sequential(Conv2d(2, 6, 3, rng=rng), ChannelAttention(6, rng=rng), Conv2d(6, 1, 3, rng=rng))
        x = rng.normal(size=(1, 2, 8, 8))
        out = model(x)
        assert out.shape == (1, 1, 8, 8)
        model.backward(np.ones_like(out))  # does not raise

    def test_channel_mismatch(self):
        with pytest.raises(ValueError):
            ChannelAttention(4)(np.zeros((1, 3, 5, 5)))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ChannelAttention(0)
        with pytest.raises(ValueError):
            ChannelAttention(4, reduction=0)

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            ChannelAttention(4).backward(np.zeros((1, 4, 2, 2)))
