"""PipelineConfig / FieldRule: JSON round-trip, strict parsing, validation."""

import json

import pytest

from repro.pipeline import FieldRule, PipelineConfig, PipelineConfigError
from repro.sz.errors import ErrorBound


def _full_config() -> PipelineConfig:
    return PipelineConfig(
        name="full",
        codec="sz",
        error_bound=ErrorBound.relative(1e-3),
        chunk_shape=(8, 16, 16),
        jobs=3,
        max_workers=2,
        executor_kind="thread",
        temporal={"mode": "delta", "anchor_every": 6},
        fields={
            "Wf": FieldRule(
                codec="cross-field",
                anchors=("Uf", "Vf"),
                error_bound=ErrorBound.absolute(0.5),
                codec_params={"epochs": 2, "n_patches": 8},
            ),
            "Pf": FieldRule(codec="lossless", chunk_shape=(4, 8, 8)),
            "TCf": FieldRule(temporal={"mode": "independent", "anchor_every": 1}),
        },
        source="hurricane",
        output="out.xfa",
        attrs={"note": "test"},
    )


class TestRoundTrip:
    def test_json_round_trip_is_exact(self):
        config = _full_config().validate()
        restored = PipelineConfig.from_json(config.to_json())
        assert restored.to_dict() == config.to_dict()

    def test_to_json_is_valid_json_with_sorted_keys(self):
        payload = json.loads(_full_config().to_json())
        assert payload["codec"] == "sz"
        assert payload["fields"]["Wf"]["anchors"] == ["Uf", "Vf"]

    def test_defaults_round_trip(self):
        config = PipelineConfig()
        restored = PipelineConfig.from_json(config.to_json())
        assert restored.to_dict() == config.to_dict()
        assert restored.error_bound == ErrorBound.relative(1e-3)

    def test_save_and_load(self, tmp_path):
        config = _full_config()
        path = config.save(tmp_path / "config.json")
        assert PipelineConfig.load(path).to_dict() == config.to_dict()

    def test_bare_number_error_bound_means_relative(self):
        config = PipelineConfig(error_bound=1e-4)
        assert config.error_bound == ErrorBound.relative(1e-4)

    def test_resolution_helpers(self):
        config = _full_config()
        assert config.codec_for("Uf") == "sz"
        assert config.codec_for("Wf") == "cross-field"
        assert config.error_bound_for("Uf") == ErrorBound.relative(1e-3)
        assert config.error_bound_for("Wf") == ErrorBound.absolute(0.5)

    def test_jobs_round_trips_and_wins_over_max_workers(self):
        config = _full_config()
        assert config.jobs == 3 and config.max_workers == 2
        assert config.effective_jobs == 3  # jobs wins when both are set
        restored = PipelineConfig.from_json(config.to_json())
        assert restored.jobs == 3 and restored.max_workers == 2

    def test_effective_jobs_falls_back_to_legacy_max_workers(self):
        assert PipelineConfig(max_workers=5).effective_jobs == 5
        assert PipelineConfig().effective_jobs is None
        assert PipelineConfig(jobs=1).effective_jobs == 1


class TestValidationErrors:
    def test_unknown_codec(self):
        with pytest.raises(PipelineConfigError, match="unknown codec"):
            PipelineConfig(codec="nope").validate()

    def test_unknown_field_rule_codec(self):
        config = PipelineConfig(fields={"A": FieldRule(codec="nope")})
        with pytest.raises(PipelineConfigError, match="unknown codec"):
            config.validate()

    def test_unknown_entropy_in_codec_params(self):
        # entropy names are validated against the pluggable coder registry,
        # not a hard-coded tuple: a typo fails at validate() time
        config = PipelineConfig(fields={"A": FieldRule(codec_params={"entropy": "lzma"})})
        with pytest.raises(PipelineConfigError, match="unknown entropy coder"):
            config.validate()

    def test_registered_entropy_in_codec_params_accepted(self):
        for entropy in ("huffman", "zlib", "raw"):
            PipelineConfig(fields={"A": FieldRule(codec_params={"entropy": entropy})}).validate()

    def test_bad_executor_kind(self):
        with pytest.raises(PipelineConfigError, match="executor_kind"):
            PipelineConfig(executor_kind="fork").validate()

    def test_bad_max_workers(self):
        with pytest.raises(PipelineConfigError, match="max_workers"):
            PipelineConfig(max_workers=0).validate()

    def test_bad_jobs(self):
        with pytest.raises(PipelineConfigError, match="jobs"):
            PipelineConfig(jobs=0).validate()
        with pytest.raises(PipelineConfigError, match="jobs"):
            PipelineConfig(jobs="many").validate()
        with pytest.raises(PipelineConfigError, match="jobs"):
            PipelineConfig(jobs=True).validate()

    def test_non_positive_chunk_shape(self):
        with pytest.raises(PipelineConfigError, match="positive"):
            PipelineConfig(chunk_shape=(8, 0))

    def test_bad_error_bound_mode(self):
        with pytest.raises(PipelineConfigError, match="error bound"):
            PipelineConfig(error_bound={"mode": "typo", "value": 1e-3})

    def test_cross_field_without_anchors(self):
        config = PipelineConfig(fields={"A": FieldRule(codec="cross-field")})
        with pytest.raises(PipelineConfigError, match="requires at least one anchor"):
            config.validate()

    def test_anchors_on_non_anchored_codec(self):
        config = PipelineConfig(fields={"A": FieldRule(codec="sz", anchors=("B",))})
        with pytest.raises(PipelineConfigError, match="does not accept anchor"):
            config.validate()

    def test_self_anchor(self):
        config = PipelineConfig(
            fields={"A": FieldRule(codec="cross-field", anchors=("A",))}
        )
        with pytest.raises(PipelineConfigError, match="cannot anchor itself"):
            config.validate()

    def test_duplicate_anchors(self):
        config = PipelineConfig(
            fields={"A": FieldRule(codec="cross-field", anchors=("B", "B"))}
        )
        with pytest.raises(PipelineConfigError, match="distinct"):
            config.validate()

    def test_anchor_is_itself_a_target(self):
        config = PipelineConfig(
            fields={
                "A": FieldRule(codec="cross-field", anchors=("B",)),
                "B": FieldRule(codec="cross-field", anchors=("C",)),
            }
        )
        with pytest.raises(PipelineConfigError, match="itself a cross-field target"):
            config.validate()

    def test_non_serialisable_attrs(self):
        with pytest.raises(PipelineConfigError, match="JSON-serialisable"):
            PipelineConfig(attrs={"bad": object()}).validate()

    def test_string_chunk_shape_rejected(self):
        with pytest.raises(PipelineConfigError, match="string"):
            PipelineConfig(chunk_shape="24")
        with pytest.raises(PipelineConfigError, match="string"):
            PipelineConfig.from_dict({"chunk_shape": "24"})

    def test_string_anchors_rejected(self):
        with pytest.raises(PipelineConfigError, match="string"):
            FieldRule(codec="cross-field", anchors="Uf")
        with pytest.raises(PipelineConfigError, match="string"):
            PipelineConfig.from_dict(
                {"fields": {"A": {"codec": "cross-field", "anchors": "Uf"}}}
            )

    def test_reserved_codec_params_rejected(self):
        config = PipelineConfig(
            fields={"A": FieldRule(codec="sz", codec_params={"error_bound": 0.5})}
        )
        with pytest.raises(PipelineConfigError, match="reserved|dedicated"):
            config.validate()

    def test_non_object_attrs_and_codec_params(self):
        with pytest.raises(PipelineConfigError, match="attrs"):
            PipelineConfig.from_dict({"attrs": 5})
        with pytest.raises(PipelineConfigError, match="attrs"):
            PipelineConfig(attrs=5).validate()  # type: ignore[arg-type]
        with pytest.raises(PipelineConfigError, match="codec_params"):
            PipelineConfig.from_dict({"fields": {"A": {"codec_params": 5}}})

    def test_non_integer_max_workers(self):
        with pytest.raises(PipelineConfigError, match="integer"):
            PipelineConfig(max_workers=2.5).validate()
        with pytest.raises(PipelineConfigError, match="integer"):
            PipelineConfig.from_dict({"max_workers": "two"})

    def test_anchor_chunk_grid_mismatch(self):
        config = PipelineConfig(
            chunk_shape=(8, 16, 16),
            fields={
                "Wf": FieldRule(
                    codec="cross-field", anchors=("Uf",), chunk_shape=(4, 16, 16)
                )
            },
        )
        with pytest.raises(PipelineConfigError, match="aligned grids"):
            config.validate()
        # mismatch via the anchor's own rule is caught too
        config = PipelineConfig(
            fields={
                "Uf": FieldRule(chunk_shape=(4, 16, 16)),
                "Wf": FieldRule(codec="cross-field", anchors=("Uf",)),
            }
        )
        with pytest.raises(PipelineConfigError, match="aligned grids"):
            config.validate()


class TestStrictParsing:
    def test_unknown_top_level_key(self):
        with pytest.raises(PipelineConfigError, match="unknown key"):
            PipelineConfig.from_dict({"codec": "sz", "typo_key": 1})

    def test_unknown_field_rule_key(self):
        with pytest.raises(PipelineConfigError, match="unknown key"):
            PipelineConfig.from_dict({"fields": {"A": {"kodec": "sz"}}})

    def test_invalid_json_text(self):
        with pytest.raises(PipelineConfigError, match="not valid JSON"):
            PipelineConfig.from_json("{nope")

    def test_non_object_config(self):
        with pytest.raises(PipelineConfigError, match="must be an object"):
            PipelineConfig.from_dict(["not", "a", "dict"])

    def test_non_object_fields(self):
        with pytest.raises(PipelineConfigError, match="field rules"):
            PipelineConfig.from_dict({"fields": ["A"]})

    def test_from_dict_validates(self):
        with pytest.raises(PipelineConfigError, match="unknown codec"):
            PipelineConfig.from_dict({"codec": "nope"})

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(PipelineConfigError, match="cannot read"):
            PipelineConfig.load(tmp_path / "absent.json")


class TestTemporalRules:
    def test_temporal_round_trips_and_resolves(self):
        config = _full_config()
        rebuilt = PipelineConfig.from_json(config.to_json())
        assert rebuilt.temporal == {"mode": "delta", "anchor_every": 6}
        assert rebuilt.fields["TCf"].temporal == {"mode": "independent", "anchor_every": 1}
        # per-field rule wins; pipeline default fills the rest; base falls
        # back to the field's effective codec
        assert rebuilt.temporal_for("TCf").mode == "independent"
        spec = rebuilt.temporal_for("Uf")
        assert spec.mode == "delta" and spec.anchor_every == 6 and spec.base == "sz"
        assert rebuilt.temporal_for("Pf").base == "lossless"

    def test_no_temporal_resolves_to_none(self):
        assert PipelineConfig().temporal_for("X") is None

    def test_bad_temporal_mode_rejected(self):
        with pytest.raises(PipelineConfigError, match="mode"):
            PipelineConfig(temporal={"mode": "sideways"})

    def test_bad_anchor_every_rejected(self):
        with pytest.raises(PipelineConfigError, match="anchor_every"):
            PipelineConfig(temporal={"mode": "delta", "anchor_every": 0})

    def test_unknown_temporal_key_rejected(self):
        with pytest.raises(PipelineConfigError, match="unknown key"):
            PipelineConfig(temporal={"mode": "delta", "cadence": 4})

    def test_anchored_temporal_base_rejected(self):
        with pytest.raises(PipelineConfigError, match="without anchors"):
            PipelineConfig(temporal={"mode": "delta", "base": "cross-field"})

    def test_temporal_plus_anchors_on_one_rule_rejected(self):
        config = PipelineConfig(
            fields={
                "W": FieldRule(
                    codec="cross-field",
                    anchors=("U",),
                    temporal={"mode": "delta"},
                )
            }
        )
        with pytest.raises(PipelineConfigError, match="anchors .* and"):
            config.validate()

    def test_temporal_on_anchorless_cross_field_rule_rejected(self):
        # a cross-field rule without anchors is already invalid; adding a
        # temporal rule must not change that verdict
        bad = PipelineConfig(
            fields={"W": FieldRule(codec="cross-field", temporal={"mode": "delta"})}
        )
        with pytest.raises(PipelineConfigError, match="requires at least one anchor"):
            bad.validate()
