"""Unit tests for NN layers (shapes, gradients, parameter registration)."""

import numpy as np
import pytest

from repro.nn import (
    Conv2d,
    Conv3d,
    DepthwiseConv2d,
    DepthwiseSeparableConv2d,
    DepthwiseSeparableConv3d,
    Identity,
    LeakyReLU,
    Linear,
    MSELoss,
    PointwiseConv2d,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)


def _check_model_gradients(model, x, atol=1e-4, n_checks=4, seed=0):
    """Compare analytic parameter/input gradients against finite differences."""
    rng = np.random.default_rng(seed)
    loss = MSELoss()
    target = np.zeros_like(model(x))

    model.zero_grad()
    prediction = model(x)
    loss(prediction, target)
    grad_input = model.backward(loss.backward())

    # input gradient
    flat = x.ravel()
    for idx in rng.choice(flat.size, size=min(n_checks, flat.size), replace=False):
        orig = flat[idx]
        eps = 1e-5
        flat[idx] = orig + eps
        plus = loss(model(x), target)
        flat[idx] = orig - eps
        minus = loss(model(x), target)
        flat[idx] = orig
        numeric = (plus - minus) / (2 * eps)
        assert np.isclose(numeric, grad_input.ravel()[idx], atol=atol), "input gradient mismatch"

    # parameter gradients
    model.zero_grad()
    loss(model(x), target)
    model.backward(loss.backward())
    for param in model.parameters():
        flat_p = param.data.ravel()
        for idx in rng.choice(flat_p.size, size=min(2, flat_p.size), replace=False):
            orig = flat_p[idx]
            eps = 1e-5
            flat_p[idx] = orig + eps
            plus = loss(model(x), target)
            flat_p[idx] = orig - eps
            minus = loss(model(x), target)
            flat_p[idx] = orig
            numeric = (plus - minus) / (2 * eps)
            assert np.isclose(numeric, param.grad.ravel()[idx], atol=atol), f"param {param.name} gradient mismatch"


class TestConvLayers:
    def test_conv2d_shape_and_params(self):
        rng = np.random.default_rng(0)
        layer = Conv2d(3, 8, 3, rng=rng)
        out = layer(rng.normal(size=(2, 3, 10, 12)))
        assert out.shape == (2, 8, 10, 12)
        assert layer.num_parameters() == 3 * 8 * 9 + 8

    def test_conv3d_shape(self):
        rng = np.random.default_rng(1)
        layer = Conv3d(2, 4, 3, rng=rng)
        out = layer(rng.normal(size=(1, 2, 5, 6, 7)))
        assert out.shape == (1, 4, 5, 6, 7)

    def test_conv2d_gradients(self):
        rng = np.random.default_rng(2)
        model = Sequential(Conv2d(2, 4, 3, rng=rng), ReLU(), Conv2d(4, 1, 3, rng=rng))
        _check_model_gradients(model, rng.normal(size=(2, 2, 6, 6)))

    def test_depthwise_separable_2d_gradients(self):
        rng = np.random.default_rng(3)
        model = DepthwiseSeparableConv2d(3, 5, rng=rng)
        _check_model_gradients(model, rng.normal(size=(2, 3, 6, 6)))

    def test_depthwise_separable_3d_shape(self):
        rng = np.random.default_rng(4)
        model = DepthwiseSeparableConv3d(2, 6, rng=rng)
        out = model(rng.normal(size=(1, 2, 4, 5, 6)))
        assert out.shape == (1, 6, 4, 5, 6)

    def test_pointwise_has_1x1_kernel(self):
        layer = PointwiseConv2d(4, 8)
        assert layer.weight.shape == (8, 4, 1, 1)

    def test_channel_mismatch_raises(self):
        layer = Conv2d(3, 4, 3)
        with pytest.raises(ValueError):
            layer(np.zeros((1, 5, 8, 8)))

    def test_wrong_rank_raises(self):
        layer = Conv2d(3, 4, 3)
        with pytest.raises(ValueError):
            layer(np.zeros((3, 8, 8)))

    def test_even_kernel_same_padding_rejected(self):
        with pytest.raises(ValueError):
            Conv2d(1, 1, 4, padding="same")

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            Conv2d(1, 1, 3).backward(np.zeros((1, 1, 4, 4)))

    def test_depthwise_params(self):
        layer = DepthwiseConv2d(6, 3)
        assert layer.weight.shape == (6, 3, 3)


class TestDenseAndActivations:
    def test_linear_shapes_and_grads(self):
        rng = np.random.default_rng(5)
        model = Sequential(Linear(6, 4, rng=rng), Tanh(), Linear(4, 2, rng=rng))
        _check_model_gradients(model, rng.normal(size=(5, 6)))

    def test_linear_input_validation(self):
        with pytest.raises(ValueError):
            Linear(4, 2)(np.zeros((3, 5)))

    def test_activation_gradients(self):
        rng = np.random.default_rng(6)
        for activation in (ReLU(), LeakyReLU(0.1), Sigmoid(), Tanh()):
            model = Sequential(Linear(4, 4, rng=rng), activation)
            _check_model_gradients(model, rng.normal(size=(3, 4)))

    def test_identity_passthrough(self):
        x = np.random.default_rng(7).normal(size=(2, 3))
        layer = Identity()
        assert np.array_equal(layer(x), x)
        assert np.array_equal(layer.backward(x), x)

    def test_sequential_indexing(self):
        model = Sequential(ReLU(), Sigmoid())
        assert len(model) == 2
        assert isinstance(model[0], ReLU)

    def test_sequential_rejects_non_module(self):
        with pytest.raises(TypeError):
            Sequential(lambda x: x)
