"""Tests for the framework-agnostic archive service core.

Everything here runs without sockets: handlers are called directly (or via
``dispatch``) and return :class:`~repro.serve.service.ServiceResponse`
objects.  The transport adapters get their own suite in
``test_serve_http.py`` — by design they add nothing but byte shuffling, so
the behaviour under test (ETag/304 semantics, error mapping, reopen on
append, shared-cache dedup) lives here.
"""

import io
import json
import threading

import numpy as np
import pytest

from repro.serve.service import (
    ArchiveService,
    ServiceError,
    ServiceResponse,
    _etag_matches,
)
from repro.store.shared_cache import SharedChunkCache
from repro.store.writer import ArchiveWriter


@pytest.fixture()
def snapshot_archive(tmp_path):
    """A two-field snapshot archive (zfp progressive + sz fallback)."""
    rng = np.random.default_rng(7)
    data = rng.normal(size=(32, 64)).astype(np.float32)
    path = tmp_path / "snap.xfa"
    with ArchiveWriter(path, chunk_shape=(16, 32)) as writer:
        writer.add_field("T", data, codec="zfp")
        writer.add_field("P", data * 2 + 1, codec="sz")
    return path, data


@pytest.fixture()
def series_archive(tmp_path):
    """A two-step time-stepped archive plus the base array for appends."""
    rng = np.random.default_rng(11)
    base = rng.normal(size=(16, 32)).astype(np.float32)
    path = tmp_path / "series.xfa"
    with ArchiveWriter(path, chunk_shape=(8, 16)) as writer:
        writer.add_timestep({"T": base}, step=0, time=0.0)
        writer.add_timestep({"T": base + 0.1}, step=1, time=0.5)
    return path, base


def make_service(path, **kwargs):
    kwargs.setdefault("cache", SharedChunkCache())
    return ArchiveService({"a": path}, **kwargs)


def body_json(response):
    return json.loads(response.body)


def body_array(response):
    assert response.media_type == "application/x-npy"
    return np.load(io.BytesIO(response.body))


class TestManifestAndEtags:
    def test_manifest_document(self, snapshot_archive):
        path, _ = snapshot_archive
        with make_service(path) as service:
            response = service.handle_manifest("a")
            assert response.status == 200
            document = body_json(response)
            assert document["format"] == "XFA1"
            assert {f["name"] for f in document["fields"]} == {"T", "P"}
            for entry in document["fields"]:
                # codec params are served, raw chunk offsets are not
                assert "codec" in entry and "codec_params" in entry
                assert "chunks" not in entry
                assert entry["chunk_count"] == 4
            assert document["generation"] == service.handle("a").generation
            assert response.headers["X-Repro-Generation"] == str(document["generation"])

    def test_matching_etag_304s(self, snapshot_archive):
        path, _ = snapshot_archive
        with make_service(path) as service:
            first = service.handle_manifest("a")
            etag = first.headers["ETag"]
            again = service.handle_manifest("a", if_none_match=etag)
            assert again.status == 304
            assert again.body == b""
            assert again.headers["ETag"] == etag

    def test_etag_list_and_star_match(self):
        assert _etag_matches('"x:g1"', '"x:g1"')
        assert _etag_matches('W/"x:g1"', '"x:g1"')
        assert _etag_matches('"other", "x:g1"', '"x:g1"')
        assert _etag_matches("*", '"anything"')
        assert not _etag_matches('"x:g2"', '"x:g1"')
        assert not _etag_matches(None, '"x:g1"')

    def test_region_and_preview_also_conditional(self, snapshot_archive):
        path, _ = snapshot_archive
        with make_service(path) as service:
            etag = service.handle_manifest("a").headers["ETag"]
            assert service.handle_region("a", "T", if_none_match=etag).status == 304
            assert service.handle_preview("a", "T", if_none_match=etag).status == 304
            assert service.handle_timesteps("a", if_none_match=etag).status == 304


class TestRegionReads:
    def test_npy_bytes_round_trip(self, snapshot_archive):
        path, data = snapshot_archive
        with make_service(path) as service:
            response = service.handle_region("a", "T", region="4:12,10:30")
            assert response.status == 200
            window = body_array(response)
            assert window.shape == (8, 20)
            assert response.headers["X-Repro-Shape"] == "8,20"
            # zfp is lossy: close, not equal
            assert np.allclose(window, data[4:12, 10:30], atol=1e-2)

    def test_json_format(self, snapshot_archive):
        path, _ = snapshot_archive
        with make_service(path) as service:
            response = service.handle_region("a", "T", region="0:2,0:3", fmt="json")
            document = body_json(response)
            assert document["shape"] == [2, 3]
            assert len(document["data"]) == 2 and len(document["data"][0]) == 3

    def test_whole_field_when_region_omitted(self, snapshot_archive):
        path, data = snapshot_archive
        with make_service(path) as service:
            window = body_array(service.handle_region("a", "T"))
            assert window.shape == data.shape


class TestPreview:
    def test_progressive_preview_reports_no_fallback(self, snapshot_archive):
        path, _ = snapshot_archive
        with make_service(path) as service:
            response = service.handle_preview("a", "T", fraction=0.25)
            assert response.status == 200
            assert response.headers["X-Repro-Preview-Fallback"] == "false"
            decoded = int(response.headers["X-Repro-Preview-Bytes"])
            total = int(response.headers["X-Repro-Preview-Bytes-Total"])
            assert 0 < decoded < total

    def test_fallback_preview_is_flagged(self, snapshot_archive):
        path, _ = snapshot_archive
        with make_service(path) as service:
            response = service.handle_preview("a", "P", fraction=0.25, fmt="json")
            assert response.status == 200
            assert response.headers["X-Repro-Preview-Fallback"] == "true"
            document = body_json(response)
            assert document["preview"]["fallback"] is True
            # a fallback is billed at full payload size, never claimed partial
            assert document["preview"]["bytes_decoded"] == document["preview"]["bytes_total"]

    @pytest.mark.parametrize("fraction", ["0", "-0.5", "1.5", "nan", "inf"])
    def test_bad_fraction_maps_to_422(self, snapshot_archive, fraction):
        path, _ = snapshot_archive
        with make_service(path) as service:
            response = service.handle_preview("a", "T", fraction=fraction)
            assert response.status == 422
            assert "fraction" in body_json(response)["detail"]

    def test_non_numeric_fraction_maps_to_422(self, snapshot_archive):
        path, _ = snapshot_archive
        with make_service(path) as service:
            assert service.handle_preview("a", "T", fraction="lots").status == 422


class TestErrorMapping:
    def test_unknown_archive_404(self, snapshot_archive):
        path, _ = snapshot_archive
        with make_service(path) as service:
            for response in (
                service.handle_manifest("nope"),
                service.handle_region("nope", "T"),
                service.handle_refresh("nope"),
            ):
                assert response.status == 404
                assert "nope" in body_json(response)["detail"]

    def test_unknown_field_404(self, snapshot_archive):
        path, _ = snapshot_archive
        with make_service(path) as service:
            response = service.handle_region("a", "MISSING")
            assert response.status == 404
            assert "MISSING" in body_json(response)["detail"]

    def test_out_of_bounds_int_416(self, snapshot_archive):
        path, _ = snapshot_archive
        with make_service(path) as service:
            response = service.handle_region("a", "T", region="99")
            assert response.status == 416

    def test_empty_region_416(self, snapshot_archive):
        path, _ = snapshot_archive
        with make_service(path) as service:
            assert service.handle_region("a", "T", region="5:5").status == 416

    def test_malformed_region_syntax_422(self, snapshot_archive):
        path, _ = snapshot_archive
        with make_service(path) as service:
            assert service.handle_region("a", "T", region="banana").status == 422

    def test_unknown_format_422(self, snapshot_archive):
        path, _ = snapshot_archive
        with make_service(path) as service:
            assert service.handle_region("a", "T", fmt="xml").status == 422

    def test_missing_timestep_404(self, series_archive):
        path, _ = series_archive
        with make_service(path) as service:
            response = service.handle_timestep("a", 99)
            assert response.status == 404
            assert "99" in body_json(response)["detail"]

    def test_non_integer_step_422(self, series_archive):
        path, _ = series_archive
        with make_service(path) as service:
            assert service.handle_timestep("a", "first").status == 422

    def test_corrupt_archive_500(self, snapshot_archive, tmp_path):
        path, _ = snapshot_archive
        raw = bytearray(path.read_bytes())
        # flip a byte inside the first chunk payload, far from the manifest
        raw[64] ^= 0xFF
        bad = tmp_path / "bad.xfa"
        bad.write_bytes(bytes(raw))
        with ArchiveService({"bad": bad}, cache=SharedChunkCache()) as service:
            response = service.handle_region("bad", "T")
            assert response.status == 500

    def test_service_error_carries_status(self):
        error = ServiceError(418, "teapot")
        response = error.to_response()
        assert response.status == 418
        assert body_json(response)["detail"] == "teapot"


class TestTimesteps:
    def test_index_and_single_step(self, series_archive):
        path, base = series_archive
        with make_service(path) as service:
            index = body_json(service.handle_timesteps("a"))
            assert [entry["step"] for entry in index["steps"]] == [0, 1]
            document = body_json(service.handle_timestep("a", 1))
            assert document["step"] == 1
            array = np.asarray(document["fields"]["T"]["data"], dtype=np.float32)
            assert np.allclose(array, base + 0.1, atol=1e-2)

    def test_npz_format(self, series_archive):
        path, _ = series_archive
        with make_service(path) as service:
            response = service.handle_timestep("a", 0, fmt="npz")
            assert response.status == 200
            npz = np.load(io.BytesIO(response.body))
            assert npz.files == ["T"]

    def test_timerange_stats_and_data(self, series_archive):
        path, _ = series_archive
        with make_service(path) as service:
            stats = body_json(service.handle_timerange("a", start=0, stop=2))
            assert len(stats["steps"]) == 2
            assert "mean" in stats["steps"][0]["fields"]["T"]
            assert "data" not in stats["steps"][0]["fields"]["T"]
            full = body_json(service.handle_timerange("a", start=1, include="data"))
            assert len(full["steps"]) == 1
            assert "data" in full["steps"][0]["fields"]["T"]


class TestAppendWhileServing:
    def test_manual_mode_pins_generation_until_refresh(self, series_archive):
        path, base = series_archive
        with make_service(path, refresh="manual") as service:
            etag = service.handle_manifest("a").headers["ETag"]
            # timestep fields are stored under {name}@{step}
            before = body_array(service.handle_region("a", "T@0"))

            with ArchiveWriter(path, mode="a") as writer:
                writer.add_timestep({"T": base + 0.2}, step=2, time=1.0)

            # the pinned client keeps its consistent snapshot: same ETag
            # 304s, same bytes, same timestep index
            assert service.handle_manifest("a", if_none_match=etag).status == 304
            unchanged = body_array(service.handle_region("a", "T@0"))
            assert np.array_equal(before, unchanged)
            steps = body_json(service.handle_timesteps("a"))["steps"]
            assert [entry["step"] for entry in steps] == [0, 1]

            # explicit refresh reopens onto G+1: new ETag, new timestep
            report = body_json(service.handle_refresh("a"))
            assert report["reopened"] is True
            fresh = service.handle_manifest("a", if_none_match=etag)
            assert fresh.status == 200
            assert fresh.headers["ETag"] != etag
            steps = body_json(service.handle_timesteps("a"))["steps"]
            assert [entry["step"] for entry in steps] == [0, 1, 2]

    def test_auto_mode_sees_append_on_next_request(self, series_archive):
        path, base = series_archive
        with make_service(path, refresh="auto") as service:
            generation = service.handle("a").generation
            with ArchiveWriter(path, mode="a") as writer:
                writer.add_timestep({"T": base + 0.3}, step=2, time=1.0)
            steps = body_json(service.handle_timesteps("a"))["steps"]
            assert [entry["step"] for entry in steps] == [0, 1, 2]
            assert service.handle("a").generation > generation

    def test_refresh_without_append_is_a_noop(self, series_archive):
        path, _ = series_archive
        with make_service(path, refresh="manual") as service:
            report = body_json(service.handle_refresh("a"))
            assert report["reopened"] is False

    def test_inflight_lease_survives_refresh(self, series_archive):
        """A reader borrowed before a refresh stays usable until released."""
        path, base = series_archive
        with make_service(path, refresh="manual") as service:
            handle = service.handle("a")
            with handle.reader() as pinned:
                with ArchiveWriter(path, mode="a") as writer:
                    writer.add_timestep({"T": base + 0.4}, step=2)
                assert handle.refresh() is True
                # the retired reader still serves its old snapshot
                assert pinned.steps == [0, 1]
                data = pinned.read_region("T@0", (slice(0, 4), slice(0, 4)))
                assert data.shape == (4, 4)
            with handle.reader() as fresh:
                assert fresh.steps == [0, 1, 2]


class TestSharedCacheDedup:
    def test_concurrent_requests_decode_each_chunk_once(self, snapshot_archive):
        path, _ = snapshot_archive
        with make_service(path) as service:
            n_threads, per_thread = 8, 4
            barrier = threading.Barrier(n_threads)
            failures = []

            def client() -> None:
                barrier.wait()
                for _ in range(per_thread):
                    response = service.handle_region("a", "T", region="0:32,0:64")
                    if response.status != 200:
                        failures.append(response.status)

            threads = [threading.Thread(target=client) for _ in range(n_threads)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            assert not failures
            with service.handle("a").reader() as reader:
                stats = reader.cache_stats()
                total_chunks = len(reader.field("T").chunks)
            # 32 requests x 4 chunks each, but the single-flight shared cache
            # decodes each chunk exactly once (LRU miss counts are racy —
            # several threads can observe the gap before the leader lands the
            # value — so the decode counter is the authoritative assertion)
            assert stats["chunks_decoded"] == total_chunks
            shared = stats["shared"]
            assert shared["hits"] + shared["coalesced"] > 0

    def test_distinct_archives_do_not_collide(self, snapshot_archive, tmp_path):
        path, data = snapshot_archive
        other = tmp_path / "other.xfa"
        with ArchiveWriter(other, chunk_shape=(16, 32)) as writer:
            writer.add_field("T", data + 5, codec="zfp")
        cache = SharedChunkCache()
        with ArchiveService({"a": path, "b": other}, cache=cache) as service:
            first = body_array(service.handle_region("a", "T", region="0:16,0:32"))
            second = body_array(service.handle_region("b", "T", region="0:16,0:32"))
            assert not np.allclose(first, second)


class TestDispatchAndStats:
    def test_dispatch_routes_and_405(self, snapshot_archive):
        path, _ = snapshot_archive
        with make_service(path) as service:
            assert service.dispatch("GET", "/healthz", {}, {}).status == 200
            assert service.dispatch("GET", "/archives", {}, {}).status == 200
            assert service.dispatch("GET", "/archives/a/manifest", {}, {}).status == 200
            assert service.dispatch("GET", "/nonsense", {}, {}).status == 404
            assert service.dispatch("DELETE", "/archives/a/manifest", {}, {}).status == 405
            assert service.dispatch("GET", "/archives/a/refresh", {}, {}).status == 405

    def test_dispatch_passes_query_and_headers(self, snapshot_archive):
        path, _ = snapshot_archive
        with make_service(path) as service:
            etag = service.dispatch("GET", "/archives/a/manifest", {}, {}).headers["ETag"]
            response = service.dispatch(
                "GET", "/archives/a/manifest", {}, {"If-None-Match": etag}
            )
            assert response.status == 304
            response = service.dispatch(
                "GET",
                "/archives/a/fields/T/region",
                {"region": "0:4,0:4", "format": "json"},
                {},
            )
            assert body_json(response)["shape"] == [4, 4]

    def test_request_stats_accumulate(self, snapshot_archive):
        path, _ = snapshot_archive
        with make_service(path) as service:
            service.handle_region("a", "T", region="0:8,0:8")
            service.handle_region("a", "MISSING")
            stats = service.request_stats()
            assert stats["http.request.count"] == 2
            assert stats["http.request.status.200"] == 1
            assert stats["http.request.status.404"] == 1
            assert stats["http.request.p99_seconds"] > 0

    def test_stats_endpoint_reports_cache(self, snapshot_archive):
        path, _ = snapshot_archive
        with make_service(path) as service:
            service.handle_region("a", "T")
            document = body_json(service.handle_stats("a"))
            assert document["archive"]["id"] == "a"
            assert document["archive"]["cache"]["chunks_decoded"] > 0
            assert "hits" in document["shared_cache"]

    def test_http_telemetry_reaches_global_recorder(self, snapshot_archive):
        path, _ = snapshot_archive
        from repro import obs

        recorder = obs.Recorder()
        previous = obs.set_recorder(recorder)
        try:
            with make_service(path) as service:
                service.handle_region("a", "T", region="0:8,0:8")
            snapshot = recorder.snapshot()
            assert snapshot.counters["http.request.count"] == 1
            assert "http.request.seconds" in snapshot.histograms
            assert any(span.name == "http.region" for span in snapshot.spans)
        finally:
            obs.set_recorder(previous)


class TestServiceLifecycle:
    def test_id_spec_parsing(self, snapshot_archive, tmp_path):
        path, _ = snapshot_archive
        with ArchiveService([f"named={path}"], cache=SharedChunkCache()) as service:
            assert service.archive_ids == ["named"]
        with ArchiveService([str(path)], cache=SharedChunkCache()) as service:
            assert service.archive_ids == ["snap"]

    def test_duplicate_id_rejected(self, snapshot_archive):
        path, _ = snapshot_archive
        with make_service(path) as service:
            with pytest.raises(ValueError, match="already"):
                service.add_archive(path, archive_id="a")

    def test_invalid_refresh_mode_rejected(self, snapshot_archive):
        path, _ = snapshot_archive
        with pytest.raises(ValueError, match="refresh"):
            ArchiveService({"a": path}, refresh="sometimes")

    def test_close_is_idempotent(self, snapshot_archive):
        path, _ = snapshot_archive
        service = make_service(path)
        service.handle_manifest("a")
        service.close()
        service.close()
        assert service.handle_manifest("a").status == 404
