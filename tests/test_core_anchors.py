"""Unit tests for anchor-field specifications."""

import pytest

from repro.core.anchors import ANCHOR_TABLE, AnchorSpec, get_anchor_spec, list_anchor_specs, suggest_anchors


class TestAnchorSpec:
    def test_paper_table_contains_all_six_targets(self):
        keys = {(spec.dataset, spec.target) for spec in ANCHOR_TABLE.values()}
        assert ("scale", "RH") in keys
        assert ("scale", "W") in keys
        assert ("hurricane", "Wf") in keys
        assert ("cesm", "CLDTOT") in keys
        assert ("cesm", "LWCF") in keys
        assert ("cesm", "FLUT") in keys

    def test_get_anchor_spec_matches_paper(self):
        spec = get_anchor_spec("hurricane", "Wf")
        assert spec.anchors == ("Uf", "Vf", "Pf")
        spec = get_anchor_spec("cesm", "CLDTOT")
        assert spec.anchors == ("CLDLOW", "CLDMED", "CLDHGH")

    def test_dataset_alias(self):
        assert get_anchor_spec("CESM-ATM", "LWCF").anchors == ("FLUTC", "FLNT")

    def test_unknown_spec(self):
        with pytest.raises(KeyError):
            get_anchor_spec("cesm", "UNKNOWN")

    def test_list_by_dataset(self):
        specs = list_anchor_specs("cesm")
        assert {s.target for s in specs} == {"CLDTOT", "LWCF", "FLUT"}
        assert len(list_anchor_specs()) >= 6

    def test_validate_against_fieldset(self, cesm_small):
        get_anchor_spec("cesm", "CLDTOT").validate(cesm_small)

    def test_validate_missing_field(self, cesm_small):
        spec = AnchorSpec("cesm", "CLDTOT", ("NOT_A_FIELD",))
        with pytest.raises(KeyError):
            spec.validate(cesm_small)

    def test_validate_self_anchor(self, cesm_small):
        spec = AnchorSpec("cesm", "CLDTOT", ("CLDTOT",))
        with pytest.raises(ValueError):
            spec.validate(cesm_small)

    def test_validate_duplicate_anchor(self, cesm_small):
        spec = AnchorSpec("cesm", "CLDTOT", ("CLDLOW", "CLDLOW"))
        with pytest.raises(ValueError):
            spec.validate(cesm_small)

    def test_validate_empty_anchor(self, cesm_small):
        spec = AnchorSpec("cesm", "CLDTOT", ())
        with pytest.raises(ValueError):
            spec.validate(cesm_small)


class TestSuggestAnchors:
    def test_suggests_related_fields(self, cesm_small):
        spec = suggest_anchors(cesm_small, "CLDTOT", max_anchors=3)
        assert len(spec.anchors) == 3
        assert "CLDTOT" not in spec.anchors
        # the per-level cloud fractions are the strongest MI partners by construction
        assert len(set(spec.anchors) & {"CLDLOW", "CLDMED", "CLDHGH"}) >= 1

    def test_unknown_target(self, cesm_small):
        with pytest.raises(KeyError):
            suggest_anchors(cesm_small, "nope")

    def test_invalid_max_anchors(self, cesm_small):
        with pytest.raises(ValueError):
            suggest_anchors(cesm_small, "CLDTOT", max_anchors=0)
