"""Unit tests for cross-field correlation measures."""

import numpy as np
import pytest

from repro.data.fields import Field, FieldSet
from repro.metrics import cross_field_correlation_matrix, mutual_information_score, pearson_correlation


class TestPearson:
    def test_perfect_correlation(self):
        x = np.random.default_rng(0).normal(size=1000)
        assert np.isclose(pearson_correlation(x, 2 * x + 1), 1.0)

    def test_perfect_anticorrelation(self):
        x = np.random.default_rng(1).normal(size=1000)
        assert np.isclose(pearson_correlation(x, -x), -1.0)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(2)
        assert abs(pearson_correlation(rng.normal(size=5000), rng.normal(size=5000))) < 0.1

    def test_constant_input(self):
        assert pearson_correlation(np.ones(10), np.arange(10)) == 0.0


class TestMutualInformation:
    def test_nonlinear_dependence_detected(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(-1, 1, size=20000)
        y = x**2  # Pearson ~ 0, MI large
        assert abs(pearson_correlation(x, y)) < 0.1
        assert mutual_information_score(x, y, bins=32) > 0.5

    def test_independent_low_mi(self):
        rng = np.random.default_rng(4)
        mi = mutual_information_score(rng.normal(size=20000), rng.normal(size=20000), bins=32)
        assert mi < 0.1

    def test_self_information_positive(self):
        x = np.random.default_rng(5).normal(size=2000)
        assert mutual_information_score(x, x) > 1.0

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            mutual_information_score(np.zeros(10) + np.arange(10), np.arange(10), bins=1)


class TestMatrix:
    def _fieldset(self):
        rng = np.random.default_rng(6)
        a = rng.normal(size=(32, 32))
        return FieldSet(
            [
                Field("A", a.astype(np.float32)),
                Field("B", (2 * a).astype(np.float32)),
                Field("C", rng.normal(size=(32, 32)).astype(np.float32)),
            ]
        )

    def test_pearson_matrix(self):
        matrix = cross_field_correlation_matrix(self._fieldset(), method="pearson")
        assert np.isclose(matrix["A"]["A"], 1.0)
        assert np.isclose(matrix["A"]["B"], 1.0, atol=1e-5)
        assert abs(matrix["A"]["C"]) < 0.3

    def test_mi_matrix(self):
        matrix = cross_field_correlation_matrix(self._fieldset(), method="mutual_information", bins=16)
        assert matrix["A"]["B"] > matrix["A"]["C"]

    def test_invalid_method(self):
        with pytest.raises(ValueError):
            cross_field_correlation_matrix(self._fieldset(), method="spearman")

    def test_subset_of_names(self):
        matrix = cross_field_correlation_matrix(self._fieldset(), names=["A", "C"])
        assert set(matrix) == {"A", "C"}
