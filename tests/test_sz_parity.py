"""Cross-implementation parity harness for the vectorised SZ hot path.

The batch-state-machine decoders (`decode_weighted_wavefront`, the batched
`RegressionPredictor.encode`/`decode`) promise *bit-identical* output to their
scalar reference counterparts (`decode_reference` /
`RegressionPredictor.encode_reference` / `decode_reference`).  This suite
drives both implementations through Hypothesis-generated shapes (1D/2D/3D,
degenerate edges, odd strides), weight profiles (pure-Lorenzo, full hybrid,
zero, axes-only, adversarial extremes), dtypes and error bounds, and asserts
exact equality — the same pattern that made the HFV2 entropy rewrite safe.

Invalid-input rejection (mismatched weights/fields, NaN/inf) is pinned here
too, so the fast paths can never regress to cryptic broadcast errors.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

import repro.sz.decode as sz_decode
from repro.sz import ErrorBound, SZCompressor
from repro.sz.decode import (
    clear_wavefront_plans,
    decode_reference,
    decode_weighted_sequential,
    decode_weighted_wavefront,
    wavefront_plan_info,
    weighted_predict_full,
)
from repro.sz.predictors import RegressionPredictor
from repro.sz.quantizer import prequantize

COMMON_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

# --------------------------------------------------------------------------- #
# strategies
# --------------------------------------------------------------------------- #
SHAPES = st.one_of(
    st.tuples(st.integers(1, 40)),
    st.tuples(st.integers(1, 12), st.integers(1, 12)),
    st.tuples(st.integers(1, 6), st.integers(1, 6), st.integers(1, 6)),
)

# Adversarial weights mix huge, tiny, negative and cancelling magnitudes.  The
# recurrence amplifies |weights| wave over wave, so extremes are paired with
# tiny shapes/values below to keep the reference path inside int64 (the scalar
# decoder raises OverflowError past that; the parity contract only covers the
# non-overflowing domain).
ADVERSARIAL_WEIGHT = st.sampled_from(
    [-64.0, -17.5, -1.0, -1e-12, 0.0, 1e-12, 1.0 / 3.0, 0.999999, 64.0]
)
MODERATE_WEIGHT = st.floats(-1.0, 1.0, allow_nan=False, allow_infinity=False)


@st.composite
def decode_cases_3d(draw):
    """3D-only cases for the blocked slab variant (axis 0 extent > 1)."""
    shape = draw(st.tuples(st.integers(2, 6), st.integers(1, 6), st.integers(1, 6)))
    weights = np.array([draw(MODERATE_WEIGHT) for _ in range(4)])
    residuals = draw(arrays(np.int64, shape, elements=st.integers(-1000, 1000)))
    diffs = [
        draw(arrays(np.int64, shape, elements=st.integers(-1000, 1000)))
        for _ in range(3)
    ]
    return residuals, diffs, weights


@st.composite
def decode_cases(draw):
    shape = draw(SHAPES)
    ndim = len(shape)
    kind = draw(
        st.sampled_from(["pure-lorenzo", "hybrid", "zero", "axes-only", "adversarial"])
    )
    if kind == "adversarial":
        shape = tuple(min(s, 3) for s in shape)
        lo, hi = -4, 4
        weights = np.array([draw(ADVERSARIAL_WEIGHT) for _ in range(ndim + 1)])
    else:
        lo, hi = -1000, 1000
        if kind == "pure-lorenzo":
            weights = np.array([1.0] + [0.0] * ndim)
        elif kind == "zero":
            weights = np.zeros(ndim + 1)
        elif kind == "axes-only":
            weights = np.array([0.0] + [draw(MODERATE_WEIGHT) for _ in range(ndim)])
        else:  # full hybrid
            weights = np.array([draw(MODERATE_WEIGHT) for _ in range(ndim + 1)])
    residuals = draw(arrays(np.int64, shape, elements=st.integers(lo, hi)))
    diffs = [
        draw(arrays(np.int64, shape, elements=st.integers(lo, hi))) for _ in range(ndim)
    ]
    return residuals, diffs, weights


# --------------------------------------------------------------------------- #
# wavefront decoder parity
# --------------------------------------------------------------------------- #
class TestWavefrontParity:
    @COMMON_SETTINGS
    @given(decode_cases())
    def test_bit_identical_to_reference(self, case):
        residuals, diffs, weights = case
        expected = decode_reference(residuals, diffs, weights)
        actual = decode_weighted_wavefront(residuals, diffs, weights)
        assert actual.dtype == expected.dtype == np.int64
        assert np.array_equal(actual, expected)

    @COMMON_SETTINGS
    @given(decode_cases_3d())
    def test_blocked_3d_variant_bit_identical(self, case):
        residuals, diffs, weights = case
        expected = decode_reference(residuals, diffs, weights)
        old = sz_decode.BLOCKED_3D_THRESHOLD
        sz_decode.BLOCKED_3D_THRESHOLD = 4  # force the slab path on tiny data
        try:
            actual = decode_weighted_wavefront(residuals, diffs, weights)
        finally:
            sz_decode.BLOCKED_3D_THRESHOLD = old
        assert np.array_equal(actual, expected)

    @pytest.mark.parametrize(
        "shape",
        [(0,), (0, 5), (3, 0, 4), (1,), (1, 1), (1, 1, 1), (1, 7), (7, 1), (1, 1, 9), (5, 1, 1)],
    )
    def test_degenerate_shapes(self, shape):
        rng = np.random.default_rng(7)
        ndim = len(shape)
        residuals = rng.integers(-9, 9, size=shape).astype(np.int64)
        diffs = [rng.integers(-9, 9, size=shape).astype(np.int64) for _ in range(ndim)]
        weights = np.linspace(0.9, -0.4, ndim + 1)
        expected = decode_reference(residuals, diffs, weights)
        actual = decode_weighted_wavefront(residuals, diffs, weights)
        assert actual.shape == shape
        assert np.array_equal(actual, expected)

    def test_odd_strides_match_contiguous(self):
        rng = np.random.default_rng(11)
        base = rng.integers(-50, 50, size=(18, 27)).astype(np.int64)
        dbase = [rng.integers(-5, 5, size=(18, 27)).astype(np.int64) for _ in range(2)]
        strided = base[::2, ::3]
        assert not strided.flags["C_CONTIGUOUS"]
        diffs = [d[::2, ::3] for d in dbase]
        weights = np.array([0.5, 0.25, -0.25])
        expected = decode_weighted_wavefront(
            strided.copy(), [d.copy() for d in diffs], weights
        )
        actual = decode_weighted_wavefront(strided, diffs, weights)
        assert np.array_equal(actual, expected)
        assert np.array_equal(
            decode_reference(strided, diffs, weights), expected
        )

    @COMMON_SETTINGS
    @given(decode_cases())
    def test_predict_then_decode_roundtrip(self, case):
        codes, diffs, weights = case
        prediction = weighted_predict_full(codes, diffs, weights)
        residuals = codes - prediction
        assert np.array_equal(decode_weighted_wavefront(residuals, diffs, weights), codes)

    def test_plan_cache_reused_across_calls(self):
        clear_wavefront_plans()
        rng = np.random.default_rng(3)
        shape = (9, 13)
        weights = np.array([1.0, 0.0, 0.0])
        for _ in range(3):
            residuals = rng.integers(-5, 5, size=shape).astype(np.int64)
            diffs = [np.zeros(shape, dtype=np.int64) for _ in range(2)]
            decode_weighted_wavefront(residuals, diffs, weights)
        info = wavefront_plan_info()
        assert info["misses"] == 1
        assert info["hits"] == 2
        clear_wavefront_plans()
        assert wavefront_plan_info()["entries"] == 0

    def test_fat_waves_merge_dependency_free_axes(self):
        # with zero Lorenzo weight and a single active axis, the wave count
        # collapses from rows+cols-1 anti-diagonals to `rows` fat waves
        clear_wavefront_plans()
        rng = np.random.default_rng(5)
        shape = (6, 50)
        residuals = rng.integers(-5, 5, size=shape).astype(np.int64)
        diffs = [rng.integers(-5, 5, size=shape).astype(np.int64) for _ in range(2)]
        weights = np.array([0.0, 0.8, 0.0])  # only axis 0 carries a dependency
        expected = decode_reference(residuals, diffs, weights)
        actual = decode_weighted_wavefront(residuals, diffs, weights)
        assert np.array_equal(actual, expected)
        info = wavefront_plan_info()
        assert info["entries"] == 1
        # the single cached plan has exactly shape[0] waves, not sum(shape)-1
        [(plan_key, plan)] = list(sz_decode._PLAN_CACHE.items())
        assert plan.n_waves == shape[0]
        # all-zero weights: the whole array decodes in one wave
        zero = decode_weighted_wavefront(residuals, diffs, np.zeros(3))
        assert np.array_equal(zero, residuals)


# --------------------------------------------------------------------------- #
# input rejection
# --------------------------------------------------------------------------- #
DECODERS = [decode_weighted_sequential, decode_weighted_wavefront]


class TestInputRejection:
    @pytest.mark.parametrize("decode", DECODERS)
    def test_wrong_weight_length_is_clear_valueerror(self, decode):
        residuals = np.zeros((3, 4), dtype=np.int64)
        diffs = [np.zeros((3, 4), dtype=np.int64)] * 2
        with pytest.raises(ValueError, match="length ndim\\+1 = 3"):
            decode(residuals, diffs, [1.0, 0.5])

    @pytest.mark.parametrize("decode", DECODERS)
    def test_non_flat_weights_rejected(self, decode):
        residuals = np.zeros((3, 4), dtype=np.int64)
        diffs = [np.zeros((3, 4), dtype=np.int64)] * 2
        with pytest.raises(ValueError, match="flat"):
            decode(residuals, diffs, [[1.0, 0.5, 0.25]])

    @pytest.mark.parametrize("decode", DECODERS)
    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf")])
    def test_non_finite_weights_rejected(self, decode, bad):
        residuals = np.zeros((3, 4), dtype=np.int64)
        diffs = [np.zeros((3, 4), dtype=np.int64)] * 2
        with pytest.raises(ValueError, match="finite"):
            decode(residuals, diffs, [1.0, bad, 0.0])

    @pytest.mark.parametrize("decode", DECODERS)
    def test_wrong_diff_count_names_expected(self, decode):
        residuals = np.zeros((3, 4), dtype=np.int64)
        with pytest.raises(ValueError, match="expected 2 cross-field difference arrays"):
            decode(residuals, [np.zeros((3, 4), dtype=np.int64)], [1.0, 0.5, 0.25])

    @pytest.mark.parametrize("decode", DECODERS)
    def test_mismatched_diff_shape_is_valueerror_not_broadcast(self, decode):
        residuals = np.zeros((3, 4), dtype=np.int64)
        diffs = [np.zeros((3, 4), dtype=np.int64), np.zeros((4, 3), dtype=np.int64)]
        with pytest.raises(ValueError, match=r"diff_codes\[1\] has shape \(4, 3\)"):
            decode(residuals, diffs, [1.0, 0.5, 0.25])

    @pytest.mark.parametrize("decode", DECODERS)
    def test_float_residuals_rejected(self, decode):
        residuals = np.zeros((3, 4), dtype=np.float64)
        diffs = [np.zeros((3, 4), dtype=np.int64)] * 2
        with pytest.raises(TypeError, match="integer"):
            decode(residuals, diffs, [1.0, 0.5, 0.25])

    def test_nan_inf_data_rejected_before_prediction(self):
        comp = SZCompressor(error_bound=ErrorBound.absolute(1e-3))
        data = np.ones((8, 8), dtype=np.float32)
        data[3, 3] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            comp.compress(data)
        data[3, 3] = np.inf
        with pytest.raises(ValueError, match="non-finite"):
            comp.compress(data)
        with pytest.raises(ValueError, match="non-finite"):
            prequantize(np.array([1.0, np.nan]), 1e-3)


# --------------------------------------------------------------------------- #
# regression predictor parity
# --------------------------------------------------------------------------- #
class TestRegressionParity:
    @COMMON_SETTINGS
    @given(
        SHAPES,
        st.integers(2, 7),
        st.integers(0, 2**32 - 1),
    )
    def test_encode_bit_identical_to_reference(self, shape, block_size, seed):
        rng = np.random.default_rng(seed)
        codes = rng.integers(-(2**20), 2**20, size=shape).astype(np.int64)
        pred = RegressionPredictor(block_size=block_size)
        res_fast, coeff_fast = pred.encode(codes)
        res_ref, coeff_ref = pred.encode_reference(codes)
        assert np.array_equal(res_fast, res_ref)
        assert coeff_fast.block_shape == coeff_ref.block_shape
        assert coeff_fast.coefficients.dtype == coeff_ref.coefficients.dtype == np.float32
        assert np.array_equal(coeff_fast.coefficients, coeff_ref.coefficients)

    @COMMON_SETTINGS
    @given(
        SHAPES,
        st.integers(2, 7),
        st.integers(0, 2**32 - 1),
    )
    def test_decode_bit_identical_and_exact_roundtrip(self, shape, block_size, seed):
        rng = np.random.default_rng(seed)
        codes = rng.integers(-(2**20), 2**20, size=shape).astype(np.int64)
        pred = RegressionPredictor(block_size=block_size)
        residuals, coefficients = pred.encode(codes)
        fast = pred.decode(residuals, coefficients)
        ref = pred.decode_reference(residuals, coefficients)
        assert np.array_equal(fast, ref)
        assert np.array_equal(fast, codes)

    def test_extent_one_edge_blocks_match(self):
        # shape 7 with block_size 6 leaves a width-1 edge block: the batched
        # fit must pin the degenerate slope to zero exactly like the reference
        rng = np.random.default_rng(0)
        codes = rng.integers(-500, 500, size=(7, 13, 7)).astype(np.int64)
        pred = RegressionPredictor(block_size=6)
        res_fast, coeff_fast = pred.encode(codes)
        res_ref, coeff_ref = pred.encode_reference(codes)
        assert np.array_equal(res_fast, res_ref)
        assert np.array_equal(coeff_fast.coefficients, coeff_ref.coefficients)

    def test_mismatched_coefficient_count_is_clear_valueerror(self):
        rng = np.random.default_rng(1)
        codes = rng.integers(-100, 100, size=(12, 12)).astype(np.int64)
        pred = RegressionPredictor(block_size=6)
        residuals, coefficients = pred.encode(codes)
        coefficients.coefficients = coefficients.coefficients[:-1]
        for decode in (pred.decode, pred.decode_reference):
            with pytest.raises(ValueError, match="does not match"):
                decode(residuals, coefficients)

    def test_mismatched_block_rank_is_clear_valueerror(self):
        rng = np.random.default_rng(2)
        codes = rng.integers(-100, 100, size=(12, 12)).astype(np.int64)
        pred = RegressionPredictor(block_size=6)
        residuals, coefficients = pred.encode(codes)
        coefficients.block_shape = (6, 6, 6)
        with pytest.raises(ValueError, match="does not match"):
            pred.decode(residuals, coefficients)


# --------------------------------------------------------------------------- #
# end-to-end compressor sweeps
# --------------------------------------------------------------------------- #
class TestCompressorSweep:
    @COMMON_SETTINGS
    @given(
        st.sampled_from([np.float32, np.float64]),
        st.sampled_from([1e-2, 1e-3, 1e-4]),
        st.sampled_from(["lorenzo", "regression", "interpolation"]),
        st.integers(0, 2**32 - 1),
    )
    def test_bound_holds_and_decode_is_deterministic(self, dtype, rel_eb, predictor, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(17, 23)).astype(dtype)
        comp = SZCompressor(error_bound=ErrorBound.relative(rel_eb), predictor=predictor)
        result = comp.compress(data)
        first = comp.decompress(result.payload)
        second = comp.decompress(result.payload)
        assert first.dtype == dtype
        assert np.array_equal(first, second)  # bit-identical replays
        err = np.max(np.abs(first.astype(np.float64) - data.astype(np.float64)))
        assert err <= result.abs_error_bound * (1 + 1e-9)

    @pytest.mark.parametrize("shape", [(1,), (1, 1), (2, 3, 4), (40, 1)])
    def test_degenerate_shapes_roundtrip(self, shape):
        rng = np.random.default_rng(9)
        data = rng.normal(size=shape).astype(np.float32)
        for predictor in ("lorenzo", "regression", "interpolation"):
            comp = SZCompressor(
                error_bound=ErrorBound.absolute(1e-3), predictor=predictor
            )
            result = comp.compress(data)
            recon = comp.decompress(result.payload)
            assert recon.shape == shape
            assert np.max(np.abs(recon - data)) <= result.abs_error_bound * (1 + 1e-9)
