"""Smoke-scale tests for the experiment runners (one per paper artefact)."""

import numpy as np
import pytest

from repro.core.training import TrainingConfig
from repro.experiments import run_figure1, run_figure5, run_figure6, run_table1, run_table2, run_table3
from repro.experiments.config import FieldExperiment

FAST = TrainingConfig(epochs=2, n_patches=12, batch_size=4, patch_size_2d=16, patch_size_3d=8)


class TestLightRunners:
    def test_table1(self):
        result = run_table1("smoke")
        assert len(result.rows) == 3
        names = {row["name"] for row in result.rows}
        assert names == {"SCALE", "Hurricane", "CESM-ATM"}
        assert "98x1200x1200" in result.format()

    def test_table3(self):
        result = run_table3("smoke")
        assert len(result.rows) == 6
        for row in result.rows:
            assert row["cfnn_parameters"] > 100
            assert row["hybrid_parameters"] in (3, 4)
            assert row["paper_cfnn_parameters"] > 0
        assert "CFNN params" in result.format()

    def test_figure1(self):
        result = run_figure1("smoke")
        assert set(result.pearson) == {"U", "V", "W"}
        # diagonal of the Pearson matrix is 1
        for name in result.pearson:
            assert np.isclose(result.pearson[name][name], 1.0)
        # mutual information detects the (nonlinear) U-W coupling
        assert result.mutual_information["U"]["W"] > 0.05
        assert "Pearson" in result.format()


class TestHeavyRunnersSmoke:
    def test_table2_single_cell(self):
        experiments = [FieldExperiment("cesm", "LWCF", (1e-3,))]
        result = run_table2("smoke", experiments=experiments, training=FAST)
        assert len(result.rows) == 1
        row = result.rows[0]
        assert row["baseline_ratio"] > 1.0
        assert row["ours_ratio"] > 0.5
        assert "paper_baseline" in row
        assert np.isfinite(result.mean_improvement())
        assert result.improvement_for("cesm", "LWCF", 1e-3) == pytest.approx(row["improvement_percent"])
        with pytest.raises(KeyError):
            result.improvement_for("cesm", "LWCF", 9e-9)

    def test_figure5_losses_decrease(self):
        result = run_figure5("smoke", dataset="cesm", target="LWCF", training=FAST, hybrid_epochs=5)
        assert len(result.cfnn_loss) == FAST.epochs
        assert len(result.hybrid_loss) == 5
        assert result.hybrid_decreased()
        assert "cfnn" in result.format()

    def test_figure6_hybrid_at_least_as_good_as_worst(self):
        result = run_figure6("smoke", dataset="cesm", target="CLDTOT", training=FAST, zoom_size=20)
        assert set(result.metrics) == {"cross_field", "lorenzo", "hybrid"}
        worst = min(v["psnr"] for v in result.metrics.values())
        assert result.metrics["hybrid"]["psnr"] >= worst
        assert result.best_predictor() in result.metrics
        assert "Predictor" in result.format()
