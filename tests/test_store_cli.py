"""End-to-end tests for the ``repro`` CLI driving the archive store.

Packing dominates CLI test runtime, so tests share the session-scoped
``cli_fieldset_dir`` / ``cli_archive_master`` fixtures from ``conftest.py``
(built once); tests that corrupt archive bytes take a ``copy_archive`` copy.
"""

import json

import numpy as np
import pytest

from repro.data.io import read_fieldset, write_fieldset
from repro.store.cli import main, parse_region


class TestParseRegion:
    def test_slices(self):
        assert parse_region("0:10,5:20") == (slice(0, 10), slice(5, 20))

    def test_open_ended_and_full(self):
        assert parse_region("3,:,40:") == (3, slice(None), slice(40, None))
        assert parse_region(":16") == (slice(None, 16),)

    def test_bad_token(self):
        with pytest.raises(ValueError):
            parse_region("a:b")

    def test_step_syntax_rejected_clearly(self):
        with pytest.raises(ValueError, match="step is not supported"):
            parse_region("0:10:2")


class TestCLI:
    def test_pack_ls_extract_verify_unpack(self, tmp_path, cli_fieldset_dir, cesm_small, capsys):
        archive = tmp_path / "snap.xfa"

        assert main([
            "pack", str(cli_fieldset_dir), str(archive), "--chunk", "24,24", "--error-bound", "1e-3",
        ]) == 0
        assert archive.exists()
        assert "packed 3 fields" in capsys.readouterr().out

        assert main(["ls", str(archive)]) == 0
        listing = capsys.readouterr().out
        for name in ("FLNT", "FLNTC", "LWCF"):
            assert name in listing

        out_npy = tmp_path / "window.npy"
        assert main([
            "extract", str(archive), "FLNT", "--region", "0:10,20:40", "-o", str(out_npy),
        ]) == 0
        capsys.readouterr()
        window = np.load(out_npy)
        assert window.shape == (10, 20)
        original = cesm_small["FLNT"].data[0:10, 20:40]
        assert np.max(np.abs(window.astype(np.float64) - original.astype(np.float64))) <= 1.0

        assert main(["verify", str(archive), "--deep"]) == 0
        assert "passed" in capsys.readouterr().out

        restored_dir = tmp_path / "restored"
        assert main(["unpack", str(archive), str(restored_dir)]) == 0
        capsys.readouterr()
        restored = read_fieldset(restored_dir)
        assert sorted(restored.names) == ["FLNT", "FLNTC", "LWCF"]
        for name in restored.names:
            err = np.max(
                np.abs(
                    restored[name].data.astype(np.float64)
                    - cesm_small[name].data.astype(np.float64)
                )
            )
            value_range = cesm_small[name].value_range
            assert err <= 1e-3 * value_range * (1 + 1e-9)

    def test_pack_synthetic_with_cross_field(self, tmp_path, capsys):
        archive = tmp_path / "cesm.xfa"
        code = main([
            "pack", "cesm", str(archive),
            "--shape", "32,48", "--chunk", "32,48", "--seed", "11",
            "--fields", "CLDLOW,CLDMED,CLDTOT",
            "--cross-field", "CLDTOT=CLDLOW,CLDMED",
        ])
        assert code == 0
        capsys.readouterr()
        assert main(["ls", str(archive), "--json"]) == 0
        entries = {e["name"]: e for e in json.loads(capsys.readouterr().out)}
        assert entries["CLDTOT"]["codec"] == "cross-field"
        assert entries["CLDTOT"]["anchors"] == ["CLDLOW", "CLDMED"]
        assert entries["CLDLOW"]["codec"] == "sz"

    def test_ls_surfaces_codec_params(self, cli_archive_master, capsys):
        # the listing must show the manifest-recorded codec parameters
        # (entropy mode etc.), not just the codec name
        assert main(["ls", str(cli_archive_master)]) == 0
        listing = capsys.readouterr().out
        assert "params" in listing
        assert "entropy=huffman" in listing
        assert "predictor=lorenzo" in listing

    def test_ls_params_reflect_entropy_choice(self, tmp_path, cli_fieldset_dir, capsys):
        archive = tmp_path / "zlib.xfa"
        assert main(["pack", str(cli_fieldset_dir), str(archive), "--entropy", "zlib"]) == 0
        capsys.readouterr()
        assert main(["ls", str(archive)]) == 0
        assert "entropy=zlib" in capsys.readouterr().out

    def test_verify_fails_on_corruption(self, cli_archive_master, copy_archive, capsys):
        archive = copy_archive(cli_archive_master)
        raw = bytearray(archive.read_bytes())
        raw[100] ^= 0xFF  # inside the first chunk payload
        archive.write_bytes(bytes(raw))
        assert main(["verify", str(archive)]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_bad_source_reports_error(self, tmp_path, capsys):
        code = main(["pack", "not-a-dataset", str(tmp_path / "x.xfa")])
        assert code == 2
        assert "known synthetic dataset" in capsys.readouterr().err

    def test_bad_shape_for_known_dataset_keeps_generator_error(self, tmp_path, capsys):
        # cesm is 2D: a 3D --shape must surface the generator's message, not
        # be misreported as an unknown dataset name
        code = main(["pack", "cesm", str(tmp_path / "x.xfa"), "--shape", "10,20,30"])
        assert code == 2
        err = capsys.readouterr().err
        assert "known synthetic dataset" not in err
        assert "2D" in err

    def test_bad_region_string_reports_error(self, cli_archive_master, capsys):
        assert main(["extract", str(cli_archive_master), "FLNT", "--region", "a:b"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_shape_rejected_for_directory_source(self, tmp_path, cli_fieldset_dir, capsys):
        code = main(["pack", str(cli_fieldset_dir), str(tmp_path / "x.xfa"), "--shape", "16,16"])
        assert code == 2
        assert "only apply to synthetic dataset sources" in capsys.readouterr().err

    def test_dataset_named_directory_is_ambiguous(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "cesm").mkdir()  # user data folder colliding with a generator name
        code = main(["pack", "cesm", str(tmp_path / "x.xfa"), "--shape", "16,16"])
        # never silently pack synthetic data in place of the user's directory
        assert code == 2
        assert "both a directory" in capsys.readouterr().err

    def test_plain_directory_source_mentions_manifest(self, tmp_path, capsys):
        (tmp_path / "stuff").mkdir()
        code = main(["pack", str(tmp_path / "stuff"), str(tmp_path / "x.xfa")])
        assert code == 2
        assert "without a manifest.json" in capsys.readouterr().err

    def test_directory_as_archive_reports_error(self, tmp_path, capsys):
        assert main(["ls", str(tmp_path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_codec_reports_error(self, tmp_path, capsys):
        code = main(["pack", "cesm", str(tmp_path / "x.xfa"), "--shape", "16,16", "--codec", "nope"])
        assert code == 2
        assert "unknown codec" in capsys.readouterr().err

    def test_pack_with_entropy_flag(self, tmp_path, capsys):
        archive = tmp_path / "ent.xfa"
        assert main(["pack", "cesm", str(archive), "--shape", "48,64", "--entropy", "zlib"]) == 0
        capsys.readouterr()
        from repro.store.reader import ArchiveReader

        with ArchiveReader(archive) as reader:
            for entry in reader.fields():
                assert entry.codec_params["entropy"] == "zlib"
        assert main(["verify", str(archive), "--deep"]) == 0
        capsys.readouterr()

    def test_unknown_entropy_reports_error(self, tmp_path, capsys):
        code = main(["pack", "cesm", str(tmp_path / "x.xfa"), "--shape", "16,16", "--entropy", "lzma"])
        assert code == 2
        assert "unknown entropy coder" in capsys.readouterr().err

    def test_entropy_rejected_for_entropyless_codec(self, tmp_path, capsys):
        code = main([
            "pack", "cesm", str(tmp_path / "x.xfa"), "--shape", "16,16",
            "--codec", "lossless", "--entropy", "huffman",
        ])
        assert code == 2
        assert "no entropy stage" in capsys.readouterr().err

    def test_extract_unknown_field_reports_error(self, cli_archive_master, capsys):
        assert main(["extract", str(cli_archive_master), "NOPE"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: no field named")  # no KeyError repr quoting

    def test_jobs_flag_global_and_per_subcommand(self, tmp_path, cli_fieldset_dir, capsys):
        archive = tmp_path / "snap.xfa"
        assert main(["--jobs", "2", "pack", str(cli_fieldset_dir), str(archive), "--chunk", "24,24"]) == 0
        capsys.readouterr()

        # verify: flag accepted at the root and after the subcommand
        assert main(["--jobs", "1", "verify", str(archive), "--deep"]) == 0
        assert "passed" in capsys.readouterr().out
        assert main(["verify", str(archive), "--deep", "-j", "2"]) == 0
        assert "passed" in capsys.readouterr().out

        # unpack: serial and parallel restores are identical
        serial_dir, parallel_dir = tmp_path / "serial", tmp_path / "parallel"
        assert main(["unpack", str(archive), str(serial_dir), "--jobs", "1"]) == 0
        assert main(["--jobs", "3", "unpack", str(archive), str(parallel_dir)]) == 0
        capsys.readouterr()
        serial, parallel = read_fieldset(serial_dir), read_fieldset(parallel_dir)
        for name in serial.names:
            assert np.array_equal(serial[name].data, parallel[name].data)

    def test_jobs_flag_reaches_pipeline_subcommands(self, tmp_path, capsys):
        archive = tmp_path / "scenario.xfa"
        assert main(["run", "climate-small", "-o", str(archive), "--jobs", "1"]) == 0
        capsys.readouterr()
        dest = tmp_path / "restored"
        assert main(["decompress", str(archive), str(dest), "--jobs", "2"]) == 0
        capsys.readouterr()
        assert sorted(read_fieldset(dest).names) == ["CLDTOT", "FLNT", "FLNTC", "LWCF"]

    def test_chunk_worker_failure_reports_error_not_traceback(
        self, tmp_path, cli_fieldset_dir, capsys, monkeypatch
    ):
        # a codec crash inside a pool worker surfaces as a contextual CLI
        # error (exit 2), never an uncaught ChunkTaskError traceback
        from repro.store.codecs import SZChunkCodec

        def broken_encode(self, chunk, anchors=None):
            raise ValueError("encode exploded")

        monkeypatch.setattr(SZChunkCodec, "encode", broken_encode)
        assert main(["pack", str(cli_fieldset_dir), str(tmp_path / "x.xfa"), "--chunk", "24,24"]) == 2
        err = capsys.readouterr().err
        assert "error: field 'FLNT' chunk 0: encode exploded" in err

    def test_invalid_jobs_reports_error(self, cli_archive_master, capsys):
        assert main(["verify", str(cli_archive_master), "--jobs", "0"]) == 2
        assert "jobs" in capsys.readouterr().err

    def test_unpack_preserves_float64_dtype(self, tmp_path, rng, capsys):
        from repro.store import ArchiveWriter

        archive = tmp_path / "f64.xfa"
        data = rng.normal(size=(16, 16)).astype(np.float64)
        with ArchiveWriter(archive) as writer:
            writer.add_field("x", data, codec="lossless")
        dest = tmp_path / "restored"
        assert main(["unpack", str(archive), str(dest)]) == 0
        capsys.readouterr()
        restored = read_fieldset(dest)
        assert restored["x"].data.dtype == np.float64
        assert np.array_equal(restored["x"].data, data)


class TestAppendSteps:
    @pytest.fixture()
    def step_dirs(self, tmp_path_factory, cesm_small):
        """Two tiny correlated snapshots as fieldset directories."""
        from repro.data.fields import Field, FieldSet

        base_dir = tmp_path_factory.mktemp("steps")
        dirs = []
        for t in range(2):
            snapshot = FieldSet(
                [
                    Field(name, cesm_small[name].data[:24, :32] + 0.01 * t)
                    for name in ("FLNT", "FLNTC")
                ],
                name=f"step{t}",
            )
            dest = base_dir / f"step{t}"
            write_fieldset(snapshot, dest)
            dirs.append(dest)
        return dirs

    def test_append_create_steps_round_trip(self, tmp_path, step_dirs, capsys):
        archive = tmp_path / "series.xfa"
        # first append must demand --create for a fresh archive
        assert main(["append", str(archive), str(step_dirs[0])]) == 2
        assert "--create" in capsys.readouterr().err

        assert main([
            "append", str(archive), str(step_dirs[0]), "--create",
            "--temporal", "delta", "--anchor-every", "2", "--time", "0.0",
        ]) == 0
        out = capsys.readouterr().out
        assert "appended step 0" in out and "2 independent" in out

        assert main([
            "append", str(archive), str(step_dirs[1]),
            "--temporal", "delta", "--anchor-every", "2", "--time", "0.5",
        ]) == 0
        out = capsys.readouterr().out
        assert "appended step 1" in out and "2 delta" in out

        assert main(["steps", str(archive)]) == 0
        table = capsys.readouterr().out
        assert "delta/k=2" in table
        assert " 0 " in table and " 1 " in table

        assert main(["steps", str(archive), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [entry["step"] for entry in payload] == [0, 1]
        assert payload[1]["fields"]["FLNT"] == "FLNT@1"
        assert payload[1]["compressed_nbytes"] > 0

        # the delta-coded stored fields are visible in ls with their params
        assert main(["ls", str(archive)]) == 0
        listing = capsys.readouterr().out
        assert "temporal-delta" in listing
        assert "base=sz" in listing

        assert main(["verify", str(archive), "--deep"]) == 0
        assert "passed" in capsys.readouterr().out

    def test_append_without_flags_continues_recorded_cadence(self, tmp_path, step_dirs, capsys):
        archive = tmp_path / "series.xfa"
        assert main([
            "append", str(archive), str(step_dirs[0]), "--create", "--anchor-every", "2",
        ]) == 0
        # no temporal flags: the append must keep k=2, not revert to a default
        assert main(["append", str(archive), str(step_dirs[1])]) == 0
        capsys.readouterr()
        assert main(["steps", str(archive)]) == 0
        table = capsys.readouterr().out
        assert "delta/k=2" in table
        assert "delta/k=8" not in table

    def test_append_without_flags_continues_bound_and_codec(self, tmp_path, step_dirs, capsys):
        from repro.store.reader import ArchiveReader

        archive = tmp_path / "series.xfa"
        assert main([
            "append", str(archive), str(step_dirs[0]), "--create",
            "--codec", "zfp", "--error-bound", "1e-5", "--anchor-every", "2",
        ]) == 0
        # a flagless append must not silently reset fidelity to the defaults
        assert main(["append", str(archive), str(step_dirs[1])]) == 0
        capsys.readouterr()
        with ArchiveReader(archive) as reader:
            first, second = reader.field("FLNT@0"), reader.field("FLNT@1")
            assert first.codec == "zfp"
            assert second.codec == "temporal-delta"
            assert second.codec_params["base"] == "zfp"
            assert second.error_bound == {"mode": "rel", "value": 1e-5}
        assert main(["verify", str(archive), "--deep"]) == 0
        capsys.readouterr()

    def test_append_without_flags_continues_codec_params(self, tmp_path, step_dirs, capsys):
        from repro.store.reader import ArchiveReader

        archive = tmp_path / "series.xfa"
        assert main([
            "append", str(archive), str(step_dirs[0]), "--create", "--entropy", "zlib",
        ]) == 0
        # flagless append: the recorded entropy coder must carry over, not
        # silently revert to the huffman default
        assert main(["append", str(archive), str(step_dirs[1])]) == 0
        capsys.readouterr()
        with ArchiveReader(archive) as reader:
            assert reader.field("FLNT@0").codec_params["entropy"] == "zlib"
            delta = reader.field("FLNT@1")
            assert delta.codec == "temporal-delta"
            assert delta.codec_params["base_params"]["entropy"] == "zlib"
        # an explicit --entropy wins over the recorded one
        assert main(["append", str(archive), str(step_dirs[0]), "--step", "2",
                     "--entropy", "huffman"]) == 0
        capsys.readouterr()
        with ArchiveReader(archive) as reader:
            assert reader.field("FLNT@2").codec_params["base_params"]["entropy"] == "huffman"

    def test_append_entropy_on_inherited_entropyless_codec_fails_cleanly(
        self, tmp_path, step_dirs, capsys
    ):
        archive = tmp_path / "series.xfa"
        assert main([
            "append", str(archive), str(step_dirs[0]), "--create",
            "--codec", "lossless", "--temporal", "none",
        ]) == 0
        capsys.readouterr()
        # the inherited codec has no entropy stage: clean exit 2, no traceback
        code = main(["append", str(archive), str(step_dirs[1]), "--entropy", "huffman"])
        assert code == 2
        assert "no entropy stage" in capsys.readouterr().err

    def test_append_temporal_none_conflicts_with_cadence_flags(self, tmp_path, step_dirs, capsys):
        code = main([
            "append", str(tmp_path / "x.xfa"), str(step_dirs[0]), "--create",
            "--temporal", "none", "--anchor-every", "4",
        ])
        assert code == 2
        assert "contradicts" in capsys.readouterr().err

    def test_steps_on_plain_archive(self, cli_archive_master, capsys):
        assert main(["steps", str(cli_archive_master)]) == 0
        assert "no timestep index" in capsys.readouterr().out

    def test_append_recover_resumes_after_torn_tail(self, tmp_path, step_dirs, capsys):
        archive = tmp_path / "series.xfa"
        assert main(["append", str(archive), str(step_dirs[0]), "--create"]) == 0
        assert main(["append", str(archive), str(step_dirs[1])]) == 0
        capsys.readouterr()
        good_size = archive.stat().st_size
        with open(archive, "ab") as fh:
            fh.write(b"\x00" * 17)  # torn tail from a crashed append

        assert main(["steps", str(archive)]) == 2
        assert "error:" in capsys.readouterr().err
        assert main(["steps", str(archive), "--recover"]) == 0
        recovered_table = capsys.readouterr().out
        assert "delta/k=8" in recovered_table  # both flushed steps survive

        assert main(["append", str(archive), str(step_dirs[1]), "--step", "2"]) == 2
        capsys.readouterr()
        assert main([
            "append", str(archive), str(step_dirs[1]), "--step", "2", "--recover",
        ]) == 0
        assert "appended step 2" in capsys.readouterr().out
        assert archive.stat().st_size > good_size
        assert main(["verify", str(archive), "--deep"]) == 0
        capsys.readouterr()


class TestPreviewCommand:
    @pytest.fixture()
    def zfp_archive(self, tmp_path, cli_fieldset_dir):
        path = tmp_path / "zfp-snap.xfa"
        assert main([
            "pack", str(cli_fieldset_dir), str(path),
            "--chunk", "24,24", "--error-bound", "1e-3", "--codec", "zfp",
        ]) == 0
        return path

    def test_preview_reports_prefix_decode(self, zfp_archive, capsys):
        capsys.readouterr()
        assert main(["preview", str(zfp_archive), "FLNT", "--fraction", "0.25"]) == 0
        out = capsys.readouterr().out
        assert "@ fraction 0.25" in out
        assert "coefficient groups" in out
        assert "rms error estimate" in out

    def test_preview_writes_npy(self, zfp_archive, tmp_path, capsys):
        out_npy = tmp_path / "coarse.npy"
        assert main([
            "preview", str(zfp_archive), "FLNT",
            "--region", "0:24,0:48", "--fraction", "0.5", "-o", str(out_npy),
        ]) == 0
        capsys.readouterr()
        assert np.load(out_npy).shape == (24, 48)

    def test_preview_on_non_progressive_codec_decodes_fully(
        self, cli_archive_master, capsys
    ):
        # sz fields have no prefix layout: the CLI still works, reporting 100%
        assert main(["preview", str(cli_archive_master), "FLNT"]) == 0
        out = capsys.readouterr().out
        assert "(100.0%)" in out

    def test_preview_unknown_field_reports_error(self, zfp_archive, capsys):
        assert main(["preview", str(zfp_archive), "NOPE"]) == 2
        err = capsys.readouterr().err
        assert "NOPE" in err
