"""End-to-end tests for the ``repro`` CLI driving the archive store."""

import numpy as np
import pytest

from repro.data.io import read_fieldset, write_fieldset
from repro.data.synthetic import make_dataset
from repro.store.cli import main, parse_region


@pytest.fixture(scope="module")
def small_cesm():
    return make_dataset("cesm", shape=(48, 64), seed=9)


class TestParseRegion:
    def test_slices(self):
        assert parse_region("0:10,5:20") == (slice(0, 10), slice(5, 20))

    def test_open_ended_and_full(self):
        assert parse_region("3,:,40:") == (3, slice(None), slice(40, None))
        assert parse_region(":16") == (slice(None, 16),)

    def test_bad_token(self):
        with pytest.raises(ValueError):
            parse_region("a:b")

    def test_step_syntax_rejected_clearly(self):
        with pytest.raises(ValueError, match="step is not supported"):
            parse_region("0:10:2")


class TestCLI:
    def test_pack_ls_extract_verify_unpack(self, tmp_path, small_cesm, capsys):
        src = tmp_path / "fieldset"
        write_fieldset(small_cesm.subset(["FLNT", "FLNTC", "LWCF"]), src)
        archive = tmp_path / "snap.xfa"

        assert main(["pack", str(src), str(archive), "--chunk", "24,24", "--error-bound", "1e-3"]) == 0
        assert archive.exists()
        assert "packed 3 fields" in capsys.readouterr().out

        assert main(["ls", str(archive)]) == 0
        listing = capsys.readouterr().out
        for name in ("FLNT", "FLNTC", "LWCF"):
            assert name in listing

        out_npy = tmp_path / "window.npy"
        assert main([
            "extract", str(archive), "FLNT", "--region", "0:10,20:40", "-o", str(out_npy),
        ]) == 0
        capsys.readouterr()
        window = np.load(out_npy)
        assert window.shape == (10, 20)
        original = small_cesm["FLNT"].data[0:10, 20:40]
        assert np.max(np.abs(window.astype(np.float64) - original.astype(np.float64))) <= 1.0

        assert main(["verify", str(archive), "--deep"]) == 0
        assert "passed" in capsys.readouterr().out

        restored_dir = tmp_path / "restored"
        assert main(["unpack", str(archive), str(restored_dir)]) == 0
        capsys.readouterr()
        restored = read_fieldset(restored_dir)
        assert sorted(restored.names) == ["FLNT", "FLNTC", "LWCF"]
        for name in restored.names:
            err = np.max(
                np.abs(
                    restored[name].data.astype(np.float64)
                    - small_cesm[name].data.astype(np.float64)
                )
            )
            value_range = small_cesm[name].value_range
            assert err <= 1e-3 * value_range * (1 + 1e-9)

    def test_pack_synthetic_with_cross_field(self, tmp_path, capsys):
        archive = tmp_path / "cesm.xfa"
        code = main([
            "pack", "cesm", str(archive),
            "--shape", "32,48", "--chunk", "32,48", "--seed", "11",
            "--fields", "CLDLOW,CLDMED,CLDTOT",
            "--cross-field", "CLDTOT=CLDLOW,CLDMED",
        ])
        assert code == 0
        capsys.readouterr()
        assert main(["ls", str(archive), "--json"]) == 0
        import json

        entries = {e["name"]: e for e in json.loads(capsys.readouterr().out)}
        assert entries["CLDTOT"]["codec"] == "cross-field"
        assert entries["CLDTOT"]["anchors"] == ["CLDLOW", "CLDMED"]
        assert entries["CLDLOW"]["codec"] == "sz"

    def test_verify_fails_on_corruption(self, tmp_path, small_cesm, capsys):
        src = tmp_path / "fieldset"
        write_fieldset(small_cesm.subset(["FLNT"]), src)
        archive = tmp_path / "snap.xfa"
        assert main(["pack", str(src), str(archive)]) == 0
        capsys.readouterr()

        raw = bytearray(archive.read_bytes())
        raw[100] ^= 0xFF  # inside the first chunk payload
        archive.write_bytes(bytes(raw))
        assert main(["verify", str(archive)]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_bad_source_reports_error(self, tmp_path, capsys):
        code = main(["pack", "not-a-dataset", str(tmp_path / "x.xfa")])
        assert code == 2
        assert "known synthetic dataset" in capsys.readouterr().err

    def test_bad_shape_for_known_dataset_keeps_generator_error(self, tmp_path, capsys):
        # cesm is 2D: a 3D --shape must surface the generator's message, not
        # be misreported as an unknown dataset name
        code = main(["pack", "cesm", str(tmp_path / "x.xfa"), "--shape", "10,20,30"])
        assert code == 2
        err = capsys.readouterr().err
        assert "known synthetic dataset" not in err
        assert "2D" in err

    def test_bad_region_string_reports_error(self, tmp_path, small_cesm, capsys):
        src = tmp_path / "fieldset"
        write_fieldset(small_cesm.subset(["FLNT"]), src)
        archive = tmp_path / "snap.xfa"
        assert main(["pack", str(src), str(archive)]) == 0
        capsys.readouterr()
        assert main(["extract", str(archive), "FLNT", "--region", "a:b"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_shape_rejected_for_directory_source(self, tmp_path, small_cesm, capsys):
        src = tmp_path / "fieldset"
        write_fieldset(small_cesm.subset(["FLNT"]), src)
        code = main(["pack", str(src), str(tmp_path / "x.xfa"), "--shape", "16,16"])
        assert code == 2
        assert "only apply to synthetic dataset sources" in capsys.readouterr().err

    def test_dataset_named_directory_is_ambiguous(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "cesm").mkdir()  # user data folder colliding with a generator name
        code = main(["pack", "cesm", str(tmp_path / "x.xfa"), "--shape", "16,16"])
        # never silently pack synthetic data in place of the user's directory
        assert code == 2
        assert "both a directory" in capsys.readouterr().err

    def test_plain_directory_source_mentions_manifest(self, tmp_path, capsys):
        (tmp_path / "stuff").mkdir()
        code = main(["pack", str(tmp_path / "stuff"), str(tmp_path / "x.xfa")])
        assert code == 2
        assert "without a manifest.json" in capsys.readouterr().err

    def test_directory_as_archive_reports_error(self, tmp_path, capsys):
        assert main(["ls", str(tmp_path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_codec_reports_error(self, tmp_path, capsys):
        code = main(["pack", "cesm", str(tmp_path / "x.xfa"), "--shape", "16,16", "--codec", "nope"])
        assert code == 2
        assert "unknown codec" in capsys.readouterr().err

    def test_pack_with_entropy_flag(self, tmp_path, capsys):
        archive = tmp_path / "ent.xfa"
        assert main(["pack", "cesm", str(archive), "--shape", "48,64", "--entropy", "zlib"]) == 0
        capsys.readouterr()
        from repro.store.reader import ArchiveReader

        with ArchiveReader(archive) as reader:
            for entry in reader.fields():
                assert entry.codec_params["entropy"] == "zlib"
        assert main(["verify", str(archive), "--deep"]) == 0
        capsys.readouterr()

    def test_unknown_entropy_reports_error(self, tmp_path, capsys):
        code = main(["pack", "cesm", str(tmp_path / "x.xfa"), "--shape", "16,16", "--entropy", "lzma"])
        assert code == 2
        assert "unknown entropy coder" in capsys.readouterr().err

    def test_entropy_rejected_for_entropyless_codec(self, tmp_path, capsys):
        code = main([
            "pack", "cesm", str(tmp_path / "x.xfa"), "--shape", "16,16",
            "--codec", "lossless", "--entropy", "huffman",
        ])
        assert code == 2
        assert "no entropy stage" in capsys.readouterr().err

    def test_extract_unknown_field_reports_error(self, tmp_path, small_cesm, capsys):
        src = tmp_path / "fieldset"
        write_fieldset(small_cesm.subset(["FLNT"]), src)
        archive = tmp_path / "snap.xfa"
        assert main(["pack", str(src), str(archive)]) == 0
        capsys.readouterr()
        assert main(["extract", str(archive), "NOPE"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: no field named")  # no KeyError repr quoting

    def test_jobs_flag_global_and_per_subcommand(self, tmp_path, small_cesm, capsys):
        src = tmp_path / "fieldset"
        write_fieldset(small_cesm.subset(["FLNT", "FLNTC"]), src)
        archive = tmp_path / "snap.xfa"
        assert main(["--jobs", "2", "pack", str(src), str(archive), "--chunk", "24,24"]) == 0
        capsys.readouterr()

        # verify: flag accepted at the root and after the subcommand
        assert main(["--jobs", "1", "verify", str(archive), "--deep"]) == 0
        assert "passed" in capsys.readouterr().out
        assert main(["verify", str(archive), "--deep", "-j", "2"]) == 0
        assert "passed" in capsys.readouterr().out

        # unpack: serial and parallel restores are identical
        serial_dir, parallel_dir = tmp_path / "serial", tmp_path / "parallel"
        assert main(["unpack", str(archive), str(serial_dir), "--jobs", "1"]) == 0
        assert main(["--jobs", "3", "unpack", str(archive), str(parallel_dir)]) == 0
        capsys.readouterr()
        serial, parallel = read_fieldset(serial_dir), read_fieldset(parallel_dir)
        for name in serial.names:
            assert np.array_equal(serial[name].data, parallel[name].data)

    def test_jobs_flag_reaches_pipeline_subcommands(self, tmp_path, capsys):
        archive = tmp_path / "scenario.xfa"
        assert main(["run", "climate-small", "-o", str(archive), "--jobs", "1"]) == 0
        capsys.readouterr()
        dest = tmp_path / "restored"
        assert main(["decompress", str(archive), str(dest), "--jobs", "2"]) == 0
        capsys.readouterr()
        assert sorted(read_fieldset(dest).names) == ["CLDTOT", "FLNT", "FLNTC", "LWCF"]

    def test_chunk_worker_failure_reports_error_not_traceback(
        self, tmp_path, small_cesm, capsys, monkeypatch
    ):
        # a codec crash inside a pool worker surfaces as a contextual CLI
        # error (exit 2), never an uncaught ChunkTaskError traceback
        from repro.store.codecs import SZChunkCodec

        def broken_encode(self, chunk, anchors=None):
            raise ValueError("encode exploded")

        monkeypatch.setattr(SZChunkCodec, "encode", broken_encode)
        src = tmp_path / "fieldset"
        write_fieldset(small_cesm.subset(["FLNT"]), src)
        assert main(["pack", str(src), str(tmp_path / "x.xfa"), "--chunk", "24,24"]) == 2
        err = capsys.readouterr().err
        assert "error: field 'FLNT' chunk 0: encode exploded" in err

    def test_invalid_jobs_reports_error(self, tmp_path, small_cesm, capsys):
        src = tmp_path / "fieldset"
        write_fieldset(small_cesm.subset(["FLNT"]), src)
        archive = tmp_path / "snap.xfa"
        assert main(["pack", str(src), str(archive)]) == 0
        capsys.readouterr()
        assert main(["verify", str(archive), "--jobs", "0"]) == 2
        assert "jobs" in capsys.readouterr().err

    def test_unpack_preserves_float64_dtype(self, tmp_path, rng, capsys):
        from repro.store import ArchiveWriter

        archive = tmp_path / "f64.xfa"
        data = rng.normal(size=(16, 16)).astype(np.float64)
        with ArchiveWriter(archive) as writer:
            writer.add_field("x", data, codec="lossless")
        dest = tmp_path / "restored"
        assert main(["unpack", str(archive), str(dest)]) == 0
        capsys.readouterr()
        restored = read_fieldset(dest)
        assert restored["x"].data.dtype == np.float64
        assert np.array_equal(restored["x"].data, data)
