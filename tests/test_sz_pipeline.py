"""Unit and integration tests for the baseline SZ pipeline."""

import numpy as np
import pytest

from repro.sz import ErrorBound, SZCompressor
from repro.sz.pipeline import decode_integer_stream, encode_integer_stream


class TestIntegerStream:
    def test_round_trip(self):
        rng = np.random.default_rng(0)
        residuals = rng.integers(-100, 100, size=5000)
        sections, meta = encode_integer_stream(residuals, "huffman", "zlib")
        decoded = decode_integer_stream(sections, meta)
        assert np.array_equal(decoded, residuals)

    def test_outliers_round_trip(self):
        residuals = np.array([0, 1, -2, 10**6, -(10**7), 3], dtype=np.int64)
        sections, meta = encode_integer_stream(residuals, "huffman", "zlib", radius=100)
        assert meta["outliers"] == 2
        assert np.array_equal(decode_integer_stream(sections, meta), residuals)

    def test_zlib_mode(self):
        residuals = np.arange(-50, 50)
        sections, meta = encode_integer_stream(residuals, "zlib", "zlib")
        assert meta["entropy"] == "zlib"
        assert np.array_equal(decode_integer_stream(sections, meta), residuals)

    def test_raw_mode(self):
        residuals = np.arange(-5, 5)
        sections, meta = encode_integer_stream(residuals, "raw", "raw")
        assert np.array_equal(decode_integer_stream(sections, meta), residuals)

    def test_huffman_fallback_when_alphabet_huge(self):
        rng = np.random.default_rng(1)
        residuals = rng.integers(-10**6, 10**6, size=70000)
        sections, meta = encode_integer_stream(residuals, "huffman", "zlib", radius=2**40)
        assert meta["entropy"] == "zlib"  # too many distinct symbols for Huffman
        assert np.array_equal(decode_integer_stream(sections, meta), residuals)


class TestSZCompressor:
    @pytest.mark.parametrize("predictor", ["lorenzo", "interpolation", "regression"])
    def test_error_bound_2d(self, cesm_small, predictor):
        data = cesm_small["FLUT"].data
        comp = SZCompressor(error_bound=ErrorBound.relative(1e-3), predictor=predictor)
        result = comp.compress(data)
        recon = comp.decompress(result.payload)
        assert np.max(np.abs(recon.astype(np.float64) - data.astype(np.float64))) <= result.abs_error_bound * (1 + 1e-9)
        assert result.ratio > 1.0

    @pytest.mark.parametrize("predictor", ["lorenzo", "interpolation"])
    def test_error_bound_3d(self, hurricane_small, predictor):
        data = hurricane_small["Pf"].data
        comp = SZCompressor(error_bound=ErrorBound.relative(1e-3), predictor=predictor)
        result = comp.compress(data)
        recon = comp.decompress(result.payload)
        assert np.max(np.abs(recon.astype(np.float64) - data.astype(np.float64))) <= result.abs_error_bound * (1 + 1e-9)

    def test_absolute_error_bound(self):
        rng = np.random.default_rng(0)
        data = (rng.normal(size=(40, 40)) * 10).astype(np.float32)
        comp = SZCompressor(error_bound=ErrorBound.absolute(0.05))
        result = comp.compress(data)
        recon = comp.decompress(result.payload)
        assert np.max(np.abs(recon.astype(np.float64) - data.astype(np.float64))) <= 0.05 * (1 + 1e-9)

    def test_tighter_bound_lower_ratio(self, cesm_small):
        data = cesm_small["CLDTOT"].data
        loose = SZCompressor(error_bound=ErrorBound.relative(1e-2)).compress(data)
        tight = SZCompressor(error_bound=ErrorBound.relative(1e-4)).compress(data)
        assert loose.ratio > tight.ratio

    def test_result_accounting(self, cesm_small):
        data = cesm_small["LWCF"].data
        result = SZCompressor().compress(data)
        assert result.original_nbytes == data.nbytes
        assert result.compressed_nbytes == len(result.payload)
        assert np.isclose(result.bit_rate, 8 * result.compressed_nbytes / data.size)
        assert "residual.symbols" in result.section_sizes
        assert "prequantize" in result.timings
        assert "ratio" in result.summary() or "x" in result.summary()

    def test_smooth_data_compresses_well(self):
        x = np.linspace(0, 2 * np.pi, 256)
        data = np.sin(x)[None, :] * np.cos(x)[:, None]
        result = SZCompressor(error_bound=ErrorBound.relative(1e-3)).compress(data.astype(np.float32))
        assert result.ratio > 10

    def test_dtype_preserved(self, cesm_small):
        data = cesm_small["FLNT"].data
        comp = SZCompressor()
        recon = comp.decompress(comp.compress(data).payload)
        assert recon.dtype == data.dtype
        assert recon.shape == data.shape

    def test_wrong_format_rejected(self, cesm_small):
        comp = SZCompressor()
        result = comp.compress(cesm_small["FLNT"].data)
        from repro.zfp import ZFPLikeCompressor

        with pytest.raises(ValueError):
            ZFPLikeCompressor().decompress(result.payload)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            SZCompressor(predictor="unknown")
        with pytest.raises(ValueError):
            SZCompressor(entropy="unknown")
        with pytest.raises(TypeError):
            SZCompressor(error_bound=1e-3)

    def test_4d_rejected(self):
        with pytest.raises(ValueError):
            SZCompressor().compress(np.zeros((2, 2, 2, 2), dtype=np.float32))

    def test_1d_supported(self):
        rng = np.random.default_rng(5)
        data = np.cumsum(rng.normal(size=4096)).astype(np.float32)
        comp = SZCompressor(error_bound=ErrorBound.relative(1e-3))
        result = comp.compress(data)
        recon = comp.decompress(result.payload)
        assert np.max(np.abs(recon.astype(np.float64) - data.astype(np.float64))) <= result.abs_error_bound * (1 + 1e-9)
