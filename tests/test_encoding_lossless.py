"""Unit tests for the lossless byte backends."""

import pytest

from repro.encoding.lossless import (
    LosslessBackend,
    RawBackend,
    ZlibBackend,
    available_backends,
    get_backend,
    register_backend,
)


class TestBackends:
    def test_zlib_round_trip(self):
        backend = ZlibBackend()
        payload = b"abc" * 1000
        compressed = backend.compress(payload)
        assert backend.decompress(compressed) == payload
        assert len(compressed) < len(payload)

    def test_raw_round_trip(self):
        backend = RawBackend()
        assert backend.decompress(backend.compress(b"hello")) == b"hello"

    def test_zlib_level_validation(self):
        with pytest.raises(ValueError):
            ZlibBackend(level=99)

    def test_get_backend_by_name(self):
        assert isinstance(get_backend("zlib"), ZlibBackend)
        assert isinstance(get_backend("raw"), RawBackend)

    def test_get_backend_passthrough_instance(self):
        backend = ZlibBackend(level=1)
        assert get_backend(backend) is backend

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            get_backend("lzma-nonexistent")

    def test_available_backends(self):
        names = available_backends()
        assert "zlib" in names and "raw" in names

    def test_register_custom_backend(self):
        class ReverseBackend(LosslessBackend):
            name = "reverse-test"

            def compress(self, data):
                return bytes(reversed(data))

            def decompress(self, data):
                return bytes(reversed(data))

        register_backend(ReverseBackend)
        backend = get_backend("reverse-test")
        assert backend.decompress(backend.compress(b"xyz")) == b"xyz"

    def test_register_rejects_non_backend(self):
        with pytest.raises(TypeError):
            register_backend(object)
