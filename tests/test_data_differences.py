"""Unit tests for repro.data.differences."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.data.differences import (
    backward_difference,
    backward_differences_all_dims,
    central_difference,
    forward_difference,
    integrate_backward_difference,
)


class TestBackwardDifference:
    def test_simple_1d(self):
        x = np.array([1.0, 3.0, 6.0, 10.0])
        d = backward_difference(x, 0)
        assert np.allclose(d, [1.0, 2.0, 3.0, 4.0])

    def test_first_element_is_value(self):
        x = np.array([[5.0, 7.0], [9.0, 11.0]])
        d = backward_difference(x, 0)
        assert np.allclose(d[0], x[0])

    def test_constant_field_is_zero_after_first(self):
        x = np.full((6, 6), 3.0)
        d = backward_difference(x, 1)
        assert np.allclose(d[:, 1:], 0.0)

    def test_axis_negative(self):
        x = np.arange(12, dtype=np.float64).reshape(3, 4)
        assert np.allclose(backward_difference(x, -1), backward_difference(x, 1))

    def test_invalid_axis(self):
        with pytest.raises(ValueError):
            backward_difference(np.zeros((2, 2)), 5)

    def test_round_trip_with_integration(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(5, 7, 3)).astype(np.float64)
        for axis in range(3):
            d = backward_difference(x, axis)
            rec = integrate_backward_difference(d, axis)
            assert np.allclose(rec, x, atol=1e-10)

    @settings(max_examples=25, deadline=None)
    @given(arrays(np.float64, (4, 6), elements=st.floats(-100, 100)))
    def test_property_roundtrip(self, x):
        for axis in (0, 1):
            rec = integrate_backward_difference(backward_difference(x, axis), axis)
            assert np.allclose(rec, x, atol=1e-8)


class TestForwardCentral:
    def test_forward_difference(self):
        x = np.array([1.0, 4.0, 9.0])
        d = forward_difference(x, 0)
        assert np.allclose(d, [3.0, 5.0, 0.0])

    def test_central_difference_linear_exact(self):
        x = np.arange(10, dtype=np.float64) * 2.0
        d = central_difference(x, 0)
        assert np.allclose(d, 2.0)

    def test_central_single_element_axis(self):
        x = np.ones((1, 5))
        d = central_difference(x, 0)
        assert np.allclose(d, 0.0)

    def test_all_dims(self):
        x = np.random.default_rng(1).normal(size=(4, 5, 6))
        diffs = backward_differences_all_dims(x)
        assert len(diffs) == 3
        for axis, d in enumerate(diffs):
            assert np.allclose(d, backward_difference(x, axis))
