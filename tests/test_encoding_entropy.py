"""Tests for the pluggable entropy-coder registry and the checkpointed decoder."""

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.entropy import (
    EntropyCoder,
    HuffmanEntropyCoder,
    available_entropy_coders,
    get_entropy_coder,
    register_entropy_coder,
)
from repro.encoding.huffman import DEFAULT_CHECKPOINT_INTERVAL, HuffmanCodec
from repro.encoding.lossless import get_backend
from repro.parallel.engine import ChunkScheduler
from repro.sz.pipeline import decode_integer_stream, encode_integer_stream


class TestRegistry:
    def test_builtin_coders_registered(self):
        assert {"huffman", "zlib", "raw"} <= set(available_entropy_coders())

    def test_unknown_name_lists_available(self):
        with pytest.raises(ValueError, match="huffman"):
            get_entropy_coder("lzma")

    def test_lookup_is_case_insensitive(self):
        assert get_entropy_coder("HUFFMAN").name == "huffman"

    def test_instances_pass_through(self):
        coder = HuffmanEntropyCoder()
        assert get_entropy_coder(coder) is coder

    def test_register_rejects_non_coders(self):
        with pytest.raises(TypeError):
            register_entropy_coder(dict)

    def test_register_requires_name(self):
        class Anonymous(EntropyCoder):
            def encode(self, symbols, backend):  # pragma: no cover - never called
                return {}, {}

            def decode(self, sections, meta, backend, scheduler=None):  # pragma: no cover
                return np.zeros(0, dtype=np.int64)

        with pytest.raises(ValueError, match="unique"):
            register_entropy_coder(Anonymous)

    def test_custom_coder_round_trips_through_stream_helpers(self):
        class NibbleCoder(EntropyCoder):
            """Toy coder: symbols stored as uint16 through the backend."""

            name = "test-nibble"

            def encode(self, symbols, backend):
                return {"symbols": backend.compress(symbols.astype(np.uint16).tobytes())}, {}

            def decode(self, sections, meta, backend, scheduler=None):
                # the stream helpers must hand a coder exactly its own
                # sections — outlier side sections stay with the caller
                assert set(sections) == {"symbols"}
                raw = backend.decompress(sections["symbols"])
                return np.frombuffer(raw, dtype=np.uint16).astype(np.int64)

        register_entropy_coder(NibbleCoder)
        try:
            # 10**6 exceeds the default quant radius, so outlier sections exist
            residuals = np.array([0, 3, -2, 1, 0, -1, 5, 10**6], dtype=np.int64)
            sections, meta = encode_integer_stream(residuals, "test-nibble", "zlib")
            assert meta["entropy"] == "test-nibble"
            assert meta["outliers"] == 1
            assert np.array_equal(decode_integer_stream(sections, meta), residuals)
        finally:
            from repro.encoding import entropy as entropy_module

            entropy_module._REGISTRY.pop("test-nibble", None)

    def test_huffman_fallback_on_huge_alphabet(self):
        # > HUFFMAN_SYMBOL_LIMIT distinct residual values: the stream helper
        # must swap in the declared fallback coder and record it in the meta
        residuals = np.arange(40000, dtype=np.int64) - 20000
        sections, meta = encode_integer_stream(residuals, "huffman", "zlib", radius=10**9)
        assert meta["entropy"] == "zlib"
        assert np.array_equal(decode_integer_stream(sections, meta), residuals)


class TestStreamHelpers:
    @pytest.mark.parametrize("entropy", ["huffman", "zlib", "raw"])
    def test_round_trip_every_coder(self, entropy, rng):
        residuals = rng.integers(-40, 40, size=2000).astype(np.int64)
        sections, meta = encode_integer_stream(residuals, entropy, "zlib")
        assert meta["entropy"] == entropy
        assert np.array_equal(decode_integer_stream(sections, meta), residuals)

    def test_decode_accepts_scheduler(self, rng):
        residuals = rng.integers(-5, 5, size=50000).astype(np.int64)
        sections, meta = encode_integer_stream(residuals, "huffman", "zlib")
        scheduler = ChunkScheduler(jobs=2)
        assert np.array_equal(
            decode_integer_stream(sections, meta, scheduler=scheduler), residuals
        )

    def test_unknown_entropy_rejected(self):
        with pytest.raises(ValueError, match="entropy"):
            encode_integer_stream(np.zeros(4, dtype=np.int64), "bogus", "zlib")


class TestCheckpointedPayload:
    def test_v2_payload_layout(self):
        codec = HuffmanCodec(checkpoint_interval=100)
        symbols = np.arange(250) % 7
        payload, _ = codec.encode(symbols)
        magic, interval, n_symbols, total_bits, n_checkpoints = struct.unpack_from(
            "<4sIQQI", payload, 0
        )
        assert magic == b"HFV2"
        assert interval == 100
        assert n_symbols == 250
        assert n_checkpoints == 2  # symbols 100 and 200
        deltas = np.frombuffer(payload, dtype="<u4", count=2, offset=28)
        assert 0 < int(deltas.sum()) < total_bits

    def test_v1_payload_has_no_header_magic(self):
        codec = HuffmanCodec()
        payload, _ = codec.encode(np.arange(50) % 5, version=1)
        assert payload[:4] != b"HFV2"
        n_symbols, _ = struct.unpack_from("<QQ", payload, 0)
        assert n_symbols == 50

    def test_cross_version_compatibility(self, rng):
        # v1 payloads decode with the new decoder; v2 payloads decode with the
        # scalar reference loop; both match the symbols bit-exactly
        codec = HuffmanCodec(checkpoint_interval=64)
        symbols = rng.poisson(2.0, size=5000).astype(np.int64)
        payload_v1, table = codec.encode(symbols, version=1)
        payload_v2, _ = codec.encode(symbols, table)
        assert np.array_equal(codec.decode(payload_v1, table), symbols)
        assert np.array_equal(codec.decode(payload_v2, table), symbols)
        assert np.array_equal(codec.decode_reference(payload_v2, table), symbols)

    def test_scheduler_fanout_matches_serial(self, rng):
        codec = HuffmanCodec(checkpoint_interval=32)
        symbols = rng.poisson(1.0, size=20000).astype(np.int64)
        payload, table = codec.encode(symbols)
        serial = codec.decode(payload, table)
        for jobs in (1, 2, 4):
            fanned = codec.decode(payload, table, scheduler=ChunkScheduler(jobs=jobs))
            assert np.array_equal(fanned, serial)
        assert np.array_equal(serial, symbols)

    def test_interval_validation(self):
        with pytest.raises(ValueError, match="checkpoint_interval"):
            HuffmanCodec(checkpoint_interval=0)
        with pytest.raises(ValueError, match="checkpoint_interval"):
            HuffmanCodec(checkpoint_interval=1 << 27)

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            HuffmanCodec().encode(np.arange(4), version=3)


class TestCorruptPayloads:
    @pytest.fixture()
    def encoded(self, rng):
        codec = HuffmanCodec(checkpoint_interval=50)
        symbols = rng.poisson(1.5, size=1000).astype(np.int64)
        payload, table = codec.encode(symbols)
        return codec, payload, table

    def test_truncated_header(self, encoded):
        codec, payload, table = encoded
        with pytest.raises(ValueError):
            codec.decode(payload[:20], table)

    def test_truncated_checkpoint_list(self, encoded):
        codec, payload, table = encoded
        with pytest.raises(ValueError):
            codec.decode(payload[:30], table)

    def test_truncated_bit_data(self, encoded):
        codec, payload, table = encoded
        with pytest.raises(ValueError, match="truncated"):
            codec.decode(payload[: len(payload) - 8], table)

    def test_zero_checkpoint_delta(self, encoded):
        codec, payload, table = encoded
        mangled = bytearray(payload)
        mangled[28:32] = b"\x00\x00\x00\x00"  # first delta -> 0
        with pytest.raises(ValueError, match="increasing"):
            codec.decode(bytes(mangled), table)

    def test_checkpoint_past_stream_end(self, encoded):
        codec, payload, table = encoded
        mangled = bytearray(payload)
        mangled[28:32] = struct.pack("<I", 0xFFFFFF)  # first delta -> huge
        with pytest.raises(ValueError):
            codec.decode(bytes(mangled), table)

    def test_checkpoint_count_mismatch(self, encoded):
        codec, payload, table = encoded
        mangled = bytearray(payload)
        mangled[24:28] = struct.pack("<I", 3)  # claim 3 checkpoints, 19 stored
        with pytest.raises(ValueError, match="checkpoint"):
            codec.decode(bytes(mangled), table)

    def test_misaligned_checkpoint_offset(self, encoded):
        # a plausible-but-wrong offset: the sub-block walker misses its
        # recorded end bit and the decoder must refuse rather than emit noise
        codec, payload, table = encoded
        mangled = bytearray(payload)
        (delta,) = struct.unpack_from("<I", payload, 28)
        struct.pack_into("<I", mangled, 28, delta + 1)
        with pytest.raises(ValueError):
            codec.decode(bytes(mangled), table)

    def test_corrupt_bit_data(self, encoded):
        codec, payload, table = encoded
        mangled = bytearray(payload)
        mangled[-40:] = b"\xff" * 40
        with pytest.raises(ValueError):
            codec.decode(bytes(mangled), table)


class TestPropertyRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(
        values=st.lists(st.integers(0, 500), min_size=1, max_size=600),
        interval=st.integers(1, 128),
        version=st.sampled_from([1, 2]),
    )
    def test_random_alphabets_and_intervals(self, values, interval, version):
        symbols = np.asarray(values, dtype=np.int64)
        codec = HuffmanCodec(checkpoint_interval=interval)
        payload, table = codec.encode(symbols, version=version)
        assert np.array_equal(codec.decode(payload, table), symbols)
        assert np.array_equal(codec.decode_reference(payload, table), symbols)

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(1, 400),
        symbol=st.integers(0, 1000),
        interval=st.integers(1, 64),
    )
    def test_single_symbol_alphabet(self, n, symbol, interval):
        # degenerate 1-bit code: every checkpoint lands on a bit multiple of 1
        symbols = np.full(n, symbol, dtype=np.int64)
        codec = HuffmanCodec(checkpoint_interval=interval)
        payload, table = codec.encode(symbols)
        assert np.array_equal(codec.decode(payload, table), symbols)

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_wavefront_matches_doubling(self, data):
        # enough sub-blocks to force the lockstep wavefront, compared against
        # a single-span doubling decode of the same stream (v1 layout)
        values = data.draw(st.lists(st.integers(0, 30), min_size=200, max_size=2000))
        symbols = np.asarray(values, dtype=np.int64)
        interval = data.draw(st.integers(1, max(1, len(values) // 40)))
        codec = HuffmanCodec(checkpoint_interval=interval)
        payload_v2, table = codec.encode(symbols)
        payload_v1, _ = codec.encode(symbols, table, version=1)
        assert np.array_equal(
            codec.decode(payload_v2, table), codec.decode(payload_v1, table)
        )

    def test_empty_stream_both_paths(self):
        codec = HuffmanCodec()
        payload, table = codec.encode(np.array([], dtype=np.int64))
        assert codec.decode(payload, table).size == 0
        assert codec.decode_reference(payload, table).size == 0

    def test_giant_span_falls_back_to_bounded_memory_path(self):
        # a v1 payload past _SPAN_BITS_LIMIT must not materialise the
        # O(total_bits) doubling temporaries; the scalar loop handles it.
        # Craft the payload directly: a single-symbol 1-bit alphabet whose
        # code word is 0, so an all-zero bit stream decodes to that symbol.
        from repro.encoding.huffman import _SPAN_BITS_LIMIT, HuffmanTable

        codec = HuffmanCodec()
        table = HuffmanTable.from_frequencies(np.array([0, 0, 0, 5]))
        n_symbols = 64
        total_bits = _SPAN_BITS_LIMIT + 8
        payload = struct.pack("<QQ", n_symbols, total_bits) + b"\x00" * (total_bits // 8 + 1)
        decoded = codec.decode(payload, table)
        assert np.array_equal(decoded, np.full(n_symbols, 3))

    @settings(max_examples=15, deadline=None)
    @given(values=st.lists(st.integers(0, 50), min_size=1, max_size=200))
    def test_default_interval_unreached(self, values):
        # streams shorter than the default interval carry zero checkpoints
        symbols = np.asarray(values, dtype=np.int64)
        assert len(values) < DEFAULT_CHECKPOINT_INTERVAL
        codec = HuffmanCodec()
        payload, table = codec.encode(symbols)
        _, _, _, _, n_checkpoints = struct.unpack_from("<4sIQQI", payload, 0)
        assert n_checkpoints == 0
        assert np.array_equal(codec.decode(payload, table), symbols)
