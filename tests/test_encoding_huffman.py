"""Unit tests for the canonical Huffman codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.huffman import HuffmanCodec, HuffmanTable


class TestHuffmanTable:
    def test_prefix_free(self):
        freq = np.array([50, 20, 10, 5, 5, 5, 3, 2])
        table = HuffmanTable.from_frequencies(freq)
        codes = [
            format(int(c), f"0{int(l)}b")
            for c, l in zip(table.codes, table.lengths)
            if l > 0
        ]
        for i, a in enumerate(codes):
            for j, b in enumerate(codes):
                if i != j:
                    assert not b.startswith(a)

    def test_kraft_inequality(self):
        freq = np.array([100, 1, 1, 1, 1, 1, 1, 1, 1, 1])
        table = HuffmanTable.from_frequencies(freq)
        lengths = table.lengths[table.lengths > 0]
        assert np.sum(1.0 / np.exp2(lengths)) <= 1.0 + 1e-12

    def test_single_symbol(self):
        table = HuffmanTable.from_frequencies(np.array([0, 10, 0]))
        assert table.lengths[1] == 1

    def test_length_limit(self):
        # wildly skewed distribution forces long codes that must be clamped
        freq = np.array([2**i for i in range(30)][::-1])
        table = HuffmanTable.from_frequencies(freq, max_length=12)
        assert table.max_length <= 12

    def test_serialization_roundtrip(self):
        freq = np.array([7, 3, 0, 11, 2])
        table = HuffmanTable.from_frequencies(freq)
        rebuilt = HuffmanTable.from_bytes(table.to_bytes())
        assert np.array_equal(rebuilt.lengths, table.lengths)
        assert np.array_equal(rebuilt.codes, table.codes)

    def test_serialization_wire_format_is_packed_struct_pairs(self):
        # the vectorised serializer must stay byte-identical to the original
        # per-symbol struct loop: <II> header then packed <IB> pairs
        import struct

        freq = np.array([7, 3, 0, 11, 2, 0, 0, 9])
        table = HuffmanTable.from_frequencies(freq)
        used = np.nonzero(table.lengths)[0]
        reference = struct.pack("<II", table.alphabet_size, used.size) + b"".join(
            struct.pack("<IB", int(sym), int(table.lengths[sym])) for sym in used
        )
        assert table.to_bytes() == reference

    def test_serialization_truncated_rejected(self):
        table = HuffmanTable.from_frequencies(np.array([4, 4, 2]))
        payload = table.to_bytes()
        with pytest.raises(ValueError, match="truncated"):
            HuffmanTable.from_bytes(payload[:6])
        with pytest.raises(ValueError, match="truncated"):
            HuffmanTable.from_bytes(payload[:-3])

    def test_serialization_symbol_outside_alphabet_rejected(self):
        import struct

        payload = struct.pack("<II", 2, 1) + struct.pack("<IB", 9, 1)
        with pytest.raises(ValueError, match="alphabet"):
            HuffmanTable.from_bytes(payload)

    def test_serialization_large_table_roundtrip(self):
        rng = np.random.default_rng(5)
        freq = rng.integers(0, 50, size=4000)
        freq[rng.integers(0, 4000, size=100)] = 0
        freq[0] = 1  # at least one used symbol
        table = HuffmanTable.from_frequencies(freq)
        rebuilt = HuffmanTable.from_bytes(table.to_bytes())
        assert np.array_equal(rebuilt.lengths, table.lengths)
        assert np.array_equal(rebuilt.codes, table.codes)

    def test_expected_bits(self):
        freq = np.array([4, 4])
        table = HuffmanTable.from_frequencies(freq)
        assert table.expected_bits(freq) == 8.0

    def test_all_zero_histogram_rejected(self):
        with pytest.raises(ValueError):
            HuffmanTable.from_frequencies(np.zeros(4, dtype=np.int64))


class TestHuffmanCodec:
    def test_round_trip_skewed(self):
        rng = np.random.default_rng(0)
        symbols = rng.poisson(2.0, size=5000).astype(np.int64)
        codec = HuffmanCodec()
        payload, table = codec.encode(symbols)
        decoded = codec.decode(payload, table)
        assert np.array_equal(decoded, symbols)

    def test_round_trip_uniform(self):
        rng = np.random.default_rng(1)
        symbols = rng.integers(0, 200, size=3000)
        codec = HuffmanCodec()
        payload, table = codec.encode(symbols)
        assert np.array_equal(codec.decode(payload, table), symbols)

    def test_compresses_skewed_data(self):
        rng = np.random.default_rng(2)
        symbols = rng.poisson(0.3, size=20000)
        codec = HuffmanCodec()
        payload, _ = codec.encode(symbols)
        assert len(payload) < symbols.size  # far fewer than 1 byte per symbol

    def test_empty_stream(self):
        codec = HuffmanCodec()
        payload, table = codec.encode(np.array([], dtype=np.int64))
        assert codec.decode(payload, table).size == 0

    def test_single_symbol_stream(self):
        codec = HuffmanCodec()
        symbols = np.full(100, 7, dtype=np.int64)
        payload, table = codec.encode(symbols)
        assert np.array_equal(codec.decode(payload, table), symbols)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            HuffmanCodec().encode(np.array([-1, 2]))

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            HuffmanCodec().encode(np.array([1.5, 2.0]))

    def test_external_table_missing_symbol(self):
        codec = HuffmanCodec()
        _, table = codec.encode(np.array([0, 1, 2]))
        with pytest.raises(ValueError):
            codec.encode(np.array([0, 1, 2, 99]), table)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 300), min_size=1, max_size=400))
    def test_property_roundtrip(self, values):
        symbols = np.asarray(values, dtype=np.int64)
        codec = HuffmanCodec()
        payload, table = codec.encode(symbols)
        assert np.array_equal(codec.decode(payload, table), symbols)

    def test_vectorised_decode_matches_reference(self):
        rng = np.random.default_rng(9)
        codec = HuffmanCodec(checkpoint_interval=128)
        for symbols in (
            rng.poisson(1.0, size=10000),
            rng.integers(0, 1000, size=8000),
            np.zeros(500, dtype=np.int64),
        ):
            payload, table = codec.encode(symbols)
            assert np.array_equal(
                codec.decode(payload, table), codec.decode_reference(payload, table)
            )
