"""Unit tests for the weighted-prediction decoders (sequential vs wavefront)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.sz.decode as sz_decode
from repro.sz.decode import (
    decode_reference,
    decode_weighted_sequential,
    decode_weighted_wavefront,
    weighted_predict_full,
)


def _random_case(rng, shape, weights=None):
    ndim = len(shape)
    codes = rng.integers(-2000, 2000, size=shape)
    diffs = [rng.integers(-20, 20, size=shape) for _ in range(ndim)]
    if weights is None:
        raw = rng.uniform(0.0, 1.0, size=ndim + 1)
        weights = raw / raw.sum()
    prediction = weighted_predict_full(codes, diffs, weights)
    residuals = codes - prediction
    return codes, diffs, weights, residuals


class TestDecoders:
    @pytest.mark.parametrize("shape", [(23,), (9, 14), (5, 6, 7)])
    def test_sequential_matches_original(self, shape):
        rng = np.random.default_rng(0)
        codes, diffs, weights, residuals = _random_case(rng, shape)
        assert np.array_equal(decode_weighted_sequential(residuals, diffs, weights), codes)

    @pytest.mark.parametrize("shape", [(23,), (9, 14), (5, 6, 7), (1, 8), (3, 1, 9)])
    def test_wavefront_matches_original(self, shape):
        rng = np.random.default_rng(1)
        codes, diffs, weights, residuals = _random_case(rng, shape)
        assert np.array_equal(decode_weighted_wavefront(residuals, diffs, weights), codes)

    def test_wavefront_equals_sequential(self):
        rng = np.random.default_rng(2)
        codes, diffs, weights, residuals = _random_case(rng, (7, 8, 6))
        seq = decode_weighted_sequential(residuals, diffs, weights)
        wav = decode_weighted_wavefront(residuals, diffs, weights)
        assert np.array_equal(seq, wav)

    def test_pure_lorenzo_weights(self):
        rng = np.random.default_rng(3)
        shape = (12, 10)
        codes, diffs, weights, residuals = _random_case(rng, shape, weights=[1.0, 0.0, 0.0])
        assert np.array_equal(decode_weighted_wavefront(residuals, diffs, weights), codes)

    def test_pure_cross_field_weights(self):
        rng = np.random.default_rng(4)
        shape = (10, 11)
        codes, diffs, weights, residuals = _random_case(rng, shape, weights=[0.0, 0.5, 0.5])
        assert np.array_equal(decode_weighted_wavefront(residuals, diffs, weights), codes)

    def test_reference_alias_is_sequential(self):
        assert decode_reference is decode_weighted_sequential

    def test_3d_wavefront_equals_sequential_across_weights(self):
        rng = np.random.default_rng(6)
        shape = (4, 7, 5)
        for weights in ([1.0, 0, 0, 0], [0.0, 0.4, 0.3, 0.3], [0.25, 0.25, 0.25, 0.25]):
            codes, diffs, w, residuals = _random_case(rng, shape, weights=weights)
            seq = decode_weighted_sequential(residuals, diffs, w)
            wav = decode_weighted_wavefront(residuals, diffs, w)
            assert np.array_equal(seq, wav)
            assert np.array_equal(wav, codes)

    def test_3d_blocked_path_equals_sequential(self):
        # shrink the threshold so the slab variant runs on test-sized data,
        # with a slab size that does not divide the leading extent evenly
        rng = np.random.default_rng(7)
        codes, diffs, weights, residuals = _random_case(rng, (7, 6, 5))
        old = sz_decode.BLOCKED_3D_THRESHOLD
        sz_decode.BLOCKED_3D_THRESHOLD = 60  # 2 rows of 30 points per slab
        try:
            blocked = decode_weighted_wavefront(residuals, diffs, weights)
        finally:
            sz_decode.BLOCKED_3D_THRESHOLD = old
        assert np.array_equal(blocked, decode_weighted_sequential(residuals, diffs, weights))
        assert np.array_equal(blocked, codes)

    def test_weight_length_validation(self):
        with pytest.raises(ValueError, match="length ndim\\+1 = 3"):
            decode_weighted_wavefront(
                np.zeros((4, 4), dtype=np.int64),
                [np.zeros((4, 4), dtype=np.int64)] * 2,
                [0.5, 0.5],
            )

    def test_weight_length_validation_names_dimensionality(self):
        with pytest.raises(ValueError, match="one Lorenzo weight plus one per axis of the 3D"):
            decode_weighted_sequential(
                np.zeros((2, 2, 2), dtype=np.int64),
                [np.zeros((2, 2, 2), dtype=np.int64)] * 3,
                [0.5, 0.5],
            )

    def test_nested_weights_raise_valueerror_not_broadcast(self):
        with pytest.raises(ValueError, match="flat"):
            decode_weighted_wavefront(
                np.zeros((4, 4), dtype=np.int64),
                [np.zeros((4, 4), dtype=np.int64)] * 2,
                [[0.3, 0.3], [0.4, 0.0]],
            )

    def test_diff_count_validation_names_expected(self):
        with pytest.raises(ValueError, match="expected 2 cross-field difference arrays"):
            decode_weighted_wavefront(
                np.zeros((4, 4), dtype=np.int64),
                [np.zeros((4, 4), dtype=np.int64)] * 3,
                [0.3, 0.3, 0.4],
            )

    def test_diff_shape_validation(self):
        with pytest.raises(ValueError, match=r"diff_codes\[0\] has shape \(3, 3\)"):
            decode_weighted_wavefront(
                np.zeros((4, 4), dtype=np.int64),
                [np.zeros((3, 3), dtype=np.int64)] * 2,
                [0.3, 0.3, 0.4],
            )

    def test_rejects_float_residuals(self):
        with pytest.raises(TypeError):
            decode_weighted_wavefront(np.zeros((4, 4)), [np.zeros((4, 4), dtype=np.int64)] * 2, [1, 0, 0])

    @settings(max_examples=15, deadline=None)
    @given(st.integers(2, 6), st.integers(2, 6), st.integers(0, 100))
    def test_property_wavefront_equals_sequential(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        codes, diffs, weights, residuals = _random_case(rng, (rows, cols))
        assert np.array_equal(
            decode_weighted_sequential(residuals, diffs, weights),
            decode_weighted_wavefront(residuals, diffs, weights),
        )

    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(1, 5), st.integers(1, 5), st.integers(1, 5), st.integers(0, 100)
    )
    def test_property_wavefront_equals_sequential_3d(self, d0, d1, d2, seed):
        rng = np.random.default_rng(seed)
        codes, diffs, weights, residuals = _random_case(rng, (d0, d1, d2))
        assert np.array_equal(
            decode_weighted_sequential(residuals, diffs, weights),
            decode_weighted_wavefront(residuals, diffs, weights),
        )
