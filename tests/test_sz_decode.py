"""Unit tests for the weighted-prediction decoders (sequential vs wavefront)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sz.decode import (
    decode_weighted_sequential,
    decode_weighted_wavefront,
    weighted_predict_full,
)


def _random_case(rng, shape, weights=None):
    ndim = len(shape)
    codes = rng.integers(-2000, 2000, size=shape)
    diffs = [rng.integers(-20, 20, size=shape) for _ in range(ndim)]
    if weights is None:
        raw = rng.uniform(0.0, 1.0, size=ndim + 1)
        weights = raw / raw.sum()
    prediction = weighted_predict_full(codes, diffs, weights)
    residuals = codes - prediction
    return codes, diffs, weights, residuals


class TestDecoders:
    @pytest.mark.parametrize("shape", [(23,), (9, 14), (5, 6, 7)])
    def test_sequential_matches_original(self, shape):
        rng = np.random.default_rng(0)
        codes, diffs, weights, residuals = _random_case(rng, shape)
        assert np.array_equal(decode_weighted_sequential(residuals, diffs, weights), codes)

    @pytest.mark.parametrize("shape", [(23,), (9, 14), (5, 6, 7), (1, 8), (3, 1, 9)])
    def test_wavefront_matches_original(self, shape):
        rng = np.random.default_rng(1)
        codes, diffs, weights, residuals = _random_case(rng, shape)
        assert np.array_equal(decode_weighted_wavefront(residuals, diffs, weights), codes)

    def test_wavefront_equals_sequential(self):
        rng = np.random.default_rng(2)
        codes, diffs, weights, residuals = _random_case(rng, (7, 8, 6))
        seq = decode_weighted_sequential(residuals, diffs, weights)
        wav = decode_weighted_wavefront(residuals, diffs, weights)
        assert np.array_equal(seq, wav)

    def test_pure_lorenzo_weights(self):
        rng = np.random.default_rng(3)
        shape = (12, 10)
        codes, diffs, weights, residuals = _random_case(rng, shape, weights=[1.0, 0.0, 0.0])
        assert np.array_equal(decode_weighted_wavefront(residuals, diffs, weights), codes)

    def test_pure_cross_field_weights(self):
        rng = np.random.default_rng(4)
        shape = (10, 11)
        codes, diffs, weights, residuals = _random_case(rng, shape, weights=[0.0, 0.5, 0.5])
        assert np.array_equal(decode_weighted_wavefront(residuals, diffs, weights), codes)

    def test_weight_length_validation(self):
        with pytest.raises(ValueError):
            decode_weighted_wavefront(
                np.zeros((4, 4), dtype=np.int64),
                [np.zeros((4, 4), dtype=np.int64)] * 2,
                [0.5, 0.5],
            )

    def test_diff_shape_validation(self):
        with pytest.raises(ValueError):
            decode_weighted_wavefront(
                np.zeros((4, 4), dtype=np.int64),
                [np.zeros((3, 3), dtype=np.int64)] * 2,
                [0.3, 0.3, 0.4],
            )

    def test_rejects_float_residuals(self):
        with pytest.raises(TypeError):
            decode_weighted_wavefront(np.zeros((4, 4)), [np.zeros((4, 4), dtype=np.int64)] * 2, [1, 0, 0])

    @settings(max_examples=15, deadline=None)
    @given(st.integers(2, 6), st.integers(2, 6), st.integers(0, 100))
    def test_property_wavefront_equals_sequential(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        codes, diffs, weights, residuals = _random_case(rng, (rows, cols))
        assert np.array_equal(
            decode_weighted_sequential(residuals, diffs, weights),
            decode_weighted_wavefront(residuals, diffs, weights),
        )
