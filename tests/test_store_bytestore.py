"""ByteStore backends: unit behaviour, reader parity, and close semantics."""

import os
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.store import (
    ArchiveError,
    ArchiveReader,
    ArchiveWriter,
    ByteStore,
    FileByteStore,
    MemoryByteStore,
    MmapByteStore,
    open_bytestore,
)

GOLDEN_DIR = Path(__file__).parent / "data" / "golden"
GOLDEN_STEMS = sorted(p.stem for p in GOLDEN_DIR.glob("*.xfa"))


@pytest.fixture()
def sample_file(tmp_path):
    path = tmp_path / "sample.bin"
    path.write_bytes(bytes(range(256)) * 4)
    return path


# --------------------------------------------------------------------------- #
# backend units
# --------------------------------------------------------------------------- #
class TestFileByteStore:
    def test_pread(self, sample_file):
        with FileByteStore(path=sample_file) as store:
            assert store.pread(0, 4) == bytes([0, 1, 2, 3])
            assert store.pread(256, 2) == bytes([0, 1])
            assert store.size() == 1024

    def test_short_read_at_eof(self, sample_file):
        with FileByteStore(path=sample_file) as store:
            assert store.pread(1020, 100) == bytes([252, 253, 254, 255])

    def test_needs_exactly_one_of_path_or_fh(self, sample_file):
        with pytest.raises(ValueError, match="exactly one"):
            FileByteStore()
        with pytest.raises(ValueError, match="exactly one"):
            with open(sample_file, "rb") as fh:
                FileByteStore(path=sample_file, fh=fh)

    def test_borrowed_handle_stays_open(self, sample_file):
        with open(sample_file, "rb") as fh:
            store = FileByteStore(fh=fh)
            assert store.pread(0, 1) == b"\x00"
            store.close()
            assert store.closed
            assert not fh.closed  # borrowed, not owned

    def test_owned_handle_closes(self, sample_file):
        store = FileByteStore(path=sample_file)
        store.close()
        store.close()  # idempotent
        assert store.closed
        with pytest.raises(ValueError, match="closed"):
            store.pread(0, 1)

    def test_view_falls_back_to_pread(self, sample_file):
        with FileByteStore(path=sample_file) as store:
            assert isinstance(store.view(1, 3), bytes)


class TestMmapByteStore:
    def test_pread_and_view(self, sample_file):
        with MmapByteStore(sample_file) as store:
            assert store.pread(2, 3) == bytes([2, 3, 4])
            view = store.view(2, 3)
            assert isinstance(view, memoryview)
            assert bytes(view) == bytes([2, 3, 4])
            view.release()
            assert store.size() == 1024

    def test_empty_file_rejected(self, tmp_path):
        empty = tmp_path / "empty.bin"
        empty.touch()
        with pytest.raises(ValueError, match="empty"):
            MmapByteStore(empty)

    def test_close_is_idempotent_and_deterministic(self, sample_file):
        store = MmapByteStore(sample_file)
        store.close()
        store.close()
        assert store.closed
        with pytest.raises(ValueError, match="closed"):
            store.view(0, 1)

    def test_close_raises_on_leaked_view(self, sample_file):
        store = MmapByteStore(sample_file)
        leaked = store.view(0, 16)
        with pytest.raises(BufferError):
            store.close()
        leaked.release()
        store.close()
        assert store.closed

    def test_concurrent_lock_free_preads(self, sample_file):
        store = MmapByteStore(sample_file)
        errors = []

        def hammer():
            try:
                for _ in range(200):
                    offset = 17
                    assert store.pread(offset, 8) == bytes(range(17, 25))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        store.close()


class TestMemoryByteStore:
    def test_round_trip(self):
        store = MemoryByteStore(b"hello world")
        assert store.pread(6, 5) == b"world"
        view = store.view(0, 5)
        assert bytes(view) == b"hello"
        view.release()
        assert store.size() == 11
        store.close()
        store.close()
        with pytest.raises(ValueError, match="closed"):
            store.size()


class TestOpenBytestore:
    def test_explicit_backends(self, sample_file):
        with open_bytestore(sample_file, "file") as store:
            assert store.name == "file"
        with open_bytestore(sample_file, "mmap") as store:
            assert store.name == "mmap"

    def test_auto_prefers_mmap(self, sample_file):
        with open_bytestore(sample_file, "auto") as store:
            assert store.name == "mmap"

    def test_auto_falls_back_for_empty_file(self, tmp_path):
        empty = tmp_path / "empty.bin"
        empty.touch()
        with open_bytestore(empty, "auto") as store:
            assert store.name == "file"

    def test_unknown_backend_rejected(self, sample_file):
        with pytest.raises(ValueError, match="unknown io backend"):
            open_bytestore(sample_file, "tape")

    def test_is_bytestore(self, sample_file):
        assert isinstance(open_bytestore(sample_file, "auto"), ByteStore)


# --------------------------------------------------------------------------- #
# reader integration: backend parity, close semantics
# --------------------------------------------------------------------------- #
class TestReaderBackends:
    def test_backend_property(self, multi_codec_archive_master):
        with ArchiveReader(multi_codec_archive_master, backend="mmap") as reader:
            assert reader.backend == "mmap"
        with ArchiveReader(multi_codec_archive_master, backend="file") as reader:
            assert reader.backend == "file"
        with ArchiveReader(multi_codec_archive_master) as reader:
            assert reader.backend == "mmap"  # auto resolves to mmap on disk files
        assert reader.backend == "closed"

    def test_unknown_backend_rejected(self, multi_codec_archive_master):
        with pytest.raises(ValueError, match="unknown io backend"):
            ArchiveReader(multi_codec_archive_master, backend="tape")

    def test_read_field_bit_identical_across_backends(self, multi_codec_archive_master):
        with ArchiveReader(multi_codec_archive_master, backend="file") as via_file:
            expected = {name: via_file.read_field(name) for name in via_file.names}
        with ArchiveReader(multi_codec_archive_master, backend="mmap") as via_mmap:
            for name, data in expected.items():
                got = via_mmap.read_field(name)
                assert got.dtype == data.dtype
                assert np.array_equal(got, data)

    def test_deep_verify_on_mmap_backend(self, multi_codec_archive_master):
        with ArchiveReader(multi_codec_archive_master, backend="mmap", jobs=2) as reader:
            assert reader.verify(deep=True)["ok"]

    @pytest.mark.parametrize("stem", GOLDEN_STEMS)
    def test_golden_archives_bit_identical_across_backends(self, stem):
        path = GOLDEN_DIR / f"{stem}.xfa"
        with ArchiveReader(path, backend="file") as via_file:
            expected = {name: via_file.read_field(name) for name in via_file.names}
            steps = via_file.steps
        with ArchiveReader(path, backend="mmap") as via_mmap:
            for name, data in expected.items():
                assert np.array_equal(via_mmap.read_field(name), data), (
                    f"{stem}:{name} differs between file and mmap backends"
                )

        if not steps:
            return
        with ArchiveReader(path, backend="file") as via_file:
            expected_steps = {step: via_file.read_timestep(step) for step in steps}
        with ArchiveReader(path, backend="mmap") as via_mmap:
            for step, fieldset in expected_steps.items():
                decoded = via_mmap.read_timestep(step)
                for field in fieldset:
                    assert np.array_equal(decoded[field.name].data, field.data), (
                        f"{stem} step {step}:{field.name} differs between backends"
                    )

    def test_corruption_still_detected_on_mmap(self, multi_codec_archive_master, copy_archive):
        from repro.store import ArchiveCorruptionError

        path = copy_archive(multi_codec_archive_master)
        with ArchiveReader(path, backend="mmap") as reader:
            entry = reader.field("FLNT")
            chunk = entry.chunks[0]
            # flip payload bytes behind the open reader: the mapping shares
            # pages with the file, so the CRC check must still catch it
            with open(path, "r+b") as fh:
                fh.seek(chunk.offset)
                original = fh.read(4)
                fh.seek(chunk.offset)
                fh.write(bytes(b ^ 0xFF for b in original))
            with pytest.raises(ArchiveCorruptionError, match="CRC mismatch"):
                reader.read_field("FLNT")


class TestReaderClose:
    def test_close_is_idempotent(self, multi_codec_archive_master):
        reader = ArchiveReader(multi_codec_archive_master, backend="mmap")
        reader.read_field("FLNT")
        reader.close()
        reader.close()
        with pytest.raises(ArchiveError, match="closed"):
            reader.read_field("FLNT")

    def test_context_manager_closes(self, multi_codec_archive_master):
        with ArchiveReader(multi_codec_archive_master, backend="mmap") as reader:
            reader.read_field("FLNT")
        with pytest.raises(ArchiveError, match="closed"):
            reader.verify()

    def test_mmap_store_is_released_on_close(self, multi_codec_archive_master):
        reader = ArchiveReader(multi_codec_archive_master, backend="mmap")
        store = reader._fetcher.store
        reader.read_field("FLNT")
        reader.close()
        assert store.closed  # unmapped deterministically, not left to GC

    def test_failed_open_does_not_leak(self, tmp_path):
        bogus = tmp_path / "bogus.xfa"
        bogus.write_bytes(b"not an archive, but long enough to try parsing" * 4)
        with pytest.raises(ArchiveError):
            ArchiveReader(bogus, backend="mmap")


# --------------------------------------------------------------------------- #
# read-only cached chunks (regression: caller mutation must not poison cache)
# --------------------------------------------------------------------------- #
class TestReadOnlyCache:
    def test_get_chunk_returns_read_only(self, multi_codec_archive_master):
        with ArchiveReader(multi_codec_archive_master) as reader:
            chunk = reader._fetcher.get_chunk("FLNT", 0)
            assert not chunk.flags.writeable
            with pytest.raises(ValueError):
                chunk[0, 0] = 0.0

    def test_cached_hit_is_read_only_too(self, multi_codec_archive_master):
        with ArchiveReader(multi_codec_archive_master) as reader:
            reader._fetcher.get_chunk("FLNT", 0)
            hit = reader._fetcher.get_chunk("FLNT", 0)
            assert not hit.flags.writeable

    def test_read_region_results_stay_writable_and_fresh(self, multi_codec_archive_master):
        with ArchiveReader(multi_codec_archive_master) as reader:
            first = reader.read_field("FLNT")
            assert first.flags.writeable  # public reads hand out private copies
            first[:] = -1.0
            second = reader.read_field("FLNT")
            assert not np.array_equal(second, first)

    def test_freeze_copies_non_owned_buffers(self):
        from repro.store import LRUChunkCache, freeze_chunk

        backing = np.arange(16, dtype=np.float64)
        view = backing[2:10]
        frozen = freeze_chunk(view)
        assert not frozen.flags.writeable
        backing[:] = 0.0  # mutating the original buffer must not reach the cache copy
        assert np.array_equal(frozen, np.arange(2, 10, dtype=np.float64))

        cache = LRUChunkCache(max_bytes=1 << 20)
        owned = np.ones(8)
        cache.put("k", owned)
        stored = cache.get("k")
        assert not stored.flags.writeable


# --------------------------------------------------------------------------- #
# append + recovery stay on the file backend; generations stay consistent
# --------------------------------------------------------------------------- #
class TestAppendGenerations:
    def _write_base(self, path):
        data = np.linspace(0.0, 1.0, 32 * 32, dtype=np.float64).reshape(32, 32)
        with ArchiveWriter(path, chunk_shape=(16, 16)) as writer:
            writer.add_field("base", data, codec="lossless")
        return data

    def test_reader_holding_old_generation_stays_consistent(self, tmp_path):
        path = tmp_path / "grow.xfa"
        data = self._write_base(path)

        with ArchiveReader(path, backend="mmap") as old_reader:
            gen_before = old_reader.generation
            before = old_reader.read_field("base")

            extra = np.full((32, 32), 7.0)
            with ArchiveWriter(path, mode="a") as appender:
                appender.add_field("extra", extra, codec="lossless")

            # the old reader keeps serving its generation's bytes mid-append
            assert np.array_equal(old_reader.read_field("base"), before)
            assert np.array_equal(before, data)
            assert "extra" not in old_reader.names

            with ArchiveReader(path, backend="mmap") as new_reader:
                assert new_reader.generation > gen_before
                assert np.array_equal(new_reader.read_field("extra"), extra)
                assert np.array_equal(new_reader.read_field("base"), data)

    def test_generation_matches_published_end(self, tmp_path):
        path = tmp_path / "gen.xfa"
        self._write_base(path)
        with ArchiveReader(path) as reader:
            assert reader.generation == os.path.getsize(path)

    def test_recovery_works_on_both_backends(self, tmp_path):
        path = tmp_path / "torn.xfa"
        self._write_base(path)
        size = path.stat().st_size
        with open(path, "ab") as fh:
            fh.write(b"\x01" * 64)  # torn tail: payload bytes past the footer

        for backend in ("file", "mmap"):
            with pytest.raises(ArchiveError):
                ArchiveReader(path, backend=backend)
            with ArchiveReader(path, backend=backend, recover=True) as reader:
                assert reader.generation == size
                assert reader.verify(deep=True)["ok"]


# --------------------------------------------------------------------------- #
# telemetry
# --------------------------------------------------------------------------- #
class TestStoreIoTelemetry:
    def test_mmap_records_view_metrics(self, multi_codec_archive_master):
        from repro import obs

        recorder = obs.Recorder()
        previous = obs.set_recorder(recorder)
        try:
            with ArchiveReader(multi_codec_archive_master, backend="mmap") as reader:
                reader.read_field("FLNT")
        finally:
            obs.set_recorder(previous)
        snapshot = recorder.snapshot()
        assert snapshot.counter("store.io.view_calls") > 0
        assert snapshot.counter("store.io.view_bytes") > 0

    def test_file_records_pread_metrics(self, multi_codec_archive_master):
        from repro import obs

        recorder = obs.Recorder()
        previous = obs.set_recorder(recorder)
        try:
            with ArchiveReader(multi_codec_archive_master, backend="file") as reader:
                reader.read_field("FLNT")
        finally:
            obs.set_recorder(previous)
        snapshot = recorder.snapshot()
        assert snapshot.counter("store.io.pread_calls") > 0
        assert snapshot.counter("store.io.pread_bytes") > 0
        assert snapshot.histograms["store.io.pread_seconds"].count > 0
