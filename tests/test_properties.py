"""Cross-cutting property-based tests of the core compression invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.encoding.container import CompressedBlob
from repro.sz import ErrorBound, SZCompressor
from repro.sz.decode import decode_weighted_wavefront, weighted_predict_full
from repro.sz.pipeline import decode_integer_stream, encode_integer_stream
from repro.sz.quantizer import dequantize, prequantize
from repro.zfp import ZFPLikeCompressor

COMMON_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestErrorBoundProperty:
    @COMMON_SETTINGS
    @given(
        arrays(np.float32, (12, 17), elements=st.floats(-1e3, 1e3, width=32)),
        st.sampled_from([1e-2, 1e-3, 1e-4]),
        st.sampled_from(["lorenzo", "interpolation"]),
    )
    def test_sz_compressor_respects_bound(self, data, rel_eb, predictor):
        comp = SZCompressor(error_bound=ErrorBound.relative(rel_eb), predictor=predictor)
        result = comp.compress(data)
        recon = comp.decompress(result.payload)
        # the bound holds on the float64 quantization lattice; casting the
        # reconstruction back to float32 adds up to half an ulp at the data's
        # magnitude, which dominates when the absolute bound falls below
        # float32 resolution (e.g. a constant field, where the relative bound
        # degenerates to a tiny absolute one)
        cast_slack = np.spacing(np.float32(np.max(np.abs(data)))) / 2 if data.size else 0.0
        tolerance = result.abs_error_bound * (1 + 1e-9) + cast_slack
        assert np.max(np.abs(recon.astype(np.float64) - data.astype(np.float64))) <= tolerance

    @COMMON_SETTINGS
    @given(
        arrays(np.float32, (10, 11), elements=st.floats(-100, 100, width=32)),
        st.sampled_from([1e-2, 1e-3]),
    )
    def test_zfp_like_respects_bound(self, data, rel_eb):
        comp = ZFPLikeCompressor(error_bound=ErrorBound.relative(rel_eb))
        result = comp.compress(data)
        recon = comp.decompress(result.payload)
        assert np.max(np.abs(recon.astype(np.float64) - data.astype(np.float64))) <= result.abs_error_bound * (1 + 1e-9)

    @COMMON_SETTINGS
    @given(
        arrays(np.float64, (8, 9), elements=st.floats(-1e6, 1e6)),
        st.floats(1e-4, 10.0),
    )
    def test_dual_quant_roundtrip_is_prequant_lattice(self, data, abs_eb):
        codes = prequantize(data, abs_eb)
        recon = dequantize(codes, abs_eb, dtype=np.float64)
        # reconstruction sits exactly on the lattice and within the bound
        assert np.array_equal(prequantize(recon, abs_eb), codes)
        assert np.max(np.abs(recon - data)) <= abs_eb * (1 + 1e-9)


class TestStreamProperties:
    @COMMON_SETTINGS
    @given(st.lists(st.integers(-(2**20), 2**20), min_size=1, max_size=500))
    def test_integer_stream_roundtrip(self, values):
        residuals = np.asarray(values, dtype=np.int64)
        sections, meta = encode_integer_stream(residuals, "huffman", "zlib", radius=1024)
        assert np.array_equal(decode_integer_stream(sections, meta), residuals)

    @COMMON_SETTINGS
    @given(
        st.dictionaries(st.text(min_size=1, max_size=8), st.binary(max_size=64), max_size=5),
        st.dictionaries(st.text(min_size=1, max_size=8), st.integers(-1000, 1000), max_size=5),
    )
    def test_container_roundtrip(self, sections, metadata):
        blob = CompressedBlob(metadata=dict(metadata))
        for name, payload in sections.items():
            blob.add_section(name, payload)
        rebuilt = CompressedBlob.from_bytes(blob.to_bytes())
        assert rebuilt.metadata == metadata
        assert rebuilt.sections == dict(sections)


class TestDecoderProperties:
    @COMMON_SETTINGS
    @given(
        st.integers(2, 5),
        st.integers(2, 5),
        st.integers(2, 4),
        st.integers(0, 10_000),
    )
    def test_wavefront_decoder_inverts_weighted_prediction_3d(self, d0, d1, d2, seed):
        rng = np.random.default_rng(seed)
        shape = (d0, d1, d2)
        codes = rng.integers(-500, 500, size=shape)
        diffs = [rng.integers(-10, 10, size=shape) for _ in range(3)]
        raw = rng.uniform(0, 1, size=4)
        weights = raw / raw.sum()
        residuals = codes - weighted_predict_full(codes, diffs, weights)
        assert np.array_equal(decode_weighted_wavefront(residuals, diffs, weights), codes)
