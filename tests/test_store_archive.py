"""Integration tests for the chunked archive store (writer, reader, cache)."""

import zlib

import numpy as np
import pytest

from repro.store import (
    ArchiveCorruptionError,
    ArchiveError,
    ArchiveReader,
    ArchiveWriter,
    LRUChunkCache,
)
from repro.store.codecs import SZChunkCodec
from repro.store.manifest import (
    ArchiveManifest,
    FieldEntry,
    chunks_intersecting_region,
    normalize_region,
)
from repro.sz.errors import ErrorBound


@pytest.fixture()
def archive(copy_archive, multi_codec_archive_master):
    """A per-test copy of the session-built every-codec archive.

    The archive itself is compressed exactly once per session (see
    ``tests/conftest.py``); the copy exists because several tests corrupt or
    truncate the file in place.
    """
    return copy_archive(multi_codec_archive_master, "snapshot.xfa")


class TestRoundTrip:
    def test_every_codec_within_bound(self, archive, cesm_small):
        with ArchiveReader(archive) as reader:
            assert reader.names == ["FLNT", "FLNTC", "CLDLOW", "CLDMED", "LWCF"]
            for name in reader.names:
                entry = reader.field(name)
                recon = reader.read_field(name)
                original = cesm_small[name].data
                assert recon.shape == original.shape
                assert recon.dtype == original.dtype
                max_err = np.max(np.abs(recon.astype(np.float64) - original.astype(np.float64)))
                if entry.codec == "lossless":
                    assert max_err == 0.0
                else:
                    assert max_err <= entry.abs_error_bound * (1 + 1e-9)

    def test_region_matches_full_decode(self, archive):
        with ArchiveReader(archive) as reader:
            full = reader.read_field("FLNT")
            region = reader.read_region("FLNT", (slice(10, 40), slice(30, 70)))
            assert np.array_equal(region, full[10:40, 30:70])

    def test_region_with_ints_and_defaults(self, archive):
        with ArchiveReader(archive) as reader:
            full = reader.read_field("FLNTC")
            assert np.array_equal(reader.read_region("FLNTC", (slice(0, 5),)), full[0:5])
            assert np.array_equal(reader.read_region("FLNTC", (7,)), full[7:8])
            assert np.array_equal(reader.read_region("FLNTC", None), full)

    def test_cross_field_region_read(self, archive):
        with ArchiveReader(archive) as reader:
            full = reader.read_field("LWCF")
            region = reader.read_region("LWCF", (slice(5, 20), slice(50, 90)))
            assert np.array_equal(region, full[5:20, 50:90])

    def test_single_chunk_region_decodes_only_that_chunk(self, archive, monkeypatch):
        decode_calls = []
        original_decode = SZChunkCodec.decode

        def counting_decode(self, payload, anchors=None, scheduler=None):
            decode_calls.append(len(payload))
            return original_decode(self, payload, anchors=anchors, scheduler=scheduler)

        monkeypatch.setattr(SZChunkCodec, "decode", counting_decode)
        with ArchiveReader(archive) as reader:
            # region fully inside chunk (1, 1) of the 24x24 grid
            reader.read_region("FLNT", (slice(25, 40), slice(30, 44)))
            assert len(decode_calls) == 1
            assert reader.cache_stats()["chunks_decoded"] == 1

    def test_repeated_reads_hit_cache(self, archive):
        with ArchiveReader(archive) as reader:
            region = (slice(0, 20), slice(0, 20))
            reader.read_region("FLNT", region)
            decoded_first = reader.cache_stats()["chunks_decoded"]
            reader.read_region("FLNT", region)
            stats = reader.cache_stats()
            assert stats["chunks_decoded"] == decoded_first  # no new decompression
            assert stats["hits"] >= 1

    def test_3d_round_trip(self, tmp_path, hurricane_small):
        path = tmp_path / "h3d.xfa"
        data = hurricane_small["Uf"].data
        with ArchiveWriter(path, chunk_shape=(8, 16, 16)) as writer:
            entry = writer.add_field("Uf", data)
        assert len(entry.chunks) > 1
        with ArchiveReader(path) as reader:
            recon = reader.read_field("Uf")
            assert np.max(np.abs(recon.astype(np.float64) - data.astype(np.float64))) <= (
                reader.field("Uf").abs_error_bound * (1 + 1e-9)
            )
            region = reader.read_region("Uf", (slice(3, 9), slice(10, 20), 5))
            assert np.array_equal(region, recon[3:9, 10:20, 5:6])


class TestWriterValidation:
    def test_duplicate_field_rejected(self, tmp_path, rng):
        data = rng.normal(size=(16, 16))
        with ArchiveWriter(tmp_path / "a.xfa") as writer:
            writer.add_field("x", data)
            with pytest.raises(ArchiveError, match="duplicate"):
                writer.add_field("x", data)

    def test_anchor_must_exist(self, tmp_path, rng):
        with ArchiveWriter(tmp_path / "a.xfa") as writer:
            with pytest.raises(ArchiveError, match="anchor"):
                writer.add_field("y", rng.normal(size=(16, 16)), codec="cross-field", anchors=("nope",))

    def test_anchor_grid_must_align(self, tmp_path, rng):
        with ArchiveWriter(tmp_path / "a.xfa") as writer:
            writer.add_field("a", rng.normal(size=(32, 32)), chunk_shape=(16, 16))
            with pytest.raises(ArchiveError, match="chunk grid"):
                writer.add_field(
                    "t", rng.normal(size=(32, 32)), codec="cross-field",
                    anchors=("a",), chunk_shape=(32, 32),
                )

    def test_anchors_only_for_anchored_codecs(self, tmp_path, rng):
        with ArchiveWriter(tmp_path / "a.xfa") as writer:
            writer.add_field("a", rng.normal(size=(16, 16)))
            with pytest.raises(ArchiveError, match="does not accept anchor"):
                writer.add_field("b", rng.normal(size=(16, 16)), anchors=("a",))

    def test_cross_field_requires_anchors(self, tmp_path, rng):
        with ArchiveWriter(tmp_path / "a.xfa") as writer:
            with pytest.raises(ArchiveError, match="requires at least one anchor"):
                writer.add_field("t", rng.normal(size=(16, 16)), codec="cross-field")

    def test_exception_in_with_block_abandons_file(self, tmp_path, rng):
        path = tmp_path / "a.xfa"
        writer = ArchiveWriter(path)
        with pytest.raises(RuntimeError):
            with writer:
                writer.add_field("x", rng.normal(size=(8, 8)))
                raise RuntimeError("boom")
        # nothing is published and the temp file is cleaned up
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []
        # a later close() must not report success for an unpublished archive
        with pytest.raises(ArchiveError, match="aborted"):
            writer.close()
        assert not path.exists()
        with pytest.raises(ArchiveError, match="closed"):
            writer.add_field("y", rng.normal(size=(8, 8)))

    def test_published_archive_respects_umask(self, tmp_path, rng):
        import os

        path = tmp_path / "a.xfa"
        with ArchiveWriter(path) as writer:
            writer.add_field("x", rng.normal(size=(8, 8)))
        umask = os.umask(0)
        os.umask(umask)
        # the archive gets the permissions a normally created file would get
        assert (path.stat().st_mode & 0o777) == (0o666 & ~umask)

    def test_non_json_attrs_rejected_eagerly(self, tmp_path):
        with pytest.raises(TypeError, match="JSON-serialisable"):
            ArchiveWriter(tmp_path / "a.xfa", attrs={"n": np.int64(5)})
        # non-string keys break sort_keys at manifest time; reject them too
        with pytest.raises(TypeError, match="JSON-serialisable"):
            ArchiveWriter(tmp_path / "a.xfa", attrs={1: "x", "y": 2})

    def test_failed_finalize_cleans_up(self, tmp_path, rng, monkeypatch):
        writer = ArchiveWriter(tmp_path / "a.xfa")
        writer.add_field("x", rng.normal(size=(8, 8)))
        monkeypatch.setattr(
            ArchiveManifest, "checked_json", lambda self: (_ for _ in ()).throw(TypeError("boom"))
        )
        with pytest.raises(TypeError, match="boom"):
            writer.close()
        # no temp residue, no published file, writer unusable afterwards
        assert list(tmp_path.iterdir()) == []
        with pytest.raises(ArchiveError, match="closed"):
            writer.add_field("y", rng.normal(size=(8, 8)))

    def test_close_releases_fetcher_cache(self, tmp_path, rng):
        writer = ArchiveWriter(tmp_path / "a.xfa")
        writer.add_field("x", rng.normal(size=(8, 8)))
        writer.close()
        assert writer._fetcher is None

    def test_concurrent_writers_do_not_clobber_each_other(self, tmp_path, rng):
        path = tmp_path / "a.xfa"
        data_a = rng.normal(size=(8, 8))
        data_b = rng.normal(size=(8, 8))
        writer_a = ArchiveWriter(path)
        writer_b = ArchiveWriter(path)
        # interleaved packs to the same destination use distinct temp files
        writer_a.add_field("x", data_a)
        writer_b.add_field("x", data_b)
        writer_a.close()
        writer_b.close()  # last close wins the atomic rename
        with ArchiveReader(path) as reader:
            recon = reader.read_field("x")
            bound = reader.field("x").abs_error_bound
            assert np.max(np.abs(recon - data_b)) <= bound * (1 + 1e-9)
        assert list(tmp_path.iterdir()) == [path]  # no temp residue

    def test_failed_overwrite_preserves_existing_archive(self, tmp_path, rng):
        path = tmp_path / "a.xfa"
        original = rng.normal(size=(8, 8))
        with ArchiveWriter(path) as writer:
            writer.add_field("x", original)
        good_bytes = path.read_bytes()
        with pytest.raises(RuntimeError):
            with ArchiveWriter(path) as writer:
                writer.add_field("x", rng.normal(size=(8, 8)))
                raise RuntimeError("boom mid-pack")
        # the old valid archive survives the failed re-pack untouched
        assert path.read_bytes() == good_bytes
        with ArchiveReader(path) as reader:
            assert reader.read_field("x").shape == (8, 8)

    def test_closed_writer_rejects_writes(self, tmp_path, rng):
        writer = ArchiveWriter(tmp_path / "a.xfa")
        writer.add_field("x", rng.normal(size=(8, 8)))
        writer.close()
        with pytest.raises(ArchiveError, match="closed"):
            writer.add_field("y", rng.normal(size=(8, 8)))

    def test_serial_executor_matches_thread(self, tmp_path, cesm_small):
        data = cesm_small["CLDTOT"].data
        paths = []
        for kind in ("serial", "thread"):
            path = tmp_path / f"{kind}.xfa"
            with ArchiveWriter(path, chunk_shape=(24, 24), executor_kind=kind) as writer:
                writer.add_field("CLDTOT", data)
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_serial_matches_thread_with_anchors(self, tmp_path, cesm_small):
        # the threaded path interleaves anchor reads (workers) with payload
        # appends (main thread) on one file handle; output must still be
        # byte-identical to the serial reference
        paths = []
        for kind in ("serial", "thread"):
            path = tmp_path / f"{kind}.xfa"
            with ArchiveWriter(
                path, chunk_shape=(16, 16), executor_kind=kind, max_workers=4
            ) as writer:
                writer.add_field("CLDLOW", cesm_small["CLDLOW"].data)
                writer.add_field(
                    "CLDTOT",
                    cesm_small["CLDTOT"].data,
                    codec="cross-field",
                    anchors=("CLDLOW",),
                    epochs=2,
                    n_patches=8,
                )
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()


class TestParallelReads:
    def test_jobs_one_matches_parallel(self, archive):
        with ArchiveReader(archive, jobs=1) as serial, ArchiveReader(archive) as parallel:
            for name in serial.names:
                assert np.array_equal(serial.read_field(name), parallel.read_field(name))
            region = (slice(5, 40), slice(20, 90))
            assert np.array_equal(
                serial.read_region("FLNT", region), parallel.read_region("FLNT", region)
            )

    def test_serial_executor_kind_matches_thread(self, archive):
        with ArchiveReader(archive, executor_kind="serial") as serial:
            with ArchiveReader(archive, executor_kind="thread", jobs=4) as threaded:
                assert np.array_equal(serial.read_field("LWCF"), threaded.read_field("LWCF"))

    def test_process_kind_rejected(self, archive, tmp_path):
        with pytest.raises(ValueError, match="thread"):
            ArchiveReader(archive, executor_kind="process")
        # the writer rejects it eagerly too (encodes are not picklable)
        with pytest.raises(ValueError, match="thread"):
            ArchiveWriter(tmp_path / "a.xfa", executor_kind="process")

    def test_parallel_verify_matches_serial(self, archive):
        with ArchiveReader(archive, jobs=1) as serial:
            serial_report = serial.verify(deep=True)
        with ArchiveReader(archive, jobs=4) as parallel:
            parallel_report = parallel.verify(deep=True)
        assert serial_report == parallel_report
        assert parallel_report["ok"]

    def test_shared_reader_is_thread_safe(self, archive):
        # regression: many threads hammering one reader (shared file handle,
        # shared LRU cache, nested per-read pools) must all see exact data
        regions = [
            None,
            (slice(0, 30), slice(0, 50)),
            (slice(10, 40), slice(30, 70)),
            (slice(20, 48), slice(40, 96)),
        ]
        with ArchiveReader(archive, cache_bytes=256 * 1024) as reader:
            expected = {
                (name, i): reader.read_region(name, region)
                for name in ("FLNT", "LWCF")
                for i, region in enumerate(regions)
            }
            errors = []
            results = {}

            def hammer(worker):
                try:
                    for repeat in range(3):
                        for name in ("FLNT", "LWCF"):
                            for i, region in enumerate(regions):
                                results[(worker, repeat, name, i)] = reader.read_region(
                                    name, region
                                )
                except Exception as exc:  # pragma: no cover - failure reporting
                    errors.append(exc)

            import threading

            threads = [threading.Thread(target=hammer, args=(w,)) for w in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert errors == []
            for (_, _, name, i), data in results.items():
                assert np.array_equal(data, expected[(name, i)]), (name, i)


class TestCorruption:
    def test_chunk_crc_detected(self, archive):
        with ArchiveReader(archive) as reader:
            chunk = reader.field("FLNT").chunks[0]
        raw = bytearray(archive.read_bytes())
        raw[chunk.offset + chunk.length // 2] ^= 0xFF
        archive.write_bytes(bytes(raw))
        with ArchiveReader(archive) as reader:
            with pytest.raises(ArchiveCorruptionError, match="CRC"):
                reader.read_field("FLNT")
            report = reader.verify()
            assert not report["ok"]
            assert not report["fields"]["FLNT"]["ok"]
            assert report["fields"]["FLNTC"]["ok"]

    def test_deep_verify_does_not_trust_cache(self, archive):
        with ArchiveReader(archive) as reader:
            reader.read_field("FLNTC")  # warm the cache for every FLNTC chunk
            chunk = reader.field("FLNTC").chunks[0]
            # damage the file behind the still-open reader
            with open(archive, "r+b") as fh:
                fh.seek(chunk.offset)
                fh.write(b"\xff" * 4)
            report = reader.verify(deep=True)
            assert not report["ok"]
            assert not report["fields"]["FLNTC"]["ok"]

    def test_deep_verify_refreshes_anchor_chunks(self, archive):
        with ArchiveReader(archive) as reader:
            reader.read_field("LWCF")  # warms LWCF and its anchors FLNT/FLNTC
            chunk = reader.field("FLNT").chunks[0]
            with open(archive, "r+b") as fh:
                fh.seek(chunk.offset)
                fh.write(b"\xff" * 4)
            report = reader.verify(deep=True)
            assert not report["fields"]["FLNT"]["ok"]
            # the cross-field target depends on the damaged anchor: deep verify
            # must not decode it against the stale cached anchor chunk
            assert not report["fields"]["LWCF"]["ok"]

    def test_deep_verify_decodes_each_chunk_exactly_once(self, archive):
        with ArchiveReader(archive) as reader:
            total_chunks = sum(len(e.chunks) for e in reader.fields())
            report = reader.verify(deep=True)
            assert report["ok"]
            # anchors shared by cross-field targets are memoised within the
            # pass: one decode per stored chunk, no multiplicative re-decoding
            assert reader.cache_stats()["chunks_decoded"] == total_chunks

    def test_deep_verify_reports_codec_crash_not_traceback(self, archive, monkeypatch):
        # a CRC-consistent but malformed payload makes codecs raise
        # backend-specific errors (zlib.error, ...); verify must report, not die
        from repro.store.codecs import LosslessChunkCodec

        def broken_decode(self, payload, anchors=None, scheduler=None):
            raise zlib.error("invalid compressed stream")

        monkeypatch.setattr(LosslessChunkCodec, "decode", broken_decode)
        with ArchiveReader(archive) as reader:
            report = reader.verify(deep=True)
            assert not report["ok"]
            assert not report["fields"]["CLDLOW"]["ok"]  # the lossless field
            assert any("invalid compressed stream" in e for e in report["errors"])

    def test_verify_errors_always_name_field_and_chunk(self, archive, monkeypatch):
        # bare backend errors carry no coordinates of their own; the report
        # must still say which field and chunk failed, for every chunk
        from repro.store.codecs import LosslessChunkCodec

        def broken_decode(self, payload, anchors=None, scheduler=None):
            raise zlib.error("invalid compressed stream")

        monkeypatch.setattr(LosslessChunkCodec, "decode", broken_decode)
        with ArchiveReader(archive) as reader:
            n_chunks = len(reader.field("CLDLOW").chunks)
            report = reader.verify(deep=True)
        assert len(report["errors"]) == n_chunks
        for index in range(n_chunks):
            assert (
                f"field 'CLDLOW' chunk {index}: invalid compressed stream"
                in report["errors"]
            )

    def test_verify_keeps_context_of_corruption_errors_unduplicated(self, archive):
        with ArchiveReader(archive) as reader:
            chunk = reader.field("FLNT").chunks[1]
        raw = bytearray(archive.read_bytes())
        raw[chunk.offset + 2] ^= 0xFF
        archive.write_bytes(bytes(raw))
        with ArchiveReader(archive) as reader:
            report = reader.verify()
        crc_errors = [e for e in report["errors"] if "CRC" in e]
        assert crc_errors, report["errors"]
        for error in crc_errors:
            # ArchiveCorruptionError already names the chunk; no double prefix
            assert error.count("field 'FLNT' chunk 1") == 1

    def test_manifest_crc_detected(self, archive):
        raw = bytearray(archive.read_bytes())
        raw[-30] ^= 0xFF  # inside the manifest JSON
        archive.write_bytes(bytes(raw))
        with pytest.raises(ArchiveCorruptionError):
            ArchiveReader(archive)

    def test_truncated_file_detected(self, archive):
        raw = archive.read_bytes()
        archive.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(ArchiveCorruptionError):
            ArchiveReader(archive)

    def test_short_chunk_list_detected(self, archive):
        with ArchiveReader(archive) as reader:
            # simulate a CRC-valid but inconsistent manifest: the chunk list is
            # shorter than the chunk grid implies
            reader.manifest["FLNT"].chunks.pop()
            with pytest.raises(ArchiveCorruptionError, match="chunk grid"):
                reader.read_field("FLNT")
            # verify must agree with the read path, in both modes
            for deep in (False, True):
                report = reader.verify(deep=deep)
                assert not report["ok"]
                assert not report["fields"]["FLNT"]["ok"]
                assert any("chunk grid" in e for e in report["errors"])

    def test_not_an_archive(self, tmp_path):
        path = tmp_path / "junk.xfa"
        path.write_bytes(b"\x00" * 256)
        with pytest.raises(ArchiveCorruptionError):
            ArchiveReader(path)


class TestManifest:
    def test_manifest_json_round_trip(self, archive):
        with ArchiveReader(archive) as reader:
            manifest = reader.manifest
        rebuilt = ArchiveManifest.from_json(manifest.to_json())
        assert rebuilt.names == manifest.names
        for name in manifest.names:
            assert rebuilt[name].to_dict() == manifest[name].to_dict()

    def test_field_entry_accounting(self, archive, cesm_small):
        with ArchiveReader(archive) as reader:
            entry = reader.field("FLNT")
        assert entry.original_nbytes == cesm_small["FLNT"].data.nbytes
        assert entry.compressed_nbytes == sum(c.length for c in entry.chunks)
        assert entry.ratio > 1.0
        assert entry.grid_counts == (2, 4)

    def test_unknown_field(self, archive):
        with ArchiveReader(archive) as reader:
            with pytest.raises(KeyError):
                reader.read_field("missing")

    def test_zero_chunk_shape_rejected_at_parse(self):
        entry_dict = FieldEntry(
            name="x", dtype="float32", shape=(8, 8), chunk_shape=(8, 8), codec="sz"
        ).to_dict()
        entry_dict["chunk_shape"] = [0, 8]
        with pytest.raises(ArchiveCorruptionError, match="positive"):
            FieldEntry.from_dict(entry_dict)
        entry_dict["chunk_shape"] = [8]
        with pytest.raises(ArchiveCorruptionError, match="rank"):
            FieldEntry.from_dict(entry_dict)

    def test_inconsistent_chunk_extents_rejected_at_parse(self, archive):
        with ArchiveReader(archive) as reader:
            entry_dict = reader.field("FLNT").to_dict()
        entry_dict["chunks"][1]["start"] = [0, 0]  # lies about its grid cell
        with pytest.raises(ArchiveCorruptionError, match="chunk grid implies"):
            FieldEntry.from_dict(entry_dict)

    def test_excess_chunk_entries_rejected_at_parse(self, archive):
        with ArchiveReader(archive) as reader:
            entry_dict = reader.field("FLNT").to_dict()
        entry_dict["chunks"].append(entry_dict["chunks"][-1])
        with pytest.raises(ArchiveCorruptionError, match="holds only"):
            FieldEntry.from_dict(entry_dict)

    def test_scalar_field_rejected(self, tmp_path):
        with ArchiveWriter(tmp_path / "a.xfa") as writer:
            with pytest.raises(ArchiveError, match="scalar"):
                writer.add_field("s", np.float32(3.5))

    def test_bad_dtype_rejected_at_parse(self):
        entry_dict = FieldEntry(
            name="x", dtype="float32", shape=(8, 8), chunk_shape=(8, 8), codec="sz"
        ).to_dict()
        entry_dict["dtype"] = "junk"
        with pytest.raises(ArchiveCorruptionError, match="dtype"):
            FieldEntry.from_dict(entry_dict)

    def test_normalize_region_errors(self):
        with pytest.raises(ArchiveError, match="rank"):
            normalize_region((10, 10), (slice(0, 1), slice(0, 1), slice(0, 1)))
        with pytest.raises(ArchiveError, match="step"):
            normalize_region((10,), (slice(0, 10, 2),))
        with pytest.raises(ArchiveError, match="empty"):
            normalize_region((10,), (slice(5, 5),))
        with pytest.raises(ArchiveError, match="out of bounds"):
            normalize_region((10,), (12,))

    def test_chunks_intersecting_region(self):
        shape, chunk = (10, 10), (4, 4)
        region = normalize_region(shape, (slice(0, 3), slice(0, 3)))
        assert chunks_intersecting_region(shape, chunk, region) == [0]
        region = normalize_region(shape, (slice(3, 9), slice(5, 9)))
        assert chunks_intersecting_region(shape, chunk, region) == [1, 2, 4, 5, 7, 8]
        region = normalize_region(shape, None)
        assert chunks_intersecting_region(shape, chunk, region) == list(range(9))


class TestLRUChunkCache:
    def test_byte_budget_eviction(self):
        cache = LRUChunkCache(max_bytes=3 * 800)  # three 10x10 float64 chunks
        chunks = [np.full((10, 10), i, dtype=np.float64) for i in range(4)]
        for i, chunk in enumerate(chunks):
            cache.put(("f", i), chunk)
        assert len(cache) == 3
        assert cache.get(("f", 0)) is None  # evicted (least recently used)
        assert cache.get(("f", 3)) is not None
        assert cache.evictions == 1

    def test_lru_ordering(self):
        cache = LRUChunkCache(max_bytes=2 * 80)
        a, b, c = (np.full(10, v, dtype=np.float64) for v in (1, 2, 3))
        cache.put("a", a)
        cache.put("b", b)
        assert cache.get("a") is not None  # refresh "a"
        cache.put("c", c)
        assert cache.get("b") is None  # "b" was least recently used
        assert cache.get("a") is not None

    def test_oversized_chunk_not_cached(self):
        cache = LRUChunkCache(max_bytes=10)
        cache.put("big", np.zeros(100))
        assert len(cache) == 0

    def test_oversized_replacement_drops_stale_entry(self):
        cache = LRUChunkCache(max_bytes=100)
        cache.put("k", np.zeros(10, dtype=np.uint8))
        cache.put("k", np.zeros(200, dtype=np.uint8))  # over budget
        assert cache.get("k") is None  # stale small entry must not survive
        assert cache.nbytes == 0

    def test_zero_budget_disables_cache(self):
        cache = LRUChunkCache(max_bytes=0)
        cache.put("x", np.zeros(4))
        assert cache.get("x") is None

    def test_stats(self):
        cache = LRUChunkCache()
        cache.put("x", np.zeros(4))
        cache.get("x")
        cache.get("y")
        stats = cache.stats
        assert stats["hits"] == 1 and stats["misses"] == 1 and stats["entries"] == 1


class TestPreviewReads:
    """Progressive (prefix) reads through the reader's preview path."""

    @pytest.fixture()
    def zfp_archive(self, tmp_path, cesm_small):
        path = tmp_path / "zfp-preview.xfa"
        with ArchiveWriter(
            path, chunk_shape=(24, 24), error_bound=ErrorBound.relative(1e-3)
        ) as writer:
            writer.add_field("FLNT", cesm_small["FLNT"].data, codec="zfp")
            writer.add_field("FLNTC", cesm_small["FLNTC"].data)  # sz: no preview
        return path

    def test_full_fraction_matches_read_field(self, zfp_archive):
        with ArchiveReader(zfp_archive) as reader:
            full = reader.read_field("FLNT")
            preview, info = reader.read_region_preview("FLNT", None, fraction=1.0)
        assert np.array_equal(preview, full)
        assert info["bytes_decoded"] == info["bytes_total"]
        assert info["rms_error_estimate"] == 0.0
        assert info["fraction"] == 1.0

    def test_partial_fraction_decodes_prefix(self, zfp_archive):
        with ArchiveReader(zfp_archive) as reader:
            full = reader.read_field("FLNT").astype(np.float64)
            coarse, info = reader.read_region_preview("FLNT", None, fraction=0.25)
        assert coarse.shape == full.shape
        assert info["bytes_decoded"] < info["bytes_total"]
        assert info["groups_decoded"] < info["groups_total"]
        assert info["chunks"] == 8
        # the aggregated estimate really describes the coarse field
        rms = float(np.sqrt(np.mean((coarse.astype(np.float64) - full) ** 2)))
        assert rms > 0.0
        assert info["rms_error_estimate"] > 0.0

    def test_region_preview_matches_region_of_field_preview(self, zfp_archive):
        region = (slice(0, 24), slice(10, 40))
        with ArchiveReader(zfp_archive) as reader:
            whole, _ = reader.read_region_preview("FLNT", None, fraction=0.3)
            window, _ = reader.read_region_preview("FLNT", region, fraction=0.3)
        assert np.array_equal(window, whole[region])

    def test_read_region_preview_fraction_kwarg(self, zfp_archive):
        with ArchiveReader(zfp_archive) as reader:
            via_kwarg = reader.read_region("FLNT", None, preview_fraction=0.3)
            direct, _ = reader.read_region_preview("FLNT", None, fraction=0.3)
            via_field = reader.read_field("FLNT", preview_fraction=0.3)
        assert np.array_equal(via_kwarg, direct)
        assert np.array_equal(via_field, direct)

    def test_preview_entries_never_alias_full_decodes(self, zfp_archive):
        with ArchiveReader(zfp_archive) as reader:
            coarse, _ = reader.read_region_preview("FLNT", None, fraction=0.25)
            full = reader.read_field("FLNT")
            coarse_again, _ = reader.read_region_preview("FLNT", None, fraction=0.25)
        assert not np.array_equal(coarse, full)
        assert np.array_equal(coarse, coarse_again)

    def test_preview_cache_hits_skip_decode(self, zfp_archive):
        with ArchiveReader(zfp_archive) as reader:
            _, info_a = reader.read_region_preview("FLNT", None, fraction=0.25)
            decodes = reader._fetcher.telemetry.counter("store.preview.chunks")
            _, info_b = reader.read_region_preview("FLNT", None, fraction=0.25)
            decodes_after = reader._fetcher.telemetry.counter("store.preview.chunks")
        assert decodes_after == decodes  # second sweep served from cache
        assert info_a == info_b  # including the cached decode reports

    def test_non_progressive_codec_falls_back_to_full(self, zfp_archive):
        with ArchiveReader(zfp_archive) as reader:
            full = reader.read_field("FLNTC")
            preview, info = reader.read_region_preview("FLNTC", None, fraction=0.1)
        assert np.array_equal(preview, full)
        assert info["bytes_decoded"] == info["bytes_total"] > 0
        assert info["rms_error_estimate"] == 0.0

    def test_bad_fraction_rejected(self, zfp_archive):
        with ArchiveReader(zfp_archive) as reader:
            with pytest.raises(ValueError):
                reader.read_region_preview("FLNT", None, fraction=0.0)
            with pytest.raises(ValueError):
                reader.read_region_preview("FLNT", None, fraction=float("nan"))
