"""Unit tests for the compressed-payload container format."""

import pytest

from repro.encoding.container import CompressedBlob, pack_sections, unpack_sections


class TestCompressedBlob:
    def test_round_trip(self):
        blob = CompressedBlob(metadata={"shape": [4, 4], "eb": 1e-3})
        blob.add_section("residuals", b"\x01\x02\x03")
        blob.add_section("model", b"weights")
        rebuilt = CompressedBlob.from_bytes(blob.to_bytes())
        assert rebuilt.metadata == {"shape": [4, 4], "eb": 1e-3}
        assert rebuilt.get_section("residuals") == b"\x01\x02\x03"
        assert rebuilt.get_section("model") == b"weights"

    def test_empty_sections_ok(self):
        blob = CompressedBlob(metadata={"x": 1})
        rebuilt = CompressedBlob.from_bytes(blob.to_bytes())
        assert rebuilt.metadata["x"] == 1

    def test_crc_detects_corruption(self):
        blob = CompressedBlob(metadata={"a": 1})
        blob.add_section("data", b"abcdefgh")
        payload = bytearray(blob.to_bytes())
        payload[-3] ^= 0xFF
        with pytest.raises(ValueError, match="CRC"):
            CompressedBlob.from_bytes(bytes(payload))

    def test_bad_magic(self):
        with pytest.raises(ValueError, match="magic"):
            CompressedBlob.from_bytes(b"NOPE" + b"\x00" * 20)

    def test_too_small(self):
        with pytest.raises(ValueError):
            CompressedBlob.from_bytes(b"\x00")

    def test_missing_section(self):
        blob = CompressedBlob()
        with pytest.raises(KeyError):
            blob.get_section("nothing")

    def test_contains(self):
        blob = CompressedBlob()
        blob.add_section("a", b"1")
        assert "a" in blob and "b" not in blob

    def test_section_sizes(self):
        blob = CompressedBlob(metadata={"k": "v"})
        blob.add_section("a", b"12345")
        sizes = blob.section_sizes()
        assert sizes["a"] == 5
        assert sizes["__metadata__"] > 0

    def test_rejects_non_bytes_section(self):
        with pytest.raises(TypeError):
            CompressedBlob().add_section("bad", 123)

    def test_nbytes_matches_serialized_length(self):
        blob = CompressedBlob(metadata={"a": 1})
        blob.add_section("x", b"\x00" * 100)
        assert blob.nbytes == len(blob.to_bytes())

    def test_nbytes_matches_across_shapes(self):
        cases = [
            CompressedBlob(),
            CompressedBlob(metadata={"unicode": "é", "nested": {"k": [1, 2, 3]}}),
        ]
        multi = CompressedBlob(metadata={"n": 3})
        multi.add_section("empty", b"")
        multi.add_section("named-é", b"\x01" * 7)
        multi.add_section("big", b"\xff" * 4096)
        cases.append(multi)
        for blob in cases:
            assert blob.nbytes == len(blob.to_bytes())


class TestCorruptionPaths:
    """Every malformed input must raise a clear ValueError, never crash oddly."""

    @staticmethod
    def _payload():
        blob = CompressedBlob(metadata={"field": "T", "shape": [8, 8]})
        blob.add_section("residuals", b"\x01\x02\x03\x04\x05\x06\x07\x08")
        blob.add_section("model", b"weights-bytes")
        return blob.to_bytes()

    def test_truncated_header(self):
        payload = self._payload()
        for cut in (0, 1, 5, 12):  # header is 13 bytes
            with pytest.raises(ValueError, match="too small"):
                CompressedBlob.from_bytes(payload[:cut])

    def test_truncated_body(self):
        payload = self._payload()
        for cut in (len(payload) - 1, len(payload) // 2, 14):
            with pytest.raises(ValueError, match="CRC|truncated"):
                CompressedBlob.from_bytes(payload[:cut])

    def test_flipped_bit_crc_mismatch(self):
        payload = bytearray(self._payload())
        for position in (13, len(payload) // 2, len(payload) - 1):
            corrupted = bytearray(payload)
            corrupted[position] ^= 0x01
            with pytest.raises(ValueError, match="CRC"):
                CompressedBlob.from_bytes(bytes(corrupted))

    def test_unknown_magic(self):
        payload = bytearray(self._payload())
        payload[:4] = b"ZZZZ"
        with pytest.raises(ValueError, match="magic"):
            CompressedBlob.from_bytes(bytes(payload))

    def test_unsupported_version(self):
        payload = bytearray(self._payload())
        payload[4] = 99
        with pytest.raises(ValueError, match="version"):
            CompressedBlob.from_bytes(bytes(payload))


class TestHelpers:
    def test_pack_unpack(self):
        payload = pack_sections({"name": "field"}, {"data": b"123"})
        metadata, sections = unpack_sections(payload)
        assert metadata["name"] == "field"
        assert sections["data"] == b"123"
