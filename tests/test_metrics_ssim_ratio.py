"""Unit tests for SSIM and the size metrics."""

import numpy as np
import pytest

from repro.metrics import bit_rate, bit_rate_to_ratio, compression_ratio, ratio_to_bit_rate, ssim


class TestSSIM:
    def test_identical_is_one(self):
        x = np.random.default_rng(0).normal(size=(40, 40))
        assert np.isclose(ssim(x, x), 1.0)

    def test_noise_lowers_ssim(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(64, 64)).cumsum(axis=0).cumsum(axis=1)
        y = x + rng.normal(scale=0.2 * x.std(), size=x.shape)
        value = ssim(x, y)
        assert 0.0 < value < 1.0

    def test_more_noise_lower_ssim(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(64, 64)).cumsum(axis=0).cumsum(axis=1)
        low = ssim(x, x + rng.normal(scale=0.05 * x.std(), size=x.shape))
        high = ssim(x, x + rng.normal(scale=0.5 * x.std(), size=x.shape))
        assert low > high

    def test_3d_slice_average(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(4, 32, 32)).cumsum(axis=1)
        assert np.isclose(ssim(x, x), 1.0)

    def test_1d_supported(self):
        x = np.linspace(0, 1, 128)
        assert np.isclose(ssim(x, x), 1.0)

    def test_constant_data(self):
        x = np.full((16, 16), 5.0)
        assert np.isclose(ssim(x, x), 1.0)

    def test_4d_rejected(self):
        with pytest.raises(ValueError):
            ssim(np.zeros((2, 2, 2, 2)), np.zeros((2, 2, 2, 2)))

    def test_bounded_by_one(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(32, 32))
        y = rng.normal(size=(32, 32))
        assert ssim(x, y) <= 1.0 + 1e-9


class TestRatioMetrics:
    def test_compression_ratio(self):
        assert compression_ratio(1000, 100) == 10.0

    def test_bit_rate(self):
        assert bit_rate(125, 1000) == 1.0

    def test_round_trip_conversions(self):
        assert np.isclose(bit_rate_to_ratio(ratio_to_bit_rate(16.0)), 16.0)
        assert np.isclose(ratio_to_bit_rate(32.0), 1.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            compression_ratio(0, 10)
        with pytest.raises(ValueError):
            bit_rate(10, 0)
