"""Gradient-correctness tests for the convolution primitives."""

import numpy as np
import pytest

from repro.nn.functional import (
    conv_backward,
    conv_forward,
    depthwise_conv_backward,
    depthwise_conv_forward,
    pad_spatial,
    relu,
    sigmoid,
)


def _numeric_grad(func, array, eps=1e-6):
    grad = np.zeros_like(array)
    flat = array.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        plus = func()
        flat[i] = orig - eps
        minus = func()
        flat[i] = orig
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


class TestConvForward:
    def test_identity_kernel(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(1, 1, 6, 6))
        weight = np.zeros((1, 1, 3, 3))
        weight[0, 0, 1, 1] = 1.0
        out, _ = conv_forward(x, weight, None, (1, 1))
        assert np.allclose(out, x)

    def test_same_padding_shape(self):
        x = np.zeros((2, 3, 7, 9))
        weight = np.zeros((5, 3, 3, 3))
        out, _ = conv_forward(x, weight, np.zeros(5), (1, 1))
        assert out.shape == (2, 5, 7, 9)

    def test_valid_padding_shape(self):
        x = np.zeros((1, 2, 8, 8))
        weight = np.zeros((4, 2, 3, 3))
        out, _ = conv_forward(x, weight, None, (0, 0))
        assert out.shape == (1, 4, 6, 6)

    def test_3d_shape(self):
        x = np.zeros((1, 2, 5, 6, 7))
        weight = np.zeros((3, 2, 3, 3, 3))
        out, _ = conv_forward(x, weight, None, (1, 1, 1))
        assert out.shape == (1, 3, 5, 6, 7)

    def test_kernel_larger_than_input(self):
        with pytest.raises(ValueError):
            conv_forward(np.zeros((1, 1, 2, 2)), np.zeros((1, 1, 5, 5)), None, (0, 0))


class TestConvBackward:
    def test_gradients_match_finite_differences_2d(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 2, 5, 5))
        weight = rng.normal(size=(3, 2, 3, 3)) * 0.3
        bias = rng.normal(size=3) * 0.1
        grad_out = rng.normal(size=(2, 3, 5, 5))

        def loss():
            out, _ = conv_forward(x, weight, bias, (1, 1))
            return float(np.sum(out * grad_out))

        out, cache = conv_forward(x, weight, bias, (1, 1))
        grad_x, grad_w, grad_b = conv_backward(grad_out, cache)
        assert np.allclose(grad_x, _numeric_grad(loss, x), atol=1e-5)
        assert np.allclose(grad_w, _numeric_grad(loss, weight), atol=1e-5)
        assert np.allclose(grad_b, _numeric_grad(loss, bias), atol=1e-5)

    def test_gradients_match_finite_differences_3d(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(1, 2, 4, 4, 3))
        weight = rng.normal(size=(2, 2, 3, 3, 3)) * 0.2
        grad_out = rng.normal(size=(1, 2, 4, 4, 3))

        def loss():
            out, _ = conv_forward(x, weight, None, (1, 1, 1))
            return float(np.sum(out * grad_out))

        _, cache = conv_forward(x, weight, None, (1, 1, 1))
        grad_x, grad_w, _ = conv_backward(grad_out, cache)
        assert np.allclose(grad_x, _numeric_grad(loss, x), atol=1e-5)
        assert np.allclose(grad_w, _numeric_grad(loss, weight), atol=1e-5)


class TestDepthwiseConv:
    def test_channels_independent(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(1, 2, 6, 6))
        weight = np.zeros((2, 3, 3))
        weight[0, 1, 1] = 1.0  # identity on channel 0
        weight[1] = 0.0        # zero on channel 1
        out, _ = depthwise_conv_forward(x, weight, None, (1, 1))
        assert np.allclose(out[:, 0], x[:, 0])
        assert np.allclose(out[:, 1], 0.0)

    def test_gradients_match_finite_differences(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(2, 3, 5, 5))
        weight = rng.normal(size=(3, 3, 3)) * 0.3
        bias = rng.normal(size=3) * 0.1
        grad_out = rng.normal(size=(2, 3, 5, 5))

        def loss():
            out, _ = depthwise_conv_forward(x, weight, bias, (1, 1))
            return float(np.sum(out * grad_out))

        _, cache = depthwise_conv_forward(x, weight, bias, (1, 1))
        grad_x, grad_w, grad_b = depthwise_conv_backward(grad_out, cache)
        assert np.allclose(grad_x, _numeric_grad(loss, x), atol=1e-5)
        assert np.allclose(grad_w, _numeric_grad(loss, weight), atol=1e-5)
        assert np.allclose(grad_b, _numeric_grad(loss, bias), atol=1e-5)

    def test_channel_mismatch(self):
        with pytest.raises(ValueError):
            depthwise_conv_forward(np.zeros((1, 4, 5, 5)), np.zeros((3, 3, 3)), None, (1, 1))


class TestActivationsAndPad:
    def test_sigmoid_stable(self):
        x = np.array([-1000.0, 0.0, 1000.0])
        s = sigmoid(x)
        assert np.all(np.isfinite(s))
        assert np.isclose(s[1], 0.5)

    def test_relu(self):
        assert np.allclose(relu(np.array([-1.0, 2.0])), [0.0, 2.0])

    def test_pad_noop(self):
        x = np.ones((1, 1, 3, 3))
        assert pad_spatial(x, (0, 0)) is x

    def test_pad_shape(self):
        x = np.ones((1, 2, 3, 4))
        assert pad_spatial(x, (1, 2)).shape == (1, 2, 5, 8)
