"""Smoke-scale tests for the ablation runners."""

import numpy as np
import pytest

from repro.core.training import TrainingConfig
from repro.experiments.ablations import (
    run_anchor_selection_ablation,
    run_dual_quant_ablation,
    run_entropy_backend_ablation,
    run_parallel_block_ablation,
    run_predictor_ablation,
)

FAST = TrainingConfig(epochs=2, n_patches=12, batch_size=4, patch_size_2d=16, patch_size_3d=8)


class TestAblations:
    def test_dual_quant(self):
        result = run_dual_quant_ablation(shape=(32, 32))
        assert len(result.rows) == 2
        schemes = result.column("scheme")
        assert any("dual" in s for s in schemes)
        coded = result.column("entropy-coded bytes")
        assert all(b > 0 for b in coded)
        assert "dual" in result.format()

    def test_predictor_ablation(self):
        result = run_predictor_ablation("smoke")
        predictors = result.column("predictor")
        assert set(predictors) == {"lorenzo", "interpolation", "regression", "zfp-like"}
        assert all(r > 0.5 for r in result.column("ratio"))
        assert all(np.isfinite(p) for p in result.column("psnr"))

    def test_entropy_backend_ablation(self):
        result = run_entropy_backend_ablation("smoke")
        assert all(result.column("error bound held"))
        ratios = dict(zip(result.column("entropy+backend"), result.column("ratio")))
        assert ratios["huffman+zlib"] >= ratios["raw+raw"]

    def test_parallel_block_ablation(self):
        result = run_parallel_block_ablation("smoke", block_size=32, max_workers=2)
        configs = result.column("configuration")
        assert "single-shot" in configs
        assert any("blocks" in c for c in configs)

    def test_anchor_selection_ablation(self):
        result = run_anchor_selection_ablation("smoke", training=FAST)
        configs = result.column("configuration")
        assert "paper anchors" in configs
        assert "mutual-information anchors" in configs
        assert "single anchor" in configs
        assert len(result.rows) == 4

    def test_column_lookup_error(self):
        result = run_dual_quant_ablation(shape=(16, 16))
        with pytest.raises(ValueError):
            result.column("nonexistent")
