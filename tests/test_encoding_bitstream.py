"""Unit tests for the bit-level stream writer/reader."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.bitstream import BitReader, BitWriter


class TestBitWriter:
    def test_single_byte(self):
        w = BitWriter()
        w.write(0b10110, 5)
        w.write(0b101, 3)
        assert w.getvalue() == bytes([0b10110101])
        assert w.bit_length == 8

    def test_padding(self):
        w = BitWriter()
        w.write(0b1, 1)
        data = w.getvalue()
        assert data == bytes([0b10000000])

    def test_zero_bits_noop(self):
        w = BitWriter()
        w.write(0, 0)
        assert w.getvalue() == b""

    def test_value_too_large(self):
        with pytest.raises(ValueError):
            BitWriter().write(4, 2)

    def test_negative_value(self):
        with pytest.raises(ValueError):
            BitWriter().write(-1, 3)

    def test_long_value(self):
        w = BitWriter()
        w.write((1 << 40) - 3, 40)
        r = BitReader(w.getvalue())
        assert r.read(40) == (1 << 40) - 3


class TestBitReader:
    def test_read_back(self):
        w = BitWriter()
        values = [(3, 2), (100, 7), (0, 4), (65535, 16), (1, 1)]
        for v, n in values:
            w.write(v, n)
        r = BitReader(w.getvalue())
        for v, n in values:
            assert r.read(v.bit_length() if False else n) == v

    def test_eof(self):
        r = BitReader(b"\x00")
        r.read(8)
        with pytest.raises(EOFError):
            r.read(1)

    def test_seek(self):
        w = BitWriter()
        w.write(0b1010, 4)
        r = BitReader(w.getvalue())
        r.read(4)
        r.seek_bit(0)
        assert r.read(4) == 0b1010

    def test_unary(self):
        w = BitWriter()
        for v in (0, 3, 7, 40):
            w.write_unary(v)
        r = BitReader(w.getvalue())
        assert [r.read_unary() for _ in range(4)] == [0, 3, 7, 40]

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 2**20 - 1), st.integers(20, 24)), min_size=1, max_size=50))
    def test_property_roundtrip(self, pairs):
        w = BitWriter()
        for value, width in pairs:
            w.write(value, width)
        r = BitReader(w.getvalue())
        for value, width in pairs:
            assert r.read(width) == value
