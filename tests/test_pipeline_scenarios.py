"""Scenario registry + one end-to-end ``repro run`` smoke test per scenario."""

import numpy as np
import pytest

from repro.pipeline import (
    PipelineConfig,
    Scenario,
    available_scenarios,
    get_scenario,
    register_scenario,
    run_scenario,
    scenario_table,
)
from repro.pipeline.scenarios import _REGISTRY
from repro.store.cli import main


class TestRegistry:
    def test_builtin_scenarios_registered(self):
        names = available_scenarios()
        assert len(names) >= 3
        for expected in ("climate-small", "cross-field", "random-access"):
            assert expected in names

    def test_get_unknown_scenario(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("nope")

    def test_scenario_table_lists_everything(self):
        table = scenario_table()
        for name in available_scenarios():
            assert name in table

    def test_register_validates_config_eagerly(self):
        bad = Scenario(
            name="bad",
            description="invalid preset",
            dataset="cesm",
            shape=(16, 16),
            config=PipelineConfig(codec="nope"),
        )
        with pytest.raises(ValueError, match="unknown codec"):
            register_scenario(bad)
        assert "bad" not in available_scenarios()

    def test_register_and_replace_roundtrip(self):
        scenario = Scenario(
            name="tmp-test-scenario",
            description="temporary",
            dataset="cesm",
            shape=(16, 32),
            config=PipelineConfig(codec="lossless"),
        )
        try:
            register_scenario(scenario)
            assert get_scenario("tmp-test-scenario") is scenario
        finally:
            _REGISTRY.pop("tmp-test-scenario", None)

    def test_build_fieldset_respects_subset_and_seed(self):
        scenario = get_scenario("cross-field")
        fieldset = scenario.build_fieldset(seed=11)
        assert fieldset.names == list(scenario.fields)
        assert fieldset.shape == scenario.shape
        again = scenario.build_fieldset(seed=11)
        assert np.array_equal(fieldset[fieldset.names[0]].data, again[fieldset.names[0]].data)


class TestRunScenario:
    def test_result_carries_verification(self, tmp_path):
        result = run_scenario("lossless-audit", tmp_path / "a.xfa", seed=2)
        assert result.verified_ok is True
        assert result.archive.exists()

    def test_random_access_demo_stats(self, tmp_path):
        result = run_scenario("random-access", tmp_path / "ra.xfa", seed=2)
        stats = result.extras["random_access"]
        assert 0 < stats["chunks_decoded"] < stats["total_chunks"]


@pytest.mark.parametrize("scenario", sorted(available_scenarios()))
def test_repro_run_smoke(scenario, tmp_path, capsys):
    """Every registered scenario runs end to end and verifies via the CLI."""
    archive = tmp_path / f"{scenario}.xfa"
    assert main(["run", scenario, "-o", str(archive), "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "verification: ok" in out
    assert archive.exists()
    # the produced archive passes a standalone `repro verify`
    assert main(["verify", str(archive), "--deep"]) == 0
    assert "passed" in capsys.readouterr().out


def test_repro_run_list(capsys):
    assert main(["run", "--list"]) == 0
    out = capsys.readouterr().out
    for name in available_scenarios():
        assert name in out


def test_zfp_progressive_preview_extras(tmp_path, capsys):
    result = run_scenario("zfp-progressive", tmp_path / "prog.xfa", seed=2)
    preview = result.extras["preview"]
    assert preview["fraction"] == 0.25
    assert preview["bytes_decoded"] < preview["bytes_total"]
    assert preview["groups_decoded"] < preview["groups_total"]
    assert preview["rms_error_estimate"] > 0.0
    # and the CLI run surfaces the preview line
    assert main(["run", "zfp-progressive", "-o", str(tmp_path / "cli.xfa"), "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "preview: FLNT @ fraction 0.25" in out
    assert "rms error estimate" in out
