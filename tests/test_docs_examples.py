"""The docs tree stays truthful: run scripts/check_docs.py under pytest.

CI has a dedicated docs job, but running the same checks in the tier-1 suite
means a PR that breaks a README or docs/ code block fails locally too.
"""

import importlib.util
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def check_docs():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "scripts" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_docs_tree_exists():
    for name in ("architecture.md", "pipeline.md", "xfa1-format.md"):
        assert (REPO_ROOT / "docs" / name).is_file(), f"docs/{name} is missing"


def test_readme_links_docs_tree():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for name in ("docs/architecture.md", "docs/pipeline.md", "docs/xfa1-format.md"):
        assert name in readme, f"README does not link {name}"


def test_all_doc_code_blocks_pass(check_docs, capsys):
    assert check_docs.main([]) == 0, capsys.readouterr().err


def test_checker_extracts_blocks(check_docs):
    blocks = check_docs.extract_blocks(
        "text\n```python\nx = 1\n```\nmore\n```json\n{}\n```\n"
    )
    assert [(info, line) for info, _, line in blocks] == [("python", 2), ("json", 6)]


def test_checker_flags_broken_blocks(check_docs, tmp_path):
    bad = tmp_path / "bad.md"
    bad.write_text(
        "```python\ndef broken(:\n```\n\n```json\n{nope}\n```\n", encoding="utf-8"
    )
    checked, errors = check_docs.check_file(bad)
    assert checked == 2
    assert len(errors) == 2


def test_checker_runs_python_run_blocks(check_docs, tmp_path):
    doc = tmp_path / "run.md"
    doc.write_text("```python run\nraise RuntimeError('boom')\n```\n", encoding="utf-8")
    checked, errors = check_docs.check_file(doc)
    assert checked == 1
    assert len(errors) == 1 and "boom" in errors[0]


def test_checker_treats_clean_sys_exit_as_success(check_docs, tmp_path):
    doc = tmp_path / "exit.md"
    doc.write_text(
        "```python run\nimport sys\nsys.exit(0)\n```\n"
        "```python run\nimport sys\nsys.exit(3)\n```\n",
        encoding="utf-8",
    )
    checked, errors = check_docs.check_file(doc)
    assert checked == 2
    assert len(errors) == 1 and "code 3" in errors[0]
