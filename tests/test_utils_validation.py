"""Unit tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    ensure_array,
    ensure_dtype,
    ensure_in,
    ensure_ndim,
    ensure_positive,
    ensure_shape_match,
)


class TestEnsureArray:
    def test_converts_list(self):
        arr = ensure_array([1.0, 2.0, 3.0])
        assert isinstance(arr, np.ndarray)
        assert arr.dtype == np.float64

    def test_keeps_float32(self):
        arr = ensure_array(np.ones(4, dtype=np.float32))
        assert arr.dtype == np.float32

    def test_promotes_int_to_float(self):
        arr = ensure_array(np.arange(5))
        assert np.issubdtype(arr.dtype, np.floating)

    def test_explicit_dtype(self):
        arr = ensure_array([1, 2], dtype=np.float32)
        assert arr.dtype == np.float32

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ensure_array(np.zeros((0,)))

    def test_rejects_object_dtype(self):
        with pytest.raises(TypeError):
            ensure_array(np.array([object()]))

    def test_copy_flag(self):
        src = np.ones(3, dtype=np.float64)
        out = ensure_array(src, copy=True)
        out[0] = 5.0
        assert src[0] == 1.0

    def test_result_is_contiguous(self):
        src = np.ones((4, 4), dtype=np.float32)[:, ::2]
        out = ensure_array(src)
        assert out.flags["C_CONTIGUOUS"]


class TestScalarChecks:
    def test_ensure_positive_accepts(self):
        assert ensure_positive(1.5) == 1.5

    def test_ensure_positive_rejects_zero_strict(self):
        with pytest.raises(ValueError):
            ensure_positive(0.0)

    def test_ensure_positive_nonstrict_allows_zero(self):
        assert ensure_positive(0.0, strict=False) == 0.0

    def test_ensure_positive_rejects_nan(self):
        with pytest.raises(ValueError):
            ensure_positive(float("nan"))

    def test_ensure_positive_rejects_non_scalar(self):
        with pytest.raises(TypeError):
            ensure_positive([1.0])

    def test_ensure_in(self):
        assert ensure_in("a", ("a", "b")) == "a"
        with pytest.raises(ValueError):
            ensure_in("c", ("a", "b"))


class TestArrayChecks:
    def test_ensure_dtype(self):
        arr = np.zeros(3, dtype=np.float32)
        assert ensure_dtype(arr, [np.float32, np.float64]) is arr
        with pytest.raises(TypeError):
            ensure_dtype(arr, [np.int64])

    def test_ensure_shape_match(self):
        a = np.zeros((2, 3))
        b = np.zeros((2, 3))
        ensure_shape_match(a, b)
        with pytest.raises(ValueError):
            ensure_shape_match(a, np.zeros((3, 2)))

    def test_ensure_ndim(self):
        arr = np.zeros((2, 2))
        ensure_ndim(arr, (1, 2))
        with pytest.raises(ValueError):
            ensure_ndim(arr, (3,))
