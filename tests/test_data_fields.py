"""Unit tests for repro.data.fields."""

import numpy as np
import pytest

from repro.data.fields import Field, FieldSet


class TestField:
    def test_basic_properties(self):
        field = Field("T", np.arange(12, dtype=np.float32).reshape(3, 4), units="K")
        assert field.shape == (3, 4)
        assert field.ndim == 2
        assert field.size == 12
        assert field.nbytes == 48
        assert field.units == "K"
        assert field.value_range == 11.0

    def test_casts_integers_to_float32(self):
        field = Field("x", np.arange(4))
        assert field.dtype in (np.dtype(np.float32), np.dtype(np.float64))

    def test_normalized_range(self):
        field = Field("x", np.array([[1.0, 3.0], [5.0, 7.0]], dtype=np.float32))
        norm = field.normalized()
        assert np.isclose(norm.data.min(), 0.0)
        assert np.isclose(norm.data.max(), 1.0)

    def test_normalized_constant_field(self):
        field = Field("c", np.full((4, 4), 2.0, dtype=np.float32))
        norm = field.normalized(lo=0.25, hi=0.75)
        assert np.allclose(norm.data, 0.25)

    def test_copy_is_independent(self):
        field = Field("x", np.zeros((2, 2), dtype=np.float32))
        clone = field.copy()
        clone.data[0, 0] = 9.0
        assert field.data[0, 0] == 0.0

    def test_with_data_keeps_metadata(self):
        field = Field("x", np.zeros((2, 2), dtype=np.float32), units="m", description="d")
        new = field.with_data(np.ones((3, 3), dtype=np.float32))
        assert new.units == "m" and new.description == "d"
        assert new.shape == (3, 3)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Field("x", np.zeros((0,)))


class TestFieldSet:
    def _make(self):
        return FieldSet(
            [Field("a", np.zeros((4, 5), dtype=np.float32)), Field("b", np.ones((4, 5), dtype=np.float32))],
            name="demo",
        )

    def test_lookup_and_iteration(self):
        fs = self._make()
        assert fs.names == ["a", "b"]
        assert "a" in fs
        assert len(fs) == 2
        assert [f.name for f in fs] == ["a", "b"]
        assert fs["b"].data[0, 0] == 1.0

    def test_shape_and_bytes(self):
        fs = self._make()
        assert fs.shape == (4, 5)
        assert fs.ndim == 2
        assert fs.nbytes == 2 * 4 * 5 * 4

    def test_rejects_mismatched_shape(self):
        fs = self._make()
        with pytest.raises(ValueError):
            fs.add(Field("c", np.zeros((3, 3), dtype=np.float32)))

    def test_rejects_duplicate_name(self):
        fs = self._make()
        with pytest.raises(ValueError):
            fs.add(Field("a", np.zeros((4, 5), dtype=np.float32)))

    def test_missing_field_error_lists_names(self):
        fs = self._make()
        with pytest.raises(KeyError):
            fs["missing"]

    def test_subset(self):
        fs = self._make()
        sub = fs.subset(["b"])
        assert sub.names == ["b"]

    def test_stacked(self):
        fs = self._make()
        stacked = fs.stacked()
        assert stacked.shape == (2, 4, 5)

    def test_round_trip_dict(self):
        fs = self._make()
        rebuilt = FieldSet.from_dict(fs.to_dict(), name="demo")
        assert rebuilt.names == fs.names
        assert np.array_equal(rebuilt["a"].data, fs["a"].data)

    def test_remove(self):
        fs = self._make()
        removed = fs.remove("a")
        assert removed.name == "a"
        assert "a" not in fs

    def test_empty_shape_raises(self):
        with pytest.raises(ValueError):
            FieldSet().shape

    def test_describe_mentions_fields(self):
        text = self._make().describe()
        assert "a" in text and "demo" in text
