"""Unit tests for Module/Parameter plumbing, losses and optimizers."""

import numpy as np
import pytest

from repro.nn import Adam, Linear, MAELoss, MSELoss, ReLU, SGD, Sequential
from repro.nn.module import Module, Parameter


class TestParameterAndModule:
    def test_parameter_zero_grad(self):
        p = Parameter(np.ones((2, 2)))
        p.grad += 3.0
        p.zero_grad()
        assert np.all(p.grad == 0)

    def test_named_parameters_nested(self):
        model = Sequential(Linear(3, 4), ReLU(), Linear(4, 2))
        names = [name for name, _ in model.named_parameters()]
        assert "layer0.weight" in names and "layer2.bias" in names

    def test_state_dict_round_trip(self):
        rng = np.random.default_rng(0)
        model_a = Sequential(Linear(3, 4, rng=rng), Linear(4, 2, rng=rng))
        model_b = Sequential(Linear(3, 4, rng=np.random.default_rng(9)), Linear(4, 2, rng=np.random.default_rng(10)))
        model_b.load_state_dict(model_a.state_dict())
        x = rng.normal(size=(5, 3))
        assert np.allclose(model_a(x), model_b(x))

    def test_load_state_dict_missing_key(self):
        model = Sequential(Linear(2, 2))
        with pytest.raises(KeyError):
            model.load_state_dict({})

    def test_load_state_dict_shape_mismatch(self):
        model = Sequential(Linear(2, 2))
        state = model.state_dict()
        state["layer0.weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_num_parameters(self):
        model = Sequential(Linear(3, 4), Linear(4, 2))
        assert model.num_parameters() == (3 * 4 + 4) + (4 * 2 + 2)

    def test_base_module_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(np.zeros(2))


class TestLosses:
    def test_mse_value_and_grad(self):
        loss = MSELoss()
        pred = np.array([1.0, 2.0])
        target = np.array([0.0, 0.0])
        assert np.isclose(loss(pred, target), 2.5)
        assert np.allclose(loss.backward(), [1.0, 2.0])

    def test_mae_value_and_grad(self):
        loss = MAELoss()
        pred = np.array([1.0, -2.0])
        target = np.array([0.0, 0.0])
        assert np.isclose(loss(pred, target), 1.5)
        assert np.allclose(loss.backward(), [0.5, -0.5])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            MSELoss()(np.zeros(3), np.zeros(4))

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            MSELoss().backward()


class TestOptimizers:
    def _quadratic_problem(self):
        # minimise ||W x - y||^2 over W with fixed data
        rng = np.random.default_rng(0)
        layer = Linear(4, 3, rng=rng)
        x = rng.normal(size=(16, 4))
        true_w = rng.normal(size=(3, 4))
        y = x @ true_w.T
        return layer, x, y

    def _train(self, optimizer_cls, **kwargs):
        layer, x, y = self._quadratic_problem()
        optimizer = optimizer_cls(layer.parameters(), **kwargs)
        loss = MSELoss()
        initial = loss(layer(x), y)
        for _ in range(200):
            optimizer.zero_grad()
            value = loss(layer(x), y)
            layer.backward(loss.backward())
            optimizer.step()
        return initial, loss(layer(x), y)

    def test_sgd_converges(self):
        initial, final = self._train(SGD, lr=0.05, momentum=0.9)
        assert final < 0.05 * initial

    def test_adam_converges(self):
        initial, final = self._train(Adam, lr=0.05)
        assert final < 0.05 * initial

    def test_weight_decay_shrinks_weights(self):
        layer = Linear(3, 3, rng=np.random.default_rng(1))
        optimizer = SGD(layer.parameters(), lr=0.1, weight_decay=0.5)
        before = np.linalg.norm(layer.weight.data)
        for _ in range(20):
            optimizer.zero_grad()
            optimizer.step()
        assert np.linalg.norm(layer.weight.data) < before

    def test_gradient_clipping(self):
        layer = Linear(2, 2, rng=np.random.default_rng(2))
        optimizer = SGD(layer.parameters(), lr=0.1)
        for p in layer.parameters():
            p.grad[...] = 100.0
        norm = optimizer.clip_gradients(1.0)
        assert norm > 1.0
        total = np.sqrt(sum(np.sum(p.grad**2) for p in layer.parameters()))
        assert total <= 1.0 + 1e-9

    def test_invalid_arguments(self):
        layer = Linear(2, 2)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)
        with pytest.raises(ValueError):
            SGD(layer.parameters(), lr=-1)
        with pytest.raises(ValueError):
            SGD(layer.parameters(), lr=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            Adam(layer.parameters(), lr=0.1, betas=(1.5, 0.9))
