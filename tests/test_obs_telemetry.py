"""Tests for the telemetry layer (``repro.obs``).

Covers the recorder primitives (counters, gauges, histograms, spans), the
module-level registry, snapshot serialisation/merging, the render helpers
(stage table, JSON dump, Chrome trace), thread-safety under concurrent
increments, and — the load-bearing property for the parallel engine — merge
parity: the same workload driven through :class:`ChunkScheduler` with the
serial, thread, and process backends must produce identical counter totals,
because process workers ship their deltas back as snapshots rather than
writing to the parent's recorder directly.
"""

import json
import pickle
import threading

import pytest

from repro import obs
from repro.obs.recorder import (
    BUCKET_RESOLUTION,
    SNAPSHOT_SCHEMA,
    bucket_index,
    bucket_upper_bound,
)
from repro.obs.render import chrome_trace_events
from repro.parallel import ChunkScheduler


@pytest.fixture()
def recorder():
    """A fresh Recorder installed globally, restored after the test."""
    rec = obs.Recorder()
    previous = obs.set_recorder(rec)
    try:
        yield rec
    finally:
        obs.set_recorder(previous)


# --------------------------------------------------------------------------- #
# histogram buckets
# --------------------------------------------------------------------------- #
class TestHistogram:
    def test_bucket_indexing_is_log2(self):
        assert bucket_index(0.0) == 0
        assert bucket_index(BUCKET_RESOLUTION) == 0
        assert bucket_index(2 * BUCKET_RESOLUTION) == 1
        assert bucket_index(4 * BUCKET_RESOLUTION) == 2
        for i in range(0, 20, 3):
            assert bucket_upper_bound(bucket_index(bucket_upper_bound(i))) >= bucket_upper_bound(i)

    def test_exact_moments_approximate_quantiles(self):
        hist = obs.Histogram()
        values = [0.001, 0.002, 0.004, 0.008, 0.1]
        for v in values:
            hist.observe(v)
        assert hist.count == len(values)
        assert hist.sum == pytest.approx(sum(values))
        assert hist.min == pytest.approx(min(values))
        assert hist.max == pytest.approx(max(values))
        assert hist.mean == pytest.approx(sum(values) / len(values))
        # quantiles come from log2 bucket upper bounds: within 2x of the truth
        q50 = hist.quantile(0.5)
        assert 0.004 <= q50 <= 0.008

    def test_merge_matches_combined_stream(self):
        a, b, both = obs.Histogram(), obs.Histogram(), obs.Histogram()
        for i, v in enumerate([0.01, 0.5, 1e-7, 0.03, 2.0]):
            (a if i % 2 else b).observe(v)
            both.observe(v)
        a.merge(b)
        assert a.count == both.count
        assert a.sum == pytest.approx(both.sum)
        assert a.to_dict()["buckets"] == both.to_dict()["buckets"]
        assert a.min == both.min and a.max == both.max

    def test_dict_roundtrip(self):
        hist = obs.Histogram()
        for v in (0.2, 0.004, 7.0):
            hist.observe(v)
        clone = obs.Histogram.from_dict(hist.to_dict())
        assert clone.to_dict() == hist.to_dict()
        assert clone.quantile(0.95) == hist.quantile(0.95)


# --------------------------------------------------------------------------- #
# recorder primitives and the registry
# --------------------------------------------------------------------------- #
class TestRecorder:
    def test_counters_gauges_histograms(self):
        rec = obs.Recorder()
        rec.count("chunks")
        rec.count("chunks", 4)
        rec.gauge("cache.nbytes", 123.0)
        rec.gauge("cache.nbytes", 456.0)  # gauges keep the latest value
        rec.observe("io_seconds", 0.25)
        snap = rec.snapshot()
        assert snap.counter("chunks") == 5
        assert snap.gauges["cache.nbytes"] == 456.0
        assert snap.histograms["io_seconds"].count == 1
        assert rec.counter("chunks") == 5  # cheap accessor, no snapshot

    def test_span_records_and_observes(self):
        rec = obs.Recorder()
        with rec.span("outer", field="FLNT"):
            with rec.span("inner"):
                pass
        snap = rec.snapshot()
        names = [s.name for s in snap.spans]
        assert names == ["inner", "outer"]  # recorded on exit
        by_name = {s.name: s for s in snap.spans}
        assert by_name["inner"].depth == 1
        assert by_name["outer"].depth == 0
        assert by_name["outer"].args == {"field": "FLNT"}
        # every span also feeds the same-named histogram
        assert snap.histograms["outer"].count == 1

    def test_timer_accumulates(self):
        rec = obs.Recorder()
        for _ in range(3):
            with rec.timer("work"):
                pass
        assert rec.snapshot().histograms["work"].count == 3

    def test_snapshot_reset(self):
        rec = obs.Recorder()
        rec.count("a")
        first = rec.snapshot(reset=True)
        assert first.counter("a") == 1
        assert rec.snapshot().empty

    def test_null_recorder_is_inert(self):
        null = obs.NullRecorder()
        assert not null.enabled
        null.count("x", 5)
        null.observe("y", 1.0)
        with null.span("z", k=1):
            with null.timer("t"):
                pass
        assert null.counter("x") == 0
        assert null.snapshot().empty

    def test_registry_set_and_restore(self):
        rec = obs.Recorder()
        previous = obs.set_recorder(rec)
        try:
            assert obs.get_recorder() is rec
            assert obs.enabled()
            obs.count("via.module", 2)
            assert rec.counter("via.module") == 2
        finally:
            obs.set_recorder(previous)
        assert obs.get_recorder() is previous

    def test_enable_disable(self):
        previous = obs.get_recorder()
        try:
            active = obs.enable()
            assert obs.enabled()
            assert obs.enable() is active  # already enabled: keep it
            obs.disable()
            assert not obs.enabled()
        finally:
            obs.set_recorder(previous)

    def test_env_variable_enables(self, monkeypatch):
        from repro.obs.recorder import _env_enabled

        for value, expect in [
            ("1", True), ("true", True), ("on", True),
            ("", False), ("0", False), ("false", False), ("off", False), ("no", False),
        ]:
            monkeypatch.setenv("REPRO_TELEMETRY", value)
            assert _env_enabled() is expect
        monkeypatch.delenv("REPRO_TELEMETRY")
        assert _env_enabled() is False

    def test_span_cap_drops_and_counts(self):
        rec = obs.Recorder(max_spans=3)
        for _ in range(5):
            with rec.span("s"):
                pass
        snap = rec.snapshot()
        assert len(snap.spans) == 3
        assert snap.counter("obs.spans_dropped") == 2
        assert snap.histograms["s"].count == 5  # histogram still sees all


# --------------------------------------------------------------------------- #
# snapshots: merge, serialisation, pickling
# --------------------------------------------------------------------------- #
class TestSnapshot:
    def _sample(self):
        rec = obs.Recorder()
        rec.count("c", 3)
        rec.gauge("g", 9.0)
        rec.observe("h", 0.5)
        with rec.span("sp", step=1):
            pass
        return rec.snapshot()

    def test_merge_sums_counters_and_histograms(self):
        a, b = self._sample(), self._sample()
        merged = a.merge(b)
        assert merged is a
        assert a.counter("c") == 6
        assert a.histograms["h"].count == 2
        assert a.histograms["sp"].count == 2
        assert len(a.spans) == 2

    def test_json_roundtrip(self):
        snap = self._sample()
        data = json.loads(json.dumps(snap.to_dict()))
        assert data["schema"] == SNAPSHOT_SCHEMA
        clone = obs.TelemetrySnapshot.from_dict(data)
        assert clone.counter("c") == snap.counter("c")
        assert clone.histograms["h"].sum == snap.histograms["h"].sum
        assert clone.spans[0].name == "sp"
        assert clone.spans[0].args == {"step": 1}

    def test_schema_mismatch_rejected(self):
        data = self._sample().to_dict()
        data["schema"] = "repro-telemetry/999"
        with pytest.raises(ValueError, match="telemetry"):
            obs.TelemetrySnapshot.from_dict(data)

    def test_pickle_roundtrip(self):
        snap = self._sample()
        clone = pickle.loads(pickle.dumps(snap))
        assert clone.to_dict() == snap.to_dict()

    def test_merge_snapshot_into_recorder(self):
        rec = obs.Recorder()
        rec.count("c", 1)
        rec.merge_snapshot(self._sample())
        assert rec.counter("c") == 4
        assert rec.snapshot().histograms["h"].count == 1


# --------------------------------------------------------------------------- #
# render helpers
# --------------------------------------------------------------------------- #
class TestRender:
    def test_empty_snapshot_renders_empty(self):
        assert obs.format_stage_table(obs.TelemetrySnapshot()) == ""

    def test_stage_table_contents(self):
        rec = obs.Recorder()
        rec.observe("store.read.decode_seconds", 0.2)
        rec.observe("store.read.decode_seconds", 0.1)
        rec.count("store.cache.hits", 7)
        rec.gauge("store.cache.nbytes", 4096)
        table = obs.format_stage_table(rec.snapshot(), title="telemetry: test")
        assert "telemetry: test" in table
        assert "store.read.decode_seconds" in table
        assert "store.cache.hits" in table
        assert "7" in table

    def test_snapshot_json_file(self, tmp_path):
        rec = obs.Recorder()
        rec.count("c", 2)
        out = tmp_path / "profile.json"
        obs.write_snapshot_json(rec.snapshot(), out)
        data = json.loads(out.read_text(encoding="utf-8"))
        assert data["schema"] == SNAPSHOT_SCHEMA
        assert data["counters"]["c"] == 2

    def test_chrome_trace_events(self, tmp_path):
        rec = obs.Recorder()
        with rec.span("store.read.region_seconds", field="FLNT"):
            with rec.span("pipeline.verify_seconds"):
                pass
        events = chrome_trace_events(rec.snapshot())
        assert len(events) == 2
        assert all(e["ph"] == "X" for e in events)
        cats = {e["name"]: e["cat"] for e in events}
        assert cats["store.read.region_seconds"] == "store"
        assert cats["pipeline.verify_seconds"] == "pipeline"
        out = tmp_path / "trace.json"
        obs.write_chrome_trace(rec.snapshot(), out)
        doc = json.loads(out.read_text(encoding="utf-8"))
        assert doc["displayTimeUnit"] == "ms"
        assert len(doc["traceEvents"]) == 2


# --------------------------------------------------------------------------- #
# thread-safety: concurrent increments
# --------------------------------------------------------------------------- #
class TestConcurrency:
    def test_concurrent_increments_lose_nothing(self):
        rec = obs.Recorder()
        n_threads, n_iter = 8, 2_000
        barrier = threading.Barrier(n_threads)

        def worker():
            barrier.wait()
            for _ in range(n_iter):
                rec.count("stress.counter")
                rec.observe("stress.hist", 0.001)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = rec.snapshot()
        assert snap.counter("stress.counter") == n_threads * n_iter
        assert snap.histograms["stress.hist"].count == n_threads * n_iter

    def test_concurrent_spans_keep_private_depth(self):
        rec = obs.Recorder(max_spans=100_000)
        errors = []

        def worker():
            try:
                for _ in range(200):
                    with rec.span("outer"):
                        with rec.span("inner"):
                            pass
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        depths = {s.name: set() for s in rec.snapshot().spans}
        for s in rec.snapshot().spans:
            depths[s.name].add(s.depth)
        # span depth is tracked per thread: nesting never bleeds across threads
        assert depths == {"outer": {0}, "inner": {1}}


# --------------------------------------------------------------------------- #
# merge parity across scheduler backends
# --------------------------------------------------------------------------- #
def _telemetry_workload(item):
    """Module-level (picklable) task that records into the global recorder.

    With the process backend the "global recorder" is a fresh worker-local one
    installed by the scheduler's telemetry shim; its snapshot ships back with
    the result and merges into the parent recorder.
    """
    obs.count("work.items")
    obs.count("work.value", item)
    with obs.span("work.step_seconds", item=item):
        obs.observe("work.cost", float(item) * 1e-4)
    return item * item


@pytest.mark.parametrize("executor_kind", ["serial", "thread", "process"])
def test_backend_counter_parity(executor_kind, recorder):
    """Identical counter totals no matter which backend ran the workload."""
    items = list(range(40))
    scheduler = ChunkScheduler(jobs=1 if executor_kind == "serial" else 3,
                               executor_kind=executor_kind)
    try:
        results = scheduler.map(_telemetry_workload, items)
    finally:
        scheduler.close()
    assert results == [i * i for i in items]

    snap = recorder.snapshot()
    # workload counters: exact totals, independent of how work was distributed
    assert snap.counter("work.items") == len(items)
    assert snap.counter("work.value") == sum(items)
    assert snap.histograms["work.cost"].count == len(items)
    assert snap.histograms["work.cost"].sum == pytest.approx(sum(items) * 1e-4)
    assert snap.histograms["work.step_seconds"].count == len(items)
    # scheduler accounting: one task per item on every backend
    assert snap.counter("scheduler.tasks") == len(items)
    assert snap.histograms["scheduler.task_seconds"].count == len(items)
    assert snap.histograms["scheduler.queue_wait_seconds"].count == len(items)


def test_backend_parity_totals_match_each_other(recorder):
    """Serial, thread, and process runs produce byte-identical counter dicts."""
    items = list(range(25))
    totals = {}
    for kind in ("serial", "thread", "process"):
        rec = obs.Recorder()
        previous = obs.set_recorder(rec)
        try:
            scheduler = ChunkScheduler(jobs=1 if kind == "serial" else 2,
                                       executor_kind=kind)
            try:
                scheduler.map(_telemetry_workload, items)
            finally:
                scheduler.close()
        finally:
            obs.set_recorder(previous)
        snap = rec.snapshot()
        totals[kind] = {
            "counters": dict(sorted(snap.counters.items())),
            "hist_counts": {name: hist.count for name, hist in sorted(snap.histograms.items())},
        }
    assert totals["serial"] == totals["thread"] == totals["process"]


def test_disabled_recorder_runs_unwrapped(recorder):
    """With telemetry disabled the scheduler does not wrap tasks at all."""
    previous = obs.set_recorder(obs.NullRecorder())
    try:
        scheduler = ChunkScheduler(jobs=1, executor_kind="serial")
        assert scheduler._instrument(_telemetry_workload, serial=True) is None
        results = scheduler.map(_telemetry_workload, [1, 2, 3])
        assert results == [1, 4, 9]
    finally:
        obs.set_recorder(previous)


# --------------------------------------------------------------------------- #
# CLI --profile surfaces
# --------------------------------------------------------------------------- #
class TestCliProfile:
    @pytest.fixture()
    def archive(self, tmp_path):
        from repro.store.cli import main

        path = tmp_path / "profiled.xfa"
        assert main(["pack", "cesm", str(path), "--shape", "48,64", "--chunk", "24,24"]) == 0
        return path

    def test_profile_stage_table_on_stderr(self, archive, capsys):
        from repro.store.cli import main

        assert main(["verify", str(archive), "--deep", "--profile"]) == 0
        captured = capsys.readouterr()
        assert "telemetry: repro verify" in captured.err
        assert "store.read.decode_seconds" in captured.err
        assert "store.read.decode_seconds" not in captured.out  # stdout stays clean

    def test_profile_json_consistent_with_table(self, archive, tmp_path, capsys):
        from repro.store.cli import main

        out = tmp_path / "profile.json"
        assert main(["verify", str(archive), "--deep",
                     "--profile", "--profile-json", str(out)]) == 0
        captured = capsys.readouterr()
        data = json.loads(out.read_text(encoding="utf-8"))
        assert data["schema"] == SNAPSHOT_SCHEMA
        # the JSON dump and the stage table describe the same run
        decoded = data["counters"]["store.read.chunks_decoded"]
        assert decoded > 0
        assert str(int(decoded)) in captured.err
        assert data["counters"]["store.read.bytes_in"] > 0
        assert data["histograms"]["store.read.decode_seconds"]["count"] == decoded

    def test_trace_flag_writes_chrome_trace(self, archive, tmp_path):
        from repro.store.cli import main

        trace = tmp_path / "trace.json"
        assert main(["--trace", str(trace), "verify", str(archive), "--deep"]) == 0
        doc = json.loads(trace.read_text(encoding="utf-8"))
        assert doc["displayTimeUnit"] == "ms"
        assert doc["traceEvents"], "deep verify must emit at least one span"
        assert all(event["ph"] == "X" for event in doc["traceEvents"])

    def test_no_profile_leaves_recorder_untouched(self, archive, capsys):
        from repro.store.cli import main

        assert not obs.enabled()
        assert main(["verify", str(archive)]) == 0
        assert not obs.enabled()
        assert "telemetry" not in capsys.readouterr().err


def test_archive_read_parity_serial_vs_parallel(tmp_path, recorder):
    """End-to-end: reading an archive records the same store counters at
    ``jobs=1`` and ``jobs=3`` (thread backend)."""
    import numpy as np

    from repro.store import ArchiveReader, ArchiveWriter
    from repro.sz.errors import ErrorBound

    rng = np.random.default_rng(7)
    data = rng.normal(size=(96, 96)).astype(np.float64)
    path = tmp_path / "parity.xfa"
    with ArchiveWriter(path, chunk_shape=(32, 32), error_bound=ErrorBound.absolute(1e-3)) as writer:
        writer.add_field("T", data)

    per_jobs = {}
    for jobs in (1, 3):
        rec = obs.Recorder()
        previous = obs.set_recorder(rec)
        try:
            with ArchiveReader(path, jobs=jobs) as reader:
                reader.read_field("T")
        finally:
            obs.set_recorder(previous)
        snap = rec.snapshot()
        per_jobs[jobs] = {
            name: value
            for name, value in snap.counters.items()
            if name.startswith(("store.read.", "store.cache.", "store.codec."))
        }
    assert per_jobs[1] == per_jobs[3]
    assert per_jobs[1]["store.read.chunks_decoded"] == 9
