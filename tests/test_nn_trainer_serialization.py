"""Unit tests for the trainer and model serialization."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Conv2d,
    Linear,
    MSELoss,
    ReLU,
    Sequential,
    Trainer,
    count_parameters,
    parameter_nbytes,
    state_from_bytes,
    state_to_bytes,
)


class TestTrainer:
    def _problem(self, rng):
        model = Sequential(Conv2d(1, 4, 3, rng=rng), ReLU(), Conv2d(4, 1, 3, rng=rng))
        x = rng.normal(size=(24, 1, 10, 10))
        y = 0.5 * np.roll(x, 1, axis=2)
        return model, x, y

    def test_loss_decreases(self):
        rng = np.random.default_rng(0)
        model, x, y = self._problem(rng)
        trainer = Trainer(model, Adam(model.parameters(), lr=5e-3), batch_size=8, rng=rng)
        history = trainer.fit(x, y, epochs=6)
        assert history.improved()
        assert len(history.train_loss) == 6
        assert history.final_loss <= history.train_loss[0]

    def test_validation_tracked(self):
        rng = np.random.default_rng(1)
        model, x, y = self._problem(rng)
        trainer = Trainer(model, Adam(model.parameters(), lr=1e-3), batch_size=8, rng=rng)
        history = trainer.fit(x[:16], y[:16], epochs=2, validation=(x[16:], y[16:]))
        assert len(history.val_loss) == 2

    def test_evaluate(self):
        rng = np.random.default_rng(2)
        model, x, y = self._problem(rng)
        trainer = Trainer(model, Adam(model.parameters(), lr=1e-3), batch_size=8, rng=rng)
        value = trainer.evaluate(x, y)
        assert value > 0

    def test_history_dict(self):
        rng = np.random.default_rng(3)
        model, x, y = self._problem(rng)
        trainer = Trainer(model, Adam(model.parameters(), lr=1e-3), batch_size=8, rng=rng)
        history = trainer.fit(x, y, epochs=1)
        payload = history.as_dict()
        assert payload["epochs"] == [1]
        assert len(payload["train_loss"]) == 1

    def test_invalid_arguments(self):
        rng = np.random.default_rng(4)
        model, x, y = self._problem(rng)
        trainer = Trainer(model, Adam(model.parameters(), lr=1e-3), rng=rng)
        with pytest.raises(ValueError):
            trainer.fit(x, y[:-1], epochs=1)
        with pytest.raises(ValueError):
            trainer.fit(x, y, epochs=0)
        with pytest.raises(ValueError):
            Trainer(model, Adam(model.parameters(), lr=1e-3), batch_size=0)

    def test_empty_history_raises(self):
        from repro.nn.trainer import TrainingHistory

        with pytest.raises(ValueError):
            TrainingHistory().final_loss


class TestSerialization:
    def test_round_trip(self):
        rng = np.random.default_rng(5)
        model = Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng))
        payload = state_to_bytes(model)
        clone = Sequential(Linear(4, 8), ReLU(), Linear(8, 2))
        state_from_bytes(clone, payload)
        x = rng.normal(size=(3, 4))
        assert np.allclose(model(x), clone(x), atol=1e-6)

    def test_byte_size_accounting(self):
        model = Sequential(Linear(4, 8), Linear(8, 2))
        assert count_parameters(model) == (4 * 8 + 8) + (8 * 2 + 2)
        assert parameter_nbytes(model) == count_parameters(model) * 4
        # serialized payload = header + float32 body
        assert len(state_to_bytes(model)) > parameter_nbytes(model)

    def test_truncated_payload(self):
        model = Sequential(Linear(4, 4))
        payload = state_to_bytes(model)
        with pytest.raises(ValueError):
            state_from_bytes(Sequential(Linear(4, 4)), payload[:-10])

    def test_too_small_payload(self):
        with pytest.raises(ValueError):
            state_from_bytes(Sequential(Linear(2, 2)), b"\x01")
