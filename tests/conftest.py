"""Shared fixtures: small cached synthetic datasets and RNGs."""

import numpy as np
import pytest

from repro.data import make_dataset


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def cesm_small():
    """Small CESM-like 2D dataset shared across tests."""
    return make_dataset("cesm", shape=(48, 96), seed=3)


@pytest.fixture(scope="session")
def hurricane_small():
    """Small Hurricane-like 3D dataset shared across tests."""
    return make_dataset("hurricane", shape=(10, 32, 32), seed=4)


@pytest.fixture(scope="session")
def scale_small():
    """Small SCALE-like 3D dataset shared across tests."""
    return make_dataset("scale", shape=(8, 40, 40), seed=5)
