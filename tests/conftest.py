"""Shared fixtures: cached synthetic datasets, RNGs, and build-once archives.

Archive construction (chunked compression, CFNN training for cross-field
fields) dominates the store/CLI test runtime, and most tests need the *same*
archive.  The ``*_master`` fixtures build each archive exactly once per
session; tests that mutate the file (corruption, truncation) take a cheap
per-test copy instead of recompressing from scratch.
"""

import shutil

import numpy as np
import pytest

from repro.data import make_dataset


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def cesm_small():
    """Small CESM-like 2D dataset shared across tests."""
    return make_dataset("cesm", shape=(48, 96), seed=3)


@pytest.fixture(scope="session")
def hurricane_small():
    """Small Hurricane-like 3D dataset shared across tests."""
    return make_dataset("hurricane", shape=(10, 32, 32), seed=4)


@pytest.fixture(scope="session")
def scale_small():
    """Small SCALE-like 3D dataset shared across tests."""
    return make_dataset("scale", shape=(8, 40, 40), seed=5)


# --------------------------------------------------------------------------- #
# build-once archives and fieldset directories
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="session")
def multi_codec_archive_master(tmp_path_factory, cesm_small):
    """A packed archive exercising every seed codec — built once per session.

    Never hand this path to a test directly: tests corrupt archive bytes.
    Use the function-scoped ``archive`` copy in ``test_store_archive.py`` (or
    take your own copy).
    """
    from repro.store import ArchiveWriter
    from repro.sz.errors import ErrorBound

    path = tmp_path_factory.mktemp("archive-masters") / "multi-codec.xfa"
    with ArchiveWriter(
        path, chunk_shape=(24, 24), error_bound=ErrorBound.relative(1e-3)
    ) as writer:
        writer.add_field("FLNT", cesm_small["FLNT"].data)
        writer.add_field("FLNTC", cesm_small["FLNTC"].data, codec="zfp")
        writer.add_field("CLDLOW", cesm_small["CLDLOW"].data, codec="lossless")
        writer.add_field("CLDMED", cesm_small["CLDMED"].data)
        writer.add_field(
            "LWCF",
            cesm_small["LWCF"].data,
            codec="cross-field",
            anchors=("FLNT", "FLNTC"),
            epochs=2,
            n_patches=16,
        )
    return path


@pytest.fixture(scope="session")
def cli_fieldset_dir(tmp_path_factory, cesm_small):
    """An on-disk fieldset directory (FLNT, FLNTC, LWCF) — built once.

    Read-only: CLI tests pack *from* it; none may write into it.
    """
    from repro.data.io import write_fieldset

    dest = tmp_path_factory.mktemp("fieldsets") / "cesm-small"
    write_fieldset(cesm_small.subset(["FLNT", "FLNTC", "LWCF"]), dest)
    return dest


@pytest.fixture(scope="session")
def cli_archive_master(tmp_path_factory, cli_fieldset_dir):
    """``repro pack`` of :func:`cli_fieldset_dir` — built once per session.

    Read-only for the same reason as :func:`multi_codec_archive_master`;
    mutating tests copy it via :func:`copy_archive`.
    """
    from repro.store.cli import main

    path = tmp_path_factory.mktemp("archive-masters") / "cli-snap.xfa"
    code = main(
        ["pack", str(cli_fieldset_dir), str(path), "--chunk", "24,24", "--error-bound", "1e-3"]
    )
    assert code == 0
    return path


@pytest.fixture()
def copy_archive(tmp_path):
    """Copy a master archive into the test's tmp dir (safe to corrupt)."""

    def _copy(master, name="snap.xfa"):
        dest = tmp_path / name
        shutil.copyfile(master, dest)
        return dest

    return _copy
