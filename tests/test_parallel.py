"""Unit and integration tests for block-parallel compression."""

import numpy as np
import pytest

from repro.parallel import BlockParallelCompressor, BlockSpec, plan_blocks
from repro.sz import ErrorBound, SZCompressor


class TestBlockPlanning:
    def test_plan_covers_grid(self):
        specs = plan_blocks((10, 13), (4, 4))
        covered = np.zeros((10, 13), dtype=int)
        for spec in specs:
            covered[spec.slices] += 1
        assert np.all(covered == 1)
        assert [s.index for s in specs] == list(range(len(specs)))

    def test_block_spec_round_trip(self):
        spec = plan_blocks((10, 10), (4, 4))[3]
        rebuilt = BlockSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert rebuilt.shape == spec.shape
        assert rebuilt.size == spec.size

    def test_extract(self):
        data = np.arange(100).reshape(10, 10)
        spec = plan_blocks((10, 10), (4, 4))[0]
        assert np.array_equal(spec.extract(data), data[:4, :4])

    def test_rank_mismatch(self):
        with pytest.raises(ValueError):
            plan_blocks((10, 10), (4,))


class TestBlockParallelCompressor:
    @pytest.mark.parametrize("kind", ["serial", "thread"])
    def test_round_trip_2d(self, cesm_small, kind):
        data = cesm_small["FLNT"].data
        parallel = BlockParallelCompressor(
            compressor=SZCompressor(error_bound=ErrorBound.relative(1e-3)),
            block_shape=(24, 24),
            executor_kind=kind,
            max_workers=3,
        )
        result = parallel.compress(data, field_name="FLNT")
        recon = parallel.decompress(result.payload)
        assert recon.shape == data.shape
        assert np.max(np.abs(recon.astype(np.float64) - data.astype(np.float64))) <= result.abs_error_bound * (1 + 1e-9)
        assert result.n_blocks == len(result.block_results)
        assert result.ratio > 1.0

    def test_round_trip_3d(self, hurricane_small):
        data = hurricane_small["Uf"].data
        parallel = BlockParallelCompressor(block_shape=(8, 16, 16))
        result = parallel.compress(data)
        recon = parallel.decompress(result.payload)
        assert np.max(np.abs(recon.astype(np.float64) - data.astype(np.float64))) <= result.abs_error_bound * (1 + 1e-9)

    def test_error_bound_matches_single_shot_semantics(self, cesm_small):
        # blocks use the absolute bound resolved on the FULL array, not per block
        data = cesm_small["FLUT"].data
        eb = ErrorBound.relative(1e-3)
        single = SZCompressor(error_bound=eb).compress(data)
        blocked = BlockParallelCompressor(
            compressor=SZCompressor(error_bound=eb), block_shape=(16, 16)
        ).compress(data)
        assert np.isclose(blocked.abs_error_bound, single.abs_error_bound)

    def test_blocked_ratio_close_to_single_shot(self, cesm_small):
        data = cesm_small["CLDTOT"].data
        eb = ErrorBound.relative(1e-3)
        single = SZCompressor(error_bound=eb).compress(data)
        blocked = BlockParallelCompressor(
            compressor=SZCompressor(error_bound=eb), block_shape=(24, 24)
        ).compress(data)
        # per-block headers cost something, but not an order of magnitude
        assert blocked.ratio > 0.3 * single.ratio

    def test_default_block_shape(self, cesm_small):
        parallel = BlockParallelCompressor()
        result = parallel.compress(cesm_small["LWCF"].data)
        assert result.n_blocks >= 1

    def test_invalid_executor(self):
        with pytest.raises(ValueError):
            BlockParallelCompressor(executor_kind="gpu")

    def test_wrong_payload_rejected(self, cesm_small):
        single = SZCompressor().compress(cesm_small["LWCF"].data)
        with pytest.raises(ValueError):
            BlockParallelCompressor().decompress(single.payload)

    def test_bit_rate_property(self, cesm_small):
        result = BlockParallelCompressor().compress(cesm_small["LWCF"].data)
        assert result.bit_rate > 0

    def test_bit_rate_uses_element_count(self, cesm_small):
        # float32 and float64 copies of the same field must report bits per
        # VALUE relative to the same element count, not nbytes // 4
        data32 = cesm_small["LWCF"].data.astype(np.float32)
        data64 = data32.astype(np.float64)
        eb = ErrorBound.absolute(0.05)
        r32 = BlockParallelCompressor(compressor=SZCompressor(error_bound=eb)).compress(data32)
        r64 = BlockParallelCompressor(compressor=SZCompressor(error_bound=eb)).compress(data64)
        assert r32.element_count == r64.element_count == data32.size
        assert r32.bit_rate == 8.0 * r32.compressed_nbytes / data32.size
        assert r64.bit_rate == 8.0 * r64.compressed_nbytes / data64.size
        # identical content at the same absolute bound: similar bits/value,
        # while the old nbytes // 4 accounting would have halved the f64 rate
        assert abs(r64.bit_rate - r32.bit_rate) < 0.5 * r32.bit_rate

    def test_bit_rate_legacy_fallback(self):
        from repro.parallel import BlockCompressionResult

        legacy = BlockCompressionResult(
            payload=b"x" * 100,
            original_nbytes=400,
            compressed_nbytes=100,
            abs_error_bound=0.1,
            n_blocks=1,
        )
        assert legacy.bit_rate == 8.0  # falls back to 4-byte elements

    def test_parallel_map_orders_and_validates(self):
        from repro.parallel import parallel_map

        items = list(range(20))
        assert parallel_map(lambda x: x * x, items, "thread", 4) == [x * x for x in items]
        assert parallel_map(lambda x: x + 1, items, "serial") == [x + 1 for x in items]
        with pytest.raises(ValueError):
            parallel_map(lambda x: x, items, "gpu")

    def test_parallel_imap_windows_submissions(self):
        import threading
        import time

        from repro.parallel import parallel_imap

        submitted = []
        lock = threading.Lock()

        def work(x):
            with lock:
                submitted.append(x)
            return x

        with pytest.raises(ValueError):  # validation is eager, not deferred
            parallel_imap(work, range(5), "gpu")

        gen = parallel_imap(work, range(50), "thread", max_workers=2)
        first = next(gen)  # fills the 2*2 submission window, yields item 0
        assert first == 0
        time.sleep(0.05)  # workers drain the window; no new submissions yet
        assert len(submitted) <= 4
        assert list(gen) == list(range(1, 50))  # remaining results, in order

    def test_parallel_imap_cancels_window_on_failure(self):
        import threading

        from repro.parallel import parallel_imap

        executed = []
        lock = threading.Lock()

        def work(x):
            with lock:
                executed.append(x)
            if x == 0:
                raise RuntimeError("chunk failed")
            return x

        gen = parallel_imap(work, range(40), "thread", max_workers=1)
        with pytest.raises(RuntimeError, match="chunk failed"):
            list(gen)
        # queued window items are cancelled on failure; only items already
        # running (at most the 2*workers window) may have executed
        assert len(executed) <= 2
