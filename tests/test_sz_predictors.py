"""Unit tests for the local predictors (Lorenzo, regression, interpolation)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.sz.predictors import (
    InterpolationPredictor,
    RegressionPredictor,
    lorenzo_inverse,
    lorenzo_predict,
    lorenzo_transform,
)


class TestLorenzo:
    def test_2d_formula(self):
        q = np.arange(12, dtype=np.int64).reshape(3, 4)
        pred = lorenzo_predict(q)
        assert pred[0, 0] == 0
        assert pred[1, 1] == q[0, 1] + q[1, 0] - q[0, 0]
        assert pred[2, 3] == q[1, 3] + q[2, 2] - q[1, 2]

    def test_exact_on_linear_ramp_2d(self):
        i, j = np.meshgrid(np.arange(10), np.arange(12), indexing="ij")
        q = (3 * i + 5 * j).astype(np.int64)
        residual = lorenzo_transform(q)
        # a plane is reproduced exactly away from the boundary
        assert np.all(residual[1:, 1:] == 0)

    def test_exact_on_linear_ramp_3d(self):
        i, j, k = np.meshgrid(np.arange(6), np.arange(7), np.arange(5), indexing="ij")
        q = (2 * i - j + 4 * k).astype(np.int64)
        residual = lorenzo_transform(q)
        assert np.all(residual[1:, 1:, 1:] == 0)

    def test_roundtrip_1d_2d_3d(self):
        rng = np.random.default_rng(0)
        for shape in [(37,), (11, 13), (5, 7, 9)]:
            q = rng.integers(-10000, 10000, size=shape)
            assert np.array_equal(lorenzo_inverse(lorenzo_transform(q)), q)

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            lorenzo_predict(np.zeros((3, 3)))
        with pytest.raises(TypeError):
            lorenzo_inverse(np.zeros((3, 3)))

    def test_rejects_4d(self):
        with pytest.raises(ValueError):
            lorenzo_predict(np.zeros((2, 2, 2, 2), dtype=np.int64))

    @settings(max_examples=30, deadline=None)
    @given(arrays(np.int64, (5, 6), elements=st.integers(-1000, 1000)))
    def test_property_roundtrip(self, q):
        assert np.array_equal(lorenzo_inverse(lorenzo_transform(q)), q)


class TestRegression:
    def test_roundtrip(self):
        rng = np.random.default_rng(1)
        q = rng.integers(-500, 500, size=(13, 17))
        reg = RegressionPredictor(block_size=5)
        residuals, coeffs = reg.encode(q)
        assert np.array_equal(reg.decode(residuals, coeffs), q)

    def test_plane_blocks_have_small_residuals(self):
        i, j = np.meshgrid(np.arange(12), np.arange(12), indexing="ij")
        q = (10 * i + 7 * j).astype(np.int64)
        reg = RegressionPredictor(block_size=6)
        residuals, _ = reg.encode(q)
        assert np.abs(residuals).max() <= 1  # rounding only

    def test_roundtrip_3d(self):
        rng = np.random.default_rng(2)
        q = rng.integers(-50, 50, size=(7, 8, 9))
        reg = RegressionPredictor(block_size=4)
        residuals, coeffs = reg.encode(q)
        assert np.array_equal(reg.decode(residuals, coeffs), q)

    def test_coefficient_count_mismatch(self):
        reg = RegressionPredictor(block_size=4)
        residuals, coeffs = reg.encode(np.zeros((8, 8), dtype=np.int64))
        with pytest.raises(ValueError):
            reg.decode(np.zeros((12, 12), dtype=np.int64), coeffs)

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            RegressionPredictor(block_size=1)


class TestInterpolation:
    def test_roundtrip_various_shapes(self):
        rng = np.random.default_rng(3)
        predictor = InterpolationPredictor()
        for shape in [(17,), (16,), (9, 13), (16, 16), (5, 9, 7), (8, 8, 8), (1, 12)]:
            q = rng.integers(-300, 300, size=shape)
            residuals = predictor.encode(q)
            assert residuals.shape == q.shape
            assert np.array_equal(predictor.decode(residuals), q)

    def test_linear_data_small_residuals(self):
        q = (np.arange(33, dtype=np.int64) * 4).reshape(33)
        predictor = InterpolationPredictor()
        residuals = predictor.encode(q)
        # linear interpolation of a linear sequence is exact except the coarse seeds
        assert np.abs(residuals[1:]).max() <= np.abs(q).max()
        assert np.count_nonzero(residuals[1:]) < q.size // 2

    def test_roundtrip_smooth_field(self):
        x = np.linspace(0, 4 * np.pi, 64)
        q = np.rint(1000 * np.sin(x)[None, :] * np.cos(x)[:, None]).astype(np.int64)
        predictor = InterpolationPredictor()
        assert np.array_equal(predictor.decode(predictor.encode(q)), q)
