"""CompressionPipeline end to end: mixed codecs, cross-field, provenance."""

import numpy as np
import pytest

from repro.data import make_dataset
from repro.pipeline import (
    CompressionPipeline,
    FieldRule,
    PipelineConfig,
    PipelineConfigError,
    reconstruct_anchors,
)
from repro.store import ArchiveReader
from repro.sz.errors import ErrorBound


@pytest.fixture(scope="module")
def cesm():
    return make_dataset("cesm", shape=(48, 96), seed=5)


@pytest.fixture(scope="module")
def mixed_archive(cesm, tmp_path_factory):
    config = PipelineConfig(
        name="mixed",
        codec="sz",
        error_bound=1e-3,
        chunk_shape=(24, 48),
        fields={
            "FLNTC": FieldRule(codec="zfp"),
            "FLUTC": FieldRule(codec="lossless"),
        },
        attrs={"run": "unit-test"},
    )
    path = tmp_path_factory.mktemp("pipeline") / "mixed.xfa"
    pipeline = CompressionPipeline(config)
    result = pipeline.compress(cesm, path, fields=["FLNT", "FLNTC", "FLUTC"])
    return pipeline, path, result


class TestCompress:
    def test_reports_per_field_codec_and_ratio(self, mixed_archive):
        _, _, result = mixed_archive
        by_name = {f.name: f for f in result.fields}
        assert by_name["FLNT"].codec == "sz"
        assert by_name["FLNTC"].codec == "zfp"
        assert by_name["FLUTC"].codec == "lossless"
        assert result.ratio > 1.0
        assert result.original_nbytes == 3 * 48 * 96 * 4
        assert "FLNT" in result.format()

    def test_error_bound_honoured_per_field(self, mixed_archive, cesm):
        pipeline, path, _ = mixed_archive
        restored = pipeline.decompress(path)
        for name in ("FLNT", "FLNTC"):
            err = np.max(
                np.abs(
                    restored[name].data.astype(np.float64)
                    - cesm[name].data.astype(np.float64)
                )
            )
            assert err <= 1e-3 * cesm[name].value_range * (1 + 1e-9)

    def test_lossless_rule_is_exact(self, mixed_archive, cesm):
        pipeline, path, _ = mixed_archive
        restored = pipeline.decompress(path, fields=["FLUTC"])
        assert restored.names == ["FLUTC"]
        assert np.array_equal(restored["FLUTC"].data, cesm["FLUTC"].data)

    def test_verify_passes(self, mixed_archive):
        pipeline, path, _ = mixed_archive
        assert pipeline.verify(path, deep=True)["ok"]

    def test_config_recorded_in_archive_attrs(self, mixed_archive):
        _, path, _ = mixed_archive
        with ArchiveReader(path) as reader:
            attrs = reader.attrs
        assert attrs["pipeline"] == "mixed"
        assert attrs["run"] == "unit-test"
        assert attrs["pipeline_config"]["fields"]["FLNTC"]["codec"] == "zfp"
        # the recorded config parses and validates as-is
        assert PipelineConfig.from_dict(attrs["pipeline_config"]).name == "mixed"

    def test_decompress_works_without_config(self, mixed_archive, cesm):
        _, path, _ = mixed_archive
        restored = CompressionPipeline().decompress(path)
        assert sorted(restored.names) == ["FLNT", "FLNTC", "FLUTC"]
        assert restored.name == cesm.name

    def test_jobs_knob_reaches_both_directions(self, cesm, tmp_path):
        # serial (jobs=1) and parallel pipelines must produce identical
        # archives and identical restored fieldsets — the engine only changes
        # scheduling, never results
        restored = {}
        for jobs in (1, 4):
            config = PipelineConfig(codec="sz", error_bound=1e-3, chunk_shape=(24, 48), jobs=jobs)
            pipeline = CompressionPipeline(config)
            path = tmp_path / f"jobs{jobs}.xfa"
            pipeline.compress(cesm, path, fields=["FLNT", "FLNTC"])
            assert pipeline.verify(path, deep=True)["ok"]
            restored[jobs] = pipeline.decompress(path)
        # identical compressed chunks (the recorded pipeline_config attr
        # differs by the jobs value itself, so whole files are not compared)
        crcs = {}
        for jobs in (1, 4):
            with ArchiveReader(tmp_path / f"jobs{jobs}.xfa") as reader:
                crcs[jobs] = {
                    name: [c.crc32 for c in reader.field(name).chunks] for name in reader.names
                }
        assert crcs[1] == crcs[4]
        for name in restored[1].names:
            assert np.array_equal(restored[1][name].data, restored[4][name].data)


class TestCrossFieldRules:
    def test_target_written_after_anchors_and_bounded(self, tmp_path):
        dataset = make_dataset("hurricane", shape=(8, 32, 32), seed=3).subset(
            ["Wf", "Uf", "Vf"]  # target listed first on purpose
        )
        config = PipelineConfig(
            codec="sz",
            error_bound=1e-3,
            chunk_shape=(8, 16, 16),
            fields={
                "Wf": FieldRule(
                    codec="cross-field",
                    anchors=("Uf", "Vf"),
                    codec_params={"epochs": 2, "n_patches": 8},
                )
            },
        )
        pipeline = CompressionPipeline(config)
        path = tmp_path / "cf.xfa"
        result = pipeline.compress(dataset, path)
        # anchors are reordered ahead of the anchored target
        assert [f.name for f in result.fields] == ["Uf", "Vf", "Wf"]
        with ArchiveReader(path) as reader:
            assert reader.field("Wf").anchors == ("Uf", "Vf")
        restored = pipeline.decompress(path)
        err = np.max(
            np.abs(
                restored["Wf"].data.astype(np.float64)
                - dataset["Wf"].data.astype(np.float64)
            )
        )
        assert err <= 1e-3 * dataset["Wf"].value_range * (1 + 1e-9)

    def test_missing_anchor_in_fieldset_fails_early(self, cesm, tmp_path):
        config = PipelineConfig(
            fields={"LWCF": FieldRule(codec="cross-field", anchors=("NOPE",))}
        )
        with pytest.raises(PipelineConfigError, match="not in the field set"):
            CompressionPipeline(config).compress(cesm, tmp_path / "x.xfa")
        assert not (tmp_path / "x.xfa").exists()

    def test_anchor_outside_selection_fails_early(self, cesm, tmp_path):
        config = PipelineConfig(
            fields={"LWCF": FieldRule(codec="cross-field", anchors=("FLNT",))}
        )
        with pytest.raises(PipelineConfigError, match="not part of the"):
            CompressionPipeline(config).compress(
                cesm, tmp_path / "x.xfa", fields=["LWCF"]
            )

    def test_unknown_selected_field_fails_early(self, cesm, tmp_path):
        with pytest.raises(PipelineConfigError, match="not in the field set"):
            CompressionPipeline().compress(cesm, tmp_path / "x.xfa", fields=["NOPE"])


class TestReconstructAnchors:
    def test_round_trip_respects_bound_and_dtype(self, cesm):
        (recon,) = reconstruct_anchors(cesm, ["FLNT"], ErrorBound.relative(1e-3))
        assert recon.dtype == np.float64
        err = np.max(np.abs(recon - cesm["FLNT"].data.astype(np.float64)))
        assert 0.0 < err <= 1e-3 * cesm["FLNT"].value_range * (1 + 1e-9)

    def test_cache_is_shared_and_keyed(self, cesm):
        cache = {}
        first = reconstruct_anchors(
            cesm, ["FLNT"], 1e-3, cache=cache, cache_key=("cesm", 1e-3)
        )
        again = reconstruct_anchors(
            cesm, ["FLNT"], 1e-3, cache=cache, cache_key=("cesm", 1e-3)
        )
        assert again[0] is first[0]
        assert set(cache) == {("cesm", 1e-3, "FLNT")}

    def test_bare_float_bound_means_relative(self, cesm):
        via_float = reconstruct_anchors(cesm, ["FLNTC"], 1e-3)
        via_bound = reconstruct_anchors(cesm, ["FLNTC"], ErrorBound.relative(1e-3))
        assert np.array_equal(via_float[0], via_bound[0])


class TestTimeseries:
    @pytest.fixture(scope="class")
    def series(self):
        from repro.data import make_timeseries

        return make_timeseries(
            "cesm", shape=(24, 48), steps=4, seed=6, fields=("FLNT", "FLNTC"),
            drift=0.2, noise_level=0.005,
        )

    @pytest.fixture(scope="class")
    def config(self):
        return PipelineConfig(
            codec="sz",
            error_bound=1e-3,
            chunk_shape=(12, 24),
            temporal={"mode": "delta", "anchor_every": 3},
        )

    def test_compress_timeseries_round_trip(self, series, config, tmp_path):
        path = tmp_path / "series.xfa"
        pipeline = CompressionPipeline(config)
        result = pipeline.compress_timeseries(series, path, times=[0.5 * t for t in range(4)])
        assert result.extras["timesteps"] == 4
        assert len(result.fields) == 8  # 2 fields x 4 steps
        assert pipeline.verify(path, deep=True)["ok"]
        with ArchiveReader(path) as reader:
            assert reader.steps == [0, 1, 2, 3]
            assert reader.manifest.timestep(2).time == 1.0
            # anchors at occurrences 0 and 3 with anchor_every=3
            codecs = [reader.field(f"FLNT@{t}").codec for t in range(4)]
            assert codecs == ["sz", "temporal-delta", "temporal-delta", "sz"]
            for t, snapshot in enumerate(series):
                restored = reader.read_timestep(t)
                for field in snapshot:
                    err = np.max(
                        np.abs(
                            restored[field.name].data.astype(np.float64)
                            - field.data.astype(np.float64)
                        )
                    )
                    bound = reader.field(f"{field.name}@{t}").abs_error_bound
                    assert err <= bound * (1 + 1e-6), (t, field.name)

    def test_append_timesteps_continues_cadence(self, series, config, tmp_path):
        path = tmp_path / "series.xfa"
        pipeline = CompressionPipeline(config)
        pipeline.compress_timeseries(series[:2], path)
        result = pipeline.append_timesteps(path, series[2:])
        assert result.extras["timesteps"] == 2
        assert len(result.fields) == 4  # only the appended stored fields
        with ArchiveReader(path) as reader:
            assert reader.steps == [0, 1, 2, 3]
            # occurrence 2 continues the delta chain started before the append
            assert reader.field("FLNT@2").codec == "temporal-delta"
            assert reader.field("FLNT@2").anchors == ("FLNT@1",)
            assert reader.field("FLNT@3").codec == "sz"
        assert pipeline.verify(path, deep=True)["ok"]

    def test_append_equals_single_shot(self, series, config, tmp_path):
        single, split = tmp_path / "single.xfa", tmp_path / "split.xfa"
        pipeline = CompressionPipeline(config)
        pipeline.compress_timeseries(series, single)
        pipeline.compress_timeseries(series[:1], split)
        pipeline.append_timesteps(split, series[1:])
        with ArchiveReader(single) as ref, ArchiveReader(split) as got:
            assert ref.steps == got.steps
            for t in ref.steps:
                want, have = ref.read_timestep(t), got.read_timestep(t)
                for name in want.names:
                    assert np.array_equal(want[name].data, have[name].data), (t, name)

    def test_cross_field_rule_rejected_for_timeseries(self, series, tmp_path):
        config = PipelineConfig(
            fields={"FLNTC": FieldRule(codec="cross-field", anchors=("FLNT",))}
        )
        with pytest.raises(PipelineConfigError, match="not supported in"):
            CompressionPipeline(config).compress_timeseries(series[:1], tmp_path / "x.xfa")

    def test_times_length_mismatch_rejected(self, series, config, tmp_path):
        with pytest.raises(PipelineConfigError, match="one wall-time tag"):
            CompressionPipeline(config).compress_timeseries(
                series, tmp_path / "x.xfa", times=[0.0]
            )
