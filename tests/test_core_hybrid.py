"""Unit tests for the hybrid prediction model."""

import numpy as np
import pytest

from repro.core.hybrid import HybridPredictor, build_candidate_predictions
from repro.sz.predictors import lorenzo_predict


class TestCandidates:
    def test_candidate_stack_shape(self):
        rng = np.random.default_rng(0)
        codes = rng.integers(-100, 100, size=(8, 9))
        diffs = [rng.integers(-5, 5, size=(8, 9)) for _ in range(2)]
        candidates = build_candidate_predictions(codes, diffs)
        assert candidates.shape == (3, 8, 9)
        assert np.array_equal(candidates[0], lorenzo_predict(codes))

    def test_axis_candidate_formula(self):
        codes = np.arange(12, dtype=np.int64).reshape(3, 4)
        diffs = [np.ones_like(codes), 2 * np.ones_like(codes)]
        candidates = build_candidate_predictions(codes, diffs)
        # axis-0 candidate at (1, 2) = codes[0, 2] + 1
        assert candidates[1][1, 2] == codes[0, 2] + 1
        # axis-1 candidate at (2, 3) = codes[2, 2] + 2
        assert candidates[2][2, 3] == codes[2, 2] + 2

    def test_wrong_diff_count(self):
        with pytest.raises(ValueError):
            build_candidate_predictions(np.zeros((4, 4), dtype=np.int64), [np.zeros((4, 4), dtype=np.int64)])


class TestHybridPredictor:
    def _perfect_case(self, rng, shape=(20, 24)):
        """Cross-field diffs that are exactly the true backward differences."""
        codes = rng.integers(-500, 500, size=shape)
        diffs = []
        for axis in range(len(shape)):
            d = np.diff(codes, axis=axis, prepend=0)
            diffs.append(d.astype(np.int64))
        return codes, diffs

    def test_lstsq_prefers_perfect_cross_field(self):
        rng = np.random.default_rng(1)
        codes, diffs = self._perfect_case(rng)
        hybrid = HybridPredictor(ndim=2)
        weights = hybrid.fit(codes, diffs, method="lstsq")
        # with exact cross-field differences the combined cross-field weights dominate
        assert weights[1] + weights[2] > weights[0]
        prediction = hybrid.predict(codes, diffs)
        assert np.abs(prediction - codes).mean() < 1.0

    def test_lstsq_prefers_lorenzo_with_useless_diffs(self):
        rng = np.random.default_rng(2)
        codes = np.cumsum(np.cumsum(rng.integers(-3, 4, size=(30, 30)), axis=0), axis=1)
        diffs = [rng.integers(-1000, 1000, size=codes.shape) for _ in range(2)]
        hybrid = HybridPredictor(ndim=2)
        weights = hybrid.fit(codes, diffs)
        shares = hybrid.weight_shares()
        assert shares["lorenzo"] > shares["axis0"]
        assert shares["lorenzo"] > shares["axis1"]

    def test_sgd_records_history(self):
        rng = np.random.default_rng(3)
        codes, diffs = self._perfect_case(rng, shape=(16, 16))
        hybrid = HybridPredictor(ndim=2)
        hybrid.fit(codes, diffs, method="sgd", epochs=10)
        assert len(hybrid.loss_history) == 10
        assert hybrid.loss_history[-1] <= hybrid.loss_history[0]

    def test_weight_shares_sum_to_one(self):
        rng = np.random.default_rng(4)
        codes, diffs = self._perfect_case(rng)
        hybrid = HybridPredictor(ndim=2)
        hybrid.fit(codes, diffs)
        assert np.isclose(sum(hybrid.weight_shares().values()), 1.0)

    def test_serialization_roundtrip(self):
        rng = np.random.default_rng(5)
        codes, diffs = self._perfect_case(rng)
        hybrid = HybridPredictor(ndim=2)
        hybrid.fit(codes, diffs)
        restored = HybridPredictor.from_dict(hybrid.to_dict())
        assert np.allclose(restored.weights, hybrid.weights)
        assert np.array_equal(restored.predict(codes, diffs), hybrid.predict(codes, diffs))

    def test_3d_support(self):
        rng = np.random.default_rng(6)
        codes, diffs = self._perfect_case(rng, shape=(6, 8, 10))
        hybrid = HybridPredictor(ndim=3)
        weights = hybrid.fit(codes, diffs)
        assert weights.shape == (4,)
        assert hybrid.num_parameters == 4

    def test_unfitted_use_rejected(self):
        hybrid = HybridPredictor(ndim=2)
        with pytest.raises(RuntimeError):
            hybrid.predict(np.zeros((4, 4), dtype=np.int64), [np.zeros((4, 4), dtype=np.int64)] * 2)
        with pytest.raises(RuntimeError):
            hybrid.weight_shares()
        with pytest.raises(RuntimeError):
            hybrid.to_dict()

    def test_invalid_method(self):
        rng = np.random.default_rng(7)
        codes, diffs = self._perfect_case(rng)
        with pytest.raises(ValueError):
            HybridPredictor(ndim=2).fit(codes, diffs, method="genetic")

    def test_invalid_ndim(self):
        with pytest.raises(ValueError):
            HybridPredictor(ndim=5)
