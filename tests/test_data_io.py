"""Unit tests for repro.data.io (SDRBench-style binary IO)."""

import numpy as np
import pytest

from repro.data.fields import Field, FieldSet
from repro.data.io import read_fieldset, read_sdrbench, write_fieldset, write_sdrbench


class TestRawIO:
    def test_round_trip(self, tmp_path):
        data = np.random.default_rng(0).normal(size=(6, 8)).astype(np.float32)
        field = Field("U", data)
        path = write_sdrbench(field, tmp_path / "U.f32")
        loaded = read_sdrbench(path, (6, 8))
        assert loaded.name == "U"
        assert np.array_equal(loaded.data, data)

    def test_wrong_shape_raises(self, tmp_path):
        field = Field("U", np.zeros((4, 4), dtype=np.float32))
        path = write_sdrbench(field, tmp_path / "U.f32")
        with pytest.raises(ValueError):
            read_sdrbench(path, (5, 5))

    def test_custom_name(self, tmp_path):
        field = Field("U", np.zeros((2, 2), dtype=np.float32))
        path = write_sdrbench(field, tmp_path / "data.f32")
        loaded = read_sdrbench(path, (2, 2), name="renamed")
        assert loaded.name == "renamed"

    def test_double_precision(self, tmp_path):
        data = np.random.default_rng(1).normal(size=(3, 3))
        path = write_sdrbench(Field("D", data.astype(np.float64)), tmp_path / "D.f64", dtype=np.float64)
        loaded = read_sdrbench(path, (3, 3), dtype=np.float64)
        assert np.allclose(loaded.data, data)


class TestFieldSetIO:
    def test_round_trip(self, tmp_path):
        fs = FieldSet(
            [
                Field("A", np.random.default_rng(0).normal(size=(5, 6)).astype(np.float32), units="m"),
                Field("B", np.random.default_rng(1).normal(size=(5, 6)).astype(np.float32)),
            ],
            name="demo",
        )
        directory = write_fieldset(fs, tmp_path / "demo")
        loaded = read_fieldset(directory)
        assert loaded.name == "demo"
        assert loaded.names == ["A", "B"]
        assert loaded["A"].units == "m"
        assert np.array_equal(loaded["B"].data, fs["B"].data)

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_fieldset(tmp_path)
