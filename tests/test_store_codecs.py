"""Unit tests for the chunk-codec registry."""

import numpy as np
import pytest

from repro.store.codecs import (
    Codec,
    CrossFieldChunkCodec,
    LosslessChunkCodec,
    SZChunkCodec,
    ZFPChunkCodec,
    available_codecs,
    codec_class,
    get_codec,
    register_codec,
)
from repro.sz.errors import ErrorBound


class TestRegistry:
    def test_builtin_codecs_registered(self):
        assert {"sz", "zfp", "cross-field", "lossless"} <= set(available_codecs())

    def test_get_codec_by_name(self):
        codec = get_codec("sz", error_bound=ErrorBound.absolute(0.5))
        assert isinstance(codec, SZChunkCodec)
        assert codec.error_bound == ErrorBound.absolute(0.5)

    def test_get_codec_passes_instances_through(self):
        instance = LosslessChunkCodec()
        assert get_codec(instance) is instance

    def test_unknown_codec(self):
        with pytest.raises(ValueError, match="unknown codec"):
            get_codec("snappy")
        with pytest.raises(ValueError, match="unknown codec"):
            codec_class("snappy")

    def test_register_rejects_non_codec(self):
        with pytest.raises(TypeError):
            register_codec(dict)

    def test_register_requires_name(self):
        class Nameless(Codec):
            def encode(self, chunk, anchors=None):
                return b""

            def decode(self, payload, anchors=None):
                return np.zeros(1)

            def params(self):
                return {}

        with pytest.raises(ValueError, match="name"):
            register_codec(Nameless)

    def test_register_custom_codec(self):
        class NegatedCodec(LosslessChunkCodec):
            name = "test-negated"

            def encode(self, chunk, anchors=None):
                return super().encode(-np.asarray(chunk))

            def decode(self, payload, anchors=None):
                return -super().decode(payload)

        register_codec(NegatedCodec)
        try:
            codec = get_codec("test-negated")
            data = np.arange(12, dtype=np.float32).reshape(3, 4)
            assert np.array_equal(codec.decode(codec.encode(data)), data)
        finally:
            from repro.store import codecs as codecs_module

            codecs_module._REGISTRY.pop("test-negated")

    def test_legacy_two_arg_decode_codec_still_reads(self, tmp_path):
        # codecs registered before decode() grew the scheduler parameter keep
        # working through every reader path, including single-chunk reads
        # (where the reader offers its scheduler for intra-chunk fan-out)
        from repro.store import ArchiveReader, ArchiveWriter

        class LegacyCodec(LosslessChunkCodec):
            name = "test-legacy"

            def decode(self, payload, anchors=None):
                return super().decode(payload)

        register_codec(LegacyCodec)
        try:
            data = np.arange(64, dtype=np.float32).reshape(8, 8)
            path = tmp_path / "legacy.xfa"
            with ArchiveWriter(path, codec="test-legacy") as writer:
                writer.add_field("x", data)
            with ArchiveReader(path, jobs=2) as reader:
                assert np.array_equal(reader.read_field("x"), data)
                region = reader.read_region("x", (slice(1, 3), slice(2, 5)))
                assert np.array_equal(region, data[1:3, 2:5])
                assert reader.verify(deep=True)["ok"]
        finally:
            from repro.store import codecs as codecs_module

            codecs_module._REGISTRY.pop("test-legacy")

    def test_mixed_case_names_are_retrievable(self):
        class MixedCase(LosslessChunkCodec):
            name = "Test-MixedCase"

        register_codec(MixedCase)
        try:
            assert isinstance(get_codec("Test-MixedCase"), MixedCase)
            assert isinstance(get_codec("test-mixedcase"), MixedCase)
        finally:
            from repro.store import codecs as codecs_module

            codecs_module._REGISTRY.pop("test-mixedcase")

    def test_params_are_json_serialisable(self):
        import json

        for name in ("sz", "zfp", "cross-field", "lossless"):
            codec = get_codec(name)
            json.dumps(codec.params())


class TestRoundTrips:
    @pytest.mark.parametrize("name", ["sz", "zfp"])
    def test_lossy_round_trip_within_bound(self, cesm_small, name):
        data = cesm_small["FLNT"].data[:32, :32]
        eb = ErrorBound.absolute(0.1)
        codec = get_codec(name, error_bound=eb)
        recon = codec.decode(codec.encode(data))
        assert recon.shape == data.shape
        assert np.max(np.abs(recon.astype(np.float64) - data.astype(np.float64))) <= 0.1 * (1 + 1e-9)

    def test_lossless_round_trip_exact(self, rng):
        for dtype in (np.float32, np.float64):
            data = rng.normal(size=(7, 13)).astype(dtype)
            codec = get_codec("lossless")
            recon = codec.decode(codec.encode(data))
            assert recon.dtype == data.dtype
            assert np.array_equal(recon, data)

    def test_lossless_rejects_foreign_payload(self, rng):
        data = rng.normal(size=(8, 8)).astype(np.float32)
        payload = get_codec("sz", error_bound=ErrorBound.absolute(0.1)).encode(data)
        with pytest.raises(ValueError, match="format"):
            get_codec("lossless").decode(payload)

    def test_cross_field_round_trip_within_bound(self, cesm_small):
        target = cesm_small["CLDTOT"].data[:32, :32]
        anchors = [cesm_small[n].data[:32, :32].astype(np.float64) for n in ("CLDLOW", "CLDMED")]
        codec = get_codec("cross-field", error_bound=ErrorBound.absolute(0.01), epochs=2, n_patches=16)
        payload = codec.encode(target, anchors=anchors)
        recon = codec.decode(payload, anchors=anchors)
        assert np.max(np.abs(recon.astype(np.float64) - target.astype(np.float64))) <= 0.01 * (1 + 1e-9)

    def test_cross_field_requires_anchors(self, cesm_small):
        codec = get_codec("cross-field")
        assert codec.requires_anchors
        with pytest.raises(ValueError, match="anchor"):
            codec.encode(cesm_small["CLDTOT"].data[:16, :16])

    def test_error_bound_accepts_dict_form(self):
        codec = get_codec("sz", error_bound={"mode": "abs", "value": 0.25})
        assert codec.error_bound == ErrorBound.absolute(0.25)

    def test_params_round_trip_reconstructs_codec(self, cesm_small):
        data = cesm_small["LWCF"].data[:32, :32]
        original = get_codec("sz", error_bound=ErrorBound.absolute(0.05), entropy="zlib")
        clone = get_codec("sz", **original.params())
        payload = original.encode(data)
        assert np.array_equal(clone.decode(payload), original.decode(payload))
        assert clone.params() == original.params()
