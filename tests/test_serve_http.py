"""Tests for the serve transports: the stdlib HTTP server, the ``repro
serve`` CLI verb, and (when the optional ``[serve]`` extra is installed) the
FastAPI app.

The stdlib-server tests run real sockets through ``urllib`` — including
append-while-serving over HTTP and concurrent-client shared-cache dedup,
mirroring the in-process versions in ``test_serve_service.py`` at the
transport level.  FastAPI tests are ``importorskip``-gated: they skip
cleanly in the dependency-free tier-1 environment and run in the CI
serve-smoke job.
"""

import io
import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serve.http import serve_in_thread
from repro.serve.service import ArchiveService
from repro.store.cli import main
from repro.store.shared_cache import SharedChunkCache
from repro.store.writer import ArchiveWriter


@pytest.fixture()
def snapshot_archive(tmp_path):
    rng = np.random.default_rng(3)
    data = rng.normal(size=(32, 64)).astype(np.float32)
    path = tmp_path / "snap.xfa"
    with ArchiveWriter(path, chunk_shape=(16, 32)) as writer:
        writer.add_field("T", data, codec="zfp")
    return path, data


@pytest.fixture()
def served(snapshot_archive):
    """A live stdlib server over the snapshot archive; yields (url, service)."""
    path, _ = snapshot_archive
    service = ArchiveService({"a": path}, cache=SharedChunkCache())
    server, thread = serve_in_thread(service)
    try:
        yield server.url, service
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
        service.close()


def http_get(url, headers=None):
    request = urllib.request.Request(url, headers=headers or {})
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, response.read(), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, error.read(), dict(error.headers)


class TestStdlibServer:
    def test_health_and_manifest(self, served):
        url, _ = served
        status, body, _ = http_get(url + "/healthz")
        assert status == 200
        assert json.loads(body)["status"] == "ok"
        status, body, headers = http_get(url + "/archives/a/manifest")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        assert "ETag" in headers

    def test_region_npy_over_http(self, served, snapshot_archive):
        url, _ = served
        _, data = snapshot_archive
        status, body, headers = http_get(
            url + "/archives/a/fields/T/region?region=0:8,0:16"
        )
        assert status == 200
        assert headers["Content-Type"] == "application/x-npy"
        window = np.load(io.BytesIO(body))
        assert window.shape == (8, 16)
        assert np.allclose(window, data[0:8, 0:16], atol=1e-2)

    def test_etag_304_over_http(self, served):
        url, _ = served
        _, _, headers = http_get(url + "/archives/a/manifest")
        status, body, _ = http_get(
            url + "/archives/a/manifest", {"If-None-Match": headers["ETag"]}
        )
        assert status == 304
        assert body == b""

    def test_error_statuses_over_http(self, served):
        url, _ = served
        assert http_get(url + "/archives/a/fields/NOPE/region")[0] == 404
        assert http_get(url + "/archives/a/fields/T/region?region=999")[0] == 416
        assert http_get(url + "/archives/a/fields/T/preview?fraction=7")[0] == 422
        assert http_get(url + "/bogus")[0] == 404

    def test_preview_fallback_header(self, served):
        url, _ = served
        status, _, headers = http_get(
            url + "/archives/a/fields/T/preview?fraction=0.25"
        )
        assert status == 200
        assert headers["X-Repro-Preview-Fallback"] == "false"

    def test_concurrent_clients_share_one_decode_per_chunk(self, served):
        url, service = served
        n_clients, per_client = 6, 3
        barrier = threading.Barrier(n_clients)
        statuses = []
        lock = threading.Lock()

        def client():
            barrier.wait()
            for _ in range(per_client):
                status, _, _ = http_get(url + "/archives/a/fields/T/region")
                with lock:
                    statuses.append(status)

        threads = [threading.Thread(target=client) for _ in range(n_clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert statuses == [200] * (n_clients * per_client)
        with service.handle("a").reader() as reader:
            stats = reader.cache_stats()
            total_chunks = len(reader.field("T").chunks)
        assert stats["chunks_decoded"] == total_chunks

    def test_append_while_serving_over_http(self, tmp_path):
        rng = np.random.default_rng(5)
        base = rng.normal(size=(16, 32)).astype(np.float32)
        path = tmp_path / "series.xfa"
        with ArchiveWriter(path, chunk_shape=(8, 16)) as writer:
            writer.add_timestep({"T": base}, step=0, time=0.0)

        service = ArchiveService({"s": path}, cache=SharedChunkCache(), refresh="manual")
        server, thread = serve_in_thread(service)
        url = server.url
        try:
            _, _, headers = http_get(url + "/archives/s/manifest")
            etag = headers["ETag"]
            _, before, _ = http_get(url + "/archives/s/fields/T@0/region")

            with ArchiveWriter(path, mode="a") as writer:
                writer.add_timestep({"T": base + 0.5}, step=1, time=1.0)

            # pinned generation: 304 on the old ETag, identical bytes
            assert http_get(url + "/archives/s/manifest", {"If-None-Match": etag})[0] == 304
            _, after, _ = http_get(url + "/archives/s/fields/T@0/region")
            assert after == before

            request = urllib.request.Request(
                url + "/archives/s/refresh", method="POST"
            )
            with urllib.request.urlopen(request, timeout=10) as response:
                report = json.loads(response.read())
            assert report["reopened"] is True

            status, body, headers = http_get(
                url + "/archives/s/manifest", {"If-None-Match": etag}
            )
            assert status == 200
            assert headers["ETag"] != etag
            status, body, _ = http_get(url + "/archives/s/timesteps")
            assert [entry["step"] for entry in json.loads(body)["steps"]] == [0, 1]
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
            service.close()

    def test_max_requests_stops_server(self, snapshot_archive):
        path, _ = snapshot_archive
        service = ArchiveService({"a": path}, cache=SharedChunkCache())
        server, thread = serve_in_thread(service, max_requests=2)
        try:
            http_get(server.url + "/healthz")
            http_get(server.url + "/healthz")
            thread.join(timeout=5)
            assert not thread.is_alive()
            assert server.requests_handled == 2
        finally:
            server.server_close()
            service.close()


class TestServeCLI:
    def test_serve_verb_end_to_end(self, snapshot_archive, tmp_path, capsys):
        path, _ = snapshot_archive
        ready = tmp_path / "ready.txt"
        exit_codes = []

        def run():
            exit_codes.append(
                main(
                    [
                        "serve",
                        f"demo={path}",
                        "--port",
                        "0",
                        "--ready-file",
                        str(ready),
                        "--max-requests",
                        "2",
                    ]
                )
            )

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        deadline = time.monotonic() + 10
        while not ready.exists() and time.monotonic() < deadline:
            time.sleep(0.02)
        assert ready.exists(), "server never wrote its ready file"
        url = ready.read_text().strip()

        status, body, _ = http_get(url + "/archives/demo/manifest")
        assert status == 200
        assert json.loads(body)["id"] == "demo"
        status, _, _ = http_get(url + "/archives/demo/fields/T/region?region=0:4,0:4")
        assert status == 200

        thread.join(timeout=10)
        assert not thread.is_alive()
        assert exit_codes == [0]
        out = capsys.readouterr().out
        assert "serving 1 archive(s)" in out
        assert "served 2 request(s)" in out

    def test_serve_missing_archive_errors(self, tmp_path, capsys):
        assert main(["serve", str(tmp_path / "nope.xfa")]) == 2
        assert "error:" in capsys.readouterr().err


class TestFastAPIApp:
    """Runs only where the optional [serve] extra is installed (CI serve-smoke)."""

    @pytest.fixture()
    def client(self, snapshot_archive):
        pytest.importorskip("fastapi")
        testclient = pytest.importorskip("fastapi.testclient")
        from repro.serve.app import create_app

        path, _ = snapshot_archive
        service = ArchiveService({"a": path}, cache=SharedChunkCache())
        with testclient.TestClient(create_app(service)) as client:
            yield client
        service.close()

    def test_manifest_and_etag(self, client):
        response = client.get("/archives/a/manifest")
        assert response.status_code == 200
        etag = response.headers["ETag"]
        again = client.get("/archives/a/manifest", headers={"If-None-Match": etag})
        assert again.status_code == 304

    def test_region_npy(self, client):
        response = client.get("/archives/a/fields/T/region", params={"region": "0:8,0:8"})
        assert response.status_code == 200
        assert response.headers["content-type"].startswith("application/x-npy")
        window = np.load(io.BytesIO(response.content))
        assert window.shape == (8, 8)

    def test_error_mapping_matches_core(self, client):
        assert client.get("/archives/a/fields/NOPE/region").status_code == 404
        assert client.get("/archives/a/fields/T/region", params={"region": "999"}).status_code == 416
        assert client.get(
            "/archives/a/fields/T/preview", params={"fraction": "0"}
        ).status_code == 422

    def test_preview_headers(self, client):
        response = client.get("/archives/a/fields/T/preview", params={"fraction": "0.25"})
        assert response.status_code == 200
        assert response.headers["X-Repro-Preview-Fallback"] == "false"
