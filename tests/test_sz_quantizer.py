"""Unit tests for dual quantization and the classic SZ quantizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.sz.quantizer import (
    classic_dequantize_lorenzo,
    classic_quantize_lorenzo,
    dequantize,
    prequantize,
)


class TestPrequantize:
    def test_error_bound_respected(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(50, 50)).astype(np.float32)
        eb = 1e-3
        codes = prequantize(data, eb)
        recon = dequantize(codes, eb, dtype=np.float64)
        assert np.max(np.abs(recon - data.astype(np.float64))) <= eb + 1e-12

    def test_integer_output(self):
        codes = prequantize(np.array([0.1, 0.2]), 0.05)
        assert codes.dtype == np.int64

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            prequantize(np.array([1.0, np.nan]), 0.1)

    def test_rejects_nonpositive_eb(self):
        with pytest.raises(ValueError):
            prequantize(np.ones(3), 0.0)

    def test_overflow_guard(self):
        with pytest.raises(OverflowError):
            prequantize(np.array([1e30]), 1e-10)

    def test_dequantize_requires_integers(self):
        with pytest.raises(TypeError):
            dequantize(np.array([1.5]), 0.1)

    @settings(max_examples=30, deadline=None)
    @given(
        arrays(np.float64, (6, 7), elements=st.floats(-1e4, 1e4)),
        st.floats(1e-4, 1.0),
    )
    def test_property_error_bound(self, data, eb):
        codes = prequantize(data, eb)
        recon = dequantize(codes, eb, dtype=np.float64)
        assert np.max(np.abs(recon - data)) <= eb * (1 + 1e-9)


class TestClassicQuantizer:
    def test_round_trip_2d(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(12, 14))
        eb = 1e-2
        codes, mask, recon = classic_quantize_lorenzo(data, eb)
        assert np.max(np.abs(recon - data)) <= eb + 1e-12
        decoded = classic_dequantize_lorenzo(codes, mask, data[mask], eb)
        assert np.allclose(decoded, recon, atol=1e-12)

    def test_round_trip_3d(self):
        rng = np.random.default_rng(2)
        data = rng.normal(size=(5, 6, 4))
        eb = 5e-3
        codes, mask, recon = classic_quantize_lorenzo(data, eb)
        decoded = classic_dequantize_lorenzo(codes, mask, data[mask], eb)
        assert np.max(np.abs(decoded - data)) <= eb + 1e-12

    def test_outliers_flagged_with_small_radius(self):
        rng = np.random.default_rng(3)
        data = rng.normal(size=(10, 10)) * 100
        codes, mask, recon = classic_quantize_lorenzo(data, 1e-4, radius=4)
        assert mask.any()
        assert np.max(np.abs(recon - data)) <= 1e-4 + 1e-12

    def test_rejects_4d(self):
        with pytest.raises(ValueError):
            classic_quantize_lorenzo(np.zeros((2, 2, 2, 2)), 0.1)
