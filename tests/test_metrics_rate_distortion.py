"""Unit tests for rate-distortion curve containers."""

import numpy as np
import pytest

from repro.metrics import RateDistortionCurve, RatePoint


class TestRateDistortionCurve:
    def _curve(self, label, offset=0.0):
        curve = RateDistortionCurve(label=label)
        for rate, value in [(1.0, 50.0), (2.0, 60.0), (4.0, 70.0)]:
            curve.add_measurement(rate, value + offset, error_bound=1e-3)
        return curve

    def test_points_sorted_by_rate(self):
        curve = RateDistortionCurve(label="x")
        curve.add_measurement(4.0, 70.0)
        curve.add_measurement(1.0, 50.0)
        curve.add_measurement(2.0, 60.0)
        assert list(curve.bit_rates) == [1.0, 2.0, 4.0]

    def test_interpolation(self):
        curve = self._curve("a")
        assert np.isclose(curve.psnr_at(1.5), 55.0)
        assert np.isclose(curve.psnr_at(0.5), 50.0)  # clamped
        assert np.isclose(curve.psnr_at(8.0), 70.0)  # clamped

    def test_gain_between_curves(self):
        better = self._curve("ours", offset=3.0)
        baseline = self._curve("baseline")
        assert np.isclose(better.average_psnr_gain_over(baseline), 3.0)

    def test_gain_without_overlap_uses_clamped_union(self):
        a = RateDistortionCurve("a")
        a.add_measurement(1.0, 50.0)
        a.add_measurement(2.0, 55.0)
        b = RateDistortionCurve("b")
        b.add_measurement(5.0, 40.0)
        b.add_measurement(6.0, 45.0)
        gain = a.average_psnr_gain_over(b)
        assert np.isfinite(gain)

    def test_empty_curve_raises(self):
        with pytest.raises(ValueError):
            RateDistortionCurve("x").psnr_at(1.0)
        with pytest.raises(ValueError):
            RateDistortionCurve("x").average_psnr_gain_over(self._curve("y"))

    def test_to_table_and_format(self):
        curve = self._curve("demo")
        table = curve.to_table()
        assert len(table) == 3
        assert set(table[0]) >= {"bit_rate", "psnr"}
        text = curve.format()
        assert "demo" in text and "50.000" in text

    def test_rate_point_dict(self):
        p = RatePoint(2.0, 60.0, error_bound=1e-3, compression_ratio=16.0)
        d = p.as_dict()
        assert d["bit_rate"] == 2.0 and d["compression_ratio"] == 16.0
