"""Unit tests for zigzag and run-length transforms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.rle import rle_decode, rle_encode, zigzag_decode, zigzag_encode


class TestZigzag:
    def test_known_mapping(self):
        values = np.array([0, -1, 1, -2, 2, -3])
        assert np.array_equal(zigzag_encode(values), [0, 1, 2, 3, 4, 5])

    def test_round_trip(self):
        rng = np.random.default_rng(0)
        values = rng.integers(-10000, 10000, size=1000)
        assert np.array_equal(zigzag_decode(zigzag_encode(values)), values)

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            zigzag_encode(np.array([1.0]))

    def test_decode_rejects_negative(self):
        with pytest.raises(ValueError):
            zigzag_decode(np.array([-1]))

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(-(2**40), 2**40), min_size=1, max_size=100))
    def test_property_roundtrip(self, values):
        arr = np.asarray(values, dtype=np.int64)
        assert np.array_equal(zigzag_decode(zigzag_encode(arr)), arr)


class TestRLE:
    def test_basic(self):
        values, lengths = rle_encode(np.array([5, 5, 5, 2, 2, 9]))
        assert np.array_equal(values, [5, 2, 9])
        assert np.array_equal(lengths, [3, 2, 1])

    def test_round_trip(self):
        rng = np.random.default_rng(1)
        data = rng.integers(0, 3, size=500)
        assert np.array_equal(rle_decode(*rle_encode(data)), data)

    def test_empty(self):
        values, lengths = rle_encode(np.array([], dtype=np.int64))
        assert values.size == 0
        assert rle_decode(values, lengths).size == 0

    def test_mismatched_inputs(self):
        with pytest.raises(ValueError):
            rle_decode(np.array([1, 2]), np.array([3]))

    def test_nonpositive_length(self):
        with pytest.raises(ValueError):
            rle_decode(np.array([1]), np.array([0]))
