"""Unit tests for the ZFP-style transform compressor."""

import numpy as np
import pytest

from repro.sz import ErrorBound
from repro.zfp import ZFPLikeCompressor, block_transform_forward, block_transform_inverse, dct_matrix


class TestTransform:
    def test_dct_orthonormal(self):
        for n in (2, 4, 8):
            matrix = dct_matrix(n)
            assert np.allclose(matrix @ matrix.T, np.eye(n), atol=1e-12)

    def test_transform_round_trip_2d(self):
        rng = np.random.default_rng(0)
        block = rng.normal(size=(4, 4))
        assert np.allclose(block_transform_inverse(block_transform_forward(block)), block, atol=1e-12)

    def test_transform_round_trip_3d(self):
        rng = np.random.default_rng(1)
        block = rng.normal(size=(4, 4, 4))
        assert np.allclose(block_transform_inverse(block_transform_forward(block)), block, atol=1e-12)

    def test_energy_preserved(self):
        rng = np.random.default_rng(2)
        block = rng.normal(size=(4, 4))
        coeffs = block_transform_forward(block)
        assert np.isclose(np.sum(block**2), np.sum(coeffs**2))

    def test_constant_block_concentrates_energy(self):
        block = np.full((4, 4), 3.0)
        coeffs = block_transform_forward(block)
        assert np.isclose(np.abs(coeffs).sum(), np.abs(coeffs[0, 0]))

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            dct_matrix(0)


class TestZFPLikeCompressor:
    @pytest.mark.parametrize("field", ["CLDTOT", "FLNT"])
    def test_error_bound_2d(self, cesm_small, field):
        data = cesm_small[field].data
        comp = ZFPLikeCompressor(error_bound=ErrorBound.relative(1e-3))
        result = comp.compress(data)
        recon = comp.decompress(result.payload)
        assert np.max(np.abs(recon.astype(np.float64) - data.astype(np.float64))) <= result.abs_error_bound * (1 + 1e-9)
        assert result.ratio > 1.0

    def test_error_bound_3d(self, hurricane_small):
        data = hurricane_small["Pf"].data
        comp = ZFPLikeCompressor(error_bound=ErrorBound.relative(1e-3))
        result = comp.compress(data)
        recon = comp.decompress(result.payload)
        assert np.max(np.abs(recon.astype(np.float64) - data.astype(np.float64))) <= result.abs_error_bound * (1 + 1e-9)

    def test_absolute_bound(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(32, 32)).astype(np.float32)
        comp = ZFPLikeCompressor(error_bound=ErrorBound.absolute(0.01))
        recon = comp.decompress(comp.compress(data).payload)
        assert np.max(np.abs(recon.astype(np.float64) - data.astype(np.float64))) <= 0.01 * (1 + 1e-9)

    def test_tighter_bound_lower_ratio(self, cesm_small):
        data = cesm_small["FLUT"].data
        loose = ZFPLikeCompressor(error_bound=ErrorBound.relative(1e-2)).compress(data)
        tight = ZFPLikeCompressor(error_bound=ErrorBound.relative(1e-4)).compress(data)
        assert loose.ratio > tight.ratio

    def test_non_multiple_block_shapes(self):
        rng = np.random.default_rng(1)
        data = np.cumsum(rng.normal(size=(13, 19)), axis=0).astype(np.float32)
        comp = ZFPLikeCompressor(error_bound=ErrorBound.relative(1e-3))
        recon = comp.decompress(comp.compress(data).payload)
        assert recon.shape == data.shape

    def test_invalid_arguments(self):
        with pytest.raises(TypeError):
            ZFPLikeCompressor(error_bound=1e-3)
        with pytest.raises(ValueError):
            ZFPLikeCompressor(block_size=1)
        with pytest.raises(ValueError):
            ZFPLikeCompressor().compress(np.zeros((2, 2, 2, 2), dtype=np.float32))
