"""Unit tests for error-bound specification."""

import numpy as np
import pytest

from repro.sz.errors import ErrorBound


class TestErrorBound:
    def test_absolute_resolve(self):
        eb = ErrorBound.absolute(0.5)
        assert eb.resolve(np.array([0.0, 100.0])) == 0.5

    def test_relative_resolve(self):
        eb = ErrorBound.relative(1e-3)
        data = np.array([0.0, 200.0])
        assert np.isclose(eb.resolve(data), 0.2)

    def test_relative_constant_data(self):
        eb = ErrorBound.relative(1e-3)
        assert eb.resolve(np.full(10, 7.0)) == 1e-3

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            ErrorBound("weird", 1e-3)

    def test_invalid_value(self):
        with pytest.raises(ValueError):
            ErrorBound.relative(0.0)
        with pytest.raises(ValueError):
            ErrorBound.absolute(-1.0)

    def test_dict_round_trip(self):
        eb = ErrorBound.relative(5e-4)
        assert ErrorBound.from_dict(eb.to_dict()) == eb

    def test_frozen(self):
        eb = ErrorBound.absolute(1.0)
        with pytest.raises(Exception):
            eb.value = 2.0

    def test_str(self):
        assert "rel" in str(ErrorBound.relative(1e-3))
