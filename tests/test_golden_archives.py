"""Golden-archive conformance suite: the wire format may not drift.

Every fixture under ``tests/data/golden/`` is a frozen archive committed
together with its expected decoded output and raw manifest bytes
(regenerated — only on an *intentional* format change — by
``scripts/make_golden_archives.py``).  These tests decode the committed bytes
and compare **byte-exactly**: a change to the container framing, the manifest
schema, a codec payload layout, or an entropy coder's bit stream fails here
before it can silently break old archives in the field.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.store import ArchiveReader
from repro.store.manifest import MANIFEST_VERSION, read_manifest

GOLDEN_DIR = Path(__file__).parent / "data" / "golden"

#: fixture stem -> the codecs the archive must exercise.
GOLDEN_CODECS = {
    "v1-huffman": {"sz"},
    "hfv2": {"sz"},
    "mixed-codec": {"sz", "zfp", "lossless"},
    "timeseries": {"sz", "temporal-delta"},
    "sz-hybrid": {"sz"},
    "zfp-progressive": {"zfp"},
}


def golden_path(stem: str) -> Path:
    path = GOLDEN_DIR / f"{stem}.xfa"
    assert path.exists(), (
        f"golden fixture {path} is missing; run "
        "`PYTHONPATH=src python scripts/make_golden_archives.py`"
    )
    return path


@pytest.mark.parametrize("stem", sorted(GOLDEN_CODECS))
class TestGoldenArchives:
    def test_read_field_is_byte_exact(self, stem):
        expected = np.load(golden_path(stem).with_suffix(".expected.npz"))
        with ArchiveReader(golden_path(stem)) as reader:
            assert sorted(reader.names) == sorted(expected.files)
            for name in reader.names:
                want = expected[name]
                got = reader.read_field(name)
                assert got.dtype == want.dtype, name
                assert got.shape == want.shape, name
                assert np.array_equal(got, want), (
                    f"{stem}:{name} decoded differently than when the fixture "
                    "was frozen — wire-format or decoder drift"
                )

    def test_manifest_bytes_are_stable(self, stem):
        committed = golden_path(stem).with_suffix(".manifest.json").read_bytes()
        with open(golden_path(stem), "rb") as fh:
            fh.seek(0, 2)
            size = fh.tell()
            manifest, offset, end = read_manifest(fh)
            assert end == size
            fh.seek(offset)
            in_archive = fh.read(end - 24 - offset)
        assert in_archive == committed
        # the committed bytes stay parseable as plain JSON too
        payload = json.loads(committed.decode("utf-8"))
        assert payload["format"] == "XFA1"

    def test_exercises_expected_codecs(self, stem):
        with ArchiveReader(golden_path(stem)) as reader:
            codecs = {entry.codec for entry in reader.fields()}
        assert codecs == GOLDEN_CODECS[stem]

    def test_deep_verify_passes(self, stem):
        with ArchiveReader(golden_path(stem)) as reader:
            report = reader.verify(deep=True)
        assert report["ok"], report["errors"]


class TestV1Compatibility:
    def test_manifest_is_schema_v1_on_disk(self):
        payload = json.loads(
            golden_path("v1-huffman").with_suffix(".manifest.json").read_text()
        )
        assert payload["version"] == 1
        assert "timesteps" not in payload

    def test_v1_manifest_auto_upgrades_on_read(self):
        with ArchiveReader(golden_path("v1-huffman")) as reader:
            assert reader.manifest.version == MANIFEST_VERSION
            assert reader.timesteps == []
            # re-serialising writes the upgraded v2 form
            upgraded = json.loads(reader.manifest.to_json().decode("utf-8"))
        assert upgraded["version"] == MANIFEST_VERSION
        assert upgraded["timesteps"] == []

    def test_v1_and_v2_payloads_decode_identically(self):
        # same data, same codec parameters, different entropy payload layout:
        # the two fixtures must differ on disk yet decode to identical arrays
        v1 = np.load(golden_path("v1-huffman").with_suffix(".expected.npz"))
        v2 = np.load(golden_path("hfv2").with_suffix(".expected.npz"))
        assert sorted(v1.files) == sorted(v2.files)
        for name in v1.files:
            assert np.array_equal(v1[name], v2[name]), name
        with ArchiveReader(golden_path("v1-huffman")) as old_reader:
            with ArchiveReader(golden_path("hfv2")) as new_reader:
                for name in old_reader.names:
                    old_chunks = old_reader.field(name).chunks
                    new_chunks = new_reader.field(name).chunks
                    # the checkpointed HFV2 layout carries extra bit-offset
                    # tables, so at least one chunk payload must differ
                    assert any(
                        (a.length, a.crc32) != (b.length, b.crc32)
                        for a, b in zip(old_chunks, new_chunks)
                    ), f"{name}: v1 and v2 payloads are unexpectedly identical"


class TestGoldenSZHybrid:
    """The sz-hybrid fixture pins the vectorised predictor fast paths.

    Each field runs a different predictor, so a change to the batched
    wavefront/regression/interpolation decode paths that alters even one
    decoded byte fails here — the complement of the relative parity checks in
    ``tests/test_sz_parity.py``.
    """

    def test_covers_every_predictor(self):
        with ArchiveReader(golden_path("sz-hybrid")) as reader:
            predictors = {
                entry.codec_params.get("predictor") for entry in reader.fields()
            }
        assert predictors == {"lorenzo", "regression", "interpolation"}

    def test_predictor_params_pinned_in_manifest(self):
        payload = json.loads(
            golden_path("sz-hybrid").with_suffix(".manifest.json").read_text()
        )
        by_name = {f["name"]: f for f in payload["fields"]}
        assert by_name["FLNT"]["codec_params"]["predictor"] == "lorenzo"
        assert by_name["FLNTC"]["codec_params"]["predictor"] == "regression"
        assert by_name["LWCF"]["codec_params"]["predictor"] == "interpolation"


class TestGoldenZFPProgressive:
    """The zfp-progressive fixture pins the grouped (significance-ordered)
    payload layout, while mixed-codec pins the legacy interleaved one.

    Together they are the backward-compat contract of the layout change: the
    grouped fixture fails if the batched transform, the per-block step, or
    the per-group sections drift; the mixed-codec fixture (regenerated never)
    fails if legacy payloads stop decoding bit-identically.
    """

    def test_grouped_layout_pinned_in_manifest(self):
        payload = json.loads(
            golden_path("zfp-progressive").with_suffix(".manifest.json").read_text()
        )
        by_name = {f["name"]: f for f in payload["fields"]}
        assert sorted(by_name) == ["cube", "line", "plane", "ragged"]
        ndims = {name: len(by_name[name]["shape"]) for name in by_name}
        assert sorted(ndims.values()) == [1, 2, 2, 3]
        for name, entry in by_name.items():
            assert entry["codec"] == "zfp", name
            assert entry["codec_params"]["layout"] == "grouped", name

    def test_legacy_mixed_codec_payload_has_no_layout_param(self):
        # the compat fixture predates the layout param: its manifest must keep
        # not mentioning it, and its payloads decode as interleaved
        payload = json.loads(
            golden_path("mixed-codec").with_suffix(".manifest.json").read_text()
        )
        by_name = {f["name"]: f for f in payload["fields"]}
        assert by_name["FLNTC"]["codec"] == "zfp"
        assert "layout" not in by_name["FLNTC"]["codec_params"]

    def test_preview_reads_decode_prefixes(self):
        with ArchiveReader(golden_path("zfp-progressive")) as reader:
            expected = np.load(
                golden_path("zfp-progressive").with_suffix(".expected.npz")
            )
            for name in reader.names:
                full, info_full = reader.read_region_preview(name, None, fraction=1.0)
                assert np.array_equal(full, expected[name]), name
                assert info_full["bytes_decoded"] == info_full["bytes_total"]
                assert info_full["rms_error_estimate"] == 0.0
                coarse, info = reader.read_region_preview(name, None, fraction=0.25)
                assert coarse.shape == expected[name].shape
                assert info["bytes_decoded"] < info["bytes_total"], name
                assert info["groups_decoded"] < info["groups_total"], name
                assert info["rms_error_estimate"] > 0.0, name

    def test_legacy_zfp_preview_falls_back_to_full_decode(self):
        # interleaved payloads have no decodable prefix: the preview path must
        # return the bit-exact full decode and report everything as decoded
        expected = np.load(golden_path("mixed-codec").with_suffix(".expected.npz"))
        with ArchiveReader(golden_path("mixed-codec")) as reader:
            coarse, info = reader.read_region_preview("FLNTC", None, fraction=0.25)
        assert np.array_equal(coarse, expected["FLNTC"])
        assert info["bytes_decoded"] == info["bytes_total"]
        assert info["groups_decoded"] == info["groups_total"]


class TestGoldenTimeseries:
    def test_timestep_index(self):
        with ArchiveReader(golden_path("timeseries")) as reader:
            assert reader.steps == [0, 1, 2]
            entry = reader.manifest.timestep(1)
            assert entry.time == 0.5
            assert sorted(entry.fields) == ["FLNT", "FLNTC"]
            assert entry.fields["FLNT"] == "FLNT@1"
            # step 1 is delta-coded against step 0, anchored every 2 steps
            assert reader.field("FLNT@1").codec == "temporal-delta"
            assert reader.field("FLNT@1").anchors == ("FLNT@0",)
            assert reader.field("FLNT@2").codec == "sz"
            assert entry.temporal["FLNT"]["anchor_every"] == 2

    def test_read_timestep_is_byte_exact(self):
        expected = np.load(golden_path("timeseries").with_suffix(".expected.npz"))
        with ArchiveReader(golden_path("timeseries")) as reader:
            for entry in reader.timesteps:
                snapshot = reader.read_timestep(entry.step)
                for base, stored in entry.fields.items():
                    assert np.array_equal(snapshot[base].data, expected[stored]), (
                        entry.step,
                        base,
                    )

    def test_read_time_range(self):
        with ArchiveReader(golden_path("timeseries")) as reader:
            window = reader.read_time_range(1, 3)
            assert [entry.step for entry, _ in window] == [1, 2]
            direct = reader.read_timestep(2)
            for name in direct.names:
                assert np.array_equal(window[1][1][name].data, direct[name].data)
