"""SharedChunkCache: single-flight dedup, invalidation, reader integration."""

import threading
import time

import numpy as np
import pytest

from repro.store import ArchiveReader, ArchiveWriter, SharedChunkCache, process_chunk_cache
from repro.store.shared_cache import DEFAULT_SHARED_CACHE_BYTES


def _poll(predicate, timeout=5.0, interval=0.001):
    """Spin until ``predicate()`` is true; fail the test on timeout."""
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            pytest.fail("timed out waiting for condition")
        time.sleep(interval)


class TestBasics:
    def test_get_put_round_trip(self):
        cache = SharedChunkCache(max_bytes=1 << 20)
        key = (1, 2, 3, "FLNT", 0)
        assert cache.get(key) is None
        cache.put(key, np.arange(8.0))
        hit = cache.get(key)
        assert np.array_equal(hit, np.arange(8.0))
        assert not hit.flags.writeable  # frozen on put

    def test_get_or_compute_caches_and_freezes(self):
        cache = SharedChunkCache(max_bytes=1 << 20)
        calls = []

        def factory():
            calls.append(1)
            return np.ones(4)

        first = cache.get_or_compute(("k",), factory)
        second = cache.get_or_compute(("k",), factory)
        assert len(calls) == 1
        assert first is second  # same cached object, no per-caller copy
        assert not first.flags.writeable

    def test_stats_shape(self):
        cache = SharedChunkCache(max_bytes=1 << 20)
        cache.get_or_compute(("k",), lambda: np.ones(4))
        cache.get(("k",))
        stats = cache.stats
        assert stats["hits"] >= 1
        assert stats["misses"] >= 1
        assert stats["coalesced"] == 0
        assert stats["inflight"] == 0
        assert stats["entries"] == 1

    def test_clear_and_len(self):
        cache = SharedChunkCache(max_bytes=1 << 20)
        cache.put(("a",), np.ones(4))
        cache.put(("b",), np.ones(4))
        assert len(cache) == 2
        assert cache.nbytes > 0
        cache.clear()
        assert len(cache) == 0
        assert cache.nbytes == 0


class TestSingleFlight:
    def test_concurrent_misses_coalesce_to_one_decode(self):
        """N threads racing one cold key must trigger exactly one factory call."""
        cache = SharedChunkCache(max_bytes=1 << 20)
        release = threading.Event()
        calls = []

        def blocking_factory():
            calls.append(threading.get_ident())
            release.wait(timeout=5.0)
            return np.full(16, 3.0)

        results = []
        leader = threading.Thread(
            target=lambda: results.append(cache.get_or_compute(("hot",), blocking_factory))
        )
        leader.start()
        # wait until the leader has registered its in-flight entry
        _poll(lambda: cache.stats["inflight"] == 1)

        n_followers = 6
        followers = [
            threading.Thread(
                target=lambda: results.append(cache.get_or_compute(("hot",), blocking_factory))
            )
            for _ in range(n_followers)
        ]
        for t in followers:
            t.start()
        # followers bump ``coalesced`` *before* blocking on the flight, so this
        # deterministically means all of them are parked behind the leader
        _poll(lambda: cache.coalesced == n_followers)
        assert len(calls) == 1

        release.set()
        leader.join(timeout=5.0)
        for t in followers:
            t.join(timeout=5.0)

        assert len(calls) == 1
        assert len(results) == n_followers + 1
        first = results[0]
        for value in results:
            assert value is first  # everyone shares the one decoded array
        assert cache.stats["inflight"] == 0
        assert cache.stats["coalesced"] == n_followers

    def test_factory_exception_propagates_to_all_waiters(self):
        cache = SharedChunkCache(max_bytes=1 << 20)
        release = threading.Event()
        calls = []
        boom = RuntimeError("decode exploded")

        def failing_factory():
            calls.append(1)
            release.wait(timeout=5.0)
            raise boom

        errors = []

        def run():
            try:
                cache.get_or_compute(("bad",), failing_factory)
            except RuntimeError as exc:
                errors.append(exc)

        leader = threading.Thread(target=run)
        leader.start()
        _poll(lambda: cache.stats["inflight"] == 1)
        followers = [threading.Thread(target=run) for _ in range(4)]
        for t in followers:
            t.start()
        _poll(lambda: cache.coalesced == 4)

        release.set()
        leader.join(timeout=5.0)
        for t in followers:
            t.join(timeout=5.0)

        # every thread saw the same exception object, nothing was cached
        assert len(errors) == 5
        assert all(exc is boom for exc in errors)
        assert cache.get(("bad",)) is None
        assert cache.stats["inflight"] == 0  # failed flight was evicted

        # ...and the key is retryable: a fresh call re-runs the factory
        value = cache.get_or_compute(("bad",), lambda: np.ones(2))
        assert np.array_equal(value, np.ones(2))
        assert len(calls) == 1  # failing factory ran exactly once


class TestInvalidation:
    def test_invalidate_by_archive_prefix(self):
        cache = SharedChunkCache(max_bytes=1 << 20)
        cache.put((1, 1, 100, "a", 0), np.ones(4))
        cache.put((1, 1, 100, "b", 0), np.ones(4))
        cache.put((2, 2, 100, "a", 0), np.ones(4))
        dropped = cache.invalidate(archive_id=(1, 1, 100))
        assert dropped == 2
        assert cache.get((1, 1, 100, "a", 0)) is None
        assert cache.get((2, 2, 100, "a", 0)) is not None

    def test_invalidate_all(self):
        cache = SharedChunkCache(max_bytes=1 << 20)
        cache.put(("x",), np.ones(4))
        cache.put(("y",), np.ones(4))
        assert cache.invalidate() == 2
        assert len(cache) == 0

    def test_generations_do_not_collide(self):
        """Entries for generation G and G+1 of one archive coexist."""
        cache = SharedChunkCache(max_bytes=1 << 20)
        old = np.zeros(4)
        new = np.ones(4)
        cache.put((1, 1, 100, "f", 0), old)
        cache.put((1, 1, 200, "f", 0), new)
        assert np.array_equal(cache.get((1, 1, 100, "f", 0)), old)
        assert np.array_equal(cache.get((1, 1, 200, "f", 0)), new)


class TestProcessSingleton:
    def test_process_cache_is_a_singleton(self):
        assert process_chunk_cache() is process_chunk_cache()
        assert isinstance(process_chunk_cache(), SharedChunkCache)

    def test_default_budget(self):
        assert DEFAULT_SHARED_CACHE_BYTES == 256 * 1024 * 1024


# --------------------------------------------------------------------------- #
# reader-level integration
# --------------------------------------------------------------------------- #
@pytest.fixture()
def lossless_archive(tmp_path):
    """64x64 lossless field in 16x16 chunks -> exactly 16 chunks."""
    path = tmp_path / "hot.xfa"
    data = np.arange(64 * 64, dtype=np.float64).reshape(64, 64)
    with ArchiveWriter(path, chunk_shape=(16, 16)) as writer:
        writer.add_field("hot", data, codec="lossless")
    return path, data


class TestReaderSharing:
    def test_shared_cache_argument_validation(self, lossless_archive):
        path, _ = lossless_archive
        with pytest.raises(ValueError, match="shared_cache"):
            ArchiveReader(path, shared_cache="yes")

    def test_shared_true_uses_process_singleton(self, lossless_archive):
        path, data = lossless_archive
        with ArchiveReader(path, shared_cache=True) as reader:
            assert reader._fetcher.shared is process_chunk_cache()
            assert np.array_equal(reader.read_field("hot"), data)

    def test_many_threads_many_readers_decode_each_chunk_once(self, lossless_archive):
        """The acceptance gate: total decodes across all readers == unique chunks."""
        path, data = lossless_archive
        shared = SharedChunkCache(max_bytes=1 << 24)
        n_readers, n_threads = 4, 8
        readers = [
            ArchiveReader(path, shared_cache=shared, cache_bytes=0) for _ in range(n_readers)
        ]
        try:
            barrier = threading.Barrier(n_threads)
            errors = []

            def work(thread_idx):
                try:
                    barrier.wait(timeout=10.0)
                    for reader in readers:
                        out = reader.read_field("hot")
                        assert np.array_equal(out, data)
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [threading.Thread(target=work, args=(i,)) for i in range(n_threads)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30.0)
            assert not errors

            total_decodes = sum(r.cache_stats()["chunks_decoded"] for r in readers)
            assert total_decodes == 16  # one decode per chunk, ever
            assert shared.stats["entries"] == 16
        finally:
            for reader in readers:
                reader.close()

    def test_cache_stats_exposes_shared_section(self, lossless_archive):
        path, _ = lossless_archive
        shared = SharedChunkCache(max_bytes=1 << 24)
        with ArchiveReader(path, shared_cache=shared) as reader:
            reader.read_field("hot")
            stats = reader.cache_stats()
            assert "shared" in stats
            assert stats["shared"]["entries"] == 16
        with ArchiveReader(path) as reader:
            assert "shared" not in reader.cache_stats()

    def test_append_gets_fresh_generation_keys(self, lossless_archive):
        path, data = lossless_archive
        shared = SharedChunkCache(max_bytes=1 << 24)
        with ArchiveReader(path, shared_cache=shared) as r1:
            gen1 = r1.generation
            assert np.array_equal(r1.read_field("hot"), data)
            entries_before = shared.stats["entries"]

            extra = np.full((64, 64), 5.0)
            with ArchiveWriter(path, mode="a") as appender:
                appender.add_field("extra", extra, codec="lossless")

            with ArchiveReader(path, shared_cache=shared) as r2:
                assert r2.generation > gen1
                assert np.array_equal(r2.read_field("hot"), data)
                assert np.array_equal(r2.read_field("extra"), extra)
            # both generations' chunks live side by side in the shared cache
            assert shared.stats["entries"] > entries_before

            # the old-generation reader still serves hits from its own keys
            decoded_before = r1.cache_stats()["chunks_decoded"]
            assert np.array_equal(r1.read_field("hot"), data)
            assert r1.cache_stats()["chunks_decoded"] == decoded_before

    def test_shared_telemetry_counters(self, lossless_archive):
        from repro import obs

        path, data = lossless_archive
        shared = SharedChunkCache(max_bytes=1 << 24)
        recorder = obs.Recorder()
        previous = obs.set_recorder(recorder)
        try:
            with ArchiveReader(path, shared_cache=shared, cache_bytes=0) as reader:
                reader.read_field("hot")
                reader.read_field("hot")
        finally:
            obs.set_recorder(previous)
        snapshot = recorder.snapshot()
        assert snapshot.counter("store.cache.shared.miss") == 16
        assert snapshot.counter("store.cache.shared.hit") >= 16
