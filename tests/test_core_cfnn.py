"""Unit tests for the CFNN model wrapper."""

import numpy as np
import pytest

from repro.core.cfnn import CFNN, CFNNConfig, build_cfnn_network
from repro.core.training import TrainingConfig


def _toy_problem(ndim, rng, size=24):
    """Anchors and a target with an exact linear cross-field difference relation."""
    if ndim == 2:
        shape = (size, size)
    else:
        shape = (8, size, size)
    anchors = [np.cumsum(rng.normal(size=shape), axis=-1) for _ in range(2)]
    target = 0.7 * anchors[0] - 0.4 * anchors[1]
    return anchors, target


class TestCFNNConfig:
    def test_channel_counts(self):
        config = CFNNConfig(n_anchors=3, ndim=3)
        assert config.in_channels == 9
        assert config.out_channels == 3

    def test_halo(self):
        assert CFNNConfig(n_anchors=1, ndim=2, kernel_size=3).halo == 3
        assert CFNNConfig(n_anchors=1, ndim=2, kernel_size=5).halo == 6

    def test_round_trip_dict(self):
        config = CFNNConfig(n_anchors=2, ndim=2, hidden_channels=4)
        assert CFNNConfig.from_dict(config.to_dict()) == config

    def test_invalid(self):
        with pytest.raises(ValueError):
            CFNNConfig(n_anchors=0, ndim=2)
        with pytest.raises(ValueError):
            CFNNConfig(n_anchors=1, ndim=4)
        with pytest.raises(ValueError):
            CFNNConfig(n_anchors=1, ndim=2, kernel_size=4)

    def test_network_parameter_count_matches_layers(self):
        config = CFNNConfig(n_anchors=2, ndim=2, hidden_channels=4, expanded_channels=8)
        network = build_cfnn_network(config)
        assert network.num_parameters() > 0
        assert CFNN(config).num_parameters == network.num_parameters()


class TestCFNNTrainingAndInference:
    def test_training_reduces_loss_2d(self):
        rng = np.random.default_rng(0)
        anchors, target = _toy_problem(2, rng, size=48)
        model = CFNN(CFNNConfig(n_anchors=2, ndim=2, hidden_channels=4, expanded_channels=8))
        history = model.train(anchors, target, TrainingConfig(epochs=6, n_patches=32, patch_size_2d=16))
        assert history.improved()
        assert model.is_trained

    def test_predict_differences_shapes(self):
        rng = np.random.default_rng(1)
        anchors, target = _toy_problem(2, rng)
        model = CFNN(CFNNConfig(n_anchors=2, ndim=2, hidden_channels=4, expanded_channels=8))
        model.train(anchors, target, TrainingConfig(epochs=1, n_patches=8, patch_size_2d=16))
        diffs = model.predict_differences(anchors)
        assert len(diffs) == 2
        assert all(d.shape == target.shape for d in diffs)

    def test_predict_3d(self):
        rng = np.random.default_rng(2)
        anchors, target = _toy_problem(3, rng, size=16)
        model = CFNN(CFNNConfig(n_anchors=2, ndim=3, hidden_channels=4, expanded_channels=8), tile_size=16)
        model.train(anchors, target, TrainingConfig(epochs=1, n_patches=6, patch_size_3d=8))
        diffs = model.predict_differences(anchors)
        assert len(diffs) == 3
        assert diffs[0].shape == target.shape

    def test_untrained_prediction_rejected(self):
        model = CFNN(CFNNConfig(n_anchors=1, ndim=2))
        with pytest.raises(RuntimeError):
            model.predict_differences([np.zeros((16, 16))])

    def test_wrong_anchor_count(self):
        rng = np.random.default_rng(3)
        anchors, target = _toy_problem(2, rng)
        model = CFNN(CFNNConfig(n_anchors=2, ndim=2, hidden_channels=4, expanded_channels=8))
        with pytest.raises(ValueError):
            model.train(anchors[:1], target)

    def test_serialization_roundtrip_gives_identical_predictions(self):
        rng = np.random.default_rng(4)
        anchors, target = _toy_problem(2, rng, size=40)
        model = CFNN(CFNNConfig(n_anchors=2, ndim=2, hidden_channels=4, expanded_channels=8))
        model.train(anchors, target, TrainingConfig(epochs=2, n_patches=16, patch_size_2d=16))
        payload = model.to_bytes()
        restored = CFNN.from_bytes(payload)
        original_pred = CFNN.from_bytes(payload).predict_differences(anchors)
        restored_pred = restored.predict_differences(anchors)
        for a, b in zip(original_pred, restored_pred):
            assert np.array_equal(a, b)

    def test_serialize_untrained_rejected(self):
        with pytest.raises(RuntimeError):
            CFNN(CFNNConfig(n_anchors=1, ndim=2)).to_bytes()

    def test_tiled_inference_deterministic(self):
        rng = np.random.default_rng(5)
        anchors, target = _toy_problem(2, rng, size=80)
        model = CFNN(CFNNConfig(n_anchors=2, ndim=2, hidden_channels=4, expanded_channels=8), tile_size=32)
        model.train(anchors, target, TrainingConfig(epochs=1, n_patches=8, patch_size_2d=16))
        a = model.predict_differences(anchors)
        b = model.predict_differences(anchors)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_tile_size_too_small(self):
        with pytest.raises(ValueError):
            CFNN(CFNNConfig(n_anchors=1, ndim=2), tile_size=2)
