"""Unit tests for repro.data.slicing."""

import numpy as np
import pytest

from repro.data.slicing import (
    extract_patches,
    extract_patches_nd,
    iter_blocks,
    reassemble_blocks,
    take_slice,
    zoom_window,
)


class TestPatches:
    def test_aligned_sampling(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(32, 32))
        b = a * 2.0
        pa, pb = extract_patches([a, b], patch_size=8, n_patches=5, rng=np.random.default_rng(1))
        assert pa.shape == (5, 8, 8)
        assert np.allclose(pb, pa * 2.0)

    def test_patch_too_large(self):
        with pytest.raises(ValueError):
            extract_patches([np.zeros((4, 4))], patch_size=8, n_patches=1)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            extract_patches([np.zeros((8, 8)), np.zeros((9, 9))], patch_size=4, n_patches=1)

    def test_nd_patches_3d(self):
        rng = np.random.default_rng(2)
        vol = rng.normal(size=(10, 12, 14))
        (patches,) = extract_patches_nd([vol], (4, 5, 6), 3, rng=rng)
        assert patches.shape == (3, 4, 5, 6)

    def test_nd_rank_mismatch(self):
        with pytest.raises(ValueError):
            extract_patches_nd([np.zeros((8, 8))], (2, 2, 2), 1)


class TestBlocks:
    def test_blocks_cover_exactly(self):
        shape = (7, 10)
        blocks = list(iter_blocks(shape, (3, 4)))
        covered = np.zeros(shape, dtype=int)
        for sl in blocks:
            covered[sl] += 1
        assert np.all(covered == 1)

    def test_reassemble_round_trip(self):
        rng = np.random.default_rng(3)
        data = rng.normal(size=(9, 11, 5))
        block_shape = (4, 4, 3)
        blocks = [data[sl].copy() for sl in iter_blocks(data.shape, block_shape)]
        rebuilt = reassemble_blocks(blocks, data.shape, block_shape)
        assert np.array_equal(rebuilt, data)

    def test_reassemble_wrong_count(self):
        with pytest.raises(ValueError):
            reassemble_blocks([np.zeros((2, 2))], (4, 4), (2, 2))

    def test_invalid_block_shape(self):
        with pytest.raises(ValueError):
            list(iter_blocks((4, 4), (0, 2)))


class TestSliceAndZoom:
    def test_take_slice(self):
        vol = np.arange(24).reshape(2, 3, 4)
        sl = take_slice(vol, axis=0, index=1)
        assert sl.shape == (3, 4)
        assert np.array_equal(sl, vol[1])

    def test_take_slice_out_of_range(self):
        with pytest.raises(IndexError):
            take_slice(np.zeros((2, 2)), axis=0, index=5)

    def test_zoom_window_centered(self):
        img = np.arange(100).reshape(10, 10).astype(float)
        win = zoom_window(img, (5, 5), 4)
        assert win.shape == (4, 4)

    def test_zoom_window_clipped_at_edge(self):
        img = np.zeros((10, 10))
        win = zoom_window(img, (0, 0), 6)
        assert win.shape == (6, 6)

    def test_zoom_requires_2d(self):
        with pytest.raises(ValueError):
            zoom_window(np.zeros((3, 3, 3)), (1, 1), 2)
