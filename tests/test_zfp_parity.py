"""Cross-implementation parity harness for the vectorised ZFP path.

The batched field transforms (`field_transform_forward` / `_inverse`) promise
*bit-identical* output to the per-block scalar references
(`block_transform_forward_reference` / `_inverse_reference`): both contract
each axis with the same fixed-order multiply/add sequence, so stacking blocks
cannot change a single bit.  This suite drives both implementations through
Hypothesis-generated shapes (1D/2D/3D, degenerate and ragged edges), block
sizes and dtypes, and asserts exact equality — the same pattern as
``tests/test_sz_parity.py``.

The progressive grouped layout is pinned from two directions:

- decoding every prefix of the significance groups must give a monotonically
  non-increasing L2 error, with the codec's own ``rms_error_estimate``
  bracketing the measured RMS to within the quantization bound (the transform
  is orthonormal, so the dropped-group energy *is* the L2 distance to the
  full decode);
- a grouped payload re-interleaved by hand into a legacy flat stream must
  decode bit-identically through the legacy (interleaved) path on fields with
  no ragged edges, proving the reorder is pure permutation.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.data.slicing import iter_blocks
from repro.encoding.container import CompressedBlob
from repro.sz.errors import ErrorBound
from repro.sz.pipeline import decode_integer_stream, encode_integer_stream
from repro.zfp import (
    MAX_TRANSFORM_SIZE,
    ZFPLikeCompressor,
    block_transform_forward_reference,
    block_transform_inverse_reference,
    clear_significance_plans,
    dct_matrix,
    field_transform_forward,
    field_transform_inverse,
    groups_for_fraction,
    significance_plan,
    significance_plan_info,
)
import repro.zfp.layout as zfp_layout

COMMON_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

SHAPES = st.one_of(
    st.tuples(st.integers(1, 40)),
    st.tuples(st.integers(1, 14), st.integers(1, 14)),
    st.tuples(st.integers(1, 7), st.integers(1, 7), st.integers(1, 7)),
)

FINITE = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False, width=32)


@st.composite
def transform_cases(draw):
    shape = draw(SHAPES)
    dtype = draw(st.sampled_from([np.float64, np.float32, np.int32]))
    if np.issubdtype(dtype, np.integer):
        data = draw(arrays(dtype, shape, elements=st.integers(-1000, 1000)))
    else:
        data = draw(arrays(dtype, shape, elements=FINITE))
    block_size = draw(st.integers(2, 5))
    return data, block_size


def reference_field_transform(data, block_size, inverse):
    """The original per-block loop, using the scalar reference transforms."""
    data = np.asarray(data, dtype=np.float64)
    out = np.empty(data.shape, dtype=np.float64)
    block_shape = tuple(block_size for _ in range(data.ndim))
    fn = block_transform_inverse_reference if inverse else block_transform_forward_reference
    for slices in iter_blocks(data.shape, block_shape):
        out[slices] = fn(data[slices])
    return out


# --------------------------------------------------------------------------- #
# batched vs reference transforms
# --------------------------------------------------------------------------- #
class TestTransformParity:
    @COMMON_SETTINGS
    @given(case=transform_cases())
    def test_forward_bit_identical(self, case):
        data, block_size = case
        batched = field_transform_forward(data, block_size)
        reference = reference_field_transform(data, block_size, inverse=False)
        assert batched.dtype == reference.dtype
        assert np.array_equal(batched, reference)

    @COMMON_SETTINGS
    @given(case=transform_cases())
    def test_inverse_bit_identical(self, case):
        data, block_size = case
        batched = field_transform_inverse(data, block_size)
        reference = reference_field_transform(data, block_size, inverse=True)
        assert np.array_equal(batched, reference)

    @COMMON_SETTINGS
    @given(case=transform_cases())
    def test_round_trip(self, case):
        data, block_size = case
        recon = field_transform_inverse(
            field_transform_forward(data, block_size), block_size
        )
        scale = max(1.0, float(np.max(np.abs(data))) if data.size else 1.0)
        assert np.allclose(recon, np.asarray(data, dtype=np.float64), atol=1e-9 * scale)

    @pytest.mark.parametrize("shape", [(0,), (0, 5), (4, 0, 3)])
    def test_empty_fields(self, shape):
        data = np.zeros(shape, dtype=np.float64)
        assert field_transform_forward(data, 4).shape == shape
        assert field_transform_inverse(data, 4).shape == shape

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            field_transform_forward(np.zeros(4), 0)


class TestDCTMatrixCache:
    def test_cache_is_bounded(self):
        assert dct_matrix.cache_info().maxsize is not None

    def test_size_ceiling(self):
        with pytest.raises(ValueError, match="MAX_TRANSFORM_SIZE"):
            dct_matrix(MAX_TRANSFORM_SIZE + 1)
        with pytest.raises(ValueError):
            dct_matrix(0)

    def test_matrices_are_read_only(self):
        matrix = dct_matrix(4)
        with pytest.raises(ValueError):
            matrix[0, 0] = 1.0


# --------------------------------------------------------------------------- #
# significance plans
# --------------------------------------------------------------------------- #
class TestSignificancePlans:
    @COMMON_SETTINGS
    @given(shape=SHAPES, block_size=st.integers(2, 5))
    def test_perm_is_a_permutation_ordered_by_level(self, shape, block_size):
        plan = significance_plan(shape, block_size)
        n = int(np.prod(shape))
        assert plan.n_points == n
        assert np.array_equal(np.sort(plan.perm), np.arange(n))
        coords = np.unravel_index(plan.perm, shape)
        levels = np.zeros(n, dtype=np.int64)
        for axis_coords in coords:
            levels += axis_coords % block_size
        # along the grouped stream the significance level is non-decreasing
        assert np.all(np.diff(levels) >= 0)
        assert int(plan.group_bounds[-1]) == n

    @COMMON_SETTINGS
    @given(shape=SHAPES, block_size=st.integers(2, 5))
    def test_point_counts_match_block_extents(self, shape, block_size):
        plan = significance_plan(shape, block_size)
        counts = plan.point_counts.reshape(shape)
        block_shape = tuple(block_size for _ in shape)
        for slices in iter_blocks(shape, block_shape):
            block = counts[slices]
            assert np.all(block == block.size)

    def test_cache_stats_and_clear(self):
        clear_significance_plans()
        significance_plan((8, 8), 4)
        significance_plan((8, 8), 4)
        info = significance_plan_info()
        assert info["entries"] == 1
        assert info["hits"] == 1
        assert info["misses"] == 1
        clear_significance_plans()
        assert significance_plan_info()["entries"] == 0

    def test_cache_is_bounded(self, monkeypatch):
        monkeypatch.setattr(zfp_layout, "_PLAN_CACHE_MAX_ELEMENTS", 1000)
        clear_significance_plans()
        for n in range(20, 40):
            significance_plan((n,), 4)
        info = significance_plan_info()
        assert info["points"] <= 1000 + 39  # at most one oversized newest entry
        clear_significance_plans()

    def test_groups_for_fraction(self):
        assert groups_for_fraction([10, 10, 10, 10], 0.5) == 2
        assert groups_for_fraction([10, 10, 10, 10], 0.01) == 1
        assert groups_for_fraction([10, 10, 10, 10], 1.0) == 4
        assert groups_for_fraction([], 0.5) == 0
        with pytest.raises(ValueError):
            groups_for_fraction([1], 0.0)
        with pytest.raises(ValueError):
            groups_for_fraction([1], float("nan"))


# --------------------------------------------------------------------------- #
# grouped layout: previews and legacy parity
# --------------------------------------------------------------------------- #
SMOOTH_SHAPES = st.one_of(
    st.tuples(st.integers(4, 40)),
    st.tuples(st.integers(4, 16), st.integers(4, 16)),
    st.tuples(st.integers(4, 8), st.integers(4, 8), st.integers(4, 8)),
)


@st.composite
def smooth_fields(draw):
    """Cumsum-smoothed random fields: realistic low-frequency energy split."""
    shape = draw(SMOOTH_SHAPES)
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    data = rng.normal(size=shape)
    data = np.cumsum(data, axis=0)
    dtype = draw(st.sampled_from([np.float32, np.float64]))
    return data.astype(dtype)


class TestGroupedLayout:
    @COMMON_SETTINGS
    @given(data=smooth_fields())
    def test_preview_error_monotone_and_estimate_brackets_rms(self, data):
        eb = 1e-3 * max(1.0, float(np.max(np.abs(data))))
        comp = ZFPLikeCompressor(ErrorBound.absolute(eb), layout="grouped")
        result = comp.compress(data)
        n_groups = len(result.metadata["groups"])
        reference = data.astype(np.float64)
        blob = CompressedBlob.from_bytes(result.payload)
        previous = None
        for k in range(1, n_groups + 1):
            decoded, info = comp._decode_blob(blob, max_groups=k)
            rms = float(
                np.sqrt(np.mean((decoded.astype(np.float64) - reference) ** 2))
            )
            # the estimate is the exact L2 distance to the full decode, so it
            # brackets the measured RMS to within the point-wise bound
            estimate = info["rms_error_estimate"]
            assert abs(rms - estimate) <= eb * (1 + 1e-9) + 1e-12
            if previous is not None:
                # adding a group can only remove coefficient-domain energy
                # from the residual (orthonormal transform): allow only the
                # quantization-bound wiggle
                assert rms <= previous + 2 * eb * (1 + 1e-9) + 1e-12
            previous = rms
        assert info["groups_decoded"] == n_groups
        assert info["rms_error_estimate"] == 0.0

    @COMMON_SETTINGS
    @given(data=smooth_fields())
    def test_full_decode_honours_bound(self, data):
        eb = 1e-3 * max(1.0, float(np.max(np.abs(data))))
        comp = ZFPLikeCompressor(ErrorBound.absolute(eb), layout="grouped")
        decoded = comp.decompress(comp.compress(data).payload)
        assert (
            np.max(np.abs(decoded.astype(np.float64) - data.astype(np.float64)))
            <= eb * (1 + 1e-9)
        )

    @COMMON_SETTINGS
    @given(
        shape=st.one_of(
            st.tuples(st.integers(1, 10).map(lambda n: n * 4)),
            st.tuples(
                st.integers(1, 4).map(lambda n: n * 4),
                st.integers(1, 4).map(lambda n: n * 4),
            ),
        ),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_reinterleaved_stream_decodes_bit_identically(self, shape, seed):
        """Grouped payloads are a pure permutation of the legacy stream.

        Restricted to multiple-of-4 shapes: with no ragged blocks the per-block
        step equals the legacy scalar step bitwise, so scattering the grouped
        integer stream back to C order and wrapping it as a legacy interleaved
        payload must reproduce the grouped decode bit for bit.
        """
        rng = np.random.default_rng(seed)
        data = np.cumsum(rng.normal(size=shape), axis=0).astype(np.float32)
        comp = ZFPLikeCompressor(ErrorBound.absolute(1e-2), layout="grouped")
        result = comp.compress(data)
        grouped_decode = comp.decompress(result.payload)

        # reassemble the flat C-order integer stream from the grouped sections
        blob = CompressedBlob.from_bytes(result.payload)
        metadata = blob.metadata
        plan = significance_plan(tuple(metadata["shape"]), int(metadata["block_size"]))
        flat = np.zeros(int(np.prod(metadata["shape"])), dtype=np.int64)
        offset = 0
        for group in metadata["groups"]:
            values = decode_integer_stream(blob.sections, group["stream"])
            flat[plan.perm[offset : offset + values.size]] = values
            offset += int(values.size)

        # wrap it as a legacy interleaved payload
        sections, stream_meta = encode_integer_stream(
            flat, comp.entropy, comp.backend, comp.quant_radius
        )
        legacy_meta = {
            "format": comp.format_name,
            "field_name": metadata["field_name"],
            "shape": metadata["shape"],
            "dtype": metadata["dtype"],
            "error_bound": metadata["error_bound"],
            "abs_error_bound": metadata["abs_error_bound"],
            "block_size": metadata["block_size"],
            "step": metadata["step"],
            "stream": stream_meta,
        }
        legacy_payload = CompressedBlob(metadata=legacy_meta, sections=sections).to_bytes()
        legacy_decode = comp.decompress(legacy_payload)
        assert legacy_decode.dtype == grouped_decode.dtype
        assert np.array_equal(legacy_decode, grouped_decode)

    def test_ragged_grouped_ratio_not_worse_than_interleaved_step(self):
        # satellite: edge blocks quantize with their actual point count, so
        # their steps are larger and their integer coefficients no bigger
        rng = np.random.default_rng(11)
        data = np.cumsum(rng.normal(size=(13, 19)), axis=1).astype(np.float32)
        eb = ErrorBound.absolute(1e-2)
        grouped = ZFPLikeCompressor(eb, layout="grouped").compress(data)
        plan = significance_plan((13, 19), 4)
        step_full = 2.0 * 1e-2 / np.sqrt(16.0)
        steps = 2.0 * grouped.metadata["abs_error_bound"] / np.sqrt(plan.point_counts)
        assert np.all(steps >= step_full * (1 - 1e-12))
        assert np.any(steps > step_full)  # ragged blocks really get larger steps

    def test_max_groups_validation(self):
        comp = ZFPLikeCompressor(ErrorBound.absolute(1e-2))
        payload = comp.compress(np.zeros((8, 8), dtype=np.float32)).payload
        with pytest.raises(ValueError):
            comp.decompress(payload, max_groups=0)

    def test_invalid_layout_rejected(self):
        with pytest.raises(ValueError):
            ZFPLikeCompressor(ErrorBound.absolute(1e-2), layout="banana")

    def test_interleaved_preview_falls_back_to_full(self):
        rng = np.random.default_rng(5)
        data = rng.normal(size=(16, 16)).astype(np.float32)
        comp = ZFPLikeCompressor(ErrorBound.absolute(1e-2), layout="interleaved")
        payload = comp.compress(data).payload
        full = comp.decompress(payload)
        preview, info = comp.decompress_preview(payload, 0.1)
        assert np.array_equal(preview, full)
        assert info["groups_decoded"] == info["groups_total"] == 1
        assert info["bytes_decoded"] == info["bytes_total"]
        assert info["rms_error_estimate"] == 0.0
