"""Unit tests for distortion metrics."""

import numpy as np
import pytest

from repro.metrics import max_abs_error, mean_abs_error, mse, nrmse, psnr, rmse


class TestDistortion:
    def test_identical_arrays(self):
        x = np.random.default_rng(0).normal(size=(20, 20))
        assert mse(x, x) == 0.0
        assert rmse(x, x) == 0.0
        assert psnr(x, x) == float("inf")
        assert max_abs_error(x, x) == 0.0

    def test_known_values(self):
        a = np.array([0.0, 0.0, 0.0, 0.0])
        b = np.array([1.0, -1.0, 1.0, -1.0])
        assert mse(a, b) == 1.0
        assert rmse(a, b) == 1.0
        assert mean_abs_error(a, b) == 1.0
        assert max_abs_error(a, b) == 1.0

    def test_psnr_formula(self):
        original = np.array([0.0, 10.0])
        noisy = original + np.array([0.1, -0.1])
        expected = 20 * np.log10(10.0) - 10 * np.log10(0.01)
        assert np.isclose(psnr(original, noisy), expected)

    def test_psnr_decreases_with_noise(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(50, 50))
        small = psnr(x, x + rng.normal(scale=1e-4, size=x.shape))
        large = psnr(x, x + rng.normal(scale=1e-2, size=x.shape))
        assert small > large

    def test_nrmse_normalisation(self):
        x = np.array([0.0, 10.0])
        y = np.array([1.0, 10.0])
        assert np.isclose(nrmse(x, y), rmse(x, y) / 10.0)

    def test_nrmse_constant_original(self):
        x = np.full(4, 3.0)
        y = x + 0.5
        assert np.isclose(nrmse(x, y), 0.5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse(np.zeros(3), np.zeros(4))

    def test_symmetry_of_error_metrics(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=10)
        b = rng.normal(size=10)
        assert np.isclose(mse(a, b), mse(b, a))
        assert np.isclose(max_abs_error(a, b), max_abs_error(b, a))
