"""Unit tests for CFNN training-data preparation."""

import numpy as np
import pytest

from repro.core.training import TrainingConfig, make_difference_patches, normalisation_scales


class TestTrainingConfig:
    def test_defaults_valid(self):
        TrainingConfig().validate()

    def test_patch_shape_clamped(self):
        config = TrainingConfig(patch_size_2d=32, patch_size_3d=12)
        assert config.patch_shape(2, (16, 100)) == (16, 32)
        assert config.patch_shape(3, (8, 100, 100)) == (8, 12, 12)

    def test_invalid_ndim(self):
        with pytest.raises(ValueError):
            TrainingConfig().patch_shape(4, (2, 2, 2, 2))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epochs": 0},
            {"batch_size": 0},
            {"learning_rate": -1.0},
            {"n_patches": 0},
            {"validation_fraction": 1.5},
        ],
    )
    def test_invalid_hyperparameters(self, kwargs):
        with pytest.raises(ValueError):
            TrainingConfig(**kwargs).validate()


class TestPatches:
    def test_shapes_2d(self):
        rng = np.random.default_rng(0)
        anchors = [rng.normal(size=(40, 50)) for _ in range(2)]
        target = rng.normal(size=(40, 50))
        config = TrainingConfig(n_patches=7, patch_size_2d=16)
        inputs, targets, anchor_scales, target_scales = make_difference_patches(anchors, target, config)
        assert inputs.shape == (7, 4, 16, 16)   # 2 anchors x 2 axes
        assert targets.shape == (7, 2, 16, 16)  # 2 axes
        assert anchor_scales.shape == (4,)
        assert target_scales.shape == (2,)

    def test_shapes_3d(self):
        rng = np.random.default_rng(1)
        anchors = [rng.normal(size=(10, 20, 20)) for _ in range(3)]
        target = rng.normal(size=(10, 20, 20))
        config = TrainingConfig(n_patches=4, patch_size_3d=8)
        inputs, targets, _, _ = make_difference_patches(anchors, target, config)
        assert inputs.shape == (4, 9, 8, 8, 8)
        assert targets.shape == (4, 3, 8, 8, 8)

    def test_normalised_channels_have_unit_scale(self):
        rng = np.random.default_rng(2)
        anchors = [rng.normal(size=(64, 64)) * 100]
        target = rng.normal(size=(64, 64)) * 0.01
        config = TrainingConfig(n_patches=32, patch_size_2d=32)
        inputs, targets, _, _ = make_difference_patches(anchors, target, config)
        assert 0.1 < np.std(inputs) < 10.0
        assert 0.1 < np.std(targets) < 10.0

    def test_grid_mismatch_rejected(self):
        with pytest.raises(ValueError):
            make_difference_patches([np.zeros((4, 4))], np.zeros((5, 5)), TrainingConfig(n_patches=1))

    def test_supplied_scales_used(self):
        rng = np.random.default_rng(3)
        anchors = [rng.normal(size=(32, 32))]
        target = rng.normal(size=(32, 32))
        config = TrainingConfig(n_patches=4, patch_size_2d=16)
        _, _, a_scales, t_scales = make_difference_patches(
            anchors, target, config, anchor_scales=np.array([2.0, 2.0]), target_scales=np.array([4.0, 4.0])
        )
        assert np.allclose(a_scales, 2.0)
        assert np.allclose(t_scales, 4.0)

    def test_wrong_scale_length_rejected(self):
        rng = np.random.default_rng(4)
        with pytest.raises(ValueError):
            make_difference_patches(
                [rng.normal(size=(16, 16))],
                rng.normal(size=(16, 16)),
                TrainingConfig(n_patches=1, patch_size_2d=8),
                anchor_scales=np.array([1.0]),
            )

    def test_normalisation_scales_floor(self):
        scales = normalisation_scales([np.zeros((4, 4))])
        assert scales[0] > 0
