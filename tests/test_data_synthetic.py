"""Unit tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.data.synthetic import (
    DATASET_GENERATORS,
    gaussian_random_field,
    make_cesm_dataset,
    make_dataset,
    make_hurricane_dataset,
    make_scale_dataset,
)
from repro.metrics.correlation import mutual_information_score


class TestGaussianRandomField:
    def test_normalised(self):
        rng = np.random.default_rng(0)
        field = gaussian_random_field((32, 32), rng, power=3.0)
        assert abs(field.mean()) < 1e-8
        assert np.isclose(field.std(), 1.0)

    def test_smoothness_increases_with_power(self):
        rng_a = np.random.default_rng(1)
        rng_b = np.random.default_rng(1)
        rough = gaussian_random_field((64, 64), rng_a, power=1.0)
        smooth = gaussian_random_field((64, 64), rng_b, power=4.0)
        assert np.abs(np.diff(smooth, axis=0)).mean() < np.abs(np.diff(rough, axis=0)).mean()

    def test_rejects_tiny_dims(self):
        with pytest.raises(ValueError):
            gaussian_random_field((1, 8), np.random.default_rng(0))

    def test_anisotropy_length_check(self):
        with pytest.raises(ValueError):
            gaussian_random_field((8, 8), np.random.default_rng(0), anisotropy=[1.0])


class TestGenerators:
    def test_scale_fields_and_shape(self):
        ds = make_scale_dataset((6, 24, 24), seed=0)
        assert ds.shape == (6, 24, 24)
        for name in ("U", "V", "W", "PRES", "T", "QV", "RH"):
            assert name in ds

    def test_scale_rh_physical_range(self):
        ds = make_scale_dataset((6, 24, 24), seed=0)
        rh = ds["RH"].data
        assert rh.min() >= 0.0 and rh.max() <= 110.0

    def test_hurricane_fields(self):
        ds = make_hurricane_dataset((6, 24, 24), seed=1)
        for name in ("Uf", "Vf", "Wf", "Pf", "TCf"):
            assert name in ds
        assert ds["Pf"].data.min() > 0

    def test_cesm_fields_and_relations(self):
        ds = make_cesm_dataset((48, 96), seed=2)
        cldtot = ds["CLDTOT"].data
        assert cldtot.min() >= 0.0 and cldtot.max() <= 1.0
        # LWCF is constructed as FLNTC - FLNT
        assert np.allclose(ds["LWCF"].data, ds["FLNTC"].data - ds["FLNT"].data, atol=1e-3)

    def test_cross_field_dependence_exists(self):
        ds = make_hurricane_dataset((8, 32, 32), seed=3)
        mi = mutual_information_score(ds["Wf"].data, ds["Uf"].data, bins=32)
        assert mi > 0.05

    def test_reproducible_with_seed(self):
        a = make_cesm_dataset((24, 48), seed=9)["FLUT"].data
        b = make_cesm_dataset((24, 48), seed=9)["FLUT"].data
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = make_cesm_dataset((24, 48), seed=1)["FLUT"].data
        b = make_cesm_dataset((24, 48), seed=2)["FLUT"].data
        assert not np.array_equal(a, b)

    def test_wrong_rank_raises(self):
        with pytest.raises(ValueError):
            make_cesm_dataset((4, 4, 4))
        with pytest.raises(ValueError):
            make_scale_dataset((10, 10))


class TestRegistry:
    def test_make_dataset_dispatch(self):
        ds = make_dataset("cesm-atm", shape=(24, 48))
        assert ds.name == "CESM-ATM"

    def test_all_generators_registered(self):
        assert set(DATASET_GENERATORS) == {"scale", "hurricane", "cesm"}

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_dataset("unknown")

    def test_float32_output(self):
        ds = make_dataset("hurricane", shape=(4, 16, 16))
        assert all(f.dtype == np.float32 for f in ds)
