"""Tests for the shared chunk execution engine (:mod:`repro.parallel.engine`)."""

import threading
import time

import pytest

from repro.parallel import ChunkScheduler, ChunkTaskError, SCHEDULER_KINDS, default_jobs


def _square(x):
    # module-level so the process backend can pickle it
    return x * x


class TestConstruction:
    def test_invalid_kind(self):
        with pytest.raises(ValueError, match="executor_kind"):
            ChunkScheduler(executor_kind="gpu")

    @pytest.mark.parametrize("jobs", [0, -1, 1.5, True])
    def test_invalid_jobs(self, jobs):
        with pytest.raises(ValueError, match="jobs"):
            ChunkScheduler(jobs=jobs)

    def test_invalid_window_factor(self):
        with pytest.raises(ValueError, match="window_factor"):
            ChunkScheduler(window_factor=0)

    def test_kinds_exported(self):
        assert set(SCHEDULER_KINDS) == {"thread", "process", "serial"}

    def test_effective_jobs(self):
        assert ChunkScheduler(jobs=3).effective_jobs == 3
        assert ChunkScheduler().effective_jobs == default_jobs()


class TestOrderedCollection:
    @pytest.mark.parametrize("kind", ["serial", "thread"])
    def test_map_preserves_order(self, kind):
        scheduler = ChunkScheduler(jobs=4, executor_kind=kind)
        items = list(range(40))
        assert scheduler.map(_square, items) == [x * x for x in items]

    def test_imap_is_lazy_but_validates_eagerly(self):
        scheduler = ChunkScheduler(jobs=2)
        gen = scheduler.imap(_square, range(10))
        assert next(gen) == 0
        assert list(gen) == [x * x for x in range(1, 10)]

    def test_imap_windows_submissions(self):
        submitted = []
        lock = threading.Lock()

        def work(x):
            with lock:
                submitted.append(x)
            return x

        gen = ChunkScheduler(jobs=2).imap(work, range(50))
        assert next(gen) == 0  # fills the 2*2 window, yields item 0
        time.sleep(0.05)  # workers drain the window; no new submissions yet
        assert len(submitted) <= 4
        assert list(gen) == list(range(1, 50))

    def test_process_backend_round_trip(self):
        scheduler = ChunkScheduler(jobs=2, executor_kind="process")
        assert scheduler.map(_square, range(8)) == [x * x for x in range(8)]


class TestUnorderedCollection:
    @pytest.mark.parametrize("kind", ["serial", "thread"])
    def test_yields_every_indexed_result(self, kind):
        scheduler = ChunkScheduler(jobs=4, executor_kind=kind)
        pairs = list(scheduler.imap_unordered(_square, [3, 1, 4, 1, 5, 9]))
        assert sorted(pairs) == [(0, 9), (1, 1), (2, 16), (3, 1), (4, 25), (5, 81)]

    def test_slow_task_does_not_block_fast_ones(self):
        def work(x):
            if x == 0:
                time.sleep(0.2)
            return x

        scheduler = ChunkScheduler(jobs=4)
        first_index, _ = next(iter(scheduler.imap_unordered(work, range(4))))
        assert first_index != 0  # the sleeping task finishes last


class TestSerialFallback:
    def test_jobs_one_runs_in_calling_thread(self):
        seen = set()

        def work(x):
            seen.add(threading.get_ident())
            return x

        assert ChunkScheduler(jobs=1).map(work, range(10)) == list(range(10))
        assert list(ChunkScheduler(jobs=1).imap_unordered(work, range(4))) == [
            (i, i) for i in range(4)
        ]
        assert seen == {threading.get_ident()}

    def test_single_item_short_circuits(self):
        seen = set()

        def work(x):
            seen.add(threading.get_ident())
            return x

        assert ChunkScheduler(jobs=8).map(work, [7]) == [7]
        assert seen == {threading.get_ident()}

    def test_is_serial(self):
        assert ChunkScheduler(jobs=1).is_serial()
        assert ChunkScheduler(executor_kind="serial").is_serial()
        assert not ChunkScheduler(jobs=2).is_serial()
        assert ChunkScheduler(jobs=2).is_serial(n_tasks=1)


class TestPoolReuse:
    def test_pool_survives_calls_and_close_is_idempotent(self):
        scheduler = ChunkScheduler(jobs=2, reuse_pool=True)
        try:
            assert scheduler.map(_square, range(8)) == [x * x for x in range(8)]
            pool = scheduler._pool
            assert pool is not None
            assert sorted(scheduler.imap_unordered(_square, range(8))) == [
                (i, i * i) for i in range(8)
            ]
            assert scheduler._pool is pool  # same pool across calls
        finally:
            scheduler.close()
        assert scheduler._pool is None
        scheduler.close()  # idempotent
        # the pool comes back on next use after close
        assert scheduler.map(_square, range(4)) == [0, 1, 4, 9]
        scheduler.close()

    def test_failure_leaves_reused_pool_usable(self):
        def boom(x):
            if x == 2:
                raise ValueError("bad chunk")
            return x

        scheduler = ChunkScheduler(jobs=2, reuse_pool=True)
        try:
            with pytest.raises(ValueError, match="bad chunk"):
                scheduler.map(boom, range(20))
            assert scheduler.map(_square, range(6)) == [x * x for x in range(6)]
        finally:
            scheduler.close()

    def test_default_scheduler_owns_no_pool(self):
        scheduler = ChunkScheduler(jobs=2)
        scheduler.map(_square, range(4))
        assert scheduler._pool is None  # per-call pools only


class TestErrorPropagation:
    @staticmethod
    def _boom(x):
        if x == 3:
            raise ValueError("bad payload")
        return x

    @pytest.mark.parametrize("kind", ["serial", "thread"])
    def test_without_context_raises_raw(self, kind):
        scheduler = ChunkScheduler(jobs=2, executor_kind=kind)
        with pytest.raises(ValueError, match="bad payload"):
            scheduler.map(self._boom, range(8))

    @pytest.mark.parametrize("kind", ["serial", "thread"])
    def test_context_wraps_with_chunk_coordinates(self, kind):
        scheduler = ChunkScheduler(jobs=2, executor_kind=kind)
        with pytest.raises(ChunkTaskError, match=r"field 'T' chunk 3: bad payload") as excinfo:
            scheduler.map(
                self._boom, range(8), context=lambda i, item: f"field 'T' chunk {i}"
            )
        assert excinfo.value.context == "field 'T' chunk 3"
        assert isinstance(excinfo.value.original, ValueError)
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_context_wraps_unordered(self):
        scheduler = ChunkScheduler(jobs=2)
        with pytest.raises(ChunkTaskError, match="chunk 3"):
            list(
                scheduler.imap_unordered(
                    self._boom, range(8), context=lambda i, item: f"chunk {i}"
                )
            )

    def test_failure_cancels_queued_window(self):
        executed = []
        lock = threading.Lock()

        def work(x):
            with lock:
                executed.append(x)
            if x == 0:
                raise RuntimeError("chunk failed")
            return x

        # jobs=2 keeps a real pool (jobs=1 would fall back to serial)
        gen = ChunkScheduler(jobs=2).imap(work, range(40))
        with pytest.raises(RuntimeError, match="chunk failed"):
            list(gen)
        # queued window items are cancelled; only tasks already running (at
        # most the 2*jobs window) may have executed
        assert len(executed) <= 4
