"""Time-stepped archives: append mode, temporal delta coding, crash consistency.

The crash-consistency property tests truncate an appended archive at
arbitrary byte offsets (Hypothesis) and assert the contract: reopening either
recovers exactly the fully flushed timesteps or raises a clean
:class:`ArchiveError` — never garbage data, never an unhandled struct/zlib
error.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store import (
    ArchiveError,
    ArchiveReader,
    ArchiveWriter,
    TemporalDeltaCodec,
    TemporalSpec,
    stored_field_name,
)
from repro.sz.errors import ErrorBound

BOUND = 0.01


def _series(steps=5, shape=(16, 24), seed=0):
    """Smooth, temporally correlated little test series."""
    rng = np.random.default_rng(seed)
    base = np.cumsum(rng.normal(size=shape), axis=1).astype(np.float32)
    return [
        base + 0.05 * t + 0.01 * rng.normal(size=shape).astype(np.float32)
        for t in range(steps)
    ]


def _write_steps(path, series, mode_for_step, spec=TemporalSpec(anchor_every=2)):
    """Write step 0 fresh, then append; returns per-flush file sizes."""
    publish_points = []
    for t, data in enumerate(series):
        with ArchiveWriter(
            path,
            chunk_shape=(8, 8),
            error_bound=ErrorBound.absolute(BOUND),
            mode=mode_for_step(t),
        ) as writer:
            writer.add_timestep({"T": data}, time=0.5 * t, temporal=spec)
        publish_points.append(path.stat().st_size)
    return publish_points


class TestAddTimestep:
    def test_round_trip_within_bound_every_step(self, tmp_path):
        series = _series()
        path = tmp_path / "a.xfa"
        _write_steps(path, series, lambda t: "w" if t == 0 else "a")
        with ArchiveReader(path) as reader:
            assert reader.steps == [0, 1, 2, 3, 4]
            codecs = [reader.field(stored_field_name("T", t)).codec for t in range(5)]
            # anchors at occurrences 0, 2, 4 with anchor_every=2
            assert codecs == ["sz", "temporal-delta", "sz", "temporal-delta", "sz"]
            for t, original in enumerate(series):
                recon = reader.read_timestep(t)["T"].data
                assert recon.dtype == original.dtype
                err = np.max(np.abs(recon.astype(np.float64) - original.astype(np.float64)))
                assert err <= BOUND * (1 + 1e-6), f"step {t}"

    def test_append_matches_single_shot_bit_exactly(self, tmp_path):
        series = _series()
        single, appended = tmp_path / "single.xfa", tmp_path / "appended.xfa"
        # single-shot: one writer session for all steps
        with ArchiveWriter(
            single, chunk_shape=(8, 8), error_bound=ErrorBound.absolute(BOUND)
        ) as writer:
            for t, data in enumerate(series):
                writer.add_timestep({"T": data}, time=0.5 * t, temporal=TemporalSpec(anchor_every=2))
        _write_steps(appended, series, lambda t: "w" if t == 0 else "a")
        with ArchiveReader(single) as ref, ArchiveReader(appended) as got:
            assert ref.steps == got.steps
            for t in ref.steps:
                assert np.array_equal(
                    ref.read_timestep(t)["T"].data, got.read_timestep(t)["T"].data
                ), f"step {t}"

    def test_auto_step_ids_and_monotonicity(self, tmp_path):
        with ArchiveWriter(tmp_path / "a.xfa") as writer:
            data = np.ones((8, 8), dtype=np.float32)
            assert writer.add_timestep({"x": data}).step == 0
            assert writer.add_timestep({"x": data}, step=5).step == 5
            assert writer.add_timestep({"x": data}).step == 6
            with pytest.raises(ArchiveError, match="strictly increasing"):
                writer.add_timestep({"x": data}, step=3)

    def test_field_names_with_at_rejected(self, tmp_path):
        with ArchiveWriter(tmp_path / "a.xfa") as writer:
            with pytest.raises(ArchiveError, match="must not contain '@'"):
                writer.add_timestep({"x@1": np.ones((8, 8), dtype=np.float32)})

    def test_empty_timestep_rejected(self, tmp_path):
        with ArchiveWriter(tmp_path / "a.xfa") as writer:
            with pytest.raises(ArchiveError, match="at least one field"):
                writer.add_timestep({})

    def test_unknown_temporal_field_rejected(self, tmp_path):
        with ArchiveWriter(tmp_path / "a.xfa") as writer:
            with pytest.raises(ArchiveError, match="unknown field"):
                writer.add_timestep(
                    {"x": np.ones((8, 8), dtype=np.float32)},
                    temporal={"nope": TemporalSpec()},
                )

    def test_read_time_range_and_subset(self, tmp_path):
        series = _series(steps=4)
        path = tmp_path / "a.xfa"
        _write_steps(path, series, lambda t: "w" if t == 0 else "a")
        with ArchiveReader(path) as reader:
            window = reader.read_time_range(1, 3)
            assert [entry.step for entry, _ in window] == [1, 2]
            for entry, snapshot in window:
                assert np.array_equal(
                    snapshot["T"].data, reader.read_timestep(entry.step)["T"].data
                )
            with pytest.raises(ArchiveError, match="no field"):
                reader.read_timestep(1, fields=["missing"])
            with pytest.raises(ArchiveError, match="no timestep"):
                reader.read_timestep(99)

    def test_append_inherits_recorded_temporal_spec(self, tmp_path):
        path = tmp_path / "a.xfa"
        data = np.ones((16, 16), dtype=np.float32)
        with ArchiveWriter(path, error_bound=ErrorBound.absolute(BOUND)) as writer:
            writer.add_timestep({"x": data}, temporal=TemporalSpec(anchor_every=2))
        # no temporal argument: the append continues the recorded cadence
        for _ in range(2):
            with ArchiveWriter(path, mode="a", error_bound=ErrorBound.absolute(BOUND)) as writer:
                writer.add_timestep({"x": data})
        with ArchiveReader(path) as reader:
            assert [reader.field(f"x@{t}").codec for t in range(3)] == [
                "sz", "temporal-delta", "sz",  # occurrence 2 is an anchor: K=2 held
            ]
            assert reader.manifest.timestep(2).temporal["x"]["anchor_every"] == 2
        # temporal={} explicitly opts out: stored independently, no spec recorded
        with ArchiveWriter(path, mode="a", error_bound=ErrorBound.absolute(BOUND)) as writer:
            entry = writer.add_timestep({"x": data}, temporal={})
        assert entry.temporal == {}
        with ArchiveReader(path) as reader:
            assert reader.field("x@3").codec == "sz"
        # ...and the opt-out itself is what later flagless appends continue:
        # delta coding must not be resurrected from an older recorded spec
        with ArchiveWriter(path, mode="a", error_bound=ErrorBound.absolute(BOUND)) as writer:
            entry = writer.add_timestep({"x": data})
        assert entry.temporal == {}
        with ArchiveReader(path) as reader:
            assert reader.field("x@4").codec == "sz"

    def test_append_inherits_chunk_grid(self, tmp_path):
        path = tmp_path / "a.xfa"
        data = np.ones((32, 32), dtype=np.float32)
        with ArchiveWriter(path, chunk_shape=(8, 8)) as writer:
            writer.add_timestep({"x": data}, temporal=TemporalSpec(anchor_every=4))
        # the append session does not restate chunk_shape; the delta anchor
        # alignment requirement means the grid must carry over
        with ArchiveWriter(path, mode="a") as writer:
            writer.add_timestep({"x": data}, temporal=TemporalSpec(anchor_every=4))
        with ArchiveReader(path) as reader:
            assert reader.field("x@1").chunk_shape == (8, 8)
            assert reader.field("x@1").codec == "temporal-delta"


class TestAppendMode:
    def test_append_to_missing_archive_rejected(self, tmp_path):
        with pytest.raises(ArchiveError, match="existing archive"):
            ArchiveWriter(tmp_path / "missing.xfa", mode="a")

    def test_append_to_non_archive_rejected(self, tmp_path):
        path = tmp_path / "junk.xfa"
        path.write_bytes(b"\x00" * 256)
        with pytest.raises(ArchiveError):
            ArchiveWriter(path, mode="a")

    def test_bad_mode_rejected(self, tmp_path):
        with pytest.raises(ArchiveError, match="mode"):
            ArchiveWriter(tmp_path / "a.xfa", mode="r")

    def test_plain_fields_can_be_appended(self, tmp_path, rng):
        path = tmp_path / "a.xfa"
        first = rng.normal(size=(16, 16)).astype(np.float32)
        second = rng.normal(size=(16, 16)).astype(np.float32)
        with ArchiveWriter(path) as writer:
            writer.add_field("a", first, codec="lossless")
        with ArchiveWriter(path, mode="a") as writer:
            writer.add_field("b", second, codec="lossless")
        with ArchiveReader(path) as reader:
            assert reader.names == ["a", "b"]
            assert np.array_equal(reader.read_field("a"), first)
            assert np.array_equal(reader.read_field("b"), second)

    def test_aborted_append_rolls_back_to_last_flush(self, tmp_path):
        series = _series(steps=2)
        path = tmp_path / "a.xfa"
        _write_steps(path, series, lambda t: "w" if t == 0 else "a")
        good = path.read_bytes()
        with pytest.raises(RuntimeError):
            with ArchiveWriter(path, mode="a") as writer:
                writer.add_timestep(
                    {"T": series[0]}, temporal=TemporalSpec(anchor_every=2), flush=False
                )
                raise RuntimeError("boom mid-append")
        # the archive is byte-identical to its last flushed state
        assert path.read_bytes() == good
        with ArchiveReader(path) as reader:
            assert reader.steps == [0, 1]
        # and an aborted writer refuses to pretend it succeeded
        writer = ArchiveWriter(path, mode="a")
        writer.__exit__(RuntimeError, RuntimeError("boom"), None)
        with pytest.raises(ArchiveError, match="aborted"):
            writer.close()

    def test_append_attrs_merge(self, tmp_path):
        path = tmp_path / "a.xfa"
        with ArchiveWriter(path, attrs={"run": "one"}) as writer:
            writer.add_field("x", np.ones((8, 8), dtype=np.float32), codec="lossless")
        with ArchiveWriter(path, mode="a", attrs={"note": "appended"}) as writer:
            writer.add_field("y", np.ones((8, 8), dtype=np.float32), codec="lossless")
        with ArchiveReader(path) as reader:
            assert reader.attrs["run"] == "one"
            assert reader.attrs["note"] == "appended"


class TestTemporalSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="mode"):
            TemporalSpec(mode="sideways")
        with pytest.raises(ValueError, match="anchor_every"):
            TemporalSpec(anchor_every=0)
        with pytest.raises(ValueError, match="anchor_every"):
            TemporalSpec(anchor_every=True)

    def test_round_trip_and_coercion(self):
        spec = TemporalSpec(mode="delta", anchor_every=4, base="zfp")
        assert TemporalSpec.from_dict(spec.to_dict()) == spec
        assert TemporalSpec.coerce("independent").mode == "independent"
        assert TemporalSpec.coerce(None) is None
        with pytest.raises(ValueError, match="unknown key"):
            TemporalSpec.from_dict({"mode": "delta", "cadence": 3})


class TestTemporalDeltaCodec:
    def test_lossless_base_is_exact(self, rng):
        codec = TemporalDeltaCodec(base="lossless")
        previous = rng.normal(size=(8, 8))
        chunk = previous + rng.normal(size=(8, 8))
        payload = codec.encode(chunk, anchors=[previous])
        decoded = codec.decode(payload, anchors=[previous])
        assert np.array_equal(decoded, chunk)
        assert codec.params() == {"base": "lossless", "base_params": {}}

    def test_anchored_base_rejected(self):
        with pytest.raises(ValueError, match="without anchors"):
            TemporalDeltaCodec(base="cross-field")
        with pytest.raises(ValueError, match="without anchors"):
            TemporalDeltaCodec(base="temporal-delta")

    def test_requires_exactly_one_anchor(self, rng):
        codec = TemporalDeltaCodec(error_bound=ErrorBound.absolute(0.1))
        chunk = rng.normal(size=(8, 8))
        with pytest.raises(ValueError, match="exactly one anchor"):
            codec.encode(chunk, anchors=None)
        with pytest.raises(ValueError, match="exactly one anchor"):
            codec.encode(chunk, anchors=[chunk, chunk])


@pytest.fixture(scope="module")
def truncation_archive(tmp_path_factory):
    """One appended archive + per-flush publish points + reference decodes."""
    path = tmp_path_factory.mktemp("crash") / "series.xfa"
    series = _series(steps=4)
    publish_points = _write_steps(path, series, lambda t: "w" if t == 0 else "a")
    with ArchiveReader(path) as reader:
        reference = {t: reader.read_timestep(t)["T"].data for t in reader.steps}
    return path.read_bytes(), publish_points, reference


class TestCrashConsistency:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_truncated_archive_recovers_or_fails_cleanly(
        self, data, truncation_archive, tmp_path_factory
    ):
        raw, publish_points, reference = truncation_archive
        cut = data.draw(st.integers(min_value=0, max_value=len(raw)))
        path = tmp_path_factory.mktemp("cut") / "t.xfa"
        path.write_bytes(raw[:cut])

        # steps durably flushed before the cut
        flushed = sum(1 for point in publish_points if point <= cut)

        # plain reopen: success only when the cut lands exactly on a flush
        # boundary; anything else must be a *clean* ArchiveError
        try:
            with ArchiveReader(path) as reader:
                assert cut in publish_points
                assert reader.steps == list(range(flushed))
        except ArchiveError:
            assert cut not in publish_points

        # recovery reopen: everything flushed before the cut comes back, with
        # data identical to the intact archive; before the first flush there
        # is nothing to recover and the error stays clean
        try:
            with ArchiveReader(path, recover=True) as reader:
                assert flushed > 0
                assert reader.steps == list(range(flushed))
                for t in reader.steps:
                    assert np.array_equal(reader.read_timestep(t)["T"].data, reference[t])
                assert reader.verify(deep=True)["ok"]
        except ArchiveError:
            assert flushed == 0

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_append_resumes_after_truncation(self, data, truncation_archive, tmp_path_factory):
        raw, publish_points, reference = truncation_archive
        # cut somewhere after the first flush so recovery has a resume point
        cut = data.draw(st.integers(min_value=publish_points[0], max_value=len(raw)))
        path = tmp_path_factory.mktemp("resume") / "t.xfa"
        path.write_bytes(raw[:cut])
        flushed = sum(1 for point in publish_points if point <= cut)

        if cut not in publish_points:
            with pytest.raises(ArchiveError):
                ArchiveWriter(path, mode="a")
        with ArchiveWriter(
            path, mode="a", recover=True, error_bound=ErrorBound.absolute(BOUND)
        ) as writer:
            assert writer.manifest.steps == list(range(flushed))
            writer.add_timestep(
                {"T": reference[0]}, temporal=TemporalSpec(anchor_every=2)
            )
        with ArchiveReader(path) as reader:
            assert reader.steps == list(range(flushed + 1))
            assert reader.verify(deep=True)["ok"]


class TestManifestTimestepIndex:
    def test_newer_manifest_version_rejected(self):
        from repro.store import ArchiveManifest

        payload = ArchiveManifest().to_json().decode("utf-8").replace('"version": 2', '"version": 3')
        with pytest.raises(ArchiveError, match="newer"):
            ArchiveManifest.from_json(payload.encode("utf-8"))

    def test_timestep_entry_requires_fields(self):
        from repro.store import TimestepEntry
        from repro.store.manifest import ArchiveCorruptionError

        with pytest.raises(ArchiveCorruptionError, match="at least one field"):
            TimestepEntry.from_dict({"step": 0, "time": None, "fields": {}})

    def test_timestep_referencing_unknown_field_rejected(self):
        from repro.store import ArchiveManifest, TimestepEntry

        manifest = ArchiveManifest()
        with pytest.raises(ArchiveError, match="not in the archive"):
            manifest.add_timestep(TimestepEntry(step=0, fields={"T": "T@0"}))

    def test_corrupt_timestep_index_reported_cleanly(self, tmp_path):
        # a CRC-valid manifest whose timestep index is malformed must raise
        # through the Archive error hierarchy, not a bare KeyError/TypeError
        from repro.store import ArchiveManifest

        good = ArchiveManifest.from_json(ArchiveManifest().to_json())
        assert good.timesteps == []
        import json as _json

        payload = _json.loads(ArchiveManifest().to_json())
        payload["timesteps"] = [{"time": 1.0}]  # no step, no fields
        with pytest.raises(ArchiveError):
            ArchiveManifest.from_json(_json.dumps(payload).encode("utf-8"))

    def test_round_trip_preserves_timesteps(self, tmp_path):
        series = _series(steps=3)
        path = tmp_path / "a.xfa"
        _write_steps(path, series, lambda t: "w" if t == 0 else "a")
        from repro.store import ArchiveManifest

        with ArchiveReader(path) as reader:
            rebuilt = ArchiveManifest.from_json(reader.manifest.to_json())
            assert [e.to_dict() for e in rebuilt.timesteps] == [
                e.to_dict() for e in reader.manifest.timesteps
            ]


class TestTimestepTransactionality:
    def test_failed_timestep_leaves_no_orphan_fields(self, tmp_path):
        path = tmp_path / "a.xfa"
        good = np.ones((16, 16), dtype=np.float32)
        bad = np.ones((8, 8), dtype=np.float32)  # mismatched shape vs the chain
        with ArchiveWriter(path, error_bound=ErrorBound.absolute(BOUND)) as writer:
            writer.add_timestep({"T": good, "P": good}, temporal=TemporalSpec(anchor_every=8))
            # P's shape no longer matches its anchor: the whole step must fail
            with pytest.raises(ArchiveError):
                writer.add_timestep({"T": good, "P": bad}, temporal=TemporalSpec(anchor_every=8))
            # no orphan `T@1` survives, so the stream is still appendable
            assert "T@1" not in writer.manifest.fields
            entry = writer.add_timestep({"T": good, "P": good})
            assert entry.step == 1
        with ArchiveReader(path) as reader:
            assert reader.steps == [0, 1]
            assert reader.verify(deep=True)["ok"]

    def test_mismatched_times_rejected_before_any_write(self, tmp_path):
        from repro.pipeline import CompressionPipeline, PipelineConfig, PipelineConfigError

        series = _series(steps=3)
        from repro.data.fields import Field, FieldSet

        fieldsets = [FieldSet([Field("T", d)]) for d in series]
        path = tmp_path / "a.xfa"
        pipeline = CompressionPipeline(PipelineConfig(temporal={"mode": "delta"}))
        pipeline.compress_timeseries(fieldsets[:1], path)
        with pytest.raises(PipelineConfigError, match="wall-time tag"):
            pipeline.append_timesteps(path, fieldsets[1:], times=[1.0])
        # the failed call durably published nothing
        with ArchiveReader(path) as reader:
            assert reader.steps == [0]
