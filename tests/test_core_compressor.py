"""Integration tests for the cross-field compressor."""

import numpy as np
import pytest

from repro.core import CFNN, CFNNConfig, CrossFieldCompressor, TrainingConfig, compress_fieldset
from repro.core.anchors import get_anchor_spec
from repro.sz import ErrorBound, SZCompressor

FAST_TRAINING = TrainingConfig(epochs=2, n_patches=16, batch_size=4, patch_size_2d=16, patch_size_3d=8)


class TestCrossFieldCompressor2D:
    @pytest.fixture(scope="class")
    def compressed(self, request):
        cesm = request.getfixturevalue("cesm_small")
        anchors = [cesm[n].data.astype(np.float64) for n in ("CLDLOW", "CLDMED", "CLDHGH")]
        target = cesm["CLDTOT"].data
        comp = CrossFieldCompressor(
            error_bound=ErrorBound.relative(1e-3), training=FAST_TRAINING, allow_fallback=False
        )
        result = comp.compress(target, anchors, field_name="CLDTOT")
        return comp, result, target, anchors

    def test_error_bound_respected(self, compressed):
        comp, result, target, anchors = compressed
        recon = comp.decompress(result.payload, anchors)
        error = np.max(np.abs(recon.astype(np.float64) - target.astype(np.float64)))
        assert error <= result.abs_error_bound * (1 + 1e-9)

    def test_metadata_records_models(self, compressed):
        _, result, _, _ = compressed
        assert result.metadata["cfnn_parameters"] > 0
        assert result.metadata["hybrid_parameters"] == 3
        assert "model.cfnn" in result.section_sizes
        assert len(result.metadata["hybrid"]["weights"]) == 3

    def test_sequential_and_wavefront_decoders_agree(self, compressed):
        _, result, target, anchors = compressed
        wavefront = CrossFieldCompressor(decoder="wavefront").decompress(result.payload, anchors)
        sequential = CrossFieldCompressor(decoder="sequential").decompress(result.payload, anchors)
        assert np.array_equal(wavefront, sequential)

    def test_wrong_anchor_count_rejected(self, compressed):
        comp, result, _, anchors = compressed
        with pytest.raises(ValueError):
            comp.decompress(result.payload, anchors[:1])

    def test_wrong_anchor_shape_rejected(self, compressed):
        comp, result, _, anchors = compressed
        bad = [a[:-1, :-1] for a in anchors]
        with pytest.raises(ValueError):
            comp.decompress(result.payload, bad)


class TestCrossFieldCompressor3D:
    def test_round_trip_3d(self, hurricane_small):
        anchors = [hurricane_small[n].data.astype(np.float64) for n in ("Uf", "Vf", "Pf")]
        target = hurricane_small["Wf"].data
        comp = CrossFieldCompressor(
            error_bound=ErrorBound.relative(1e-3), training=FAST_TRAINING, tile_size=16
        )
        result = comp.compress(target, anchors)
        recon = comp.decompress(result.payload, anchors)
        assert np.max(np.abs(recon.astype(np.float64) - target.astype(np.float64))) <= result.abs_error_bound * (1 + 1e-9)
        assert result.metadata["hybrid_parameters"] == 4


class TestModelReuseAndOptions:
    def test_pretrained_model_reused_across_error_bounds(self, cesm_small):
        anchors = [cesm_small[n].data.astype(np.float64) for n in ("FLUTC", "FLNT")]
        target = cesm_small["LWCF"].data
        cfnn = CFNN(CFNNConfig(n_anchors=2, ndim=2, hidden_channels=4, expanded_channels=8))
        cfnn.train(anchors, target.astype(np.float64), FAST_TRAINING)
        for eb in (1e-3, 5e-4):
            comp = CrossFieldCompressor(error_bound=ErrorBound.relative(eb))
            result = comp.compress(target, anchors, cfnn=cfnn)
            recon = comp.decompress(result.payload, anchors)
            assert np.max(np.abs(recon.astype(np.float64) - target.astype(np.float64))) <= result.abs_error_bound * (1 + 1e-9)

    def test_untrained_supplied_model_rejected(self, cesm_small):
        anchors = [cesm_small[n].data for n in ("FLUTC", "FLNT")]
        comp = CrossFieldCompressor()
        with pytest.raises(ValueError):
            comp.compress(cesm_small["LWCF"].data, anchors, cfnn=CFNN(CFNNConfig(n_anchors=2, ndim=2)))

    def test_exclude_model_requires_model_at_decompression(self, cesm_small):
        anchors = [cesm_small[n].data.astype(np.float64) for n in ("FLUTC", "FLNT")]
        target = cesm_small["LWCF"].data
        cfnn = CFNN(CFNNConfig(n_anchors=2, ndim=2, hidden_channels=4, expanded_channels=8))
        cfnn.train(anchors, target.astype(np.float64), FAST_TRAINING)
        comp = CrossFieldCompressor(
            error_bound=ErrorBound.relative(1e-3), include_model=False, allow_fallback=False
        )
        result = comp.compress(target, anchors, cfnn=cfnn)
        assert "model.cfnn" not in result.section_sizes
        with pytest.raises(ValueError):
            comp.decompress(result.payload, anchors)
        recon = comp.decompress(result.payload, anchors, cfnn=cfnn)
        assert np.max(np.abs(recon.astype(np.float64) - target.astype(np.float64))) <= result.abs_error_bound * (1 + 1e-9)

    def test_no_anchors_rejected(self, cesm_small):
        with pytest.raises(ValueError):
            CrossFieldCompressor().compress(cesm_small["LWCF"].data, [])

    def test_mismatched_anchor_grid_rejected(self, cesm_small):
        with pytest.raises(ValueError):
            CrossFieldCompressor().compress(cesm_small["LWCF"].data, [np.zeros((4, 4))])

    def test_invalid_constructor_options(self):
        with pytest.raises(ValueError):
            CrossFieldCompressor(hybrid_method="magic")
        with pytest.raises(ValueError):
            CrossFieldCompressor(decoder="unknown")
        with pytest.raises(TypeError):
            CrossFieldCompressor(error_bound=0.001)


class TestFieldSetOrchestration:
    def test_compress_fieldset_report(self, cesm_small):
        spec = get_anchor_spec("cesm", "LWCF")
        report = compress_fieldset(
            cesm_small, spec, ErrorBound.relative(1e-3), training=FAST_TRAINING
        )
        assert report.target == "LWCF"
        assert set(report.anchor_results) == set(spec.anchors)
        assert report.baseline.ratio > 1.0
        assert report.cross_field.ratio > 1.0
        row = report.row()
        assert row["field"] == "LWCF"
        assert np.isclose(
            row["improvement_percent"],
            100.0 * (report.cross_field.ratio / report.baseline.ratio - 1.0),
        )

    def test_baseline_and_ours_share_error_bound_guarantee(self, cesm_small):
        spec = get_anchor_spec("cesm", "CLDTOT")
        eb = ErrorBound.relative(2e-3)
        report = compress_fieldset(cesm_small, spec, eb, training=FAST_TRAINING)
        target = cesm_small["CLDTOT"].data.astype(np.float64)
        baseline_recon = SZCompressor(error_bound=eb).decompress(report.baseline.payload)
        assert np.max(np.abs(baseline_recon.astype(np.float64) - target)) <= report.baseline.abs_error_bound * (1 + 1e-9)
