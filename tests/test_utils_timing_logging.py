"""Unit tests for repro.utils.timing and repro.utils.logging."""

import logging
import time

from repro.utils.logging import get_logger
from repro.utils.timing import Timer, timed


class TestTimer:
    def test_section_accumulates(self):
        timer = Timer()
        with timer.section("work"):
            time.sleep(0.01)
        with timer.section("work"):
            time.sleep(0.01)
        assert timer.total("work") >= 0.02
        assert timer.counts["work"] == 2

    def test_unknown_section_is_zero(self):
        assert Timer().total("missing") == 0.0

    def test_reset(self):
        timer = Timer()
        with timer.section("a"):
            pass
        timer.reset()
        assert timer.totals == {}

    def test_summary_contains_sections(self):
        timer = Timer()
        with timer.section("alpha"):
            pass
        assert "alpha" in timer.summary()

    def test_nested_sections(self):
        timer = Timer()
        with timer.section("outer"):
            with timer.section("inner"):
                pass
        assert "outer" in timer.totals and "inner" in timer.totals


class TestTimed:
    def test_records_elapsed(self):
        @timed
        def work():
            time.sleep(0.005)
            return 42

        assert work() == 42
        assert work.last_elapsed > 0


class TestLogging:
    def test_base_logger(self):
        assert get_logger().name == "repro"

    def test_child_logger(self):
        assert get_logger("sz.pipeline").name == "repro.sz.pipeline"

    def test_already_prefixed(self):
        assert get_logger("repro.core").name == "repro.core"

    def test_null_handler_attached(self):
        handlers = logging.getLogger("repro").handlers
        assert any(isinstance(h, logging.NullHandler) for h in handlers)
