"""End-to-end integration tests across the whole stack."""

import numpy as np
import pytest

from repro.core import CrossFieldCompressor, TrainingConfig, compress_fieldset
from repro.core.anchors import get_anchor_spec
from repro.data import make_dataset, read_fieldset, write_fieldset
from repro.metrics import psnr, ssim
from repro.sz import ErrorBound, SZCompressor

FAST = TrainingConfig(epochs=2, n_patches=16, batch_size=4, patch_size_2d=16, patch_size_3d=8)


class TestEndToEnd:
    def test_disk_round_trip_then_compress(self, tmp_path, cesm_small):
        """Dataset written to SDRBench layout, read back, compressed, decompressed."""
        directory = write_fieldset(cesm_small, tmp_path / "cesm")
        loaded = read_fieldset(directory)
        data = loaded["FLUT"].data
        comp = SZCompressor(error_bound=ErrorBound.relative(1e-3))
        result = comp.compress(data)
        recon = comp.decompress(result.payload)
        assert np.max(np.abs(recon.astype(np.float64) - data.astype(np.float64))) <= result.abs_error_bound * (1 + 1e-9)
        assert psnr(data, recon) > 40

    def test_multi_error_bound_monotonicity(self, cesm_small):
        """Looser bounds give higher ratios and lower PSNR for both compressors."""
        data = cesm_small["CLDTOT"].data
        ratios, psnrs = [], []
        for eb in (5e-3, 1e-3, 2e-4):
            comp = SZCompressor(error_bound=ErrorBound.relative(eb))
            result = comp.compress(data)
            recon = comp.decompress(result.payload)
            ratios.append(result.ratio)
            psnrs.append(psnr(data, recon))
        assert ratios[0] > ratios[1] > ratios[2]
        assert psnrs[0] < psnrs[1] < psnrs[2]

    def test_full_cross_field_workflow_matches_manual_pipeline(self, cesm_small):
        """compress_fieldset == manually compressing anchors then the target."""
        spec = get_anchor_spec("cesm", "LWCF")
        eb = ErrorBound.relative(1e-3)
        report = compress_fieldset(cesm_small, spec, eb, training=FAST)

        target = cesm_small["LWCF"].data
        # reconstruct anchors exactly as the orchestration does
        anchors = []
        baseline = SZCompressor(error_bound=eb)
        for name in spec.anchors:
            anchors.append(baseline.decompress(baseline.compress(cesm_small[name].data).payload).astype(np.float64))
        recon = CrossFieldCompressor(error_bound=eb).decompress(report.cross_field.payload, anchors)
        assert np.max(np.abs(recon.astype(np.float64) - target.astype(np.float64))) <= report.cross_field.abs_error_bound * (1 + 1e-9)
        assert ssim(target, recon) > 0.8

    def test_cross_field_beats_or_matches_baseline_on_favourable_field(self):
        """On a strongly coupled field at moderate size, ours should not collapse.

        The gain itself depends on training budget and grid size, so the test
        only asserts the cross-field result stays within a sane band of the
        baseline while satisfying the same error bound (the benchmark suite
        measures the actual improvement).
        """
        ds = make_dataset("cesm", shape=(96, 192), seed=11)
        target = ds["LWCF"].data
        anchors = [ds[n].data.astype(np.float64) for n in ("FLUTC", "FLNT")]
        eb = ErrorBound.relative(1e-3)
        baseline = SZCompressor(error_bound=eb).compress(target)
        ours = CrossFieldCompressor(
            error_bound=eb, training=TrainingConfig(epochs=8, n_patches=48)
        ).compress(target, anchors)
        assert ours.ratio > 0.5 * baseline.ratio

    def test_3d_cross_field_full_stack(self, hurricane_small):
        spec = get_anchor_spec("hurricane", "Wf")
        report = compress_fieldset(hurricane_small, spec, ErrorBound.relative(2e-3), training=FAST)
        assert report.cross_field.metadata["stream"]["count"] == hurricane_small["Wf"].data.size
