"""Ablation benchmark: anchor-field selection (paper choice vs automatic vs single).

The paper leaves automatic anchor selection as future work; this benchmark
compares its hand-picked anchors with a mutual-information heuristic and a
single-anchor configuration.
"""

from conftest import run_once

from repro.experiments.ablations import run_anchor_selection_ablation


def test_ablation_anchor_selection(benchmark, bench_scale):
    result = run_once(benchmark, run_anchor_selection_ablation, bench_scale)
    print("\n=== Ablation: anchor-field selection ===")
    print(result.format())
    assert len(result.rows) == 4
