"""Ablation benchmark: dual quantization vs the classic sequential quantizer.

Reproduces the motivation of paper Section III-D1: dual quantization removes
the read-after-write dependency, so the quantize+predict stage is vectorisable
while producing the same residual statistics.
"""

from conftest import run_once

from repro.experiments.ablations import run_dual_quant_ablation


def test_ablation_dual_quantization(benchmark, bench_scale):
    result = run_once(benchmark, run_dual_quant_ablation, (64, 64))
    print("\n=== Ablation: dual quantization vs classic quantization ===")
    print(result.format())
    seconds = dict(zip(result.column("scheme"), result.column("quant+predict seconds")))
    dual = [v for k, v in seconds.items() if "dual" in k][0]
    classic = [v for k, v in seconds.items() if "classic" in k][0]
    assert dual <= classic  # the vectorised path is never slower
