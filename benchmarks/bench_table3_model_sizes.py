"""Benchmark regenerating paper Table III (anchor configuration and model sizes)."""

from conftest import run_once

from repro.experiments import run_table3


def test_table3_model_sizes(benchmark, bench_scale):
    result = run_once(benchmark, run_table3, bench_scale)
    print("\n=== Paper Table III: experiment configuration and model sizes ===")
    print(result.format())
    assert len(result.rows) == 6
    for row in result.rows:
        # compact models, same order of magnitude as the paper's (thousands of params)
        assert 100 < row["cfnn_parameters"] < 100_000
        assert row["hybrid_parameters"] in (3, 4)
