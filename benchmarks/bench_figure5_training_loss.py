"""Benchmark regenerating paper Figure 5 (training loss vs epoch).

Left panel: CFNN training loss; right panel: hybrid prediction model training
loss, both at the 1e-3 relative error bound.  The reproduced observation is a
steady decrease without divergence.
"""

from conftest import run_once

from repro.experiments import run_figure5


def test_figure5_training_loss(benchmark, bench_scale):
    result = run_once(benchmark, run_figure5, bench_scale)
    print("\n=== Paper Figure 5: training loss vs epoch (CFNN and hybrid model) ===")
    print(result.format())
    assert result.cfnn_decreased()
    assert result.hybrid_decreased()
