"""Microbenchmark: random-access region reads from a chunked archive.

Compares three ways of serving a small region of one field out of a packed
multi-field archive:

- ``full-decode``: decompress the entire field, then slice (what a
  single-blob format forces).
- ``region-cold``: chunked ``read_region`` on a fresh reader — only the
  chunks intersecting the region are read and decompressed.
- ``region-hot``: the same read repeated with a warm LRU chunk cache.

The chunked path should beat the full decode by roughly the ratio of total
chunks to touched chunks, and the hot path should be orders of magnitude
faster still.
"""

import time

from conftest import bench_seed, run_once

#: Region of interest: a small window inside a single 32x32 chunk (row chunk 1,
#: column chunk 2 of the grid).
REGION = (slice(40, 64), slice(70, 96))


def _build_archive(tmp_path):
    from repro.data.synthetic import make_dataset
    from repro.store import ArchiveWriter
    from repro.sz.errors import ErrorBound

    dataset = make_dataset("cesm", shape=(180, 360), seed=bench_seed("store-random-access"))
    path = tmp_path / "bench.xfa"
    with ArchiveWriter(path, chunk_shape=(32, 32), error_bound=ErrorBound.relative(1e-3)) as writer:
        for name in ("FLNT", "FLNTC", "LWCF"):
            writer.add_field(name, dataset[name].data)
    return path


def _measure(path):
    from repro.store import ArchiveReader

    timings = {}

    with ArchiveReader(path) as reader:
        t0 = time.perf_counter()
        full = reader.read_field("FLNT")
        timings["full-decode"] = time.perf_counter() - t0
        expected = full[REGION]
        total_chunks = len(reader.field("FLNT").chunks)

    with ArchiveReader(path) as reader:
        t0 = time.perf_counter()
        region = reader.read_region("FLNT", REGION)
        timings["region-cold"] = time.perf_counter() - t0
        touched = reader.cache_stats()["chunks_decoded"]

        t0 = time.perf_counter()
        reader.read_region("FLNT", REGION)
        timings["region-hot"] = time.perf_counter() - t0

    assert (region == expected).all()
    return {"timings": timings, "total_chunks": total_chunks, "touched_chunks": touched}


def test_store_random_access(benchmark, tmp_path):
    path = _build_archive(tmp_path)
    result = run_once(benchmark, _measure, path)
    timings = result["timings"]
    print("\n=== Archive store: random-access region read ===")
    print(f"chunks touched: {result['touched_chunks']} / {result['total_chunks']}")
    for name in ("full-decode", "region-cold", "region-hot"):
        print(f"{name:<12} {timings[name] * 1e3:9.3f} ms")
    speedup = timings["full-decode"] / max(timings["region-cold"], 1e-9)
    print(f"region-cold speedup over full decode: {speedup:.1f}x")
    assert result["touched_chunks"] < result["total_chunks"]
    assert timings["region-cold"] < timings["full-decode"]
