"""Throughput and preview benchmarks for the batched ZFP transform path.

Two cases, both asserted in CI's bench-smoke job:

- ``test_zfp_transform_throughput`` pits the per-block scalar reference
  transform (timed on a crop — it is the original implementation, slow by
  design) against the batched ``field_transform_forward`` on a ~1M-point 2D
  field, mirroring how ``bench_ablation_predictors.py`` guards the SZ
  wavefront speedup.  The ``>= 8x`` throughput bar is the roadmap acceptance
  criterion for the vectorisation PR and runs at every scale including smoke.
- ``test_zfp_preview_latency`` sweeps ``preview_fraction`` over a grouped
  payload and reports bytes decoded / decode latency / rms-error estimate per
  fraction (``BENCH_zfp_preview.json``), asserting that a coarse preview
  really decodes a proper prefix of the entropy bytes.
"""

import os
import time

import numpy as np

from conftest import bench_report, bench_seed, run_once

from repro.sz.errors import ErrorBound
from repro.zfp import (
    ZFPLikeCompressor,
    block_transform_forward_reference,
    field_transform_forward,
    field_transform_inverse,
)
from repro.data.slicing import iter_blocks

#: Full-field sizes per REPRO_BENCH_SCALE; the ~1M-point default is where the
#: acceptance bar is defined, and smoke keeps it (the batched transform is
#: fast — the scalar side only ever runs on the crop below).
_FIELD_SHAPES = {
    "smoke": (1024, 1024),
    "default": (1024, 1024),
    "paper": (2048, 2048),
}
_SCALAR_CROP = (256, 256)
_BLOCK_SIZE = 4

_PREVIEW_SHAPE = (512, 512)
_PREVIEW_FRACTIONS = (0.1, 0.25, 0.5, 1.0)


def _best_of(repeats, func):
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _scalar_field_transform(data, block_size):
    out = np.empty(data.shape, dtype=np.float64)
    block_shape = (block_size,) * data.ndim
    for slices in iter_blocks(data.shape, block_shape):
        out[slices] = block_transform_forward_reference(data[slices])
    return out


def _measure_transform_throughput():
    scale = os.environ.get("REPRO_BENCH_SCALE", "default")
    shape = _FIELD_SHAPES.get(scale, _FIELD_SHAPES["default"])
    rng = np.random.default_rng(bench_seed("zfp-transform-throughput"))
    field = np.cumsum(rng.normal(size=shape), axis=1)

    crop = tuple(slice(0, c) for c in _SCALAR_CROP)
    field_crop = np.ascontiguousarray(field[crop])

    scalar_seconds, scalar_out = _best_of(
        1, lambda: _scalar_field_transform(field_crop, _BLOCK_SIZE)
    )
    batched_seconds, batched_out = _best_of(
        3, lambda: field_transform_forward(field, _BLOCK_SIZE)
    )
    # the parity contract, spot-checked where both ran: bit-identical
    assert np.array_equal(batched_out[crop], scalar_out)

    inverse_seconds, recon = _best_of(
        3, lambda: field_transform_inverse(batched_out, _BLOCK_SIZE)
    )
    assert np.allclose(recon, field, atol=1e-6)

    scalar_tp = scalar_out.size / scalar_seconds
    batched_tp = batched_out.size / batched_seconds
    return {
        "points": int(field.size),
        "scalar_crop_points": int(scalar_out.size),
        "scalar_seconds": scalar_seconds,
        "batched_seconds": batched_seconds,
        "inverse_seconds": inverse_seconds,
        "scalar_points_per_second": scalar_tp,
        "batched_points_per_second": batched_tp,
        "transform_speedup": batched_tp / scalar_tp,
    }


def test_zfp_transform_throughput(benchmark):
    result = run_once(benchmark, _measure_transform_throughput)

    print("\n=== ZFP block-transform throughput ===")
    print(
        f"field: {result['points']} points, scalar timed on "
        f"{result['scalar_crop_points']}-point crop"
    )
    print(
        f"scalar  {result['scalar_points_per_second'] / 1e6:8.3f} Mpts/s   "
        f"({result['scalar_seconds'] * 1e3:.1f} ms on the crop)"
    )
    print(
        f"batched {result['batched_points_per_second'] / 1e6:8.3f} Mpts/s   "
        f"({result['batched_seconds'] * 1e3:.1f} ms full field)   "
        f"speedup {result['transform_speedup']:.1f}x"
    )

    bench_report("zfp_transform_throughput", result)

    # the acceptance bar: batched transform >= 8x scalar throughput
    assert result["transform_speedup"] >= 8.0


def _measure_preview_latency():
    rng = np.random.default_rng(bench_seed("zfp-preview-latency"))
    field = np.cumsum(rng.normal(size=_PREVIEW_SHAPE), axis=1).astype(np.float32)
    compressor = ZFPLikeCompressor(ErrorBound.absolute(1e-2), layout="grouped")
    payload = compressor.compress(field).payload

    sweep = []
    for fraction in _PREVIEW_FRACTIONS:
        seconds, (preview, info) = _best_of(
            3, lambda f=fraction: compressor.decompress_preview(payload, f)
        )
        rms = float(
            np.sqrt(np.mean((preview.astype(np.float64) - field.astype(np.float64)) ** 2))
        )
        sweep.append(
            {
                "fraction": fraction,
                "decode_seconds": seconds,
                "groups_decoded": info["groups_decoded"],
                "groups_total": info["groups_total"],
                "bytes_decoded": info["bytes_decoded"],
                "bytes_total": info["bytes_total"],
                "rms_error_estimate": info["rms_error_estimate"],
                "rms_error_actual": rms,
            }
        )
    return {
        "points": int(field.size),
        "payload_bytes": len(payload),
        "sweep": sweep,
    }


def test_zfp_preview_latency(benchmark):
    result = run_once(benchmark, _measure_preview_latency)

    print("\n=== ZFP progressive preview: bytes decoded and latency vs fraction ===")
    print(f"{'fraction':>8} {'groups':>8} {'bytes':>12} {'ms':>8} {'rms est':>10} {'rms act':>10}")
    for row in result["sweep"]:
        print(
            f"{row['fraction']:>8.2f} "
            f"{row['groups_decoded']:>3}/{row['groups_total']:<4} "
            f"{row['bytes_decoded']:>12} "
            f"{row['decode_seconds'] * 1e3:>8.1f} "
            f"{row['rms_error_estimate']:>10.4g} "
            f"{row['rms_error_actual']:>10.4g}"
        )

    bench_report("zfp_preview", result)

    full = result["sweep"][-1]
    assert full["fraction"] == 1.0
    assert full["bytes_decoded"] == full["bytes_total"]
    for row in result["sweep"][:-1]:
        # a coarse preview decodes a real prefix: within budget, never empty
        assert 0 < row["bytes_decoded"] <= row["fraction"] * row["bytes_total"] or (
            row["groups_decoded"] == 1
        )
        assert row["bytes_decoded"] < row["bytes_total"]
        assert row["decode_seconds"] <= full["decode_seconds"] * 1.5
