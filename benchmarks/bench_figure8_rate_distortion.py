"""Benchmark regenerating paper Figure 8 (rate-distortion curves).

PSNR vs bit-rate for the baseline and the cross-field compressor on the
evaluated fields.  The reproduced claim is the shape: the cross-field curve
sits at or above the baseline curve, with the gap widening at higher bit rates
(lower compression ratios).
"""

import os

from conftest import run_once

from repro.experiments import run_figure8
from repro.experiments.config import FieldExperiment, resolve_scale


def _experiments():
    # the full six-field sweep is expensive; cover one field per dataset by default
    return [
        FieldExperiment("hurricane", "Wf", (2e-3, 1e-3, 5e-4)),
        FieldExperiment("cesm", "LWCF", (2e-3, 1e-3, 5e-4)),
        FieldExperiment("cesm", "CLDTOT", (5e-3, 2e-3, 1e-3)),
    ]


def test_figure8_rate_distortion(benchmark, bench_scale):
    result = run_once(benchmark, run_figure8, bench_scale, _experiments())
    print("\n=== Paper Figure 8: rate-distortion (PSNR vs bit rate) ===")
    for key, pair in result.curves.items():
        gain = result.psnr_gain(key)
        print(f"{key}: average PSNR gain of ours over baseline = {gain:+.2f} dB")
    print(result.format())
    assert len(result.curves) == 3
    for pair in result.curves.values():
        assert len(pair["baseline"].points) >= 2
        assert len(pair["ours"].points) >= 2
