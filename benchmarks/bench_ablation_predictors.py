"""Ablation benchmark: local predictor choice (Lorenzo / interpolation / regression / ZFP-like)."""

from conftest import run_once

from repro.experiments.ablations import run_predictor_ablation


def test_ablation_predictors(benchmark, bench_scale):
    result = run_once(benchmark, run_predictor_ablation, bench_scale)
    print("\n=== Ablation: local predictor choice ===")
    print(result.format())
    assert set(result.column("predictor")) == {"lorenzo", "interpolation", "regression", "zfp-like"}
