"""Ablation benchmarks for the prediction stage.

Two cases:

- the classic ratio ablation over the local predictor choices (Lorenzo /
  interpolation / regression / ZFP-like), and
- a decode-throughput case pitting the scalar reference decoders
  (``decode_reference``, ``RegressionPredictor.decode_reference``) against the
  vectorised batch-state-machine paths on a ~1M-point 2D field — mirroring how
  ``bench_ablation_entropy_backends.py`` guards the Huffman speedup.  The
  scalar wavefront decode is timed on a crop (it is minutes-slow at the full
  size) and compared on throughput (points/second); the ``>= 4x`` assertion is
  the roadmap acceptance bar and runs in CI's bench-smoke job.
"""

import os
import time

import numpy as np

from conftest import bench_report, bench_seed, run_once

from repro.experiments.ablations import run_predictor_ablation


def test_ablation_predictors(benchmark, bench_scale):
    result = run_once(benchmark, run_predictor_ablation, bench_scale)
    print("\n=== Ablation: local predictor choice ===")
    print(result.format())
    assert set(result.column("predictor")) == {"lorenzo", "interpolation", "regression", "zfp-like"}


#: Full-field sizes per REPRO_BENCH_SCALE; the acceptance bar is defined at the
#: ~1M-point default, which smoke keeps (the vectorised decode is fast — the
#: scalar side only ever runs on the crop below).
_FIELD_SHAPES = {
    "smoke": (1024, 1024),
    "default": (1024, 1024),
    "paper": (2048, 2048),
}
_SCALAR_CROP = (128, 128)


def _measure_sz_decode_throughput():
    from repro.sz.decode import (
        clear_wavefront_plans,
        decode_reference,
        decode_weighted_wavefront,
        weighted_predict_full,
    )
    from repro.sz.predictors import RegressionPredictor

    scale = os.environ.get("REPRO_BENCH_SCALE", "default")
    shape = _FIELD_SHAPES.get(scale, _FIELD_SHAPES["default"])
    rng = np.random.default_rng(bench_seed("sz-decode-throughput"))

    codes = rng.integers(-500, 500, size=shape).astype(np.int64)
    diffs = [rng.integers(-30, 30, size=shape).astype(np.int64) for _ in range(2)]
    weights = np.array([0.5, 0.3, 0.2])
    residuals = codes - weighted_predict_full(codes, diffs, weights)

    crop = tuple(slice(0, c) for c in _SCALAR_CROP)
    res_crop = np.ascontiguousarray(residuals[crop])
    diffs_crop = [np.ascontiguousarray(d[crop]) for d in diffs]

    def best_of(repeats, func):
        best, result = float("inf"), None
        for _ in range(repeats):
            t0 = time.perf_counter()
            result = func()
            best = min(best, time.perf_counter() - t0)
        return best, result

    clear_wavefront_plans()
    # warm the plan cache separately so the steady-state (per-chunk) cost is
    # what gets timed — planning is a once-per-shape cost in real reads
    decode_weighted_wavefront(residuals, diffs, weights)

    scalar_seconds, scalar_out = best_of(
        1, lambda: decode_reference(res_crop, diffs_crop, weights)
    )
    vector_seconds, vector_out = best_of(
        3, lambda: decode_weighted_wavefront(residuals, diffs, weights)
    )
    assert np.array_equal(vector_out, codes)
    assert np.array_equal(scalar_out, codes[crop])

    # regression predictor: batched vs per-block reference at full size
    reg = RegressionPredictor(block_size=6)
    reg_residuals, reg_coeffs = reg.encode(codes)
    reg_vec_seconds, reg_vec = best_of(3, lambda: reg.decode(reg_residuals, reg_coeffs))
    reg_ref_seconds, reg_ref = best_of(
        1, lambda: reg.decode_reference(reg_residuals, reg_coeffs)
    )
    assert np.array_equal(reg_vec, reg_ref)

    scalar_tp = scalar_out.size / scalar_seconds
    vector_tp = vector_out.size / vector_seconds
    return {
        "points": int(codes.size),
        "scalar_crop_points": int(scalar_out.size),
        "scalar_seconds": scalar_seconds,
        "vector_seconds": vector_seconds,
        "scalar_points_per_second": scalar_tp,
        "vector_points_per_second": vector_tp,
        "wavefront_speedup": vector_tp / scalar_tp,
        "regression_reference_seconds": reg_ref_seconds,
        "regression_vectorised_seconds": reg_vec_seconds,
        "regression_speedup": reg_ref_seconds / reg_vec_seconds,
    }


def test_sz_decode_throughput(benchmark):
    result = run_once(benchmark, _measure_sz_decode_throughput)

    print("\n=== SZ weighted-prediction decode throughput ===")
    print(
        f"field: {result['points']} points, scalar timed on "
        f"{result['scalar_crop_points']}-point crop"
    )
    print(
        f"scalar     {result['scalar_points_per_second'] / 1e6:8.3f} Mpts/s   "
        f"({result['scalar_seconds'] * 1e3:.1f} ms on the crop)"
    )
    print(
        f"vectorised {result['vector_points_per_second'] / 1e6:8.3f} Mpts/s   "
        f"({result['vector_seconds'] * 1e3:.1f} ms full field)   "
        f"speedup {result['wavefront_speedup']:.1f}x"
    )
    print(
        f"regression decode: reference {result['regression_reference_seconds'] * 1e3:.1f} ms, "
        f"batched {result['regression_vectorised_seconds'] * 1e3:.1f} ms "
        f"({result['regression_speedup']:.1f}x)"
    )

    bench_report("sz_decode_throughput", result)

    # the acceptance bar: batch wavefront decode >= 4x scalar throughput
    assert result["wavefront_speedup"] >= 4.0
    # the batched regression decode must never regress below the block loop
    assert result["regression_speedup"] >= 1.0
