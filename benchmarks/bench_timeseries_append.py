"""Benchmark: appendable time-stepped archives and temporal delta coding.

Builds a smooth synthetic climate time series (gentle Fourier advection plus
small fresh noise, :func:`repro.data.synthetic.make_timeseries`) and measures

- **append throughput**: writing the series step by step through
  ``ArchiveWriter(mode="a")`` — one reopen + flush per step, the streaming
  ingest path — in raw MB/s of field data, and
- **compression ratio**: ``temporal-delta`` coding (anchor every K steps,
  residuals against the decoded previous step) versus independent per-step
  compression, both at the *same absolute error bound*.

Asserts the acceptance criteria: delta coding beats independent coding by at
least 1.3x on this workload, and the appended archive's ``read_timestep``
output is bit-identical to a single-shot write of the same series.

Runs standalone (``python benchmarks/bench_timeseries_append.py [--quick]``)
or under pytest-benchmark; ``REPRO_BENCH_SCALE=smoke`` matches ``--quick``.
Either way a machine-readable ``BENCH_timeseries_append.json`` report
(headline numbers plus a telemetry snapshot from one instrumented append) is
written via :func:`conftest.bench_report`.
"""

import os
import sys
import time
from pathlib import Path

import numpy as np

if __name__ == "__main__":  # standalone: make conftest + repro importable
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from conftest import bench_report, bench_seed

#: (grid shape, number of steps) per REPRO_BENCH_SCALE.
_SCALES = {
    "smoke": ((64, 128), 6),
    "default": ((192, 384), 8),
    "paper": ((512, 1024), 12),
}

#: Nightly-cadence-like evolution: a tenth of a cell of advection per step
#: plus 0.2% fresh noise — successive snapshots are strongly correlated, the
#: regime temporal-difference coding is built for (and the anchor cadence is
#: long enough that anchor steps do not dominate the window).
_DRIFT = 0.1
_NOISE = 0.002
_ANCHOR_EVERY = 8
_REL_BOUND = 1e-3

#: Acceptance floor: delta must beat independent coding by this factor.
_MIN_DELTA_ADVANTAGE = 1.3


def _build_series():
    from repro.data.synthetic import make_timeseries

    scale = os.environ.get("REPRO_BENCH_SCALE", "default")
    shape, steps = _SCALES.get(scale, _SCALES["default"])
    return make_timeseries(
        "cesm",
        shape=shape,
        steps=steps,
        seed=bench_seed("timeseries-append"),
        fields=("FLNT", "FLNTC", "LWCF"),
        drift=_DRIFT,
        noise_level=_NOISE,
    ), shape, steps


def _write_series(path, series, temporal, chunk_shape, bounds):
    """Single-shot write of the whole series (reference archive)."""
    from repro.store import ArchiveWriter

    with ArchiveWriter(path, chunk_shape=chunk_shape) as writer:
        for t, snapshot in enumerate(series):
            writer.add_timestep(
                snapshot,
                time=float(t),
                temporal=temporal,
                field_rules={
                    name: {"error_bound": bound} for name, bound in bounds.items()
                },
            )
    return path


def _append_series(path, series, temporal, chunk_shape, bounds):
    """Streaming ingest: step 0 creates the archive, each later step reopens."""
    from repro.store import ArchiveWriter

    elapsed = 0.0
    for t, snapshot in enumerate(series):
        start = time.perf_counter()
        with ArchiveWriter(
            path, chunk_shape=chunk_shape, mode="w" if t == 0 else "a"
        ) as writer:
            writer.add_timestep(
                snapshot,
                time=float(t),
                temporal=temporal,
                field_rules={
                    name: {"error_bound": bound} for name, bound in bounds.items()
                },
                flush=True,
            )
        elapsed += time.perf_counter() - start
    return elapsed


def _ratio(path):
    from repro.store import ArchiveReader

    with ArchiveReader(path) as reader:
        total_in = sum(e.original_nbytes for e in reader.fields())
        total_out = sum(e.compressed_nbytes for e in reader.fields())
    return total_in / total_out, total_in


def run(tmp_dir):
    from repro.store import ArchiveReader, TemporalSpec
    from repro.sz.errors import ErrorBound

    tmp_dir = Path(tmp_dir)
    series, shape, steps = _build_series()
    # one absolute bound per field, resolved on step 0, shared by both arms:
    # identical per-point guarantees, so the ratio comparison is apples to apples
    bounds = {
        field.name: ErrorBound.absolute(ErrorBound.relative(_REL_BOUND).resolve(field.data))
        for field in series[0]
    }
    chunk_shape = tuple(min(64, s) for s in shape)
    delta_spec = TemporalSpec(mode="delta", anchor_every=_ANCHOR_EVERY, base="sz")

    delta_path = tmp_dir / "delta.xfa"
    indep_path = tmp_dir / "independent.xfa"
    single_path = tmp_dir / "single-shot.xfa"

    append_seconds = _append_series(delta_path, series, delta_spec, chunk_shape, bounds)
    _append_series(indep_path, series, None, chunk_shape, bounds)
    _write_series(single_path, series, delta_spec, chunk_shape, bounds)

    delta_ratio, raw_bytes = _ratio(delta_path)
    indep_ratio, _ = _ratio(indep_path)

    # appended archive must decode bit-identically to the single-shot write
    with ArchiveReader(delta_path) as appended, ArchiveReader(single_path) as reference:
        assert appended.steps == reference.steps
        for step in appended.steps:
            got = appended.read_timestep(step)
            want = reference.read_timestep(step)
            for name in want.names:
                assert np.array_equal(got[name].data, want[name].data), (step, name)
        bound_ok = all(
            np.max(
                np.abs(
                    appended.read_timestep(t)[f.name].data.astype(np.float64)
                    - f.data.astype(np.float64)
                )
            )
            <= bounds[f.name].value * (1 + 1e-6)
            for t, snapshot in enumerate(series)
            for f in snapshot
        )

    # one instrumented (non-timed) append pass for the benchmark report: the
    # timing arms above ran with the no-op recorder, so append_seconds stays
    # clean while the report still documents the stage breakdown
    from repro import obs

    recorder = obs.Recorder()
    previous = obs.set_recorder(recorder)
    try:
        _append_series(tmp_dir / "telemetry.xfa", series, delta_spec, chunk_shape, bounds)
    finally:
        obs.set_recorder(previous)

    return {
        "shape": shape,
        "steps": steps,
        "raw_bytes": raw_bytes,
        "append_seconds": append_seconds,
        "delta_ratio": delta_ratio,
        "indep_ratio": indep_ratio,
        "bound_ok": bound_ok,
        "telemetry": recorder.snapshot(),
    }


def _report_and_assert(result):
    throughput = result["raw_bytes"] / max(result["append_seconds"], 1e-9) / 1e6
    print("\n=== Time-stepped archive: append throughput and temporal delta coding ===")
    print(
        f"grid {'x'.join(map(str, result['shape']))}, {result['steps']} steps, "
        f"anchor every {_ANCHOR_EVERY}, rel bound {_REL_BOUND:g}"
    )
    print(
        f"append (reopen+flush per step): {result['append_seconds'] * 1e3:9.1f} ms total "
        f"({throughput:.1f} MB/s raw)"
    )
    print(
        f"ratio  temporal-delta {result['delta_ratio']:6.2f}x   "
        f"independent {result['indep_ratio']:6.2f}x   "
        f"advantage {result['delta_ratio'] / result['indep_ratio']:.2f}x"
    )
    assert result["bound_ok"], "error bound violated"
    assert result["delta_ratio"] >= _MIN_DELTA_ADVANTAGE * result["indep_ratio"], (
        f"temporal-delta ratio {result['delta_ratio']:.2f}x must beat independent "
        f"{result['indep_ratio']:.2f}x by >= {_MIN_DELTA_ADVANTAGE}x"
    )
    headline = {
        "shape": list(result["shape"]),
        "steps": result["steps"],
        "raw_bytes": result["raw_bytes"],
        "append_seconds": result["append_seconds"],
        "append_mb_per_s": throughput,
        "delta_ratio": result["delta_ratio"],
        "indep_ratio": result["indep_ratio"],
    }
    bench_report("timeseries_append", headline, telemetry=result["telemetry"])


def test_timeseries_append(benchmark, tmp_path):
    from conftest import run_once

    result = run_once(benchmark, run, tmp_path)
    _report_and_assert(result)


if __name__ == "__main__":
    import argparse
    import tempfile

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smoke-scale run (equivalent to REPRO_BENCH_SCALE=smoke)",
    )
    cli_args = parser.parse_args()
    if cli_args.quick:
        os.environ["REPRO_BENCH_SCALE"] = "smoke"
    with tempfile.TemporaryDirectory() as tmp:
        _report_and_assert(run(tmp))
    print("ok")
