"""Ablation benchmark: block-parallel compression enabled by dual quantization."""

from conftest import run_once

from repro.experiments.ablations import run_parallel_block_ablation


def test_ablation_parallel_blocks(benchmark, bench_scale):
    result = run_once(benchmark, run_parallel_block_ablation, bench_scale)
    print("\n=== Ablation: block-parallel compression ===")
    print(result.format())
    configs = result.column("configuration")
    assert "single-shot" in configs and "blocks-thread" in configs
