"""Ablation benchmark: entropy stage configuration (Huffman / zlib / raw).

Two cases:

- the classic ratio ablation over the registered entropy+backend pairs, and
- a decode-throughput case pitting the scalar per-symbol Huffman decode (the
  pre-vectorisation reference loop, kept as ``HuffmanCodec.decode_reference``)
  against the vectorised decoder on v1 (header-only) and v2 (checkpointed)
  payloads of a large peaked symbol stream — the regime SZ quantization codes
  live in.  The v2 assertion is the roadmap acceptance bar: the checkpointed
  wavefront decode must beat the per-symbol loop by at least 5x at the
  default ~1M-symbol scale.
"""

import os
import time

import numpy as np

from conftest import bench_seed, run_once

from repro.experiments.ablations import run_entropy_backend_ablation

#: Peaked-stream sizes per REPRO_BENCH_SCALE.  Smoke keeps the full 1M-symbol
#: stream: the acceptance bar is defined at that size, and the case only costs
#: a couple of seconds.
_DECODE_SIZES = {"smoke": 1_000_000, "default": 1_000_000, "paper": 4_000_000}


def test_ablation_entropy_backends(benchmark, bench_scale):
    result = run_once(benchmark, run_entropy_backend_ablation, bench_scale)
    print("\n=== Ablation: entropy backend ===")
    print(result.format())
    assert all(result.column("error bound held"))
    ratios = dict(zip(result.column("entropy+backend"), result.column("ratio")))
    assert ratios["huffman+zlib"] >= ratios["raw+raw"]


def _measure_decode_throughput():
    from repro.encoding.huffman import HuffmanCodec

    scale = os.environ.get("REPRO_BENCH_SCALE", "default")
    n = _DECODE_SIZES.get(scale, _DECODE_SIZES["default"])
    rng = np.random.default_rng(bench_seed("entropy-decode-throughput"))
    # peaked like SZ quantization codes: most symbols in a few zigzag bins
    symbols = rng.poisson(1.5, size=n).astype(np.int64)

    codec = HuffmanCodec()
    payload_v1, table = codec.encode(symbols, version=1)
    payload_v2, _ = codec.encode(symbols, table)

    def best_of(repeats, func):
        best, result = float("inf"), None
        for _ in range(repeats):
            t0 = time.perf_counter()
            result = func()
            best = min(best, time.perf_counter() - t0)
        return best, result

    timings = {}
    timings["per-symbol"], reference = best_of(2, lambda: codec.decode_reference(payload_v1, table))
    timings["v1-vectorised"], decoded_v1 = best_of(3, lambda: codec.decode(payload_v1, table))
    timings["v2-vectorised"], decoded_v2 = best_of(3, lambda: codec.decode(payload_v2, table))
    assert np.array_equal(reference, symbols)
    assert np.array_equal(decoded_v1, symbols)
    assert np.array_equal(decoded_v2, symbols)
    return {
        "n": n,
        "timings": timings,
        "overhead": (len(payload_v2) - len(payload_v1)) / len(payload_v1),
    }


def test_huffman_decode_throughput(benchmark):
    result = run_once(benchmark, _measure_decode_throughput)
    timings = result["timings"]
    baseline = timings["per-symbol"]

    print("\n=== Huffman decode throughput (peaked symbols) ===")
    print(f"symbols: {result['n']}, v2 checkpoint overhead: {result['overhead'] * 100:.2f}%")
    for name in ("per-symbol", "v1-vectorised", "v2-vectorised"):
        t = timings[name]
        print(
            f"{name:<14} {t * 1e3:9.2f} ms   {result['n'] / t / 1e6:7.1f} Msym/s   "
            f"speedup {baseline / t:5.2f}x"
        )

    # the recorded checkpoints must stay a rounding error on the payload
    assert result["overhead"] < 0.03
    # legacy payloads must never regress below the scalar loop
    assert timings["v1-vectorised"] < 1.2 * baseline
    # the acceptance bar: checkpointed decode >= 5x over the per-symbol loop
    assert baseline > 5.0 * timings["v2-vectorised"]
