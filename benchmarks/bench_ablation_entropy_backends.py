"""Ablation benchmark: entropy stage configuration (Huffman / zlib / raw)."""

from conftest import run_once

from repro.experiments.ablations import run_entropy_backend_ablation


def test_ablation_entropy_backends(benchmark, bench_scale):
    result = run_once(benchmark, run_entropy_backend_ablation, bench_scale)
    print("\n=== Ablation: entropy backend ===")
    print(result.format())
    assert all(result.column("error bound held"))
    ratios = dict(zip(result.column("entropy+backend"), result.column("ratio")))
    assert ratios["huffman+zlib"] >= ratios["raw+raw"]
