"""Benchmark regenerating paper Figure 9 (quality at a matched compression ratio).

The paper compares the original CESM CLDTOT field against both decompressed
versions at the same 17x ratio and shows the baseline's distortion is more
visible.  The harness matches the achievable ratio at this resolution by
bisection on the error bound and reports PSNR/SSIM on the full field and on the
zoom window.
"""

from conftest import run_once

from repro.experiments import run_figure9


def test_figure9_fixed_ratio_quality(benchmark, bench_scale):
    result = run_once(benchmark, run_figure9, bench_scale)
    print("\n=== Paper Figure 9: distortion at a matched compression ratio (CESM CLDTOT) ===")
    print(f"target compression ratio: {result.target_ratio:.2f}x")
    print(result.format())
    # both methods must actually land near the requested ratio
    assert abs(result.baseline["ratio"] - result.target_ratio) / result.target_ratio < 0.5
    assert abs(result.ours["ratio"] - result.target_ratio) / result.target_ratio < 0.5
