"""Benchmark: HTTP archive-service load — throughput, latency, decode dedup.

Packs a synthetic CESM snapshot into an XFA1 archive, serves it through the
stdlib threaded HTTP frontend (:mod:`repro.serve.http`) over a fresh
:class:`~repro.store.shared_cache.SharedChunkCache`, then slams it with N
concurrent clients that all read the *same* region plus a manifest-ETag
revalidation loop.  Reports

- **requests/sec** and the **p50/p99 latency** of the region requests (wall
  clock per request, measured client-side over real sockets), and
- **shared-cache dedup**: with every client asking for the same region, the
  single-flight cache must decode each chunk of that region exactly once no
  matter how many clients are hammering it — the service's core promise.

Asserts the dedup exactly (total decodes == chunks in the region) and that
conditional requests with a current ETag come back 304 with no body.

Runs standalone (``python benchmarks/bench_serve_load.py [--quick]``) or
under pytest; either way it writes ``BENCH_serve_load.json`` (headline
numbers plus the service's telemetry snapshot) via
:func:`conftest.bench_report`.
"""

import io
import json
import os
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np

if __name__ == "__main__":  # standalone: make conftest + repro importable
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from conftest import bench_report, bench_seed

#: (grid shape, concurrent clients, region requests per client) per scale.
_SCALES = {
    "smoke": ((64, 128), 4, 6),
    "default": ((192, 384), 8, 12),
    "paper": ((512, 1024), 16, 16),
}

_CHUNK = (32, 64)
#: Every client reads this same region — the dedup target.
_REGION = "0:64,0:64"


def _scale():
    name = os.environ.get("REPRO_BENCH_SCALE", "default")
    return _SCALES.get(name, _SCALES["default"])


def _build_archive(path):
    from repro.data.synthetic import make_dataset
    from repro.store.writer import ArchiveWriter

    shape, _, _ = _scale()
    fieldset = make_dataset("cesm", shape=shape, seed=bench_seed("serve_load"))
    with ArchiveWriter(path, chunk_shape=_CHUNK) as writer:
        writer.add_field("FLNT", fieldset["FLNT"].data, codec="zfp")
        writer.add_field("LWCF", fieldset["LWCF"].data, codec="zfp")
    return path


def _http_get(url, headers=None):
    request = urllib.request.Request(url, headers=headers or {})
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, response.read(), dict(response.headers)
    except urllib.error.HTTPError as error:
        # urllib treats every non-2xx — including the 304s this benchmark
        # asserts on — as an exception
        return error.code, error.read(), dict(error.headers)


def run(tmp_dir):
    from repro.serve.http import serve_in_thread
    from repro.serve.service import ArchiveService
    from repro.store.manifest import chunks_intersecting_region, normalize_region
    from repro.store.shared_cache import SharedChunkCache

    tmp_dir = Path(tmp_dir)
    shape, n_clients, per_client = _scale()
    archive = _build_archive(tmp_dir / "load.xfa")

    # a fresh cache, not the process singleton: the dedup numbers below must
    # describe exactly this benchmark's traffic
    service = ArchiveService({"load": archive}, cache=SharedChunkCache())
    server, thread = serve_in_thread(service)
    url = server.url

    try:
        status, _, headers = _http_get(url + "/archives/load/manifest")
        assert status == 200
        etag = headers["ETag"]

        with service.handle("load").reader() as reader:
            entry = reader.manifest["FLNT"]
            region = normalize_region(entry.shape, tuple(
                slice(*map(int, part.split(":"))) for part in _REGION.split(",")
            ))
            region_chunks = len(
                chunks_intersecting_region(entry.shape, entry.chunk_shape, region)
            )

        latencies = []
        failures = []
        lock = threading.Lock()
        barrier = threading.Barrier(n_clients)

        def client():
            local = []
            barrier.wait()
            for _ in range(per_client):
                started = time.perf_counter()
                status, body, _ = _http_get(
                    url + f"/archives/load/fields/FLNT/region?region={_REGION}"
                )
                elapsed = time.perf_counter() - started
                if status != 200:
                    with lock:
                        failures.append(status)
                    continue
                np.load(io.BytesIO(body))  # clients pay the parse too
                local.append(elapsed)
                # revalidate the manifest with the current ETag: must 304
                status, body, _ = _http_get(
                    url + "/archives/load/manifest", {"If-None-Match": etag}
                )
                if status != 304 or body:
                    with lock:
                        failures.append(("etag", status))
            with lock:
                latencies.extend(local)

        threads = [threading.Thread(target=client) for _ in range(n_clients)]
        wall_start = time.perf_counter()
        for worker in threads:
            worker.start()
        for worker in threads:
            worker.join()
        wall_seconds = time.perf_counter() - wall_start

        with service.handle("load").reader() as reader:
            stats = reader.cache_stats()
        request_stats = service.request_stats()
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
        telemetry = service.telemetry.snapshot()
        service.close()

    total_region_requests = n_clients * per_client
    latencies.sort()
    return {
        "shape": shape,
        "clients": n_clients,
        "per_client": per_client,
        "failures": failures,
        "region_requests": total_region_requests,
        "total_requests": int(request_stats.get("http.request.count", 0)),
        "wall_seconds": wall_seconds,
        "requests_per_second": (2 * total_region_requests) / max(wall_seconds, 1e-9),
        "p50_seconds": latencies[len(latencies) // 2] if latencies else 0.0,
        "p99_seconds": latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))]
        if latencies
        else 0.0,
        "region_chunks": region_chunks,
        "chunks_decoded": int(stats["chunks_decoded"]),
        "shared": stats.get("shared", {}),
        "telemetry": telemetry,
    }


def _report_and_assert(result):
    print("\n=== HTTP archive service under concurrent load ===")
    print(
        f"grid {'x'.join(map(str, result['shape']))}, {result['clients']} clients x "
        f"{result['per_client']} region reads (+1 ETag revalidation each)"
    )
    print(
        f"throughput {result['requests_per_second']:8.1f} req/s over "
        f"{result['wall_seconds'] * 1e3:.1f} ms   "
        f"p50 {result['p50_seconds'] * 1e3:6.2f} ms   "
        f"p99 {result['p99_seconds'] * 1e3:6.2f} ms"
    )
    print(
        f"dedup: {result['region_requests']} requests for a {result['region_chunks']}-chunk "
        f"region -> {result['chunks_decoded']} decodes "
        f"(coalesced {result['shared'].get('coalesced', 0)}, "
        f"hits {result['shared'].get('hits', 0)})"
    )
    assert not result["failures"], f"failed requests: {result['failures'][:5]}"
    # The acceptance criterion: N concurrent clients reading the same region
    # trigger exactly one decode per chunk — single-flight observed over HTTP.
    assert result["chunks_decoded"] == result["region_chunks"], (
        f"expected exactly {result['region_chunks']} decodes for the region, "
        f"saw {result['chunks_decoded']} — shared-cache dedup broken over HTTP"
    )
    headline = {
        key: value
        for key, value in result.items()
        if key not in ("telemetry", "failures", "shared")
    }
    headline["shape"] = list(result["shape"])
    headline["shared"] = {k: int(v) for k, v in result["shared"].items()}
    bench_report("serve_load", headline, telemetry=result["telemetry"])


def test_serve_load(tmp_path):
    _report_and_assert(run(tmp_path))


if __name__ == "__main__":
    import argparse
    import tempfile

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smoke-scale run (equivalent to REPRO_BENCH_SCALE=smoke)",
    )
    cli_args = parser.parse_args()
    if cli_args.quick:
        os.environ["REPRO_BENCH_SCALE"] = "smoke"
    with tempfile.TemporaryDirectory() as tmp:
        _report_and_assert(run(tmp))
    print("ok")
