"""Benchmark regenerating paper Figure 1 (cross-field correlation of U/V/W in SCALE).

The paper shows the correlation visually; the harness quantifies it with
Pearson correlation and mutual information on the same slice, demonstrating the
nonlinear dependence the CFNN exploits.
"""

from conftest import run_once

from repro.experiments import run_figure1


def test_figure1_cross_field_correlation(benchmark, bench_scale):
    result = run_once(benchmark, run_figure1, bench_scale)
    print("\n=== Paper Figure 1: cross-field correlation of the SCALE U/V/W slice ===")
    print(result.format())
    # the coupling the paper points at: dependence exists even when Pearson is weak
    assert result.mutual_information["U"]["W"] > 0.05
    assert result.mutual_information["V"]["W"] > 0.05
