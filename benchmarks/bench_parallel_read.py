"""Microbenchmark: parallel chunk decode on the archive read path.

The write path has been chunk-parallel since the store landed; this benchmark
demonstrates the other direction.  It packs a multi-chunk, multi-field CESM
archive once, then times

- ``read_field``: full-field decode, serial (``jobs=1``) vs parallel
  (``jobs=4``, the configuration named in the roadmap acceptance), and
- ``verify --deep``: decode-everything verification, serial vs parallel,

taking the best of three runs each on a cold reader (a fresh ``ArchiveReader``
per run, so the LRU chunk cache never hides the decode cost).

Two further cases exercise the ByteStore I/O layer:

- the ``--io-backend`` axis times parallel ``read_field`` on the ``file``
  (seek+read under a lock) vs ``mmap`` (lock-free zero-copy ``view``)
  backends over a *raw-lossless* big-chunk archive, where decode is nearly
  free and I/O dominates — on >=4 cores mmap must beat file by
  ``REPRO_BENCH_MMAP_MIN`` (default 1.5x, the roadmap acceptance), and the
  two backends must produce bit-identical fields everywhere; and
- the shared-cache case opens several readers over one ``SharedChunkCache``
  and hammers them from many threads, asserting the single-flight decode
  dedup holds exactly (total decodes == unique chunks — deterministic, so
  asserted unconditionally) and writing ``BENCH_shared_cache.json``.

The archive uses the SZ codec's *default* ``huffman`` entropy stage: since the
Huffman decoder became vectorised (checkpointed LUT state machine driven by
NumPy batch operations, see ``docs/entropy.md``), chunk decodes release the
GIL like the zlib stage always did, so the thread backend scales the default
configuration across cores — no more ``entropy="zlib"`` workaround.
On machines with too few cores the speedup assertion is relaxed/skipped but
parallel and serial results are still checked for bit-identity.

Runs standalone (``python benchmarks/bench_parallel_read.py [--quick]
[--overhead-guard]``) or under pytest-benchmark; ``REPRO_BENCH_SCALE=smoke``
matches ``--quick``.  Either way a machine-readable ``BENCH_parallel_read.json``
report (headline timings plus a telemetry snapshot from one instrumented pass)
is written via :func:`conftest.bench_report`; the headline includes the
``sz.predict.*``/``sz.quantize.*`` stage split extracted from the snapshot, so
the report shows where time goes *inside* the SZ codec.

``--overhead-guard`` additionally asserts the observability tax: with
telemetry *disabled* (the default recorder is a no-op), total measured time
must stay within ``REPRO_BENCH_OVERHEAD_TOL`` (default 2%) of the
pre-instrumentation baseline committed in
``benchmarks/baselines/bench_parallel_read.baseline.json``.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

if __name__ == "__main__":  # standalone: make conftest + repro importable
    import sys

    sys.path.insert(0, str(Path(__file__).resolve().parent))
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from conftest import bench_report, bench_seed, run_once

#: Pre-instrumentation timing baseline for the disabled-telemetry overhead guard.
_BASELINE_PATH = Path(__file__).resolve().parent / "baselines" / "bench_parallel_read.baseline.json"

#: Grid sizes per REPRO_BENCH_SCALE; all give multi-chunk fields on a 64x64
#: tile (heavy enough per task that pool dispatch overhead is noise).
_SHAPES = {"smoke": (256, 512), "default": (512, 1024), "paper": (1024, 2048)}

#: Worker count for the parallel arm (the roadmap's acceptance configuration).
_PARALLEL_JOBS = 4

#: Grid sizes for the I/O-bound backend comparison: raw-lossless storage with
#: big chunks keeps decode trivial so backend byte-delivery cost dominates.
_IO_SHAPES = {"smoke": (2048, 1024), "default": (4096, 2048), "paper": (8192, 4096)}

#: Chunk shape for the I/O-bound archive (512 KiB float32 chunks at smoke).
_IO_CHUNK = (512, 256)


def _build_archive(tmp_path):
    from repro.data.synthetic import make_dataset
    from repro.store import ArchiveWriter
    from repro.sz.errors import ErrorBound

    scale = os.environ.get("REPRO_BENCH_SCALE", "default")
    shape = _SHAPES.get(scale, _SHAPES["default"])
    dataset = make_dataset("cesm", shape=shape, seed=bench_seed("parallel-read"))
    path = tmp_path / "bench.xfa"
    with ArchiveWriter(path, chunk_shape=(64, 64), error_bound=ErrorBound.relative(1e-3)) as writer:
        for name in ("FLNT", "FLNTC", "LWCF"):
            writer.add_field(name, dataset[name].data)
    return path


def _build_io_archive(tmp_path):
    """Raw-lossless big-chunk archive: byte movement, not decode, is the cost."""
    from repro.store import ArchiveWriter

    scale = os.environ.get("REPRO_BENCH_SCALE", "default")
    shape = _IO_SHAPES.get(scale, _IO_SHAPES["default"])
    rng = np.random.default_rng(bench_seed("io-backend"))
    data = rng.standard_normal(shape).astype(np.float32)
    path = tmp_path / "bench_io.xfa"
    with ArchiveWriter(path, chunk_shape=_IO_CHUNK) as writer:
        writer.add_field("payload", data, codec="lossless", backend="raw")
    return path


def _best_of(repeats, func):
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _measure(path, repeats=3):
    from repro.store import ArchiveReader

    timings, fields = {}, {}
    for jobs, label in ((1, "serial"), (_PARALLEL_JOBS, "parallel")):

        def read_all():
            # a fresh reader per run: cold cache, decode cost fully visible
            with ArchiveReader(path, jobs=jobs) as reader:
                return {name: reader.read_field(name) for name in reader.names}

        def deep_verify():
            with ArchiveReader(path, jobs=jobs) as reader:
                report = reader.verify(deep=True)
            assert report["ok"]
            return report

        timings[f"read-field/{label}"], fields[label] = _best_of(repeats, read_all)
        timings[f"verify-deep/{label}"], _ = _best_of(repeats, deep_verify)

    with ArchiveReader(path) as reader:
        n_chunks = sum(len(reader.field(name).chunks) for name in reader.names)
    return {"timings": timings, "fields": fields, "n_chunks": n_chunks}


def _measure_io_backends(path, backends=("file", "mmap"), repeats=3):
    """Time parallel read_field per ByteStore backend on the I/O-bound archive."""
    from repro.store import ArchiveReader

    timings, fields = {}, {}
    for backend in backends:

        def read_all():
            with ArchiveReader(path, jobs=_PARALLEL_JOBS, backend=backend) as reader:
                return {name: reader.read_field(name) for name in reader.names}

        timings[f"read-field/{backend}"], fields[backend] = _best_of(repeats, read_all)

    with ArchiveReader(path) as reader:
        n_chunks = sum(len(reader.field(name).chunks) for name in reader.names)
        chunk_bytes = reader.field("payload").chunks[0].length
    return {
        "timings": timings,
        "fields": fields,
        "n_chunks": n_chunks,
        "chunk_bytes": chunk_bytes,
    }


def _report_and_assert_io(result):
    timings = result["timings"]
    print("\n=== ByteStore backends: parallel read_field, raw-lossless archive ===")
    print(f"archive chunks: {result['n_chunks']} x {result['chunk_bytes']} bytes")
    for key in sorted(timings):
        print(f"{key:<20} {timings[key] * 1e3:9.3f} ms")

    backends = sorted(result["fields"])
    reference = result["fields"][backends[0]]
    for backend in backends[1:]:
        for name, data in reference.items():
            assert np.array_equal(result["fields"][backend][name], data), (
                f"{name}: {backends[0]} and {backend} backends disagree"
            )

    headline = {
        "timings_seconds": dict(timings),
        "n_chunks": result["n_chunks"],
        "chunk_bytes": result["chunk_bytes"],
        "parallel_jobs": _PARALLEL_JOBS,
    }
    if "read-field/file" in timings and "read-field/mmap" in timings:
        speedup = timings["read-field/file"] / max(timings["read-field/mmap"], 1e-9)
        headline["mmap_speedup"] = speedup
        print(f"mmap speedup over file: {speedup:.2f}x")
        cores = os.cpu_count() or 1
        if cores >= 4:
            # with >=4 readers hammering one descriptor, the file backend
            # serialises on its seek+read lock while mmap stays lock-free —
            # zero-copy views must win by the roadmap's 1.5x margin
            minimum = float(os.environ.get("REPRO_BENCH_MMAP_MIN", "1.5"))
            assert speedup >= minimum, (
                f"mmap backend only {speedup:.2f}x over file at jobs="
                f"{_PARALLEL_JOBS}; acceptance requires >= {minimum}x"
            )
    return headline


def _measure_shared_cache(path, n_readers=4, n_threads=8):
    """Many readers, one SharedChunkCache: time the hammering, count decodes."""
    import threading

    from repro.store import ArchiveReader, SharedChunkCache

    shared = SharedChunkCache(max_bytes=1 << 30)
    readers = [
        ArchiveReader(path, backend="mmap", shared_cache=shared, cache_bytes=0)
        for _ in range(n_readers)
    ]
    try:
        names = readers[0].names
        barrier = threading.Barrier(n_threads)
        errors = []

        def work():
            try:
                barrier.wait(timeout=30.0)
                for reader in readers:
                    for name in names:
                        reader.read_field(name)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        t0 = time.perf_counter()
        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - t0
        assert not errors, errors[0]

        n_chunks = sum(len(readers[0].field(name).chunks) for name in names)
        total_decodes = sum(r.cache_stats()["chunks_decoded"] for r in readers)
        stats = shared.stats
    finally:
        for reader in readers:
            reader.close()
    return {
        "elapsed_seconds": elapsed,
        "n_readers": n_readers,
        "n_threads": n_threads,
        "n_chunks": n_chunks,
        "total_decodes": total_decodes,
        "shared_stats": stats,
    }


def _report_and_assert_shared(result):
    print("\n=== SharedChunkCache: multi-reader single-flight decode dedup ===")
    print(
        f"{result['n_threads']} threads x {result['n_readers']} readers over "
        f"{result['n_chunks']} chunks in {result['elapsed_seconds'] * 1e3:.1f} ms: "
        f"{result['total_decodes']} decodes, "
        f"{result['shared_stats']['hits']} shared hits, "
        f"{result['shared_stats']['coalesced']} coalesced waits"
    )
    # single-flight correctness is deterministic (unlike the coalesced count,
    # which depends on thread timing): every chunk decodes exactly once no
    # matter how many readers and threads race it
    assert result["total_decodes"] == result["n_chunks"], (
        f"{result['total_decodes']} decodes for {result['n_chunks']} unique "
        f"chunks; the shared cache failed to deduplicate decode work"
    )
    return {
        "elapsed_seconds": result["elapsed_seconds"],
        "n_readers": result["n_readers"],
        "n_threads": result["n_threads"],
        "n_chunks": result["n_chunks"],
        "total_decodes": result["total_decodes"],
        "shared_stats": result["shared_stats"],
    }


def _telemetry_snapshot(path):
    """One instrumented (non-timed) pass; returns its telemetry snapshot.

    Runs *after* the timing measurements so the no-op-recorder numbers stay
    clean; the snapshot documents the workload's stage breakdown (io/crc/
    decode split, cache traffic, per-codec bytes) in the benchmark report.
    """
    from repro import obs
    from repro.store import ArchiveReader

    recorder = obs.Recorder()
    previous = obs.set_recorder(recorder)
    try:
        with ArchiveReader(path, jobs=_PARALLEL_JOBS) as reader:
            for name in reader.names:
                reader.read_field(name)
            assert reader.verify(deep=True)["ok"]
    finally:
        obs.set_recorder(previous)
    return recorder.snapshot()


def _check_overhead(timings, report):
    """Disabled-telemetry overhead guard against the committed baseline."""
    baseline = json.loads(_BASELINE_PATH.read_text(encoding="utf-8"))
    tolerance = float(os.environ.get("REPRO_BENCH_OVERHEAD_TOL", "0.02"))
    expected_scale = baseline.get("scale", "smoke")
    scale = os.environ.get("REPRO_BENCH_SCALE", "default")
    if scale != expected_scale:
        raise SystemExit(
            f"overhead guard compares against a {expected_scale!r}-scale baseline; "
            f"run with REPRO_BENCH_SCALE={expected_scale} (or --quick)"
        )
    base = baseline["timings_seconds"]
    measured_total = sum(timings[key] for key in base)
    baseline_total = sum(base.values())
    overhead = measured_total / baseline_total - 1.0
    print(
        f"overhead guard: measured {measured_total * 1e3:.1f} ms vs "
        f"pre-instrumentation baseline {baseline_total * 1e3:.1f} ms "
        f"({overhead:+.1%}, tolerance {tolerance:.0%})"
    )
    report["overhead_guard"] = {
        "measured_total_seconds": measured_total,
        "baseline_total_seconds": baseline_total,
        "overhead_fraction": overhead,
        "tolerance": tolerance,
    }
    assert overhead <= tolerance, (
        f"disabled-telemetry overhead {overhead:+.1%} exceeds the {tolerance:.0%} "
        f"budget over the pre-instrumentation baseline ({_BASELINE_PATH})"
    )


def _report_and_assert(result, overhead_guard=False):
    from repro import obs

    assert not obs.enabled(), "timing arms must run with telemetry disabled"
    timings = result["timings"]

    print("\n=== Archive store: parallel chunk decode (read path, huffman entropy) ===")
    print(f"archive chunks: {result['n_chunks']}, cpu count: {os.cpu_count()}")
    for op in ("read-field", "verify-deep"):
        serial, parallel = timings[f"{op}/serial"], timings[f"{op}/parallel"]
        print(
            f"{op:<12} serial {serial * 1e3:9.3f} ms   parallel {parallel * 1e3:9.3f} ms   "
            f"speedup {serial / max(parallel, 1e-9):.2f}x"
        )

    headline = {
        "timings_seconds": dict(timings),
        "n_chunks": result["n_chunks"],
        "parallel_jobs": _PARALLEL_JOBS,
    }
    if overhead_guard:
        _check_overhead(timings, headline)

    # parallel assembly must be bit-identical to the serial reference
    for name, serial_data in result["fields"]["serial"].items():
        assert np.array_equal(result["fields"]["parallel"][name], serial_data)
    assert result["n_chunks"] > 8  # meaningless on a single-chunk archive
    cores = os.cpu_count() or 1
    if cores >= 4:
        # the default huffman configuration must now genuinely scale: chunk
        # decode is NumPy batch work that releases the GIL, so four workers
        # must beat the serial loop by a real margin, not just parity
        assert timings["read-field/serial"] > 1.5 * timings["read-field/parallel"]
        assert timings["verify-deep/parallel"] < 1.05 * timings["verify-deep/serial"]
    elif cores >= 2:
        # two cores leave little headroom over dispatch overhead; require
        # at-least-parity so a scheduling regression still fails the build
        assert timings["read-field/parallel"] < 1.1 * timings["read-field/serial"]
        assert timings["verify-deep/parallel"] < 1.1 * timings["verify-deep/serial"]
    return headline


def _sz_stage_split(snapshot):
    """Extract the sz predict/quantize stage split from a telemetry snapshot.

    Returns ``{metric: seconds}`` for every ``sz.predict.*`` / ``sz.quantize.*``
    / ``sz.wavefront.*`` stage timer the instrumented pass recorded (see
    ``docs/observability.md``), so the ``BENCH_*.json`` headline shows where
    decode time goes inside the SZ codec, not just the end-to-end number.
    """
    split = {
        name: hist.sum
        for name, hist in snapshot.histograms.items()
        if name.startswith(("sz.predict.", "sz.quantize.", "sz.wavefront."))
    }
    for counter in ("sz.predict.points", "sz.wavefront.points"):
        if counter in snapshot.counters:
            split[counter] = snapshot.counters[counter]
    return split


def test_parallel_read(benchmark, tmp_path):
    path = _build_archive(tmp_path)
    result = run_once(benchmark, _measure, path)
    headline = _report_and_assert(result)
    snapshot = _telemetry_snapshot(path)
    headline["sz_stage_split"] = _sz_stage_split(snapshot)
    # the read path decodes sz chunks, so the predict stage must show up
    assert any(key.startswith("sz.predict.") for key in headline["sz_stage_split"])
    bench_report("parallel_read", headline, telemetry=snapshot)


def test_io_backends(benchmark, tmp_path):
    path = _build_io_archive(tmp_path)
    result = run_once(benchmark, _measure_io_backends, path)
    headline = _report_and_assert_io(result)
    bench_report("io_backends", headline)


def test_shared_cache(benchmark, tmp_path):
    path = _build_io_archive(tmp_path)
    result = run_once(benchmark, _measure_shared_cache, path)
    headline = _report_and_assert_shared(result)
    bench_report("shared_cache", headline)


if __name__ == "__main__":
    import argparse
    import tempfile

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smoke-scale run (equivalent to REPRO_BENCH_SCALE=smoke)",
    )
    parser.add_argument(
        "--overhead-guard", action="store_true",
        help="assert disabled-telemetry timings stay within "
        "REPRO_BENCH_OVERHEAD_TOL (default 2%%) of the committed "
        "pre-instrumentation baseline",
    )
    parser.add_argument(
        "--repeats", type=int, default=5,
        help="best-of repeats per timing arm (default: 5)",
    )
    parser.add_argument(
        "--io-backend", choices=("both", "file", "mmap"), default="both",
        help="which ByteStore backends the I/O comparison times (default: both; "
        "the >=1.5x mmap-over-file assertion only applies to 'both')",
    )
    cli_args = parser.parse_args()
    if cli_args.quick:
        os.environ["REPRO_BENCH_SCALE"] = "smoke"
    backends = ("file", "mmap") if cli_args.io_backend == "both" else (cli_args.io_backend,)
    with tempfile.TemporaryDirectory() as tmp:
        archive = _build_archive(Path(tmp))
        measured = _measure(archive, repeats=cli_args.repeats)
        headline = _report_and_assert(measured, overhead_guard=cli_args.overhead_guard)
        snapshot = _telemetry_snapshot(archive)
        headline["sz_stage_split"] = _sz_stage_split(snapshot)
        report_path = bench_report("parallel_read", headline, telemetry=snapshot)
        print(f"report: {report_path}")

        io_archive = _build_io_archive(Path(tmp))
        io_measured = _measure_io_backends(io_archive, backends=backends, repeats=cli_args.repeats)
        io_report = bench_report("io_backends", _report_and_assert_io(io_measured))
        print(f"report: {io_report}")

        shared_measured = _measure_shared_cache(io_archive)
        shared_report = bench_report("shared_cache", _report_and_assert_shared(shared_measured))
        print(f"report: {shared_report}")
    print("ok")
