"""Microbenchmark: parallel chunk decode on the archive read path.

The write path has been chunk-parallel since the store landed; this benchmark
demonstrates the other direction.  It packs a multi-chunk, multi-field CESM
archive once, then times

- ``read_field``: full-field decode, serial (``jobs=1``) vs parallel
  (``jobs=4``, the configuration named in the roadmap acceptance), and
- ``verify --deep``: decode-everything verification, serial vs parallel,

taking the best of three runs each on a cold reader (a fresh ``ArchiveReader``
per run, so the LRU chunk cache never hides the decode cost).

The archive uses the SZ codec's *default* ``huffman`` entropy stage: since the
Huffman decoder became vectorised (checkpointed LUT state machine driven by
NumPy batch operations, see ``docs/entropy.md``), chunk decodes release the
GIL like the zlib stage always did, so the thread backend scales the default
configuration across cores — no more ``entropy="zlib"`` workaround.
On machines with too few cores the speedup assertion is relaxed/skipped but
parallel and serial results are still checked for bit-identity.

Runs standalone (``python benchmarks/bench_parallel_read.py [--quick]
[--overhead-guard]``) or under pytest-benchmark; ``REPRO_BENCH_SCALE=smoke``
matches ``--quick``.  Either way a machine-readable ``BENCH_parallel_read.json``
report (headline timings plus a telemetry snapshot from one instrumented pass)
is written via :func:`conftest.bench_report`; the headline includes the
``sz.predict.*``/``sz.quantize.*`` stage split extracted from the snapshot, so
the report shows where time goes *inside* the SZ codec.

``--overhead-guard`` additionally asserts the observability tax: with
telemetry *disabled* (the default recorder is a no-op), total measured time
must stay within ``REPRO_BENCH_OVERHEAD_TOL`` (default 2%) of the
pre-instrumentation baseline committed in
``benchmarks/baselines/bench_parallel_read.baseline.json``.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

if __name__ == "__main__":  # standalone: make conftest + repro importable
    import sys

    sys.path.insert(0, str(Path(__file__).resolve().parent))
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from conftest import bench_report, bench_seed, run_once

#: Pre-instrumentation timing baseline for the disabled-telemetry overhead guard.
_BASELINE_PATH = Path(__file__).resolve().parent / "baselines" / "bench_parallel_read.baseline.json"

#: Grid sizes per REPRO_BENCH_SCALE; all give multi-chunk fields on a 64x64
#: tile (heavy enough per task that pool dispatch overhead is noise).
_SHAPES = {"smoke": (256, 512), "default": (512, 1024), "paper": (1024, 2048)}

#: Worker count for the parallel arm (the roadmap's acceptance configuration).
_PARALLEL_JOBS = 4


def _build_archive(tmp_path):
    from repro.data.synthetic import make_dataset
    from repro.store import ArchiveWriter
    from repro.sz.errors import ErrorBound

    scale = os.environ.get("REPRO_BENCH_SCALE", "default")
    shape = _SHAPES.get(scale, _SHAPES["default"])
    dataset = make_dataset("cesm", shape=shape, seed=bench_seed("parallel-read"))
    path = tmp_path / "bench.xfa"
    with ArchiveWriter(path, chunk_shape=(64, 64), error_bound=ErrorBound.relative(1e-3)) as writer:
        for name in ("FLNT", "FLNTC", "LWCF"):
            writer.add_field(name, dataset[name].data)
    return path


def _best_of(repeats, func):
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _measure(path, repeats=3):
    from repro.store import ArchiveReader

    timings, fields = {}, {}
    for jobs, label in ((1, "serial"), (_PARALLEL_JOBS, "parallel")):

        def read_all():
            # a fresh reader per run: cold cache, decode cost fully visible
            with ArchiveReader(path, jobs=jobs) as reader:
                return {name: reader.read_field(name) for name in reader.names}

        def deep_verify():
            with ArchiveReader(path, jobs=jobs) as reader:
                report = reader.verify(deep=True)
            assert report["ok"]
            return report

        timings[f"read-field/{label}"], fields[label] = _best_of(repeats, read_all)
        timings[f"verify-deep/{label}"], _ = _best_of(repeats, deep_verify)

    with ArchiveReader(path) as reader:
        n_chunks = sum(len(reader.field(name).chunks) for name in reader.names)
    return {"timings": timings, "fields": fields, "n_chunks": n_chunks}


def _telemetry_snapshot(path):
    """One instrumented (non-timed) pass; returns its telemetry snapshot.

    Runs *after* the timing measurements so the no-op-recorder numbers stay
    clean; the snapshot documents the workload's stage breakdown (io/crc/
    decode split, cache traffic, per-codec bytes) in the benchmark report.
    """
    from repro import obs
    from repro.store import ArchiveReader

    recorder = obs.Recorder()
    previous = obs.set_recorder(recorder)
    try:
        with ArchiveReader(path, jobs=_PARALLEL_JOBS) as reader:
            for name in reader.names:
                reader.read_field(name)
            assert reader.verify(deep=True)["ok"]
    finally:
        obs.set_recorder(previous)
    return recorder.snapshot()


def _check_overhead(timings, report):
    """Disabled-telemetry overhead guard against the committed baseline."""
    baseline = json.loads(_BASELINE_PATH.read_text(encoding="utf-8"))
    tolerance = float(os.environ.get("REPRO_BENCH_OVERHEAD_TOL", "0.02"))
    expected_scale = baseline.get("scale", "smoke")
    scale = os.environ.get("REPRO_BENCH_SCALE", "default")
    if scale != expected_scale:
        raise SystemExit(
            f"overhead guard compares against a {expected_scale!r}-scale baseline; "
            f"run with REPRO_BENCH_SCALE={expected_scale} (or --quick)"
        )
    base = baseline["timings_seconds"]
    measured_total = sum(timings[key] for key in base)
    baseline_total = sum(base.values())
    overhead = measured_total / baseline_total - 1.0
    print(
        f"overhead guard: measured {measured_total * 1e3:.1f} ms vs "
        f"pre-instrumentation baseline {baseline_total * 1e3:.1f} ms "
        f"({overhead:+.1%}, tolerance {tolerance:.0%})"
    )
    report["overhead_guard"] = {
        "measured_total_seconds": measured_total,
        "baseline_total_seconds": baseline_total,
        "overhead_fraction": overhead,
        "tolerance": tolerance,
    }
    assert overhead <= tolerance, (
        f"disabled-telemetry overhead {overhead:+.1%} exceeds the {tolerance:.0%} "
        f"budget over the pre-instrumentation baseline ({_BASELINE_PATH})"
    )


def _report_and_assert(result, overhead_guard=False):
    from repro import obs

    assert not obs.enabled(), "timing arms must run with telemetry disabled"
    timings = result["timings"]

    print("\n=== Archive store: parallel chunk decode (read path, huffman entropy) ===")
    print(f"archive chunks: {result['n_chunks']}, cpu count: {os.cpu_count()}")
    for op in ("read-field", "verify-deep"):
        serial, parallel = timings[f"{op}/serial"], timings[f"{op}/parallel"]
        print(
            f"{op:<12} serial {serial * 1e3:9.3f} ms   parallel {parallel * 1e3:9.3f} ms   "
            f"speedup {serial / max(parallel, 1e-9):.2f}x"
        )

    headline = {
        "timings_seconds": dict(timings),
        "n_chunks": result["n_chunks"],
        "parallel_jobs": _PARALLEL_JOBS,
    }
    if overhead_guard:
        _check_overhead(timings, headline)

    # parallel assembly must be bit-identical to the serial reference
    for name, serial_data in result["fields"]["serial"].items():
        assert np.array_equal(result["fields"]["parallel"][name], serial_data)
    assert result["n_chunks"] > 8  # meaningless on a single-chunk archive
    cores = os.cpu_count() or 1
    if cores >= 4:
        # the default huffman configuration must now genuinely scale: chunk
        # decode is NumPy batch work that releases the GIL, so four workers
        # must beat the serial loop by a real margin, not just parity
        assert timings["read-field/serial"] > 1.5 * timings["read-field/parallel"]
        assert timings["verify-deep/parallel"] < 1.05 * timings["verify-deep/serial"]
    elif cores >= 2:
        # two cores leave little headroom over dispatch overhead; require
        # at-least-parity so a scheduling regression still fails the build
        assert timings["read-field/parallel"] < 1.1 * timings["read-field/serial"]
        assert timings["verify-deep/parallel"] < 1.1 * timings["verify-deep/serial"]
    return headline


def _sz_stage_split(snapshot):
    """Extract the sz predict/quantize stage split from a telemetry snapshot.

    Returns ``{metric: seconds}`` for every ``sz.predict.*`` / ``sz.quantize.*``
    / ``sz.wavefront.*`` stage timer the instrumented pass recorded (see
    ``docs/observability.md``), so the ``BENCH_*.json`` headline shows where
    decode time goes inside the SZ codec, not just the end-to-end number.
    """
    split = {
        name: hist.sum
        for name, hist in snapshot.histograms.items()
        if name.startswith(("sz.predict.", "sz.quantize.", "sz.wavefront."))
    }
    for counter in ("sz.predict.points", "sz.wavefront.points"):
        if counter in snapshot.counters:
            split[counter] = snapshot.counters[counter]
    return split


def test_parallel_read(benchmark, tmp_path):
    path = _build_archive(tmp_path)
    result = run_once(benchmark, _measure, path)
    headline = _report_and_assert(result)
    snapshot = _telemetry_snapshot(path)
    headline["sz_stage_split"] = _sz_stage_split(snapshot)
    # the read path decodes sz chunks, so the predict stage must show up
    assert any(key.startswith("sz.predict.") for key in headline["sz_stage_split"])
    bench_report("parallel_read", headline, telemetry=snapshot)


if __name__ == "__main__":
    import argparse
    import tempfile

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smoke-scale run (equivalent to REPRO_BENCH_SCALE=smoke)",
    )
    parser.add_argument(
        "--overhead-guard", action="store_true",
        help="assert disabled-telemetry timings stay within "
        "REPRO_BENCH_OVERHEAD_TOL (default 2%%) of the committed "
        "pre-instrumentation baseline",
    )
    parser.add_argument(
        "--repeats", type=int, default=5,
        help="best-of repeats per timing arm (default: 5)",
    )
    cli_args = parser.parse_args()
    if cli_args.quick:
        os.environ["REPRO_BENCH_SCALE"] = "smoke"
    with tempfile.TemporaryDirectory() as tmp:
        archive = _build_archive(Path(tmp))
        measured = _measure(archive, repeats=cli_args.repeats)
        headline = _report_and_assert(measured, overhead_guard=cli_args.overhead_guard)
        snapshot = _telemetry_snapshot(archive)
        headline["sz_stage_split"] = _sz_stage_split(snapshot)
        report_path = bench_report("parallel_read", headline, telemetry=snapshot)
    print(f"report: {report_path}")
    print("ok")
