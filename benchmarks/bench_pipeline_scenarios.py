"""Benchmark: every registered pipeline scenario, end to end.

Each scenario run covers the full stack — synthetic data generation, chunked
parallel compression through its configured codecs, the XFA1 write path, and
a deep verification pass (which decodes every chunk).  The printed table
shows where the time goes per workload and what compression each preset
achieves, making regressions in any layer visible as a scenario slowdown.
"""

import time

from conftest import bench_seed, run_once


def _run_all(tmp_path):
    from repro.pipeline import available_scenarios, run_scenario

    rows = []
    for name in available_scenarios():
        start = time.perf_counter()
        result = run_scenario(name, tmp_path / f"{name}.xfa", seed=bench_seed(f"scenario:{name}"))
        elapsed = time.perf_counter() - start
        assert result.verified_ok is True, f"scenario {name} failed verification"
        rows.append(
            {
                "scenario": name,
                "seconds": elapsed,
                "ratio": result.ratio,
                "fields": len(result.fields),
                "compressed_nbytes": result.compressed_nbytes,
            }
        )
    return rows


def test_pipeline_scenarios(benchmark, tmp_path):
    rows = run_once(benchmark, _run_all, tmp_path)
    print()
    print(f"{'scenario':<16} {'fields':>6} {'ratio':>8} {'seconds':>8}")
    for row in rows:
        print(
            f"{row['scenario']:<16} {row['fields']:>6} "
            f"{row['ratio']:>7.2f}x {row['seconds']:>8.2f}"
        )
    assert all(row["ratio"] > 1.0 for row in rows)
