"""Benchmark regenerating paper Figures 6 and 7 (prediction-accuracy comparison).

Compares cross-field-only, Lorenzo-only and hybrid prediction of the Hurricane
Wf field (PSNR/SSIM of the predicted slice, full view and zoom window).  The
paper's observation: the hybrid prediction avoids the artifacts of either
individual predictor and achieves the best overall accuracy.
"""

from conftest import run_once

from repro.experiments import run_figure6


def test_figure6_prediction_quality(benchmark, bench_scale):
    result = run_once(benchmark, run_figure6, bench_scale)
    print("\n=== Paper Figures 6-7: prediction accuracy (cross-field / Lorenzo / hybrid) ===")
    print(result.format())
    # the hybrid prediction should never be worse than the weaker of its two inputs
    worst = min(result.metrics["cross_field"]["psnr"], result.metrics["lorenzo"]["psnr"])
    assert result.metrics["hybrid"]["psnr"] >= worst
