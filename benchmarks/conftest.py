"""Benchmark-suite configuration.

Every benchmark runs an experiment runner exactly once (``rounds=1``) because a
single run already involves CFNN training and full compression sweeps; the
interesting output is the table/figure the runner prints, not a timing
distribution.  Set ``REPRO_BENCH_SCALE`` to ``smoke`` / ``default`` / ``paper``
to control the dataset sizes (default: ``default``).
"""

import json
import os
import platform
import sys
import zlib
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

#: Master seed for the whole benchmark suite.  Every benchmark that generates
#: data derives its seed from this one value (via :func:`bench_seed`), so the
#: suite's numbers are reproducible run-to-run and benchmark-order-independent,
#: and bumping one constant reseeds everything at once.
BENCH_MASTER_SEED = 727


def bench_seed(name: str) -> int:
    """Deterministic per-benchmark seed derived from the shared master seed.

    ``name`` labels the benchmark (or a sub-case within it); distinct names
    get decorrelated seeds, the same name always gets the same seed.
    """
    return (zlib.crc32(f"{BENCH_MASTER_SEED}:{name}".encode()) & 0x7FFFFFFF) or 1


@pytest.fixture(scope="session")
def bench_scale():
    """Scale at which the benchmark experiments run."""
    from repro.experiments.config import resolve_scale

    return resolve_scale(None)


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)


def bench_report(name: str, headline: dict, telemetry=None) -> Path:
    """Write a machine-readable ``BENCH_<name>.json`` benchmark report.

    ``headline`` carries the benchmark's summary numbers (timings, ratios,
    chunk counts); ``telemetry`` is an optional
    :class:`repro.obs.TelemetrySnapshot` embedded under ``"telemetry"`` in its
    ``repro-telemetry/1`` JSON form.  Reports land in ``benchmarks/reports/``
    (override with ``REPRO_BENCH_REPORT_DIR``); CI uploads them as artifacts.
    """
    out_dir = Path(
        os.environ.get("REPRO_BENCH_REPORT_DIR", Path(__file__).resolve().parent / "reports")
    )
    out_dir.mkdir(parents=True, exist_ok=True)
    document = {
        "schema": "repro-bench/1",
        "name": name,
        "scale": os.environ.get("REPRO_BENCH_SCALE", "default"),
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "headline": headline,
    }
    if telemetry is not None:
        document["telemetry"] = telemetry.to_dict()
    path = out_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path
