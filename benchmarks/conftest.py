"""Benchmark-suite configuration.

Every benchmark runs an experiment runner exactly once (``rounds=1``) because a
single run already involves CFNN training and full compression sweeps; the
interesting output is the table/figure the runner prints, not a timing
distribution.  Set ``REPRO_BENCH_SCALE`` to ``smoke`` / ``default`` / ``paper``
to control the dataset sizes (default: ``default``).
"""

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


@pytest.fixture(scope="session")
def bench_scale():
    """Scale at which the benchmark experiments run."""
    from repro.experiments.config import resolve_scale

    return resolve_scale(None)


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)
