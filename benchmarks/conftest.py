"""Benchmark-suite configuration.

Every benchmark runs an experiment runner exactly once (``rounds=1``) because a
single run already involves CFNN training and full compression sweeps; the
interesting output is the table/figure the runner prints, not a timing
distribution.  Set ``REPRO_BENCH_SCALE`` to ``smoke`` / ``default`` / ``paper``
to control the dataset sizes (default: ``default``).
"""

import sys
import zlib
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

#: Master seed for the whole benchmark suite.  Every benchmark that generates
#: data derives its seed from this one value (via :func:`bench_seed`), so the
#: suite's numbers are reproducible run-to-run and benchmark-order-independent,
#: and bumping one constant reseeds everything at once.
BENCH_MASTER_SEED = 727


def bench_seed(name: str) -> int:
    """Deterministic per-benchmark seed derived from the shared master seed.

    ``name`` labels the benchmark (or a sub-case within it); distinct names
    get decorrelated seeds, the same name always gets the same seed.
    """
    return (zlib.crc32(f"{BENCH_MASTER_SEED}:{name}".encode()) & 0x7FFFFFFF) or 1


@pytest.fixture(scope="session")
def bench_scale():
    """Scale at which the benchmark experiments run."""
    from repro.experiments.config import resolve_scale

    return resolve_scale(None)


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)
