"""Benchmark regenerating paper Table I (dataset inventory).

Prints the dataset table (paper dims vs reproduction dims) and times the
synthetic dataset generation itself.
"""

from conftest import run_once

from repro.experiments import run_table1


def test_table1_datasets(benchmark, bench_scale):
    result = run_once(benchmark, run_table1, bench_scale)
    print("\n=== Paper Table I: evaluated datasets ===")
    print(result.format())
    assert len(result.rows) == 3
