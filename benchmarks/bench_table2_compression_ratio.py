"""Benchmark regenerating paper Table II (compression ratios, baseline vs ours).

This is the paper's headline result: the cross-field compressor against the
SZ3-Lorenzo dual-quantization baseline on every evaluated field and error
bound.  The printed table includes the paper's published numbers next to the
measured ones; absolute values differ (synthetic data, reduced grids), the
comparison of interest is which method wins and by roughly how much.
"""

from conftest import run_once

from repro.experiments import run_table2


def test_table2_compression_ratio(benchmark, bench_scale):
    result = run_once(benchmark, run_table2, bench_scale)
    print("\n=== Paper Table II: compression ratio, baseline vs cross-field ===")
    print(result.format())
    print(f"mean improvement over all cells: {result.mean_improvement():+.2f}%")
    assert len(result.rows) >= 6
    for row in result.rows:
        assert row["baseline_ratio"] > 1.0
        assert row["ours_ratio"] > 1.0
