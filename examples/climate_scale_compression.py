#!/usr/bin/env python
"""Compress a whole SCALE-LETKF-like climate snapshot field by field.

Demonstrates the workflow the paper's introduction motivates: a multi-field
climate snapshot where anchor fields are compressed with the baseline and the
physically coupled target fields (RH from T/QV/PRES, W from U/V/PRES) use the
cross-field compressor.  Prints a per-field summary table with the overall
snapshot compression ratio.

Run with:  python examples/climate_scale_compression.py
"""

import numpy as np

from repro.core import compress_fieldset
from repro.core.anchors import get_anchor_spec
from repro.core.training import TrainingConfig
from repro.data import make_dataset
from repro.experiments.report import format_table
from repro.sz import ErrorBound, SZCompressor


def main() -> None:
    dataset = make_dataset("scale", shape=(16, 72, 72), seed=3)
    error_bound = ErrorBound.relative(1e-3)
    training = TrainingConfig(epochs=6, n_patches=48)

    rows = []
    total_original = 0
    total_compressed = 0

    # cross-field targets (paper Table III pairings)
    for target in ("RH", "W"):
        spec = get_anchor_spec("scale", target)
        report = compress_fieldset(dataset, spec, error_bound, training=training)
        rows.append(
            (
                target,
                "cross-field",
                ",".join(spec.anchors),
                report.baseline.ratio,
                report.cross_field.ratio,
                report.improvement_percent,
            )
        )
        total_original += report.cross_field.original_nbytes
        total_compressed += report.cross_field.compressed_nbytes

    # the remaining fields use the baseline compressor directly
    baseline = SZCompressor(error_bound=error_bound)
    for name in ("U", "V", "T", "QV", "PRES"):
        result = baseline.compress(dataset[name].data, field_name=name)
        rows.append((name, "baseline", "-", result.ratio, result.ratio, 0.0))
        total_original += result.original_nbytes
        total_compressed += result.compressed_nbytes

    print(
        format_table(
            ["Field", "Method", "Anchors", "Baseline ratio", "Final ratio", "Improvement %"],
            rows,
        )
    )
    print(
        f"\nsnapshot: {total_original / 1e6:.1f} MB -> {total_compressed / 1e6:.2f} MB "
        f"(overall ratio {total_original / total_compressed:.2f}x at rel eb 1e-3)"
    )


if __name__ == "__main__":
    main()
