#!/usr/bin/env python
"""Quickstart: the config-driven compression pipeline, end to end.

Builds a small synthetic Hurricane-like snapshot and compresses it into one
random-access ``XFA1`` archive through :class:`repro.pipeline.CompressionPipeline`:
the horizontal winds and pressure go through the SZ baseline, and the vertical
wind (Wf) is stored with the paper's cross-field codec, predicted from the
*archived* anchors — exactly what a decompressor will see.  The same run then
demonstrates decompression, error-bound checking, a chunked region read, and
the baseline-only configuration for comparison.

Everything here is driven by a :class:`repro.pipeline.PipelineConfig` that
round-trips through JSON — the printed config is directly usable as
``repro compress <config.json>``, and ``repro run cross-field`` packages this
whole workload as a registered scenario.

Run with:  python examples/quickstart.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.data import make_dataset
from repro.metrics import psnr, ssim
from repro.pipeline import CompressionPipeline, FieldRule, PipelineConfig
from repro.store import ArchiveReader


def main() -> None:
    # 1. a multi-field snapshot (use read_fieldset() for real SDRBench files)
    dataset = make_dataset("hurricane", shape=(8, 32, 32), seed=7)
    dataset = dataset.subset(["Uf", "Vf", "Pf", "Wf"])
    print(dataset.describe())

    # 2. one declarative config: SZ default, cross-field rule for Wf
    config = PipelineConfig(
        name="quickstart",
        codec="sz",
        error_bound=1e-3,
        chunk_shape=(8, 16, 16),
        fields={
            "Wf": FieldRule(
                codec="cross-field",
                anchors=("Uf", "Vf", "Pf"),
                codec_params={"epochs": 4, "n_patches": 16},
            )
        },
    )
    print("\npipeline config (usable as `repro compress config.json`):")
    print(config.to_json())
    assert PipelineConfig.from_json(config.to_json()).to_dict() == config.to_dict()

    with tempfile.TemporaryDirectory() as tmp:
        archive = Path(tmp) / "quickstart.xfa"
        pipeline = CompressionPipeline(config)

        # 3. compress every field into one chunked archive
        result = pipeline.compress(dataset, archive)
        print("\n" + result.format())

        # 4. decompress and check the per-point error bound
        restored = pipeline.decompress(archive)
        for name in dataset.names:
            original = dataset[name].data.astype(np.float64)
            recon = restored[name].data.astype(np.float64)
            bound = 1e-3 * dataset[name].value_range
            max_error = float(np.max(np.abs(recon - original)))
            assert max_error <= bound * (1 + 1e-9), f"{name} violated the error bound"
            print(f"  {name:<4s} max error {max_error:.3e} <= bound {bound:.3e}")

        wf = dataset["Wf"].data.astype(np.float64)
        wf_recon = restored["Wf"].data.astype(np.float64)
        print(f"  Wf quality: PSNR {psnr(wf, wf_recon):6.2f} dB, SSIM {ssim(wf, wf_recon):.4f}")

        # 5. random access: a region read touches only intersecting chunks
        with ArchiveReader(archive) as reader:
            window = reader.read_region("Wf", (slice(0, 4), slice(8, 24), slice(8, 24)))
            touched = reader.cache_stats()["chunks_decoded"]
            total = len(reader.field("Wf").chunks)
        print(f"  region read: {window.shape} from {touched} chunks "
              f"(of {total} per field; anchors decode on demand)")

        # 6. deep verification: CRC + full decode of every chunk
        assert pipeline.verify(archive, deep=True)["ok"]
        print("  deep verification: ok")

        # 7. the same fields through a baseline-only config, for comparison
        baseline_archive = Path(tmp) / "baseline.xfa"
        baseline_result = CompressionPipeline(
            PipelineConfig(name="baseline", codec="sz", error_bound=1e-3,
                           chunk_shape=(8, 16, 16))
        ).compress(dataset, baseline_archive)

        # at quickstart grid sizes the per-chunk models rarely beat the plain
        # baseline (the codec's Lorenzo fallback keeps them close); the gains
        # the paper reports appear at benchmark scale — see benchmarks/
        cross_wf = next(f for f in result.fields if f.name == "Wf")
        base_wf = next(f for f in baseline_result.fields if f.name == "Wf")
        improvement = 100.0 * (cross_wf.ratio / base_wf.ratio - 1.0)
        print(f"\nWf baseline {base_wf.ratio:.2f}x -> cross-field {cross_wf.ratio:.2f}x "
              f"({improvement:+.1f}% from cross-field information at this toy size)")


if __name__ == "__main__":
    main()
