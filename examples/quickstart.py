#!/usr/bin/env python
"""Quickstart: error-bounded compression with and without cross-field prediction.

Generates a small synthetic Hurricane-like snapshot, compresses the vertical
wind field (Wf) with the SZ-style baseline and with the cross-field compressor
(anchors: Uf, Vf, Pf), verifies the error bound, and prints the size/quality
comparison.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro.core import CrossFieldCompressor, TrainingConfig
from repro.core.anchors import get_anchor_spec
from repro.data import make_dataset
from repro.metrics import psnr, ssim
from repro.sz import ErrorBound, SZCompressor


def main() -> None:
    # 1. a multi-field snapshot (use read_sdrbench() for real SDRBench files)
    dataset = make_dataset("hurricane", shape=(16, 64, 64), seed=7)
    print(dataset.describe())

    spec = get_anchor_spec("hurricane", "Wf")
    target = dataset[spec.target].data
    error_bound = ErrorBound.relative(1e-3)

    # 2. baseline: SZ-style Lorenzo + dual quantization
    baseline = SZCompressor(error_bound=error_bound)
    baseline_result = baseline.compress(target, field_name=spec.target)
    baseline_recon = baseline.decompress(baseline_result.payload)
    print(f"\nbaseline          : {baseline_result.summary()}")
    print(f"  PSNR {psnr(target, baseline_recon):6.2f} dB   SSIM {ssim(target, baseline_recon):.4f}")

    # 3. cross-field: anchors are compressed first; their reconstructions feed
    #    the CFNN so the decompressor sees exactly the same inputs.
    anchors = []
    for name in spec.anchors:
        anchor_payload = baseline.compress(dataset[name].data, field_name=name).payload
        anchors.append(baseline.decompress(anchor_payload).astype(np.float64))

    cross = CrossFieldCompressor(
        error_bound=error_bound,
        training=TrainingConfig(epochs=6, n_patches=48),
    )
    cross_result = cross.compress(target, anchors, field_name=spec.target)
    cross_recon = cross.decompress(cross_result.payload, anchors)
    print(f"cross-field (ours): {cross_result.summary()}")
    print(f"  PSNR {psnr(target, cross_recon):6.2f} dB   SSIM {ssim(target, cross_recon):.4f}")
    print(f"  prediction mode  : {cross_result.metadata['mode']}")
    print(f"  hybrid weights   : {[round(w, 3) for w in cross_result.metadata['hybrid']['weights']]}")

    # 4. both reconstructions respect the requested point-wise error bound
    for name, recon, result in (
        ("baseline", baseline_recon, baseline_result),
        ("ours", cross_recon, cross_result),
    ):
        max_error = float(np.max(np.abs(recon.astype(np.float64) - target.astype(np.float64))))
        assert max_error <= result.abs_error_bound, f"{name} violated the error bound"
        print(f"  {name:<8s} max error {max_error:.3e} <= bound {result.abs_error_bound:.3e}")

    improvement = 100.0 * (cross_result.ratio / baseline_result.ratio - 1.0)
    print(f"\ncompression-ratio change from cross-field information: {improvement:+.1f}%")


if __name__ == "__main__":
    main()
