#!/usr/bin/env python
"""Rate-distortion study (the paper's Figure 8 workflow) on Hurricane Wf.

Sweeps relative error bounds, measures bit rate / PSNR / SSIM of the baseline
and the cross-field compressor (reusing a single trained CFNN across all error
bounds, as the paper does), and prints the two curves plus the average PSNR
gain.

Run with:  python examples/rate_distortion_study.py
"""

import numpy as np

from repro.core import CFNN, CFNNConfig, CrossFieldCompressor, TrainingConfig
from repro.core.anchors import get_anchor_spec
from repro.data import make_dataset
from repro.metrics import RateDistortionCurve, psnr, ssim
from repro.sz import ErrorBound, SZCompressor


def main() -> None:
    dataset = make_dataset("hurricane", shape=(16, 64, 64), seed=9)
    spec = get_anchor_spec("hurricane", "Wf")
    target = dataset[spec.target].data

    # train one CFNN on the original anchors; reuse it for every error bound
    anchors_original = [dataset[n].data.astype(np.float64) for n in spec.anchors]
    cfnn = CFNN(CFNNConfig(n_anchors=len(spec.anchors), ndim=3, hidden_channels=8, expanded_channels=16))
    cfnn.train(anchors_original, target.astype(np.float64), TrainingConfig(epochs=6, n_patches=48))
    print(f"CFNN trained: {cfnn.num_parameters} parameters, final loss {cfnn.history.final_loss:.4f}")

    baseline_curve = RateDistortionCurve("Wf baseline")
    ours_curve = RateDistortionCurve("Wf ours")

    for rel_eb in (5e-3, 2e-3, 1e-3, 5e-4):
        eb = ErrorBound.relative(rel_eb)
        baseline = SZCompressor(error_bound=eb)
        base_result = baseline.compress(target)
        base_recon = baseline.decompress(base_result.payload)
        baseline_curve.add_measurement(
            base_result.bit_rate, psnr(target, base_recon), rel_eb, base_result.ratio, ssim(target, base_recon)
        )

        # anchors as available at decompression time: decompressed at the same bound
        anchors = [
            baseline.decompress(baseline.compress(dataset[n].data).payload).astype(np.float64)
            for n in spec.anchors
        ]
        ours = CrossFieldCompressor(error_bound=eb)
        ours_result = ours.compress(target, anchors, cfnn=cfnn)
        ours_recon = ours.decompress(ours_result.payload, anchors)
        ours_curve.add_measurement(
            ours_result.bit_rate, psnr(target, ours_recon), rel_eb, ours_result.ratio, ssim(target, ours_recon)
        )
        print(
            f"eb {rel_eb:7.0e}: baseline {base_result.ratio:6.2f}x / {psnr(target, base_recon):6.2f} dB   "
            f"ours {ours_result.ratio:6.2f}x / {psnr(target, ours_recon):6.2f} dB  ({ours_result.metadata['mode']})"
        )

    print("\n" + baseline_curve.format())
    print(ours_curve.format())
    print(f"\naverage PSNR gain of ours over baseline: {ours_curve.average_psnr_gain_over(baseline_curve):+.2f} dB")


if __name__ == "__main__":
    main()
