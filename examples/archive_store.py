#!/usr/bin/env python
"""Archive store walk-through: pack a climate fieldset, read back a region.

Packs a synthetic CESM-like snapshot into one chunked ``XFA1`` archive —
cloud-fraction anchors with the SZ codec, ``CLDTOT`` with the cross-field
codec anchored on them, one field lossless — then reads back a sub-region
(decompressing only the chunks it touches) and prints the per-field
size/ratio breakdown.

Run with:  python examples/archive_store.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.data import make_dataset
from repro.store import ArchiveReader, ArchiveWriter
from repro.sz import ErrorBound


def main() -> None:
    dataset = make_dataset("cesm", shape=(96, 192), seed=17)
    workdir = Path(tempfile.mkdtemp(prefix="repro-store-"))
    archive_path = workdir / "cesm_snapshot.xfa"

    # 1. pack: per-field codecs, shared 48x48 chunk grid
    with ArchiveWriter(
        archive_path,
        chunk_shape=(48, 48),
        error_bound=ErrorBound.relative(1e-3),
        attrs={"dataset": dataset.name, "note": "examples/archive_store.py"},
    ) as writer:
        for name in ("CLDLOW", "CLDMED", "CLDHGH", "FLNT"):
            writer.add_field(name, dataset[name].data)
        writer.add_field("FLNTC", dataset["FLNTC"].data, codec="zfp")
        writer.add_field("LWCF", dataset["LWCF"].data, codec="lossless")
        writer.add_field(
            "CLDTOT",
            dataset["CLDTOT"].data,
            codec="cross-field",
            anchors=("CLDLOW", "CLDMED", "CLDHGH"),
        )

    archive_bytes = archive_path.stat().st_size
    raw_bytes = dataset.nbytes

    # 2. size breakdown per field
    with ArchiveReader(archive_path) as reader:
        print(f"archive: {archive_path}")
        print(f"{'field':<8} {'codec':<12} {'chunks':>6} {'compressed':>12} {'ratio':>7}")
        for entry in reader.fields():
            print(
                f"{entry.name:<8} {entry.codec:<12} {len(entry.chunks):>6} "
                f"{entry.compressed_nbytes:>10} B {entry.ratio:>6.2f}x"
            )
        print(f"total: {raw_bytes} B raw -> {archive_bytes} B archive "
              f"({raw_bytes / archive_bytes:.2f}x, manifest included)\n")

        # 3. random-access region read: one 48x48 chunk out of 8
        region = (slice(50, 90), slice(100, 140))
        window = reader.read_region("CLDTOT", region)
        stats = reader.cache_stats()
        total_chunks = len(reader.field("CLDTOT").chunks)
        original = dataset["CLDTOT"].data[region]
        max_err = float(np.max(np.abs(window.astype(np.float64) - original.astype(np.float64))))
        bound = reader.field("CLDTOT").abs_error_bound
        print(f"read CLDTOT[50:90, 100:140] -> shape {window.shape}")
        print(f"  chunks decompressed : {stats['chunks_decoded']} "
              f"(CLDTOT has {total_chunks}; anchors decode through the same cache)")
        print(f"  max abs error       : {max_err:.3g} (bound {bound:.3g})")
        assert max_err <= bound * (1 + 1e-9)

        # 4. re-read: the LRU cache serves every chunk hot
        reader.read_region("CLDTOT", region)
        stats_after = reader.cache_stats()
        print(f"  re-read decodes     : {stats_after['chunks_decoded'] - stats['chunks_decoded']} "
              f"(cache hits {stats_after['hits']})")


if __name__ == "__main__":
    main()
