#!/usr/bin/env python
"""Cross-field compression of CESM-ATM radiative/cloud fields and anchor studies.

Shows the 2D workflow from the paper (CLDTOT from the per-level cloud
fractions, LWCF and FLUT from the radiative fluxes), compares the paper's
hand-picked anchors with the automatic mutual-information selection, and prints
the cross-field correlation matrix motivating the method.

Run with:  python examples/cesm_radiative_fields.py
"""

import numpy as np

from repro.core import CrossFieldCompressor, TrainingConfig
from repro.core.anchors import get_anchor_spec, suggest_anchors
from repro.data import make_dataset
from repro.experiments.report import format_table
from repro.metrics import cross_field_correlation_matrix
from repro.sz import ErrorBound, SZCompressor


def main() -> None:
    dataset = make_dataset("cesm", shape=(180, 360), seed=5)
    error_bound = ErrorBound.relative(5e-4)
    training = TrainingConfig(epochs=16, n_patches=96, learning_rate=4e-3)
    baseline = SZCompressor(error_bound=error_bound)

    # how correlated are the radiative fields?  (paper Section III-A example)
    matrix = cross_field_correlation_matrix(
        dataset, names=("FLUT", "FLNT", "FLNTC", "LWCF"), method="pearson"
    )
    print("Pearson correlation between radiative fields:")
    names = list(matrix)
    print(format_table(["field"] + names, [(a, *[matrix[a][b] for b in names]) for a in names]))

    rows = []
    for target in ("CLDTOT", "LWCF", "FLUT"):
        spec = get_anchor_spec("cesm", target)
        target_data = dataset[target].data
        base = baseline.compress(target_data, field_name=target)

        anchors = [
            baseline.decompress(baseline.compress(dataset[n].data).payload).astype(np.float64)
            for n in spec.anchors
        ]
        ours = CrossFieldCompressor(error_bound=error_bound, training=training).compress(
            target_data, anchors, field_name=target
        )
        rows.append(
            (
                target,
                ",".join(spec.anchors),
                base.ratio,
                ours.ratio,
                100.0 * (ours.ratio / base.ratio - 1.0),
                ours.metadata["mode"],
            )
        )

    print("\nPaper anchor configuration (Table III pairings):")
    print(
        format_table(
            ["Target", "Anchors", "Baseline ratio", "Ours ratio", "Improvement %", "Mode"], rows
        )
    )

    # the paper's future work: automatic anchor selection
    auto = suggest_anchors(dataset, "LWCF", max_anchors=2)
    print(f"\nautomatic (mutual-information) anchors for LWCF: {auto.anchors}")
    print(f"paper anchors for LWCF:                         {get_anchor_spec('cesm', 'LWCF').anchors}")


if __name__ == "__main__":
    main()
