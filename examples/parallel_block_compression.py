#!/usr/bin/env python
"""Block-parallel compression of a large 2D field (dual-quantization payoff).

Dual quantization removes the read-after-write dependency from the compression
path, so independent blocks can be compressed concurrently.  This example
compares single-shot, serial block-wise and thread-parallel block-wise
compression of a CESM-like field, and verifies all three satisfy the same error
bound.

Run with:  python examples/parallel_block_compression.py
"""

import time

import numpy as np

from repro.data import make_dataset
from repro.experiments.report import format_table
from repro.parallel import BlockParallelCompressor
from repro.sz import ErrorBound, SZCompressor


def main() -> None:
    data = make_dataset("cesm", shape=(512, 1024), seed=1)["FLNT"].data
    error_bound = ErrorBound.relative(1e-3)
    rows = []

    start = time.perf_counter()
    single = SZCompressor(error_bound=error_bound)
    single_result = single.compress(data)
    single_recon = single.decompress(single_result.payload)
    rows.append(("single-shot", single_result.ratio, time.perf_counter() - start, 1))

    for kind, workers in (("serial", 1), ("thread", 4)):
        compressor = BlockParallelCompressor(
            compressor=SZCompressor(error_bound=error_bound),
            block_shape=(128, 128),
            executor_kind=kind,
            max_workers=workers,
        )
        start = time.perf_counter()
        result = compressor.compress(data, field_name="FLNT")
        elapsed = time.perf_counter() - start
        recon = compressor.decompress(result.payload)
        max_error = float(np.max(np.abs(recon.astype(np.float64) - data.astype(np.float64))))
        assert max_error <= result.abs_error_bound, "block-parallel result violated the error bound"
        rows.append((f"blocks ({kind}, {workers} workers)", result.ratio, elapsed, result.n_blocks))

    max_error = float(np.max(np.abs(single_recon.astype(np.float64) - data.astype(np.float64))))
    assert max_error <= single_result.abs_error_bound

    print(format_table(["Configuration", "Ratio", "Compress seconds", "Blocks/workers"], rows))
    print("\nall configurations satisfy the same per-point error bound; the block decomposition")
    print("trades a small ratio overhead (per-block headers) for parallel execution.")


if __name__ == "__main__":
    main()
