"""ZFP-style transform-based error-bounded compressor.

ZFP (Lindstrom, 2014) is the other mainstream family of scientific lossy
compressors discussed in the paper's background: instead of predicting each
point, it partitions the data into small fixed-size blocks, applies a
decorrelating orthogonal transform per block, and codes the transform
coefficients.  This package implements a simplified fixed-accuracy variant of
that design (4-wide blocks, orthonormal DCT-II transform, conservative
coefficient quantization) used as an additional baseline in the ablation
benchmarks.

The transform path is batched (:mod:`repro.zfp.transform`) and the default
payload layout is significance-grouped (:mod:`repro.zfp.layout`), so a byte
prefix of each chunk decodes to a coarse preview — see
:meth:`ZFPLikeCompressor.decompress_preview`.
"""

from repro.zfp.codec import ZFP_LAYOUTS, ZFPLikeCompressor
from repro.zfp.layout import (
    clear_significance_plans,
    groups_for_fraction,
    significance_plan,
    significance_plan_info,
)
from repro.zfp.transform import (
    MAX_TRANSFORM_SIZE,
    block_transform_forward,
    block_transform_forward_reference,
    block_transform_inverse,
    block_transform_inverse_reference,
    dct_matrix,
    field_transform_forward,
    field_transform_inverse,
)

__all__ = [
    "MAX_TRANSFORM_SIZE",
    "ZFP_LAYOUTS",
    "dct_matrix",
    "block_transform_forward",
    "block_transform_inverse",
    "block_transform_forward_reference",
    "block_transform_inverse_reference",
    "field_transform_forward",
    "field_transform_inverse",
    "significance_plan",
    "significance_plan_info",
    "clear_significance_plans",
    "groups_for_fraction",
    "ZFPLikeCompressor",
]
