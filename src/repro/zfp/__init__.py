"""ZFP-style transform-based error-bounded compressor.

ZFP (Lindstrom, 2014) is the other mainstream family of scientific lossy
compressors discussed in the paper's background: instead of predicting each
point, it partitions the data into small fixed-size blocks, applies a
decorrelating orthogonal transform per block, and codes the transform
coefficients.  This package implements a simplified fixed-accuracy variant of
that design (4-wide blocks, orthonormal DCT-II transform, conservative
coefficient quantization) used as an additional baseline in the ablation
benchmarks.
"""

from repro.zfp.transform import dct_matrix, block_transform_forward, block_transform_inverse
from repro.zfp.codec import ZFPLikeCompressor

__all__ = [
    "dct_matrix",
    "block_transform_forward",
    "block_transform_inverse",
    "ZFPLikeCompressor",
]
