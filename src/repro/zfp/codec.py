"""Fixed-accuracy ZFP-style compressor with a progressive payload layout.

Pipeline: tile the field into 4-wide blocks, transform each block with the
orthonormal DCT (batched over the whole field — see
:mod:`repro.zfp.transform`), quantize the coefficients with a conservative
step size that guarantees the requested point-wise error bound, and
entropy-code the integer coefficients with the same Huffman + lossless stage
as the SZ pipeline.

The coefficient step is ``2 * eb / sqrt(block_points)`` where ``block_points``
is the *actual* sample count of the block containing the coefficient: the
transform is orthonormal, so the L2 norm of the coefficient error equals the
L2 norm of the sample error, and the worst-case point-wise error is bounded by
that L2 norm — hence the per-point error never exceeds ``eb``.  Edge blocks
truncated by the field boundary hold fewer samples and get the correspondingly
larger (still bound-safe) step.  This is intentionally conservative (real ZFP
uses embedded bit-plane coding), which is why this codec serves as an ablation
baseline rather than a tuned competitor.

Two payload layouts share the container format (no format-version bump; the
layout is recorded in the blob metadata and in ``codec_params``):

- ``"grouped"`` (default): coefficients are reordered by significance level
  (:mod:`repro.zfp.layout`) and every level is entropy-coded as its own blob
  section with its byte length and energy in the metadata.  A *prefix* of the
  groups decodes to a valid coarse field — :meth:`ZFPLikeCompressor.decompress`
  takes ``max_groups`` and :meth:`~ZFPLikeCompressor.decompress_preview` maps
  a byte-budget fraction onto a group count and reports the error estimate.
- ``"interleaved"``: the original flat C-order stream.  Payloads written
  before the grouped layout existed carry no ``layout`` key and are
  auto-detected as interleaved; they decode bit-identically to the original
  scalar implementation (pinned by the ``mixed-codec`` golden archive).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.encoding.container import CompressedBlob
from repro.encoding.entropy import get_entropy_coder
from repro.obs import recorder as _obs
from repro.sz.errors import ErrorBound
from repro.sz.pipeline import CompressionResult, decode_integer_stream, encode_integer_stream
from repro.sz.quantizer import QUANT_RADIUS_DEFAULT, effective_error_bound
from repro.utils.validation import ensure_array, ensure_in
from repro.zfp.layout import groups_for_fraction, significance_plan
from repro.zfp.transform import field_transform_forward, field_transform_inverse

__all__ = ["ZFPLikeCompressor", "ZFP_LAYOUTS"]

ZFP_LAYOUTS = ("grouped", "interleaved")


class ZFPLikeCompressor:
    """Transform-based error-bounded compressor (simplified fixed-accuracy ZFP)."""

    format_name = "zfp-like"

    def __init__(
        self,
        error_bound: ErrorBound = ErrorBound.relative(1e-3),
        block_size: int = 4,
        entropy: str = "huffman",
        backend: str = "zlib",
        quant_radius: int = QUANT_RADIUS_DEFAULT,
        layout: str = "grouped",
    ) -> None:
        if not isinstance(error_bound, ErrorBound):
            raise TypeError("error_bound must be an ErrorBound instance")
        if block_size < 2:
            raise ValueError("block_size must be at least 2")
        get_entropy_coder(entropy)  # unknown names raise, listing the registry
        ensure_in(layout, ZFP_LAYOUTS, "layout")
        self.error_bound = error_bound
        self.block_size = int(block_size)
        self.entropy = entropy
        self.backend = backend
        self.quant_radius = int(quant_radius)
        self.layout = layout

    # ------------------------------------------------------------------ #
    def _step(self, abs_eb: float, ndim: int) -> float:
        """Scalar step for a full (untruncated) block — the legacy formula."""
        block_points = float(self.block_size**ndim)
        return 2.0 * effective_error_bound(abs_eb) / np.sqrt(block_points)

    @staticmethod
    def _step_array(abs_eb: float, point_counts: np.ndarray) -> np.ndarray:
        """Per-element step from each element's actual block point count.

        Same operation order as :meth:`_step`, so on fields with no ragged
        edges every entry is bitwise equal to the scalar step.
        """
        return 2.0 * effective_error_bound(abs_eb) / np.sqrt(point_counts)

    # ------------------------------------------------------------------ #
    def compress(self, data: np.ndarray, field_name: str = "") -> CompressionResult:
        """Compress ``data`` and return a :class:`~repro.sz.pipeline.CompressionResult`."""
        data = ensure_array(data, "data")
        if data.ndim not in (1, 2, 3):
            raise ValueError("ZFPLikeCompressor supports 1D, 2D and 3D data")
        recorder = _obs.get_recorder()
        timings: Dict[str, float] = {}

        t0 = time.perf_counter()
        abs_eb = self.error_bound.resolve(data)
        plan = significance_plan(data.shape, self.block_size)
        transformed = field_transform_forward(data, self.block_size)
        if self.layout == "grouped":
            step_flat = self._step_array(abs_eb, plan.point_counts)
        else:
            # the interleaved decoder applies one scalar step everywhere, so
            # the encoder must quantize with it too (the legacy behaviour)
            step_flat = self._step(abs_eb, data.ndim)
        quantized = np.rint(transformed.ravel() / step_flat).astype(np.int64)
        timings["transform"] = time.perf_counter() - t0
        if recorder.enabled:
            recorder.observe("zfp.transform.forward_seconds", timings["transform"])
            recorder.count("zfp.transform.points", int(data.size))

        metadata = {
            "format": self.format_name,
            "field_name": field_name,
            "shape": list(data.shape),
            "dtype": str(data.dtype),
            "error_bound": self.error_bound.to_dict(),
            "abs_error_bound": abs_eb,
            "block_size": self.block_size,
            "step": self._step(abs_eb, data.ndim),
            "layout": self.layout,
        }

        t0 = time.perf_counter()
        sections: Dict[str, bytes] = {}
        if self.layout == "grouped":
            grouped = quantized[plan.perm]
            grouped_steps = step_flat[plan.perm]
            groups_meta: List[Dict] = []
            for g, sl in enumerate(plan.group_slices()):
                group_sections, stream_meta = encode_integer_stream(
                    grouped[sl],
                    self.entropy,
                    self.backend,
                    self.quant_radius,
                    prefix=f"g{g}",
                )
                sections.update(group_sections)
                values = grouped[sl].astype(np.float64) * grouped_steps[sl]
                groups_meta.append(
                    {
                        "level": int(plan.group_levels[g]),
                        "count": int(sl.stop - sl.start),
                        "bytes": int(sum(len(v) for v in group_sections.values())),
                        "energy": float(np.dot(values, values)),
                        "stream": stream_meta,
                    }
                )
            metadata["groups"] = groups_meta
        else:
            stream_sections, stream_meta = encode_integer_stream(
                quantized, self.entropy, self.backend, self.quant_radius
            )
            sections.update(stream_sections)
            metadata["stream"] = stream_meta
        timings["encode"] = time.perf_counter() - t0

        blob = CompressedBlob(metadata=metadata, sections=sections)
        payload = blob.to_bytes()
        return CompressionResult(
            payload=payload,
            original_nbytes=int(data.nbytes),
            compressed_nbytes=len(payload),
            abs_error_bound=abs_eb,
            element_count=int(data.size),
            element_size=int(data.dtype.itemsize),
            section_sizes=blob.section_sizes(),
            timings=timings,
            metadata=metadata,
        )

    # ------------------------------------------------------------------ #
    @staticmethod
    def payload_layout(metadata: Dict) -> str:
        """Layout of a parsed payload: missing key means a legacy interleaved one."""
        return str(metadata.get("layout", "interleaved"))

    def decompress(
        self,
        payload: bytes,
        scheduler=None,
        max_groups: Optional[int] = None,
    ) -> np.ndarray:
        """Decompress a payload produced by :meth:`compress`.

        ``scheduler`` (optional) lets the entropy stage fan its checkpointed
        sub-blocks out across a :class:`~repro.parallel.engine.ChunkScheduler`.
        ``max_groups`` (grouped payloads only) decodes just the first ``N``
        significance groups — a coarse preview; ``None`` decodes everything.
        """
        array, _ = self._decode(payload, scheduler=scheduler, max_groups=max_groups)
        return array

    def decompress_preview(
        self,
        payload: bytes,
        fraction: float,
        scheduler=None,
    ) -> Tuple[np.ndarray, Dict]:
        """Decode a coarse preview within a byte-budget ``fraction``.

        Picks the largest significance-group prefix whose entropy sections fit
        in ``fraction`` of the total entropy payload (always at least the
        block-means group) and returns ``(array, info)`` where ``info`` holds
        ``groups_decoded``, ``groups_total``, ``bytes_decoded``,
        ``bytes_total`` and ``rms_error_estimate`` (the orthonormal-transform
        energy of the dropped groups; 0.0 for a full decode).  Interleaved
        payloads have no decodable prefix and fall back to a full decode.
        """
        blob = CompressedBlob.from_bytes(payload)
        metadata = self._check_format(blob.metadata)
        if self.payload_layout(metadata) == "grouped":
            group_bytes = [int(g["bytes"]) for g in metadata["groups"]]
            max_groups = groups_for_fraction(group_bytes, fraction)
        else:
            max_groups = None
        return self._decode_blob(blob, scheduler=scheduler, max_groups=max_groups)

    # ------------------------------------------------------------------ #
    def _check_format(self, metadata: Dict) -> Dict:
        if metadata.get("format") != self.format_name:
            raise ValueError(
                f"payload format {metadata.get('format')!r} is not {self.format_name!r}"
            )
        return metadata

    def _decode(
        self, payload: bytes, scheduler=None, max_groups: Optional[int] = None
    ) -> Tuple[np.ndarray, Dict]:
        blob = CompressedBlob.from_bytes(payload)
        self._check_format(blob.metadata)
        return self._decode_blob(blob, scheduler=scheduler, max_groups=max_groups)

    def _decode_blob(
        self, blob: CompressedBlob, scheduler=None, max_groups: Optional[int] = None
    ) -> Tuple[np.ndarray, Dict]:
        metadata = blob.metadata
        recorder = _obs.get_recorder()
        shape = tuple(metadata["shape"])
        dtype = np.dtype(metadata["dtype"])
        block_size = int(metadata["block_size"])
        layout = self.payload_layout(metadata)

        if layout == "grouped":
            coefficients, info = self._decode_grouped_stream(
                blob, metadata, shape, block_size, scheduler, max_groups
            )
            abs_eb = float(metadata["abs_error_bound"])
            plan = significance_plan(shape, block_size)
            step = self._step_array(abs_eb, plan.point_counts).reshape(shape)
        else:
            coefficients = decode_integer_stream(
                blob.sections, metadata["stream"], scheduler=scheduler
            ).reshape(shape)
            # legacy payloads quantized every block with the scalar step
            step = float(metadata["step"])
            bytes_total = int(sum(blob.section_sizes().values()))
            info = {
                "groups_decoded": 1,
                "groups_total": 1,
                "bytes_decoded": bytes_total,
                "bytes_total": bytes_total,
                "rms_error_estimate": 0.0,
            }

        t0 = time.perf_counter()
        out = field_transform_inverse(
            coefficients.astype(np.float64) * step, block_size
        )
        if recorder.enabled:
            recorder.observe("zfp.transform.inverse_seconds", time.perf_counter() - t0)
            recorder.count("zfp.transform.points", int(out.size))
        return out.astype(dtype), info

    def _decode_grouped_stream(
        self,
        blob: CompressedBlob,
        metadata: Dict,
        shape: Tuple[int, ...],
        block_size: int,
        scheduler,
        max_groups: Optional[int],
    ) -> Tuple[np.ndarray, Dict]:
        recorder = _obs.get_recorder()
        groups_meta = metadata["groups"]
        total_groups = len(groups_meta)
        if max_groups is None:
            take = total_groups
        else:
            if max_groups < 1:
                raise ValueError("max_groups must be at least 1")
            take = min(int(max_groups), total_groups)

        plan = significance_plan(shape, block_size)
        flat = np.zeros(int(np.prod(shape)) if shape else 0, dtype=np.int64)
        decoded = 0
        for g in range(take):
            group = groups_meta[g]
            values = decode_integer_stream(
                blob.sections, group["stream"], scheduler=scheduler
            )
            flat[plan.perm[decoded : decoded + values.size]] = values
            decoded += int(values.size)

        bytes_decoded = int(sum(int(g["bytes"]) for g in groups_meta[:take]))
        bytes_total = int(sum(int(g["bytes"]) for g in groups_meta))
        dropped_energy = float(sum(float(g["energy"]) for g in groups_meta[take:]))
        n_points = max(1, int(np.prod(shape)) if shape else 0)
        info = {
            "groups_decoded": take,
            "groups_total": total_groups,
            "bytes_decoded": bytes_decoded,
            "bytes_total": bytes_total,
            "rms_error_estimate": float(np.sqrt(dropped_energy / n_points)),
        }
        if recorder.enabled:
            recorder.count("zfp.preview.groups_decoded", take)
            recorder.count("zfp.preview.groups_skipped", total_groups - take)
            recorder.count("zfp.preview.bytes_decoded", bytes_decoded)
            recorder.count("zfp.preview.bytes_skipped", bytes_total - bytes_decoded)
        return flat.reshape(shape), info
