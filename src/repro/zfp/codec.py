"""Fixed-accuracy ZFP-style compressor.

Pipeline: tile the field into 4-wide blocks, transform each block with the
orthonormal DCT, quantize the coefficients with a conservative step size that
guarantees the requested point-wise error bound, and entropy-code the integer
coefficients with the same Huffman + lossless stage as the SZ pipeline.

The coefficient step is ``2 * eb / sqrt(block_size)``: the transform is
orthonormal, so the L2 norm of the coefficient error equals the L2 norm of the
sample error, and the worst-case point-wise error is bounded by that L2 norm —
hence the per-point error never exceeds ``eb``.  This is intentionally
conservative (real ZFP uses embedded bit-plane coding), which is why this codec
serves as an ablation baseline rather than a tuned competitor.
"""

from __future__ import annotations

import time
from typing import Dict, Tuple

import numpy as np

from repro.data.slicing import iter_blocks
from repro.encoding.container import CompressedBlob
from repro.encoding.entropy import get_entropy_coder
from repro.sz.errors import ErrorBound
from repro.sz.pipeline import CompressionResult, decode_integer_stream, encode_integer_stream
from repro.sz.quantizer import QUANT_RADIUS_DEFAULT, effective_error_bound
from repro.utils.validation import ensure_array
from repro.zfp.transform import block_transform_forward, block_transform_inverse

__all__ = ["ZFPLikeCompressor"]


class ZFPLikeCompressor:
    """Transform-based error-bounded compressor (simplified fixed-accuracy ZFP)."""

    format_name = "zfp-like"

    def __init__(
        self,
        error_bound: ErrorBound = ErrorBound.relative(1e-3),
        block_size: int = 4,
        entropy: str = "huffman",
        backend: str = "zlib",
        quant_radius: int = QUANT_RADIUS_DEFAULT,
    ) -> None:
        if not isinstance(error_bound, ErrorBound):
            raise TypeError("error_bound must be an ErrorBound instance")
        if block_size < 2:
            raise ValueError("block_size must be at least 2")
        get_entropy_coder(entropy)  # unknown names raise, listing the registry
        self.error_bound = error_bound
        self.block_size = int(block_size)
        self.entropy = entropy
        self.backend = backend
        self.quant_radius = int(quant_radius)

    # ------------------------------------------------------------------ #
    def _step(self, abs_eb: float, ndim: int) -> float:
        block_points = float(self.block_size**ndim)
        return 2.0 * effective_error_bound(abs_eb) / np.sqrt(block_points)

    def compress(self, data: np.ndarray, field_name: str = "") -> CompressionResult:
        """Compress ``data`` and return a :class:`~repro.sz.pipeline.CompressionResult`."""
        data = ensure_array(data, "data")
        if data.ndim not in (1, 2, 3):
            raise ValueError("ZFPLikeCompressor supports 1D, 2D and 3D data")
        timings: Dict[str, float] = {}

        t0 = time.perf_counter()
        abs_eb = self.error_bound.resolve(data)
        step = self._step(abs_eb, data.ndim)
        block_shape = tuple(self.block_size for _ in range(data.ndim))
        coefficients = np.empty(data.shape, dtype=np.int64)
        for slices in iter_blocks(data.shape, block_shape):
            block = np.asarray(data[slices], dtype=np.float64)
            transformed = block_transform_forward(block)
            coefficients[slices] = np.rint(transformed / step).astype(np.int64)
        timings["transform"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        sections, stream_meta = encode_integer_stream(
            coefficients, self.entropy, self.backend, self.quant_radius
        )
        timings["encode"] = time.perf_counter() - t0

        metadata = {
            "format": self.format_name,
            "field_name": field_name,
            "shape": list(data.shape),
            "dtype": str(data.dtype),
            "error_bound": self.error_bound.to_dict(),
            "abs_error_bound": abs_eb,
            "block_size": self.block_size,
            "step": step,
            "stream": stream_meta,
        }
        blob = CompressedBlob(metadata=metadata, sections=sections)
        payload = blob.to_bytes()
        return CompressionResult(
            payload=payload,
            original_nbytes=int(data.nbytes),
            compressed_nbytes=len(payload),
            abs_error_bound=abs_eb,
            element_count=int(data.size),
            element_size=int(data.dtype.itemsize),
            section_sizes=blob.section_sizes(),
            timings=timings,
            metadata=metadata,
        )

    def decompress(self, payload: bytes, scheduler=None) -> np.ndarray:
        """Decompress a payload produced by :meth:`compress`.

        ``scheduler`` (optional) lets the entropy stage fan its checkpointed
        sub-blocks out across a :class:`~repro.parallel.engine.ChunkScheduler`.
        """
        blob = CompressedBlob.from_bytes(payload)
        metadata = blob.metadata
        if metadata.get("format") != self.format_name:
            raise ValueError(
                f"payload format {metadata.get('format')!r} is not {self.format_name!r}"
            )
        shape = tuple(metadata["shape"])
        dtype = np.dtype(metadata["dtype"])
        step = float(metadata["step"])
        block_size = int(metadata["block_size"])
        block_shape = tuple(block_size for _ in range(len(shape)))

        coefficients = decode_integer_stream(
            blob.sections, metadata["stream"], scheduler=scheduler
        ).reshape(shape)
        out = np.empty(shape, dtype=np.float64)
        for slices in iter_blocks(shape, block_shape):
            block_coeff = coefficients[slices].astype(np.float64) * step
            out[slices] = block_transform_inverse(block_coeff)
        return out.astype(dtype)
