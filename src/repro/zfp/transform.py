"""Orthonormal block transforms for the ZFP-style compressor.

The reference ZFP codec uses a custom lifted near-orthogonal transform on
4-wide blocks; this reproduction uses the orthonormal DCT-II, which has the same
decorrelating role, is exactly orthonormal (so coefficient-domain error bounds
translate to sample-domain bounds), and keeps the code short.

Two implementations coexist, mirroring the SZ parity contract
(``docs/architecture.md``, "The wavefront batch decoder"):

- the *batched* path (:func:`field_transform_forward` /
  :func:`field_transform_inverse`) reshapes every same-shaped block of a field
  into one ``(nblocks, b[, b[, b]])`` stack and applies the separable DCT with
  a handful of whole-stack NumPy operations — ragged edge blocks are grouped
  by shape, one small stack per distinct edge shape, so a ``(1023, 1022)``
  field costs four stacked transforms instead of ~65k per-block calls;
- the *reference* path (:func:`block_transform_forward_reference` /
  :func:`block_transform_inverse_reference`) transforms one block at a time,
  exactly like the original per-block loop.

Both contract each axis with the same fixed-order multiply/add sequence
(:func:`_contract_axis`): elementwise IEEE operations are exactly rounded, so
running the identical sequence over a stack of N blocks or over one block at a
time produces bit-identical floats.  No BLAS ``tensordot``/``matmul`` is
involved, which keeps the bits build-stable — ``tests/test_zfp_parity.py``
pins the two paths against each other with Hypothesis.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator, List, Tuple

import numpy as np

__all__ = [
    "MAX_TRANSFORM_SIZE",
    "dct_matrix",
    "block_transform_forward",
    "block_transform_inverse",
    "block_transform_forward_reference",
    "block_transform_inverse_reference",
    "field_transform_forward",
    "field_transform_inverse",
    "iter_block_regions",
]

#: Ceiling on the per-axis transform size.  Block transforms are meant for
#: small blocks (ZFP uses 4); the matrix cache below is bounded, and a huge
#: ``n`` would silently allocate an ``n x n`` float64 matrix per lookup.
MAX_TRANSFORM_SIZE = 1024


@lru_cache(maxsize=32)
def dct_matrix(n: int) -> np.ndarray:
    """Orthonormal DCT-II matrix of size ``n x n`` (rows are basis vectors).

    The cache is bounded (32 distinct sizes) so adversarial block-size sweeps
    cannot grow it without limit, and ``n`` is validated against
    :data:`MAX_TRANSFORM_SIZE`.  The returned matrix is shared across callers
    and therefore read-only.
    """
    if n < 1:
        raise ValueError("n must be positive")
    if n > MAX_TRANSFORM_SIZE:
        raise ValueError(
            f"transform size {n} exceeds MAX_TRANSFORM_SIZE={MAX_TRANSFORM_SIZE}; "
            "block transforms are meant for small blocks (ZFP uses 4)"
        )
    k = np.arange(n).reshape(-1, 1)
    i = np.arange(n).reshape(1, -1)
    matrix = np.cos(np.pi * (2 * i + 1) * k / (2 * n))
    matrix[0, :] *= np.sqrt(1.0 / n)
    matrix[1:, :] *= np.sqrt(2.0 / n)
    matrix.setflags(write=False)
    return matrix


def _contract_axis(stack: np.ndarray, matrix: np.ndarray, axis: int) -> np.ndarray:
    """Apply ``out[..., j, ...] = sum_k matrix[j, k] * stack[..., k, ...]``.

    The sum over ``k`` runs in fixed ascending order as a sequence of
    elementwise multiply/adds.  Elementwise IEEE operations are exactly
    rounded, so the result is bit-identical whether ``stack`` holds one block
    or a million — the property the batched/reference parity contract relies
    on — and independent of the BLAS build.
    """
    moved = np.moveaxis(stack, axis, -1)
    acc = matrix[:, 0] * moved[..., 0:1]
    for k in range(1, matrix.shape[1]):
        acc = acc + matrix[:, k] * moved[..., k : k + 1]
    return np.moveaxis(acc, -1, axis)


def _apply_along_axes(
    block: np.ndarray, axes: Tuple[int, ...], inverse: bool
) -> np.ndarray:
    out = np.asarray(block, dtype=np.float64)
    for axis in axes:
        matrix = dct_matrix(out.shape[axis])
        operator = matrix.T if inverse else matrix
        out = _contract_axis(out, operator, axis)
    return out


def block_transform_forward(block: np.ndarray) -> np.ndarray:
    """Apply the separable orthonormal DCT along every axis of ``block``."""
    block = np.asarray(block, dtype=np.float64)
    return _apply_along_axes(block, tuple(range(block.ndim)), inverse=False)


def block_transform_inverse(coefficients: np.ndarray) -> np.ndarray:
    """Inverse of :func:`block_transform_forward`."""
    coefficients = np.asarray(coefficients, dtype=np.float64)
    return _apply_along_axes(coefficients, tuple(range(coefficients.ndim)), inverse=True)


#: The per-block scalar paths double as the parity references: the batched
#: field transforms below must reproduce them bit for bit.
block_transform_forward_reference = block_transform_forward
block_transform_inverse_reference = block_transform_inverse


def iter_block_regions(
    shape: Tuple[int, ...], block_size: int
) -> Iterator[Tuple[Tuple[slice, ...], Tuple[int, ...]]]:
    """Yield ``(region_slices, region_block_shape)`` corner regions of a field.

    Tiling a field with ``block_size``-wide blocks leaves, along each axis, a
    *full* span (a multiple of ``block_size``) and at most one truncated edge
    span.  The cartesian product of those spans partitions the field into at
    most ``2**ndim`` regions, inside each of which every block has the same
    shape — so each region transforms as one homogeneous stack.  Regions are
    yielded in C order of (full, edge) per axis; empty regions are skipped.
    """
    shape = tuple(int(s) for s in shape)
    block = int(block_size)
    spans: List[List[Tuple[slice, int]]] = []
    for size in shape:
        full = (size // block) * block
        axis_spans = []
        if full:
            axis_spans.append((slice(0, full), block))
        if size - full:
            axis_spans.append((slice(full, size), size - full))
        if not axis_spans:  # zero-extent axis: one empty span keeps rank
            axis_spans.append((slice(0, 0), 0))
        spans.append(axis_spans)
    counts = [len(axis_spans) for axis_spans in spans]
    for flat in range(int(np.prod(counts))):
        index = np.unravel_index(flat, counts)
        chosen = [spans[axis][int(i)] for axis, i in enumerate(index)]
        yield tuple(sl for sl, _ in chosen), tuple(b for _, b in chosen)


def _region_to_stack(region: np.ndarray, block_shape: Tuple[int, ...]) -> np.ndarray:
    """Reshape a region (every extent a multiple of its block extent) into a
    ``(nblocks, *block_shape)`` stack, blocks in C order of the block grid."""
    counts = tuple(s // b for s, b in zip(region.shape, block_shape))
    split_shape: List[int] = []
    for count, extent in zip(counts, block_shape):
        split_shape.extend((count, extent))
    # (c0, b0, c1, b1, ...) -> (c0, c1, ..., b0, b1, ...)
    ndim = len(block_shape)
    order = tuple(range(0, 2 * ndim, 2)) + tuple(range(1, 2 * ndim, 2))
    stacked = region.reshape(split_shape).transpose(order)
    return stacked.reshape((int(np.prod(counts)),) + block_shape)


def _stack_to_region(
    stack: np.ndarray, region_shape: Tuple[int, ...], block_shape: Tuple[int, ...]
) -> np.ndarray:
    """Inverse of :func:`_region_to_stack`."""
    counts = tuple(s // b for s, b in zip(region_shape, block_shape))
    ndim = len(block_shape)
    order = tuple(range(0, 2 * ndim, 2)) + tuple(range(1, 2 * ndim, 2))
    inverse_order = tuple(int(i) for i in np.argsort(order))
    interleaved = stack.reshape(counts + block_shape).transpose(inverse_order)
    return interleaved.reshape(region_shape)


def _field_transform(data: np.ndarray, block_size: int, inverse: bool) -> np.ndarray:
    data = np.asarray(data, dtype=np.float64)
    if block_size < 1:
        raise ValueError("block_size must be positive")
    out = np.empty(data.shape, dtype=np.float64)
    ndim = data.ndim
    for slices, block_shape in iter_block_regions(data.shape, block_size):
        region = data[slices]
        if region.size == 0:
            continue
        stack = _region_to_stack(region, block_shape)
        transformed = _apply_along_axes(
            stack, tuple(range(1, ndim + 1)), inverse=inverse
        )
        out[slices] = _stack_to_region(transformed, region.shape, block_shape)
    return out


def field_transform_forward(data: np.ndarray, block_size: int) -> np.ndarray:
    """Per-block forward DCT over a whole field, batched.

    Equivalent to applying :func:`block_transform_forward_reference` to every
    ``block_size``-wide tile of ``data`` (edge tiles truncated) — bit-identical
    to that loop, but the work runs as at most ``2**ndim`` stacked transforms.
    """
    return _field_transform(data, block_size, inverse=False)


def field_transform_inverse(coefficients: np.ndarray, block_size: int) -> np.ndarray:
    """Inverse of :func:`field_transform_forward` (same batching, same parity)."""
    return _field_transform(coefficients, block_size, inverse=True)
