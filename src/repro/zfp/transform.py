"""Orthonormal block transforms for the ZFP-style compressor.

The reference ZFP codec uses a custom lifted near-orthogonal transform on
4-wide blocks; this reproduction uses the orthonormal DCT-II, which has the same
decorrelating role, is exactly orthonormal (so coefficient-domain error bounds
translate to sample-domain bounds), and keeps the code short.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

import numpy as np

__all__ = ["dct_matrix", "block_transform_forward", "block_transform_inverse"]


@lru_cache(maxsize=None)
def dct_matrix(n: int) -> np.ndarray:
    """Orthonormal DCT-II matrix of size ``n x n`` (rows are basis vectors)."""
    if n < 1:
        raise ValueError("n must be positive")
    k = np.arange(n).reshape(-1, 1)
    i = np.arange(n).reshape(1, -1)
    matrix = np.cos(np.pi * (2 * i + 1) * k / (2 * n))
    matrix[0, :] *= np.sqrt(1.0 / n)
    matrix[1:, :] *= np.sqrt(2.0 / n)
    return matrix


def _apply_along_axes(block: np.ndarray, matrices, inverse: bool) -> np.ndarray:
    out = np.asarray(block, dtype=np.float64)
    for axis in range(out.ndim):
        matrix = matrices[axis]
        operator = matrix.T if inverse else matrix
        out = np.moveaxis(np.tensordot(operator, out, axes=(1, axis)), 0, axis)
    return out


def block_transform_forward(block: np.ndarray) -> np.ndarray:
    """Apply the separable orthonormal DCT along every axis of ``block``."""
    block = np.asarray(block, dtype=np.float64)
    matrices = [dct_matrix(size) for size in block.shape]
    return _apply_along_axes(block, matrices, inverse=False)


def block_transform_inverse(coefficients: np.ndarray) -> np.ndarray:
    """Inverse of :func:`block_transform_forward`."""
    coefficients = np.asarray(coefficients, dtype=np.float64)
    matrices = [dct_matrix(size) for size in coefficients.shape]
    return _apply_along_axes(coefficients, matrices, inverse=True)
