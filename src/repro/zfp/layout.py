"""Significance-ordered payload layout for the ZFP-style compressor.

A transformed block stores one coefficient per intra-block offset
``k = (k_1, ..., k_d)``; its *significance level* is the total frequency index
``L = k_1 + ... + k_d``.  Level 0 is the block mean, level 1 the first-order
gradients, and so on — energy in smooth fields concentrates in the low levels.
The grouped layout (``codec_params["layout"] == "grouped"``) therefore stores
the quantized integer stream reordered as::

    [all level-0 coefficients] [all level-1 coefficients] ... [highest level]

with blocks in C order inside each level and offsets in C order inside each
block, and entropy-codes every level as its own blob section.  Decoding a
*prefix* of the groups and treating the missing high-frequency coefficients as
zero yields a valid coarse reconstruction, and because the transform is
orthonormal the squared reconstruction error is exactly the energy of the
dropped coefficients — a computable estimate, monotonically shrinking as
groups are added.

The permutation depends only on ``(shape, block_size)``, so plans are cached
in a bounded, thread-safe LRU mirroring the SZ wavefront planner
(:mod:`repro.sz.decode`).  A plan also carries the per-element *block point
count* (the number of samples in the block containing each element), which the
codec uses for the per-block quantization step on ragged edge blocks.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = [
    "SignificancePlan",
    "significance_plan",
    "significance_plan_info",
    "clear_significance_plans",
    "groups_for_fraction",
]

#: Total elements (per-element permutation entries) kept across cached plans.
_PLAN_CACHE_MAX_ELEMENTS = 1 << 22


@dataclass(frozen=True)
class SignificancePlan:
    """Precomputed significance ordering for one ``(shape, block_size)``.

    ``perm`` maps grouped-stream position to flat C-order field index:
    ``grouped = field.ravel()[perm]`` and ``field.ravel()[perm[:n]] = prefix``
    scatters a decoded prefix back.  ``group_levels[g]`` is the significance
    level of group ``g`` (empty levels are skipped) and the group occupies
    ``perm[group_bounds[g]:group_bounds[g + 1]]``.
    """

    shape: Tuple[int, ...]
    block_size: int
    perm: np.ndarray
    group_bounds: np.ndarray
    group_levels: np.ndarray
    point_counts: np.ndarray

    @property
    def n_groups(self) -> int:
        return len(self.group_levels)

    @property
    def n_points(self) -> int:
        return int(self.perm.size)

    def group_slices(self) -> List[slice]:
        """Slices of the grouped stream, one per group, in significance order."""
        return [
            slice(int(self.group_bounds[g]), int(self.group_bounds[g + 1]))
            for g in range(self.n_groups)
        ]


def _build_plan(shape: Tuple[int, ...], block_size: int) -> SignificancePlan:
    ndim = len(shape)
    b = int(block_size)
    n = int(np.prod(shape)) if shape else 0

    # per-element block point count: product over axes of the containing
    # block's extent (edge blocks are truncated to the field boundary)
    point_counts = np.ones(shape, dtype=np.float64)
    for axis, size in enumerate(shape):
        idx = np.arange(size)
        extent = np.minimum(b, size - (idx // b) * b).astype(np.float64)
        view = [1] * ndim
        view[axis] = -1
        point_counts = point_counts * extent.reshape(view)
    point_counts = point_counts.ravel()
    point_counts.setflags(write=False)

    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return SignificancePlan(
            shape, b, empty, np.zeros(1, dtype=np.int64), empty, point_counts
        )

    coords = np.indices(shape).reshape(ndim, -1)
    offsets = coords % b
    level = offsets.sum(axis=0)
    grid_shape = tuple(-(-size // b) for size in shape)
    block_id = np.ravel_multi_index(tuple(coords // b), grid_shape)
    offset_rank = np.ravel_multi_index(tuple(offsets), (b,) * ndim)
    # primary key last: order by level, then block (C order), then offset
    perm = np.lexsort((offset_rank, block_id, level)).astype(np.int64)

    counts = np.bincount(level, minlength=int(level.max()) + 1)
    present = np.flatnonzero(counts)
    group_levels = present.astype(np.int64)
    group_bounds = np.concatenate([[0], np.cumsum(counts[present])]).astype(np.int64)

    perm.setflags(write=False)
    group_bounds.setflags(write=False)
    group_levels.setflags(write=False)
    return SignificancePlan(shape, b, perm, group_bounds, group_levels, point_counts)


_PLAN_CACHE: "OrderedDict[Tuple[Tuple[int, ...], int], SignificancePlan]" = OrderedDict()
_PLAN_LOCK = threading.Lock()
_PLAN_STATS = {"hits": 0, "misses": 0}


def significance_plan(shape: Sequence[int], block_size: int) -> SignificancePlan:
    """Return the (cached) significance plan for ``shape`` / ``block_size``."""
    if block_size < 1:
        raise ValueError("block_size must be positive")
    key = (tuple(int(s) for s in shape), int(block_size))
    with _PLAN_LOCK:
        plan = _PLAN_CACHE.get(key)
        if plan is not None:
            _PLAN_CACHE.move_to_end(key)
            _PLAN_STATS["hits"] += 1
            return plan
        _PLAN_STATS["misses"] += 1
    plan = _build_plan(key[0], key[1])
    with _PLAN_LOCK:
        _PLAN_CACHE[key] = plan
        total = sum(p.n_points for p in _PLAN_CACHE.values())
        while total > _PLAN_CACHE_MAX_ELEMENTS and len(_PLAN_CACHE) > 1:
            _, evicted = _PLAN_CACHE.popitem(last=False)
            total -= evicted.n_points
    return plan


def significance_plan_info() -> Dict[str, int]:
    """Cache statistics of the significance planner (for tests and benchmarks)."""
    with _PLAN_LOCK:
        return {
            "entries": len(_PLAN_CACHE),
            "points": sum(p.n_points for p in _PLAN_CACHE.values()),
            "hits": _PLAN_STATS["hits"],
            "misses": _PLAN_STATS["misses"],
        }


def clear_significance_plans() -> None:
    """Drop every cached plan and reset the hit/miss counters."""
    with _PLAN_LOCK:
        _PLAN_CACHE.clear()
        _PLAN_STATS["hits"] = 0
        _PLAN_STATS["misses"] = 0


def groups_for_fraction(group_bytes: Sequence[int], fraction: float) -> int:
    """How many significance groups a ``preview_fraction`` budget buys.

    Returns the largest ``G`` whose cumulative section bytes stay within
    ``fraction`` of the total entropy payload, clamped to at least one group
    (a preview always includes the block means) and to all groups when
    ``fraction >= 1``.
    """
    if not np.isfinite(fraction) or fraction <= 0.0:
        raise ValueError("preview fraction must be a positive finite number")
    n = len(group_bytes)
    if n == 0 or fraction >= 1.0:
        return n
    total = float(sum(group_bytes))
    if total <= 0.0:
        return n
    budget = fraction * total
    taken = 0.0
    groups = 0
    for size in group_bytes:
        taken += float(size)
        if taken > budget and groups >= 1:
            break
        groups += 1
    return max(1, min(groups, n))
