"""Baseline SZ-style compression pipeline.

Implements the three-stage prediction-based compressor described in paper
Section II-A, with the dual-quantization variant of Section III-D1 used as the
baseline throughout the evaluation:

1. prequantize the data onto the error-bound lattice,
2. predict every lattice code with a local predictor (Lorenzo by default) and
   form integer residuals,
3. entropy-code the residuals (canonical Huffman + a lossless byte backend)
   with verbatim storage of unpredictable outliers.

The residual encode/decode helpers are shared with the cross-field compressor
in :mod:`repro.core.compressor`, which only replaces stage 2.

When telemetry is enabled (``--profile`` / ``REPRO_TELEMETRY``) every stage is
timed separately — ``sz.quantize.prequantize_seconds`` /
``sz.quantize.dequantize_seconds``, ``sz.predict.<predictor>.encode_seconds`` /
``.decode_seconds`` and the ``sz.predict.points`` counter — so profiles show
the predict/quantize split next to the entropy stage; see
``docs/observability.md`` for the metric naming scheme.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.encoding.container import CompressedBlob
from repro.encoding.entropy import get_entropy_coder
from repro.encoding.lossless import get_backend
from repro.obs import recorder as _obs
from repro.encoding.rle import zigzag_decode, zigzag_encode
from repro.sz.errors import ErrorBound
from repro.sz.predictors import (
    InterpolationPredictor,
    RegressionPredictor,
    lorenzo_inverse,
    lorenzo_transform,
)
from repro.sz.quantizer import (
    QUANT_RADIUS_DEFAULT,
    dequantize,
    effective_error_bound,
    prequantize,
)
from repro.utils.validation import ensure_array, ensure_in

__all__ = [
    "CompressionResult",
    "SZCompressor",
    "encode_integer_stream",
    "decode_integer_stream",
]

_PREDICTORS = ("lorenzo", "regression", "interpolation")


# --------------------------------------------------------------------------- #
# result object
# --------------------------------------------------------------------------- #
@dataclass
class CompressionResult:
    """Outcome of one compression call: payload plus size/timing accounting."""

    payload: bytes
    original_nbytes: int
    compressed_nbytes: int
    abs_error_bound: float
    element_count: int
    element_size: int
    section_sizes: Dict[str, int] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)
    metadata: Dict = field(default_factory=dict)

    @property
    def ratio(self) -> float:
        """Compression ratio: original bytes / compressed bytes."""
        if self.compressed_nbytes == 0:
            return float("inf")
        return self.original_nbytes / self.compressed_nbytes

    @property
    def bit_rate(self) -> float:
        """Average compressed bits per data point."""
        if self.element_count == 0:
            return 0.0
        return 8.0 * self.compressed_nbytes / self.element_count

    def summary(self) -> str:
        """One-line human readable summary."""
        return (
            f"{self.original_nbytes / 1e6:.2f} MB -> {self.compressed_nbytes / 1e6:.3f} MB "
            f"(ratio {self.ratio:.2f}x, {self.bit_rate:.3f} bits/value, eb={self.abs_error_bound:.3g})"
        )


# --------------------------------------------------------------------------- #
# shared integer-residual entropy stage
# --------------------------------------------------------------------------- #
def encode_integer_stream(
    residuals: np.ndarray,
    entropy: str,
    backend_name: str,
    radius: int = QUANT_RADIUS_DEFAULT,
    prefix: str = "residual",
) -> Tuple[Dict[str, bytes], Dict]:
    """Entropy-code an integer residual array into named byte sections.

    Residuals with magnitude ``>= radius`` are replaced by an escape symbol and
    stored verbatim in side sections (SZ's "unpredictable data").  The symbol
    stream itself goes through the :mod:`repro.encoding.entropy` registry —
    ``entropy`` names any registered coder, and a coder that rejects the
    stream (Huffman on a huge alphabet) is swapped for its declared fallback.
    Returns the sections plus the metadata the decoder needs (entropy mode
    actually used, escape symbol, element count).
    """
    coder = get_entropy_coder(entropy)
    backend = get_backend(backend_name)
    residuals = np.asarray(residuals, dtype=np.int64).ravel()
    n = residuals.size

    outlier_mask = np.abs(residuals) >= radius
    outlier_positions = np.nonzero(outlier_mask)[0].astype(np.int64)
    outlier_values = residuals[outlier_mask]

    escape_symbol = 2 * radius
    symbols = zigzag_encode(np.where(outlier_mask, 0, residuals))
    symbols[outlier_mask] = escape_symbol

    if not coder.supports(symbols) and coder.fallback is not None:
        coder = get_entropy_coder(coder.fallback)

    recorder = _obs.get_recorder()
    encode_start = time.perf_counter()
    coder_sections, coder_meta = coder.encode(symbols, backend)
    if recorder.enabled:
        encode_seconds = time.perf_counter() - encode_start
        encoded_bytes = sum(len(value) for value in coder_sections.values())
        recorder.observe(f"entropy.{coder.name}.encode_seconds", encode_seconds)
        recorder.count(f"entropy.{coder.name}.symbols_in", int(symbols.size))
        recorder.count(f"entropy.{coder.name}.bytes_out", encoded_bytes)
    sections: Dict[str, bytes] = {
        f"{prefix}.{key}": value for key, value in coder_sections.items()
    }

    if outlier_positions.size:
        sections[f"{prefix}.outlier_positions"] = backend.compress(outlier_positions.tobytes())
        sections[f"{prefix}.outlier_values"] = backend.compress(outlier_values.tobytes())

    meta = {
        "entropy": coder.name,
        "backend": backend.name,
        "radius": int(radius),
        "escape_symbol": int(escape_symbol),
        "count": int(n),
        "outliers": int(outlier_positions.size),
        "prefix": prefix,
    }
    meta.update(coder_meta)
    return sections, meta


def decode_integer_stream(
    sections: Dict[str, bytes], meta: Dict, scheduler=None
) -> np.ndarray:
    """Inverse of :func:`encode_integer_stream`: reconstruct the residual array (1D).

    ``scheduler`` is forwarded to the entropy coder so coders with an
    internally parallel decode (checkpointed Huffman) can fan sub-blocks out;
    it is optional and purely a performance knob.
    """
    backend = get_backend(meta["backend"])
    prefix = meta.get("prefix", "residual")
    coder = get_entropy_coder(meta["entropy"])
    n = int(meta["count"])
    escape_symbol = int(meta["escape_symbol"])

    # hand the coder exactly the sections it produced: the outlier side
    # sections share the prefix but belong to this function, not the coder
    marker = f"{prefix}."
    own = {f"{prefix}.outlier_positions", f"{prefix}.outlier_values"}
    coder_sections = {
        key[len(marker):]: value
        for key, value in sections.items()
        if key.startswith(marker) and key not in own
    }
    recorder = _obs.get_recorder()
    decode_start = time.perf_counter()
    symbols = coder.decode(coder_sections, meta, backend, scheduler=scheduler)
    if recorder.enabled:
        decode_seconds = time.perf_counter() - decode_start
        recorder.observe(f"entropy.{coder.name}.decode_seconds", decode_seconds)
        recorder.count(f"entropy.{coder.name}.symbols_out", int(symbols.size))
        recorder.count(
            f"entropy.{coder.name}.bytes_in",
            sum(len(value) for value in coder_sections.values()),
        )
    if symbols.size != n:
        raise ValueError(f"decoded {symbols.size} symbols, expected {n}")

    outlier_mask = symbols == escape_symbol
    residuals = np.empty(n, dtype=np.int64)
    residuals[~outlier_mask] = zigzag_decode(symbols[~outlier_mask])
    if int(meta.get("outliers", 0)):
        positions = np.frombuffer(
            backend.decompress(sections[f"{prefix}.outlier_positions"]), dtype=np.int64
        )
        values = np.frombuffer(
            backend.decompress(sections[f"{prefix}.outlier_values"]), dtype=np.int64
        )
        residuals[positions] = values
    elif np.any(outlier_mask):
        raise ValueError("escape symbols present but no outlier sections stored")
    return residuals


# --------------------------------------------------------------------------- #
# the compressor
# --------------------------------------------------------------------------- #
class SZCompressor:
    """SZ3-style error-bounded lossy compressor (the paper's baseline).

    Parameters
    ----------
    error_bound:
        :class:`~repro.sz.errors.ErrorBound`; the paper uses value-range
        relative bounds between 5e-3 and 2e-4.
    predictor:
        ``"lorenzo"`` (default, the baseline configuration in the paper),
        ``"regression"`` or ``"interpolation"``.
    entropy:
        Any :mod:`repro.encoding.entropy` registry name — ``"huffman"``
        (default), ``"zlib"`` or ``"raw"`` out of the box.
    backend:
        Lossless byte backend applied after entropy coding (``"zlib"``/``"raw"``).
    quant_radius:
        Residuals at or above this magnitude are stored verbatim.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.sz import SZCompressor, ErrorBound
    >>> data = np.random.default_rng(0).normal(size=(64, 64)).astype(np.float32)
    >>> comp = SZCompressor(error_bound=ErrorBound.relative(1e-3))
    >>> result = comp.compress(data)
    >>> recon = comp.decompress(result.payload)
    >>> bool(np.max(np.abs(recon - data)) <= result.abs_error_bound)
    True
    """

    format_name = "sz-baseline"

    def __init__(
        self,
        error_bound: ErrorBound = ErrorBound.relative(1e-3),
        predictor: str = "lorenzo",
        entropy: str = "huffman",
        backend: str = "zlib",
        quant_radius: int = QUANT_RADIUS_DEFAULT,
        regression_block_size: int = 6,
    ) -> None:
        if not isinstance(error_bound, ErrorBound):
            raise TypeError("error_bound must be an ErrorBound instance")
        ensure_in(predictor, _PREDICTORS, "predictor")
        get_entropy_coder(entropy)  # unknown names raise, listing the registry
        self.error_bound = error_bound
        self.predictor = predictor
        self.entropy = entropy
        self.backend = backend
        self.quant_radius = int(quant_radius)
        self.regression_block_size = int(regression_block_size)

    # ------------------------------------------------------------------ #
    # compression
    # ------------------------------------------------------------------ #
    def compress(self, data: np.ndarray, field_name: str = "") -> CompressionResult:
        """Compress ``data`` and return a :class:`CompressionResult`."""
        data = ensure_array(data, "data")
        if data.ndim not in (1, 2, 3):
            raise ValueError("SZCompressor supports 1D, 2D and 3D data")
        timings: Dict[str, float] = {}
        recorder = _obs.get_recorder()

        t0 = time.perf_counter()
        abs_eb = self.error_bound.resolve(data)
        codes = prequantize(data, effective_error_bound(abs_eb))
        timings["prequantize"] = time.perf_counter() - t0
        if recorder.enabled:
            recorder.observe("sz.quantize.prequantize_seconds", timings["prequantize"])

        t0 = time.perf_counter()
        extra_sections: Dict[str, bytes] = {}
        extra_meta: Dict = {}
        if self.predictor == "lorenzo":
            residuals = lorenzo_transform(codes)
        elif self.predictor == "interpolation":
            residuals = InterpolationPredictor().encode(codes)
        else:  # regression
            reg = RegressionPredictor(self.regression_block_size)
            residuals, coefficients = reg.encode(codes)
            backend = get_backend(self.backend)
            extra_sections["regression.coefficients"] = backend.compress(
                coefficients.coefficients.astype(np.float32).tobytes()
            )
            extra_meta["regression"] = {
                "block_size": self.regression_block_size,
                "n_blocks": int(coefficients.coefficients.shape[0]),
            }
        timings["predict"] = time.perf_counter() - t0
        if recorder.enabled:
            recorder.observe(
                f"sz.predict.{self.predictor}.encode_seconds", timings["predict"]
            )
            recorder.count("sz.predict.points", int(data.size))

        t0 = time.perf_counter()
        sections, stream_meta = encode_integer_stream(
            residuals, self.entropy, self.backend, self.quant_radius
        )
        sections.update(extra_sections)
        timings["encode"] = time.perf_counter() - t0

        metadata = {
            "format": self.format_name,
            "field_name": field_name,
            "shape": list(data.shape),
            "dtype": str(data.dtype),
            "error_bound": self.error_bound.to_dict(),
            "abs_error_bound": abs_eb,
            "predictor": self.predictor,
            "stream": stream_meta,
        }
        metadata.update(extra_meta)

        blob = CompressedBlob(metadata=metadata, sections=sections)
        payload = blob.to_bytes()
        return CompressionResult(
            payload=payload,
            original_nbytes=int(data.nbytes),
            compressed_nbytes=len(payload),
            abs_error_bound=abs_eb,
            element_count=int(data.size),
            element_size=int(data.dtype.itemsize),
            section_sizes=blob.section_sizes(),
            timings=timings,
            metadata=metadata,
        )

    # ------------------------------------------------------------------ #
    # decompression
    # ------------------------------------------------------------------ #
    def decompress(self, payload: bytes, scheduler=None) -> np.ndarray:
        """Decompress a payload produced by :meth:`compress`.

        ``scheduler`` (optional) lets the entropy stage fan its checkpointed
        sub-blocks out across a :class:`~repro.parallel.engine.ChunkScheduler`.
        """
        blob = CompressedBlob.from_bytes(payload)
        metadata = blob.metadata
        if metadata.get("format") != self.format_name:
            raise ValueError(
                f"payload format {metadata.get('format')!r} is not {self.format_name!r}"
            )
        shape = tuple(metadata["shape"])
        dtype = np.dtype(metadata["dtype"])
        abs_eb = float(metadata["abs_error_bound"])
        predictor = metadata["predictor"]

        residuals = decode_integer_stream(
            blob.sections, metadata["stream"], scheduler=scheduler
        ).reshape(shape)

        recorder = _obs.get_recorder()
        predict_start = time.perf_counter()
        if predictor == "lorenzo":
            codes = lorenzo_inverse(residuals)
        elif predictor == "interpolation":
            codes = InterpolationPredictor().decode(residuals)
        elif predictor == "regression":
            from repro.sz.predictors import RegressionCoefficients

            reg_meta = metadata["regression"]
            backend = get_backend(metadata["stream"]["backend"])
            coeff_bytes = backend.decompress(blob.get_section("regression.coefficients"))
            ndim = len(shape)
            coeffs = np.frombuffer(coeff_bytes, dtype=np.float32).reshape(
                int(reg_meta["n_blocks"]), ndim + 1
            )
            reg = RegressionPredictor(int(reg_meta["block_size"]))
            codes = reg.decode(
                residuals,
                RegressionCoefficients(
                    tuple(int(reg_meta["block_size"]) for _ in range(ndim)), coeffs
                ),
            )
        else:  # pragma: no cover - guarded at construction
            raise ValueError(f"unknown predictor {predictor!r}")
        if recorder.enabled:
            recorder.observe(
                f"sz.predict.{predictor}.decode_seconds",
                time.perf_counter() - predict_start,
            )
            recorder.count("sz.predict.points", int(residuals.size))

        dequantize_start = time.perf_counter()
        reconstructed = dequantize(codes, effective_error_bound(abs_eb), dtype=dtype)
        if recorder.enabled:
            recorder.observe(
                "sz.quantize.dequantize_seconds", time.perf_counter() - dequantize_start
            )
        return reconstructed
