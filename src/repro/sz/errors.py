"""Error-bound specification and resolution.

Error-bounded lossy compressors let the user pick an error *type* and a bound
value (paper Section II-A).  The two modes used throughout the paper are:

- ``abs``: the absolute point-wise error may not exceed ``value``.
- ``rel`` (value-range relative): the point-wise error may not exceed
  ``value * (max(data) - min(data))``.  All error bounds quoted in the paper
  (5e-3 … 2e-4) are of this kind.

:class:`ErrorBound` resolves either mode to the absolute bound actually used by
the quantizer for a given array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.utils.validation import ensure_in, ensure_positive

__all__ = ["ErrorBound"]

_MODES = ("abs", "rel")


@dataclass(frozen=True)
class ErrorBound:
    """User-facing error bound: a mode (``"abs"`` / ``"rel"``) and a value."""

    mode: str
    value: float

    def __post_init__(self) -> None:
        ensure_in(self.mode, _MODES, "error bound mode")
        ensure_positive(self.value, "error bound value")

    @classmethod
    def absolute(cls, value: float) -> "ErrorBound":
        """Absolute error bound."""
        return cls("abs", float(value))

    @classmethod
    def relative(cls, value: float) -> "ErrorBound":
        """Value-range-relative error bound (the mode used in the paper)."""
        return cls("rel", float(value))

    def resolve(self, data: np.ndarray) -> float:
        """Return the absolute error bound for ``data``.

        For relative bounds on a constant array (zero value range) the resolved
        absolute bound falls back to the relative value itself, so the
        quantizer never divides by zero.
        """
        if self.mode == "abs":
            return float(self.value)
        data = np.asarray(data)
        value_range = float(np.max(data) - np.min(data))
        if value_range == 0.0:
            return float(self.value)
        return float(self.value * value_range)

    def to_dict(self) -> Dict:
        """JSON-serialisable representation (stored in the container metadata)."""
        return {"mode": self.mode, "value": self.value}

    @classmethod
    def from_dict(cls, payload: Dict) -> "ErrorBound":
        """Inverse of :meth:`to_dict`."""
        return cls(payload["mode"], float(payload["value"]))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mode}:{self.value:g}"
