"""Local-field predictors used by prediction-based lossy compression.

All predictors operate in the *prequantized integer domain* (dual quantization,
see :mod:`repro.sz.quantizer`): the input is an ``int64`` lattice-code array and
the residuals they produce are coded losslessly, so compressor and decompressor
see bit-identical values and the error bound is controlled entirely by the
prequantization step.

Predictors implemented:

- **Lorenzo** (the baseline the paper enhances): predicts each point from the
  inclusion–exclusion sum of its already-decoded "lower-left" neighbours.  On
  integers the Lorenzo residual operator is exactly the composition of
  first-order backward differences along every axis, whose inverse is a chain
  of cumulative sums — giving a fully vectorised decoder.
- **Regression**: SZ-style block-wise linear (hyperplane) fit.  Every block of
  a given shape shares one design matrix, so the fit is a *batched* normal-
  equation solve — one tensor contraction over all same-shaped blocks at once
  instead of a per-block Python loop.  The per-block scalar paths are kept as
  :meth:`RegressionPredictor.encode_reference` /
  :meth:`RegressionPredictor.decode_reference`; both paths share the exact
  fixed-order float64 arithmetic, so their outputs are bit-identical — the
  contract enforced by ``tests/test_sz_parity.py``.
- **Interpolation**: SZ3-style multi-level linear interpolation along each
  dimension; prediction only ever uses points reconstructed in earlier passes.
  The per-shape pass tables (flat index tables, like the wavefront decoder's
  plans) are cached at module level so the thousands of same-shaped chunks of
  an archive build them once.

See ``docs/architecture.md`` ("The wavefront batch decoder") for how the
cached index tables and the parity-testing contract fit together.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.slicing import iter_blocks
from repro.utils.validation import ensure_array, ensure_ndim

__all__ = [
    "lorenzo_predict",
    "lorenzo_transform",
    "lorenzo_inverse",
    "RegressionPredictor",
    "InterpolationPredictor",
]


# --------------------------------------------------------------------------- #
# Lorenzo predictor
# --------------------------------------------------------------------------- #
def _shifted_view(padded: np.ndarray, offsets: Sequence[int], shape: Tuple[int, ...]) -> np.ndarray:
    """View of the zero-padded array shifted by ``offsets`` (1 = previous index)."""
    index = tuple(
        slice(1 - off, 1 - off + size) for off, size in zip(offsets, shape)
    )
    return padded[index]


def lorenzo_predict(codes: np.ndarray) -> np.ndarray:
    """Vectorised Lorenzo prediction of every point from its preceding neighbours.

    For 2D data: ``pred(i, j) = q(i-1, j) + q(i, j-1) - q(i-1, j-1)``; for 3D the
    standard 7-term inclusion–exclusion formula; for 1D simply the previous
    value.  Out-of-range neighbours count as zero.  Because the input is the
    full prequantized array, this is usable during compression (dual
    quantization removes the read-after-write dependency).
    """
    codes = np.asarray(codes)
    if not np.issubdtype(codes.dtype, np.integer):
        raise TypeError("lorenzo_predict operates on integer lattice codes")
    ensure_ndim(codes, (1, 2, 3), "codes")
    shape = codes.shape
    padded = np.zeros(tuple(s + 1 for s in shape), dtype=np.int64)
    padded[tuple(slice(1, None) for _ in shape)] = codes

    pred = np.zeros(shape, dtype=np.int64)
    ndim = codes.ndim
    # inclusion-exclusion over all non-empty subsets of axes
    for mask in range(1, 1 << ndim):
        offsets = [(mask >> d) & 1 for d in range(ndim)]
        sign = -1 if (sum(offsets) % 2 == 0) else 1
        pred += sign * _shifted_view(padded, offsets, shape)
    return pred


def lorenzo_transform(codes: np.ndarray) -> np.ndarray:
    """Residuals of the Lorenzo predictor: ``q - lorenzo_predict(q)``.

    Equivalent to applying the first-order backward-difference operator along
    every axis (with zero boundary), which is what makes the inverse a chain of
    cumulative sums.
    """
    codes = np.asarray(codes, dtype=np.int64)
    return codes - lorenzo_predict(codes)


def lorenzo_inverse(residuals: np.ndarray) -> np.ndarray:
    """Exact inverse of :func:`lorenzo_transform` (cumulative sums along every axis)."""
    residuals = np.asarray(residuals)
    if not np.issubdtype(residuals.dtype, np.integer):
        raise TypeError("lorenzo_inverse operates on integer residuals")
    out = residuals.astype(np.int64, copy=True)
    for axis in range(out.ndim):
        np.cumsum(out, axis=axis, out=out)
    return out


# --------------------------------------------------------------------------- #
# Regression predictor
# --------------------------------------------------------------------------- #
@dataclass
class RegressionCoefficients:
    """Per-block hyperplane coefficients produced by :class:`RegressionPredictor`."""

    block_shape: Tuple[int, ...]
    coefficients: np.ndarray  # (n_blocks, ndim + 1) float32

    def nbytes(self) -> int:
        """Bytes needed to store the coefficients in the compressed stream."""
        return int(self.coefficients.astype(np.float32).nbytes)


class _DesignInfo:
    """Design matrix, coordinate grids and normal-equation inverse for one block shape.

    ``active_cols`` lists the coefficient-vector entries the fit actually
    solves for: the intercept plus one slope per axis of extent > 1 (an axis of
    extent one has an all-zero coordinate column, which would make the normal
    matrix singular; its slope is pinned to zero instead, matching the
    minimum-norm least-squares solution).
    """

    def __init__(self, block_shape: Tuple[int, ...]) -> None:
        self.block_shape = tuple(int(s) for s in block_shape)
        ndim = len(self.block_shape)
        elems = int(np.prod(self.block_shape))
        mesh = np.meshgrid(
            *[np.arange(s, dtype=np.float64) for s in self.block_shape], indexing="ij"
        )
        self.grids: List[np.ndarray] = [g.ravel() for g in mesh]
        self.active_cols: Tuple[int, ...] = (0,) + tuple(
            d + 1 for d in range(ndim) if self.block_shape[d] > 1
        )
        columns = [np.ones(elems, dtype=np.float64)]
        columns.extend(self.grids[c - 1] for c in self.active_cols[1:])
        self.design = np.stack(columns, axis=1)  # (elems, k)
        normal = self.design.T @ self.design
        self.inv_normal = np.linalg.inv(normal)  # (k, k)


class _BlockGroup:
    """All equal-shaped blocks of one decomposition, with flat gather tables."""

    def __init__(self, block_shape: Tuple[int, ...], positions: np.ndarray, gather: np.ndarray) -> None:
        self.block_shape = block_shape
        self.positions = positions  # (nb,) indices into the C-order block list
        self.gather = gather  # (nb, elems) flat indices into the full array


_DESIGN_CACHE: "OrderedDict[Tuple[int, ...], _DesignInfo]" = OrderedDict()
_GROUP_CACHE: "OrderedDict[Tuple, List[_BlockGroup]]" = OrderedDict()
_PREDICTOR_CACHE_LOCK = threading.Lock()
_DESIGN_CACHE_MAX = 128
_GROUP_CACHE_MAX_ELEMENTS = 1 << 22  # total gather-table entries kept


def _design_info(block_shape: Tuple[int, ...]) -> _DesignInfo:
    key = tuple(int(s) for s in block_shape)
    with _PREDICTOR_CACHE_LOCK:
        info = _DESIGN_CACHE.get(key)
        if info is not None:
            _DESIGN_CACHE.move_to_end(key)
            return info
    info = _DesignInfo(key)
    with _PREDICTOR_CACHE_LOCK:
        _DESIGN_CACHE[key] = info
        while len(_DESIGN_CACHE) > _DESIGN_CACHE_MAX:
            _DESIGN_CACHE.popitem(last=False)
    return info


def _block_groups(shape: Tuple[int, ...], block_shape: Tuple[int, ...]) -> List[_BlockGroup]:
    """Group the C-order block decomposition of ``shape`` by block shape.

    Every group carries an ``(n_blocks, block_elems)`` table of flat indices, so
    extracting (or scattering back) all same-shaped blocks is one fancy-indexing
    operation.  Tables are cached per ``(shape, block_shape)``, mirroring the
    wavefront decoder's plan cache.
    """
    key = (tuple(shape), tuple(block_shape))
    with _PREDICTOR_CACHE_LOCK:
        groups = _GROUP_CACHE.get(key)
        if groups is not None:
            _GROUP_CACHE.move_to_end(key)
            return groups
    strides = [int(np.prod(shape[d + 1 :])) for d in range(len(shape))]
    by_shape: Dict[Tuple[int, ...], Tuple[List[int], List[int]]] = {}
    for position, block_slices in enumerate(iter_blocks(shape, block_shape)):
        bshape = tuple(s.stop - s.start for s in block_slices)
        base = sum(s.start * stride for s, stride in zip(block_slices, strides))
        positions, bases = by_shape.setdefault(bshape, ([], []))
        positions.append(position)
        bases.append(base)
    groups = []
    for bshape, (positions, bases) in by_shape.items():
        coords = np.indices(bshape).reshape(len(bshape), -1)
        within = sum(coords[d] * strides[d] for d in range(len(bshape)))
        gather = np.asarray(bases, dtype=np.int64)[:, None] + np.asarray(within, dtype=np.int64)[None, :]
        groups.append(_BlockGroup(bshape, np.asarray(positions, dtype=np.int64), gather))
    with _PREDICTOR_CACHE_LOCK:
        _GROUP_CACHE[key] = groups
        total = sum(g.gather.size for gs in _GROUP_CACHE.values() for g in gs)
        while total > _GROUP_CACHE_MAX_ELEMENTS and len(_GROUP_CACHE) > 1:
            _, evicted = _GROUP_CACHE.popitem(last=False)
            total -= sum(g.gather.size for g in evicted)
    return groups


def _fit_batch(info: _DesignInfo, y: np.ndarray) -> np.ndarray:
    """Normal-equation hyperplane fit of ``y`` (``(n_blocks, elems)`` float64).

    Returns float32 coefficient rows padded to ``ndim + 1`` entries.  The
    arithmetic — per-column products summed along the last axis, then the
    inverse applied row by row in fixed order — is elementwise over the block
    batch, so fitting ``n`` blocks at once is bit-identical to fitting each
    alone (:func:`_fit_single`).
    """
    k = len(info.active_cols)
    dty = np.empty((y.shape[0], k), dtype=np.float64)
    for c in range(k):
        dty[:, c] = (y * info.design[:, c]).sum(axis=-1)
    coeffs = np.zeros((y.shape[0], k), dtype=np.float64)
    for j in range(k):
        coeffs += dty[:, j : j + 1] * info.inv_normal[j][None, :]
    full = np.zeros((y.shape[0], len(info.block_shape) + 1), dtype=np.float32)
    full[:, list(info.active_cols)] = coeffs.astype(np.float32)
    return full


def _fit_single(info: _DesignInfo, y: np.ndarray) -> np.ndarray:
    """Scalar-path fit of one raveled float64 block; mirrors :func:`_fit_batch`."""
    k = len(info.active_cols)
    dty = np.empty(k, dtype=np.float64)
    for c in range(k):
        dty[c] = (y * info.design[:, c]).sum()
    coeffs = np.zeros(k, dtype=np.float64)
    for j in range(k):
        coeffs += dty[j] * info.inv_normal[j]
    full = np.zeros(len(info.block_shape) + 1, dtype=np.float32)
    full[list(info.active_cols)] = coeffs.astype(np.float32)
    return full


def _predict_batch(info: _DesignInfo, coeffs: np.ndarray) -> np.ndarray:
    """Rounded hyperplane predictions for coefficient rows ``(n_blocks, ndim+1)``.

    Evaluated as ``c0 + c1*x0 + c2*x1 + ...`` in fixed axis order — elementwise
    float64 operations, so the batched and single-block paths agree bitwise.
    """
    c = np.asarray(coeffs, dtype=np.float64)
    elems = info.grids[0].size if info.grids else int(np.prod(info.block_shape))
    pred = np.broadcast_to(c[:, 0][:, None], (c.shape[0], elems)).copy()
    for d in range(len(info.block_shape)):
        pred += c[:, d + 1][:, None] * info.grids[d][None, :]
    return np.rint(pred).astype(np.int64)


def _predict_single(info: _DesignInfo, coeffs: np.ndarray) -> np.ndarray:
    """Scalar-path counterpart of :func:`_predict_batch` for one block."""
    c = np.asarray(coeffs, dtype=np.float64)
    pred = np.full(info.grids[0].size, c[0], dtype=np.float64)
    for d in range(len(info.block_shape)):
        pred += c[d + 1] * info.grids[d]
    return np.rint(pred).astype(np.int64)


class RegressionPredictor:
    """SZ-style block-wise linear regression predictor.

    Each ``block_size**ndim`` block is approximated by a hyperplane
    ``a0 + sum_d a_d * x_d``; coefficients are stored in the stream, so
    decoding is independent of neighbouring values.  All same-shaped blocks
    share one design matrix, so :meth:`encode`/:meth:`decode` run the fit and
    the prediction as batched tensor operations over the whole block
    population at once; :meth:`encode_reference`/:meth:`decode_reference` keep
    the per-block scalar loop for the parity suite.
    """

    def __init__(self, block_size: int = 6) -> None:
        if block_size < 2:
            raise ValueError("block_size must be at least 2")
        self.block_size = int(block_size)

    def _block_shape(self, ndim: int) -> Tuple[int, ...]:
        return tuple(self.block_size for _ in range(ndim))

    # ------------------------------ encode ----------------------------- #
    def encode(self, codes: np.ndarray) -> Tuple[np.ndarray, RegressionCoefficients]:
        """Fit block hyperplanes (batched) and return ``(residuals, coefficients)``."""
        codes = np.ascontiguousarray(np.asarray(codes, dtype=np.int64))
        ensure_ndim(codes, (1, 2, 3), "codes")
        block_shape = self._block_shape(codes.ndim)
        groups = _block_groups(codes.shape, block_shape)
        n_blocks = sum(len(g.positions) for g in groups)
        flat = codes.reshape(-1)
        residual_flat = np.empty_like(flat)
        coeff_arr = np.zeros((n_blocks, codes.ndim + 1), dtype=np.float32)
        for group in groups:
            info = _design_info(group.block_shape)
            y_int = flat[group.gather]
            coeffs = _fit_batch(info, y_int.astype(np.float64))
            coeff_arr[group.positions] = coeffs
            residual_flat[group.gather] = y_int - _predict_batch(info, coeffs)
        return residual_flat.reshape(codes.shape), RegressionCoefficients(block_shape, coeff_arr)

    def encode_reference(self, codes: np.ndarray) -> Tuple[np.ndarray, RegressionCoefficients]:
        """Per-block scalar fit; bit-identical to :meth:`encode` by construction."""
        codes = np.asarray(codes, dtype=np.int64)
        ensure_ndim(codes, (1, 2, 3), "codes")
        block_shape = self._block_shape(codes.ndim)
        residuals = np.empty_like(codes)
        all_coeffs: List[np.ndarray] = []
        for block_slices in iter_blocks(codes.shape, block_shape):
            block = codes[block_slices]
            info = _design_info(block.shape)
            y = np.ascontiguousarray(block).reshape(-1)
            coeffs = _fit_single(info, y.astype(np.float64))
            pred = _predict_single(info, coeffs).reshape(block.shape)
            residuals[block_slices] = block - pred
            all_coeffs.append(coeffs)
        coeff_arr = np.stack(all_coeffs, axis=0)
        return residuals, RegressionCoefficients(block_shape, coeff_arr)

    # ------------------------------ decode ----------------------------- #
    @staticmethod
    def _check_rank(residuals: np.ndarray, coefficients: RegressionCoefficients) -> None:
        if len(coefficients.block_shape) != residuals.ndim:
            raise ValueError(
                f"coefficient block shape {coefficients.block_shape} does not match "
                f"{residuals.ndim}D residuals"
            )

    def _check_coefficients(
        self, residuals: np.ndarray, coefficients: RegressionCoefficients, n_blocks: int
    ) -> None:
        self._check_rank(residuals, coefficients)
        if n_blocks != coefficients.coefficients.shape[0]:
            raise ValueError(
                f"coefficient count {coefficients.coefficients.shape[0]} does not match "
                f"the {n_blocks}-block decomposition of shape {residuals.shape}"
            )

    def decode(self, residuals: np.ndarray, coefficients: RegressionCoefficients) -> np.ndarray:
        """Reconstruct the codes from residuals and stored coefficients (batched)."""
        residuals = np.ascontiguousarray(np.asarray(residuals, dtype=np.int64))
        ensure_ndim(residuals, (1, 2, 3), "residuals")
        self._check_rank(residuals, coefficients)
        groups = _block_groups(residuals.shape, coefficients.block_shape)
        n_blocks = sum(len(g.positions) for g in groups)
        self._check_coefficients(residuals, coefficients, n_blocks)
        res_flat = residuals.reshape(-1)
        out_flat = np.empty_like(res_flat)
        for group in groups:
            info = _design_info(group.block_shape)
            coeffs = coefficients.coefficients[group.positions]
            out_flat[group.gather] = _predict_batch(info, coeffs) + res_flat[group.gather]
        return out_flat.reshape(residuals.shape)

    def decode_reference(
        self, residuals: np.ndarray, coefficients: RegressionCoefficients
    ) -> np.ndarray:
        """Per-block scalar decode; bit-identical to :meth:`decode` by construction."""
        residuals = np.asarray(residuals, dtype=np.int64)
        ensure_ndim(residuals, (1, 2, 3), "residuals")
        self._check_rank(residuals, coefficients)
        codes = np.empty_like(residuals)
        blocks = list(iter_blocks(residuals.shape, coefficients.block_shape))
        self._check_coefficients(residuals, coefficients, len(blocks))
        for block_slices, coeffs in zip(blocks, coefficients.coefficients):
            block_shape = tuple(s.stop - s.start for s in block_slices)
            info = _design_info(block_shape)
            pred = _predict_single(info, coeffs).reshape(block_shape)
            codes[block_slices] = pred + residuals[block_slices]
        return codes


# --------------------------------------------------------------------------- #
# Interpolation predictor
# --------------------------------------------------------------------------- #
_INTERP_PASS_CACHE: "OrderedDict[Tuple[int, ...], List[Tuple[np.ndarray, np.ndarray, np.ndarray]]]" = OrderedDict()
_INTERP_CACHE_MAX = 64


class InterpolationPredictor:
    """SZ3-style multi-level linear interpolation predictor.

    Points are visited level by level (stride halving each level) and dimension
    by dimension within a level; each point is predicted as the rounded average
    of its two neighbours at ``±stride`` along the current dimension (or copied
    from the left neighbour at the boundary).  Prediction only ever uses points
    reconstructed in earlier passes, so the decoder can replay the identical
    traversal.  The pass tables for a shape are cached at module level and
    shared across instances (the compressor builds a fresh predictor per call).
    """

    # -------------------------- traversal ----------------------------- #
    def _passes(self, shape: Tuple[int, ...]) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Return the (cached) interpolation passes for ``shape``.

        Each pass is ``(targets, left, right)`` where the entries are arrays of
        flat indices; ``right`` entries equal to ``-1`` mean "no right
        neighbour" (boundary), in which case prediction copies the left value.
        """
        with _PREDICTOR_CACHE_LOCK:
            cached = _INTERP_PASS_CACHE.get(shape)
            if cached is not None:
                _INTERP_PASS_CACHE.move_to_end(shape)
                return cached
        passes = self._build_passes(shape)
        with _PREDICTOR_CACHE_LOCK:
            _INTERP_PASS_CACHE[shape] = passes
            while len(_INTERP_PASS_CACHE) > _INTERP_CACHE_MAX:
                _INTERP_PASS_CACHE.popitem(last=False)
        return passes

    @staticmethod
    def _build_passes(shape: Tuple[int, ...]) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        ndim = len(shape)
        max_dim = max(shape)
        max_level = max(int(np.ceil(np.log2(max_dim))), 1)

        passes: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        known = np.zeros(shape, dtype=bool)
        known[(0,) * ndim] = True  # the base point is coded directly

        for level in range(max_level, 0, -1):
            stride = 1 << (level - 1)
            for axis in range(ndim):
                if stride >= shape[axis] and shape[axis] > 1 and stride != 1:
                    # still may need this pass when stride < shape[axis]; skip otherwise
                    if stride >= shape[axis]:
                        continue
                if shape[axis] == 1:
                    continue
                # candidate coordinates along `axis`: odd multiples of stride
                coords_axis = np.arange(stride, shape[axis], 2 * stride)
                if coords_axis.size == 0:
                    continue
                # other axes: all currently-known grid coordinates at this level,
                # i.e. multiples of `stride` for axes already processed in this
                # level and multiples of `2*stride` for axes not yet processed.
                other_coords = []
                for other in range(ndim):
                    if other == axis:
                        continue
                    step = stride if other < axis else 2 * stride
                    other_coords.append(np.arange(0, shape[other], max(step, 1)))
                mesh_inputs = []
                for other in range(ndim):
                    if other == axis:
                        mesh_inputs.append(coords_axis)
                    else:
                        idx = other if other < axis else other - 1
                        mesh_inputs.append(other_coords[idx])
                mesh = np.meshgrid(*mesh_inputs, indexing="ij")
                target_coords = [m.ravel() for m in mesh]
                targets_nd = tuple(target_coords)
                # drop targets that are somehow already known (can happen for
                # tiny dimensions where strides alias)
                already = known[targets_nd]
                if np.all(already):
                    continue
                keep = ~already
                target_coords = [c[keep] for c in target_coords]
                targets_nd = tuple(target_coords)

                left_coords = [c.copy() for c in target_coords]
                right_coords = [c.copy() for c in target_coords]
                left_coords[axis] = target_coords[axis] - stride
                right_coords[axis] = target_coords[axis] + stride
                in_range = right_coords[axis] < shape[axis]

                targets_flat = np.ravel_multi_index(targets_nd, shape)
                left_flat = np.ravel_multi_index(tuple(left_coords), shape)
                right_flat = np.full(targets_flat.shape, -1, dtype=np.int64)
                if np.any(in_range):
                    right_in = [c[in_range] for c in right_coords]
                    right_flat[in_range] = np.ravel_multi_index(tuple(right_in), shape)

                passes.append((targets_flat, left_flat, right_flat))
                known[targets_nd] = True

        if not bool(known.all()):  # pragma: no cover - traversal invariant
            raise RuntimeError("interpolation traversal failed to cover every point")
        return passes

    @staticmethod
    def _predict(flat: np.ndarray, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        pred = flat[left].astype(np.float64)
        has_right = right >= 0
        if np.any(has_right):
            pred[has_right] = (
                flat[left[has_right]].astype(np.float64)
                + flat[right[has_right]].astype(np.float64)
            ) / 2.0
        return np.rint(pred).astype(np.int64)

    # -------------------------- API ----------------------------------- #
    def encode(self, codes: np.ndarray) -> np.ndarray:
        """Return residuals of the interpolation predictor (same shape as input)."""
        codes = np.asarray(codes, dtype=np.int64)
        ensure_ndim(codes, (1, 2, 3), "codes")
        flat = codes.ravel()
        residuals = np.zeros_like(flat)
        base_index = 0
        residuals[base_index] = flat[base_index]
        for targets, left, right in self._passes(codes.shape):
            pred = self._predict(flat, left, right)
            residuals[targets] = flat[targets] - pred
        return residuals.reshape(codes.shape)

    def decode(self, residuals: np.ndarray) -> np.ndarray:
        """Reconstruct codes from interpolation residuals."""
        residuals = np.asarray(residuals, dtype=np.int64)
        ensure_ndim(residuals, (1, 2, 3), "residuals")
        flat_res = residuals.ravel()
        flat = np.zeros_like(flat_res)
        flat[0] = flat_res[0]
        for targets, left, right in self._passes(residuals.shape):
            pred = self._predict(flat, left, right)
            flat[targets] = pred + flat_res[targets]
        return flat.reshape(residuals.shape)
