"""Local-field predictors used by prediction-based lossy compression.

All predictors operate in the *prequantized integer domain* (dual quantization,
see :mod:`repro.sz.quantizer`): the input is an ``int64`` lattice-code array and
the residuals they produce are coded losslessly, so compressor and decompressor
see bit-identical values and the error bound is controlled entirely by the
prequantization step.

Predictors implemented:

- **Lorenzo** (the baseline the paper enhances): predicts each point from the
  inclusion–exclusion sum of its already-decoded "lower-left" neighbours.  On
  integers the Lorenzo residual operator is exactly the composition of
  first-order backward differences along every axis, whose inverse is a chain
  of cumulative sums — giving a fully vectorised decoder.
- **Regression**: SZ-style block-wise linear (hyperplane) fit; coefficients are
  stored in the stream, so decoding is independent of neighbouring values.
- **Interpolation**: SZ3-style multi-level linear interpolation along each
  dimension; prediction only ever uses points reconstructed in earlier passes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.slicing import iter_blocks
from repro.utils.validation import ensure_array, ensure_ndim

__all__ = [
    "lorenzo_predict",
    "lorenzo_transform",
    "lorenzo_inverse",
    "RegressionPredictor",
    "InterpolationPredictor",
]


# --------------------------------------------------------------------------- #
# Lorenzo predictor
# --------------------------------------------------------------------------- #
def _shifted_view(padded: np.ndarray, offsets: Sequence[int], shape: Tuple[int, ...]) -> np.ndarray:
    """View of the zero-padded array shifted by ``offsets`` (1 = previous index)."""
    index = tuple(
        slice(1 - off, 1 - off + size) for off, size in zip(offsets, shape)
    )
    return padded[index]


def lorenzo_predict(codes: np.ndarray) -> np.ndarray:
    """Vectorised Lorenzo prediction of every point from its preceding neighbours.

    For 2D data: ``pred(i, j) = q(i-1, j) + q(i, j-1) - q(i-1, j-1)``; for 3D the
    standard 7-term inclusion–exclusion formula; for 1D simply the previous
    value.  Out-of-range neighbours count as zero.  Because the input is the
    full prequantized array, this is usable during compression (dual
    quantization removes the read-after-write dependency).
    """
    codes = np.asarray(codes)
    if not np.issubdtype(codes.dtype, np.integer):
        raise TypeError("lorenzo_predict operates on integer lattice codes")
    ensure_ndim(codes, (1, 2, 3), "codes")
    shape = codes.shape
    padded = np.zeros(tuple(s + 1 for s in shape), dtype=np.int64)
    padded[tuple(slice(1, None) for _ in shape)] = codes

    pred = np.zeros(shape, dtype=np.int64)
    ndim = codes.ndim
    # inclusion-exclusion over all non-empty subsets of axes
    for mask in range(1, 1 << ndim):
        offsets = [(mask >> d) & 1 for d in range(ndim)]
        sign = -1 if (sum(offsets) % 2 == 0) else 1
        pred += sign * _shifted_view(padded, offsets, shape)
    return pred


def lorenzo_transform(codes: np.ndarray) -> np.ndarray:
    """Residuals of the Lorenzo predictor: ``q - lorenzo_predict(q)``.

    Equivalent to applying the first-order backward-difference operator along
    every axis (with zero boundary), which is what makes the inverse a chain of
    cumulative sums.
    """
    codes = np.asarray(codes, dtype=np.int64)
    return codes - lorenzo_predict(codes)


def lorenzo_inverse(residuals: np.ndarray) -> np.ndarray:
    """Exact inverse of :func:`lorenzo_transform` (cumulative sums along every axis)."""
    residuals = np.asarray(residuals)
    if not np.issubdtype(residuals.dtype, np.integer):
        raise TypeError("lorenzo_inverse operates on integer residuals")
    out = residuals.astype(np.int64, copy=True)
    for axis in range(out.ndim):
        np.cumsum(out, axis=axis, out=out)
    return out


# --------------------------------------------------------------------------- #
# Regression predictor
# --------------------------------------------------------------------------- #
@dataclass
class RegressionCoefficients:
    """Per-block hyperplane coefficients produced by :class:`RegressionPredictor`."""

    block_shape: Tuple[int, ...]
    coefficients: np.ndarray  # (n_blocks, ndim + 1) float32

    def nbytes(self) -> int:
        """Bytes needed to store the coefficients in the compressed stream."""
        return int(self.coefficients.astype(np.float32).nbytes)


class RegressionPredictor:
    """SZ-style block-wise linear regression predictor.

    Each ``block_size**ndim`` block is approximated by a hyperplane
    ``a0 + sum_d a_d * x_d`` fitted with least squares on the prequantized
    codes.  Predictions depend only on the stored coefficients, never on
    neighbouring decoded values, so encoding and decoding are both vectorised.
    """

    def __init__(self, block_size: int = 6) -> None:
        if block_size < 2:
            raise ValueError("block_size must be at least 2")
        self.block_size = int(block_size)

    def _design_matrix(self, block_shape: Tuple[int, ...]) -> np.ndarray:
        grids = np.meshgrid(*[np.arange(s, dtype=np.float64) for s in block_shape], indexing="ij")
        columns = [np.ones(int(np.prod(block_shape)))]
        columns.extend(g.ravel() for g in grids)
        return np.stack(columns, axis=1)

    def encode(self, codes: np.ndarray) -> Tuple[np.ndarray, RegressionCoefficients]:
        """Fit block hyperplanes and return ``(residuals, coefficients)``."""
        codes = np.asarray(codes, dtype=np.int64)
        ensure_ndim(codes, (1, 2, 3), "codes")
        block_shape = tuple(self.block_size for _ in range(codes.ndim))
        residuals = np.empty_like(codes)
        all_coeffs: List[np.ndarray] = []
        for block_slices in iter_blocks(codes.shape, block_shape):
            block = codes[block_slices].astype(np.float64)
            design = self._design_matrix(block.shape)
            coeffs, *_ = np.linalg.lstsq(design, block.ravel(), rcond=None)
            coeffs = coeffs.astype(np.float32)
            pred = np.rint(design @ coeffs.astype(np.float64)).astype(np.int64).reshape(block.shape)
            residuals[block_slices] = codes[block_slices] - pred
            # pad coefficient vector to ndim+1 (blocks at the edge keep full rank here)
            all_coeffs.append(coeffs)
        coeff_arr = np.stack(all_coeffs, axis=0)
        return residuals, RegressionCoefficients(block_shape, coeff_arr)

    def decode(self, residuals: np.ndarray, coefficients: RegressionCoefficients) -> np.ndarray:
        """Reconstruct the codes from residuals and stored coefficients."""
        residuals = np.asarray(residuals, dtype=np.int64)
        codes = np.empty_like(residuals)
        blocks = list(iter_blocks(residuals.shape, coefficients.block_shape))
        if len(blocks) != coefficients.coefficients.shape[0]:
            raise ValueError("coefficient count does not match block decomposition")
        for block_slices, coeffs in zip(blocks, coefficients.coefficients):
            block_shape = tuple(s.stop - s.start for s in block_slices)
            design = self._design_matrix(block_shape)
            pred = np.rint(design @ coeffs.astype(np.float64)).astype(np.int64).reshape(block_shape)
            codes[block_slices] = pred + residuals[block_slices]
        return codes


# --------------------------------------------------------------------------- #
# Interpolation predictor
# --------------------------------------------------------------------------- #
class InterpolationPredictor:
    """SZ3-style multi-level linear interpolation predictor.

    Points are visited level by level (stride halving each level) and dimension
    by dimension within a level; each point is predicted as the rounded average
    of its two neighbours at ``±stride`` along the current dimension (or copied
    from the left neighbour at the boundary).  Prediction only ever uses points
    reconstructed in earlier passes, so the decoder can replay the identical
    traversal.
    """

    def __init__(self) -> None:
        self._pass_cache = {}

    # -------------------------- traversal ----------------------------- #
    def _passes(self, shape: Tuple[int, ...]) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Return the interpolation passes for ``shape``.

        Each pass is ``(targets, left, right)`` where the entries are arrays of
        flat indices; ``right`` entries equal to ``-1`` mean "no right
        neighbour" (boundary), in which case prediction copies the left value.
        """
        if shape in self._pass_cache:
            return self._pass_cache[shape]
        ndim = len(shape)
        max_dim = max(shape)
        max_level = max(int(np.ceil(np.log2(max_dim))), 1)
        strides_per_axis = []

        passes: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        known = np.zeros(shape, dtype=bool)
        known[(0,) * ndim] = True  # the base point is coded directly

        for level in range(max_level, 0, -1):
            stride = 1 << (level - 1)
            for axis in range(ndim):
                if stride >= shape[axis] and shape[axis] > 1 and stride != 1:
                    # still may need this pass when stride < shape[axis]; skip otherwise
                    if stride >= shape[axis]:
                        continue
                if shape[axis] == 1:
                    continue
                # candidate coordinates along `axis`: odd multiples of stride
                coords_axis = np.arange(stride, shape[axis], 2 * stride)
                if coords_axis.size == 0:
                    continue
                # other axes: all currently-known grid coordinates at this level,
                # i.e. multiples of `stride` for axes already processed in this
                # level and multiples of `2*stride` for axes not yet processed.
                other_coords = []
                for other in range(ndim):
                    if other == axis:
                        continue
                    step = stride if other < axis else 2 * stride
                    other_coords.append(np.arange(0, shape[other], max(step, 1)))
                grids = []
                mesh_inputs = []
                for other in range(ndim):
                    if other == axis:
                        mesh_inputs.append(coords_axis)
                    else:
                        idx = other if other < axis else other - 1
                        mesh_inputs.append(other_coords[idx])
                mesh = np.meshgrid(*mesh_inputs, indexing="ij")
                target_coords = [m.ravel() for m in mesh]
                targets_nd = tuple(target_coords)
                # drop targets that are somehow already known (can happen for
                # tiny dimensions where strides alias)
                already = known[targets_nd]
                if np.all(already):
                    continue
                keep = ~already
                target_coords = [c[keep] for c in target_coords]
                targets_nd = tuple(target_coords)

                left_coords = [c.copy() for c in target_coords]
                right_coords = [c.copy() for c in target_coords]
                left_coords[axis] = target_coords[axis] - stride
                right_coords[axis] = target_coords[axis] + stride
                in_range = right_coords[axis] < shape[axis]

                targets_flat = np.ravel_multi_index(targets_nd, shape)
                left_flat = np.ravel_multi_index(tuple(left_coords), shape)
                right_flat = np.full(targets_flat.shape, -1, dtype=np.int64)
                if np.any(in_range):
                    right_in = [c[in_range] for c in right_coords]
                    right_flat[in_range] = np.ravel_multi_index(tuple(right_in), shape)

                passes.append((targets_flat, left_flat, right_flat))
                known[targets_nd] = True

        if not bool(known.all()):  # pragma: no cover - traversal invariant
            raise RuntimeError("interpolation traversal failed to cover every point")
        self._pass_cache[shape] = passes
        return passes

    @staticmethod
    def _predict(flat: np.ndarray, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        pred = flat[left].astype(np.float64)
        has_right = right >= 0
        if np.any(has_right):
            pred[has_right] = (
                flat[left[has_right]].astype(np.float64)
                + flat[right[has_right]].astype(np.float64)
            ) / 2.0
        return np.rint(pred).astype(np.int64)

    # -------------------------- API ----------------------------------- #
    def encode(self, codes: np.ndarray) -> np.ndarray:
        """Return residuals of the interpolation predictor (same shape as input)."""
        codes = np.asarray(codes, dtype=np.int64)
        ensure_ndim(codes, (1, 2, 3), "codes")
        flat = codes.ravel()
        residuals = np.zeros_like(flat)
        base_index = 0
        residuals[base_index] = flat[base_index]
        for targets, left, right in self._passes(codes.shape):
            pred = self._predict(flat, left, right)
            residuals[targets] = flat[targets] - pred
        return residuals.reshape(codes.shape)

    def decode(self, residuals: np.ndarray) -> np.ndarray:
        """Reconstruct codes from interpolation residuals."""
        residuals = np.asarray(residuals, dtype=np.int64)
        ensure_ndim(residuals, (1, 2, 3), "residuals")
        flat_res = residuals.ravel()
        flat = np.zeros_like(flat_res)
        flat[0] = flat_res[0]
        for targets, left, right in self._passes(residuals.shape):
            pred = self._predict(flat, left, right)
            flat[targets] = pred + flat_res[targets]
        return flat.reshape(residuals.shape)
