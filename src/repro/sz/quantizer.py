"""Quantization for error-bounded compression.

Two schemes are implemented:

1. **Dual quantization** (cuSZ, used by the paper and by this reproduction for
   both the baseline and the cross-field compressor).  The data is first
   *prequantized* onto the integer lattice ``round(x / (2*eb))``; prediction and
   residual coding then operate entirely in the integer domain, which removes
   the read-after-write dependency during compression and makes the residual
   stage lossless (paper Section III-D1).

2. **Classic SZ quantization** (predict-then-quantize with error feedback),
   kept as an ablation reference: each point is predicted from already
   *reconstructed* neighbours and the prediction error is quantized — a
   strictly sequential loop.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.validation import ensure_array, ensure_positive

__all__ = [
    "prequantize",
    "dequantize",
    "classic_quantize_lorenzo",
    "classic_dequantize_lorenzo",
    "QUANT_RADIUS_DEFAULT",
    "QUANT_SAFETY_MARGIN",
    "effective_error_bound",
]

#: Default quantization-code radius: residuals with magnitude above this are
#: treated as unpredictable outliers and stored verbatim (keeps the Huffman
#: alphabet bounded by ``2 * radius + 2``).
QUANT_RADIUS_DEFAULT = 32768

#: Relative safety margin applied to the user's error bound before
#: quantization.  The compressors quantize against ``abs_eb * (1 - margin)`` so
#: that the half-ULP rounding introduced by casting the reconstruction back to
#: ``float32`` can never push the final point-wise error above the requested
#: bound.  The impact on the compression ratio is below 0.1%.
QUANT_SAFETY_MARGIN = 1e-3


def effective_error_bound(abs_eb: float) -> float:
    """Error bound actually used for quantization (slightly tightened).

    See :data:`QUANT_SAFETY_MARGIN` for why the user-requested bound is shrunk
    before prequantization.
    """
    return float(abs_eb) * (1.0 - QUANT_SAFETY_MARGIN)


def prequantize(data: np.ndarray, abs_eb: float) -> np.ndarray:
    """Prequantization step of dual quantization.

    Maps every value onto the integer lattice with spacing ``2 * abs_eb``:
    ``q = round(x / (2 * abs_eb))``.  Reconstructing ``q * 2 * abs_eb`` is then
    guaranteed to be within ``abs_eb`` of the original value.

    Returns an ``int64`` array of the same shape.
    """
    data = ensure_array(data, "data")
    ensure_positive(abs_eb, "abs_eb")
    if not np.all(np.isfinite(data)):
        raise ValueError("data contains non-finite values; cannot error-bound quantize")
    scaled = np.asarray(data, dtype=np.float64) / (2.0 * abs_eb)
    codes = np.rint(scaled)
    if np.any(np.abs(codes) > 2**62):
        raise OverflowError("error bound too small relative to the data magnitude")
    return codes.astype(np.int64)


def dequantize(codes: np.ndarray, abs_eb: float, dtype=np.float32) -> np.ndarray:
    """Inverse of :func:`prequantize`: reconstruct values from lattice codes."""
    ensure_positive(abs_eb, "abs_eb")
    codes = np.asarray(codes)
    if not np.issubdtype(codes.dtype, np.integer):
        raise TypeError("codes must be integers")
    return (codes.astype(np.float64) * (2.0 * abs_eb)).astype(dtype)


# --------------------------------------------------------------------------- #
# classic (sequential) SZ quantization — ablation reference
# --------------------------------------------------------------------------- #
def classic_quantize_lorenzo(
    data: np.ndarray, abs_eb: float, radius: int = QUANT_RADIUS_DEFAULT
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Classic predict-then-quantize SZ loop with the Lorenzo predictor.

    Every point is predicted from the already *reconstructed* neighbours, the
    prediction error is quantized to ``2*eb`` bins and immediately fed back —
    the read-after-write dependency dual quantization removes.  Only 1D/2D/3D
    inputs are supported and the loop is pure Python, so this is intended for
    correctness tests and the dual-quant ablation on small arrays.

    Returns ``(codes, outlier_mask, reconstruction)`` where ``codes`` holds the
    quantization bins (0 marks an outlier), ``outlier_mask`` flags points stored
    verbatim, and ``reconstruction`` is the decompressed array the decoder will
    reproduce.
    """
    data = ensure_array(data, "data", dtype=np.float64)
    ensure_positive(abs_eb, "abs_eb")
    if data.ndim not in (1, 2, 3):
        raise ValueError("classic_quantize_lorenzo supports 1D/2D/3D data only")

    recon = np.zeros_like(data)
    codes = np.zeros(data.shape, dtype=np.int64)
    outlier_mask = np.zeros(data.shape, dtype=bool)
    two_eb = 2.0 * abs_eb

    def predict(index):
        if data.ndim == 1:
            (i,) = index
            return recon[i - 1] if i > 0 else 0.0
        if data.ndim == 2:
            i, j = index
            a = recon[i - 1, j] if i > 0 else 0.0
            b = recon[i, j - 1] if j > 0 else 0.0
            c = recon[i - 1, j - 1] if i > 0 and j > 0 else 0.0
            return a + b - c
        i, j, k = index
        a = recon[i - 1, j, k] if i > 0 else 0.0
        b = recon[i, j - 1, k] if j > 0 else 0.0
        c = recon[i, j, k - 1] if k > 0 else 0.0
        ab = recon[i - 1, j - 1, k] if i > 0 and j > 0 else 0.0
        ac = recon[i - 1, j, k - 1] if i > 0 and k > 0 else 0.0
        bc = recon[i, j - 1, k - 1] if j > 0 and k > 0 else 0.0
        abc = recon[i - 1, j - 1, k - 1] if i > 0 and j > 0 and k > 0 else 0.0
        return a + b + c - ab - ac - bc + abc

    for index in np.ndindex(*data.shape):
        predicted = predict(index)
        error = data[index] - predicted
        bin_index = int(np.rint(error / two_eb))
        if abs(bin_index) >= radius:
            outlier_mask[index] = True
            codes[index] = 0
            recon[index] = data[index]
        else:
            codes[index] = bin_index
            recon[index] = predicted + bin_index * two_eb
    return codes, outlier_mask, recon


def classic_dequantize_lorenzo(
    codes: np.ndarray,
    outlier_mask: np.ndarray,
    outlier_values: np.ndarray,
    abs_eb: float,
) -> np.ndarray:
    """Decode the output of :func:`classic_quantize_lorenzo`.

    ``outlier_values`` holds the verbatim values of the flagged points in C
    order.
    """
    codes = np.asarray(codes, dtype=np.int64)
    outlier_mask = np.asarray(outlier_mask, dtype=bool)
    ensure_positive(abs_eb, "abs_eb")
    if codes.ndim not in (1, 2, 3):
        raise ValueError("classic_dequantize_lorenzo supports 1D/2D/3D data only")
    recon = np.zeros(codes.shape, dtype=np.float64)
    two_eb = 2.0 * abs_eb
    outliers = iter(np.asarray(outlier_values, dtype=np.float64).ravel())

    def predict(index):
        if codes.ndim == 1:
            (i,) = index
            return recon[i - 1] if i > 0 else 0.0
        if codes.ndim == 2:
            i, j = index
            a = recon[i - 1, j] if i > 0 else 0.0
            b = recon[i, j - 1] if j > 0 else 0.0
            c = recon[i - 1, j - 1] if i > 0 and j > 0 else 0.0
            return a + b - c
        i, j, k = index
        a = recon[i - 1, j, k] if i > 0 else 0.0
        b = recon[i, j - 1, k] if j > 0 else 0.0
        c = recon[i, j, k - 1] if k > 0 else 0.0
        ab = recon[i - 1, j - 1, k] if i > 0 and j > 0 else 0.0
        ac = recon[i - 1, j, k - 1] if i > 0 and k > 0 else 0.0
        bc = recon[i, j - 1, k - 1] if j > 0 and k > 0 else 0.0
        abc = recon[i - 1, j - 1, k - 1] if i > 0 and j > 0 and k > 0 else 0.0
        return a + b + c - ab - ac - bc + abc

    for index in np.ndindex(*codes.shape):
        if outlier_mask[index]:
            recon[index] = next(outliers)
        else:
            recon[index] = predict(index) + codes[index] * two_eb
    return recon
