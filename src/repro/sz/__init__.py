"""SZ3-style prediction-based error-bounded lossy compressor substrate.

This package implements the baseline the paper builds on and compares against:
the Lorenzo predictor (plus regression and interpolation predictors), linear
scale quantization with strict error-bound control, the dual-quantization
scheme of cuSZ (used by both the baseline and the cross-field compressor), and
the full compress/decompress pipeline with Huffman + lossless entropy stages.
"""

from repro.sz.errors import ErrorBound
from repro.sz.quantizer import (
    prequantize,
    dequantize,
    classic_quantize_lorenzo,
    QUANT_RADIUS_DEFAULT,
)
from repro.sz.predictors import (
    lorenzo_predict,
    lorenzo_transform,
    lorenzo_inverse,
    RegressionPredictor,
    InterpolationPredictor,
)
from repro.sz.decode import (
    clear_wavefront_plans,
    decode_reference,
    decode_weighted_sequential,
    decode_weighted_wavefront,
    wavefront_plan_info,
)
from repro.sz.pipeline import SZCompressor, CompressionResult

__all__ = [
    "ErrorBound",
    "prequantize",
    "dequantize",
    "classic_quantize_lorenzo",
    "QUANT_RADIUS_DEFAULT",
    "lorenzo_predict",
    "lorenzo_transform",
    "lorenzo_inverse",
    "RegressionPredictor",
    "InterpolationPredictor",
    "decode_weighted_sequential",
    "decode_weighted_wavefront",
    "decode_reference",
    "wavefront_plan_info",
    "clear_wavefront_plans",
    "SZCompressor",
    "CompressionResult",
]
