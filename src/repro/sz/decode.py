"""Decoders for the weighted (hybrid) prediction recurrence.

The hybrid prediction model combines the Lorenzo prediction with the per-axis
cross-field predictions through a learned weighted sum (paper Section III-C).
During compression the prediction can be evaluated for all points at once
(dual quantization makes every prequantized value available), but during
decompression the prediction of point ``(i, j)`` needs the already-decoded
values at ``(i-1, j)``, ``(i, j-1)``, ``(i-1, j-1)`` — a recurrence.

Two exact decoders are provided:

- :func:`decode_weighted_sequential` — straightforward nested loops; the
  readable reference used for correctness tests.
- :func:`decode_weighted_wavefront` — processes anti-diagonal wavefronts
  (all points with equal coordinate sum) in vectorised NumPy steps; every
  dependency of a wavefront lies on earlier wavefronts, so the result is
  bit-identical to the sequential decoder while being orders of magnitude
  faster in Python.

Both accept arbitrary weights, so the pure-Lorenzo baseline (weights
``[1, 0, ..., 0]``) and the full hybrid model share one code path.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.validation import ensure_ndim

__all__ = [
    "weighted_predict_full",
    "decode_weighted_sequential",
    "decode_weighted_wavefront",
]


def _check_inputs(
    residuals: np.ndarray,
    diff_codes: Sequence[np.ndarray],
    weights: Sequence[float],
) -> Tuple[np.ndarray, List[np.ndarray], np.ndarray]:
    residuals = np.asarray(residuals)
    if not np.issubdtype(residuals.dtype, np.integer):
        raise TypeError("residuals must be integer lattice codes")
    ensure_ndim(residuals, (1, 2, 3), "residuals")
    ndim = residuals.ndim
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (ndim + 1,):
        raise ValueError(f"weights must have length ndim+1 = {ndim + 1}, got {weights.shape}")
    diffs: List[np.ndarray] = []
    if len(diff_codes) != ndim:
        raise ValueError(f"expected {ndim} cross-field difference arrays, got {len(diff_codes)}")
    for d, diff in enumerate(diff_codes):
        diff = np.asarray(diff)
        if diff.shape != residuals.shape:
            raise ValueError(
                f"diff_codes[{d}] has shape {diff.shape}, expected {residuals.shape}"
            )
        if not np.issubdtype(diff.dtype, np.integer):
            raise TypeError("cross-field difference codes must be integers")
        diffs.append(diff.astype(np.int64))
    return residuals.astype(np.int64), diffs, weights


def _lorenzo_terms(ndim: int) -> List[Tuple[Tuple[int, ...], int]]:
    """Offsets (1 = previous index along that axis) and signs of the Lorenzo sum."""
    terms = []
    for mask in range(1, 1 << ndim):
        offsets = tuple((mask >> d) & 1 for d in range(ndim))
        sign = -1 if (sum(offsets) % 2 == 0) else 1
        terms.append((offsets, sign))
    return terms


# --------------------------------------------------------------------------- #
# full-array prediction (compression side)
# --------------------------------------------------------------------------- #
def weighted_predict_full(
    codes: np.ndarray,
    diff_codes: Sequence[np.ndarray],
    weights: Sequence[float],
) -> np.ndarray:
    """Hybrid prediction of every point from the *known* prequantized array.

    ``prediction = w_0 * lorenzo + sum_d w_{d+1} * (previous-along-d + diff_d)``,
    rounded to the nearest integer.  This is the compression-side counterpart of
    the decoders below; dual quantization guarantees the decoder sees the same
    neighbour values, hence the same predictions.
    """
    codes = np.asarray(codes, dtype=np.int64)
    residual_like, diffs, weights = _check_inputs(codes, diff_codes, weights)
    shape = codes.shape
    ndim = codes.ndim
    padded = np.zeros(tuple(s + 1 for s in shape), dtype=np.int64)
    padded[tuple(slice(1, None) for _ in shape)] = codes

    def shifted(offsets):
        index = tuple(slice(1 - off, 1 - off + size) for off, size in zip(offsets, shape))
        return padded[index]

    prediction = np.zeros(shape, dtype=np.float64)
    if weights[0] != 0.0:
        lorenzo = np.zeros(shape, dtype=np.int64)
        for offsets, sign in _lorenzo_terms(ndim):
            lorenzo += sign * shifted(offsets)
        prediction += weights[0] * lorenzo
    for d in range(ndim):
        if weights[d + 1] == 0.0:
            continue
        offsets = tuple(1 if axis == d else 0 for axis in range(ndim))
        prediction += weights[d + 1] * (shifted(offsets) + diffs[d])
    return np.rint(prediction).astype(np.int64)


# --------------------------------------------------------------------------- #
# sequential reference decoder
# --------------------------------------------------------------------------- #
def decode_weighted_sequential(
    residuals: np.ndarray,
    diff_codes: Sequence[np.ndarray],
    weights: Sequence[float],
) -> np.ndarray:
    """Reference decoder: reconstruct codes point by point in C order."""
    residuals, diffs, weights = _check_inputs(residuals, diff_codes, weights)
    shape = residuals.shape
    ndim = residuals.ndim
    padded = np.zeros(tuple(s + 1 for s in shape), dtype=np.int64)
    terms = _lorenzo_terms(ndim)

    for index in np.ndindex(*shape):
        pindex = tuple(i + 1 for i in index)
        prediction = 0.0
        if weights[0] != 0.0:
            lorenzo = 0
            for offsets, sign in terms:
                neighbour = tuple(p - off for p, off in zip(pindex, offsets))
                lorenzo += sign * padded[neighbour]
            prediction += weights[0] * lorenzo
        for d in range(ndim):
            if weights[d + 1] == 0.0:
                continue
            neighbour = tuple(p - (1 if axis == d else 0) for axis, p in enumerate(pindex))
            prediction += weights[d + 1] * (padded[neighbour] + diffs[d][index])
        padded[pindex] = int(np.rint(prediction)) + residuals[index]
    return padded[tuple(slice(1, None) for _ in shape)].copy()


# --------------------------------------------------------------------------- #
# wavefront (anti-diagonal) vectorised decoder
# --------------------------------------------------------------------------- #
def decode_weighted_wavefront(
    residuals: np.ndarray,
    diff_codes: Sequence[np.ndarray],
    weights: Sequence[float],
) -> np.ndarray:
    """Vectorised exact decoder processing anti-diagonal wavefronts.

    Every point ``(i_0, …, i_{n-1})`` only depends on points whose coordinate
    sum is strictly smaller, so all points with equal coordinate sum can be
    reconstructed simultaneously.  The number of sequential steps drops from
    ``prod(shape)`` to ``sum(shape) - ndim + 1``.
    """
    residuals, diffs, weights = _check_inputs(residuals, diff_codes, weights)
    shape = residuals.shape
    ndim = residuals.ndim

    padded_shape = tuple(s + 1 for s in shape)
    padded = np.zeros(padded_shape, dtype=np.int64)
    padded_flat = padded.reshape(-1)
    padded_strides = [int(np.prod(padded_shape[d + 1 :])) for d in range(ndim)]

    coords = np.indices(shape).reshape(ndim, -1)
    sums = coords.sum(axis=0)
    order = np.argsort(sums, kind="stable")
    sorted_sums = sums[order]
    # boundaries of each wavefront inside `order`
    boundaries = np.searchsorted(sorted_sums, np.arange(sorted_sums[-1] + 2))

    orig_flat = np.ravel_multi_index(tuple(coords), shape)
    padded_flat_index = np.ravel_multi_index(tuple(coords + 1), padded_shape)

    residual_flat = residuals.reshape(-1)
    diff_flats = [d.reshape(-1) for d in diffs]
    terms = _lorenzo_terms(ndim)
    lorenzo_offsets = [
        (sum(off * stride for off, stride in zip(offsets, padded_strides)), sign)
        for offsets, sign in terms
    ]
    axis_offsets = [padded_strides[d] for d in range(ndim)]

    n_waves = int(sorted_sums[-1]) + 1
    for wave in range(n_waves):
        start, stop = boundaries[wave], boundaries[wave + 1]
        if start == stop:
            continue
        sel = order[start:stop]
        pidx = padded_flat_index[sel]
        oidx = orig_flat[sel]
        prediction = np.zeros(sel.shape[0], dtype=np.float64)
        if weights[0] != 0.0:
            lorenzo = np.zeros(sel.shape[0], dtype=np.int64)
            for offset, sign in lorenzo_offsets:
                lorenzo += sign * padded_flat[pidx - offset]
            prediction += weights[0] * lorenzo
        for d in range(ndim):
            if weights[d + 1] == 0.0:
                continue
            prediction += weights[d + 1] * (
                padded_flat[pidx - axis_offsets[d]] + diff_flats[d][oidx]
            )
        padded_flat[pidx] = np.rint(prediction).astype(np.int64) + residual_flat[oidx]

    return padded[tuple(slice(1, None) for _ in shape)].copy()
