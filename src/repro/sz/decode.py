"""Decoders for the weighted (hybrid) prediction recurrence.

The hybrid prediction model combines the Lorenzo prediction with the per-axis
cross-field predictions through a learned weighted sum (paper Section III-C).
During compression the prediction can be evaluated for all points at once
(dual quantization makes every prequantized value available), but during
decompression the prediction of point ``(i, j)`` needs the already-decoded
values at ``(i-1, j)``, ``(i, j-1)``, ``(i-1, j-1)`` — a recurrence.

Two exact decoders are provided:

- :func:`decode_weighted_sequential` (alias :data:`decode_reference`) —
  straightforward nested loops; the readable reference used for correctness
  tests and the anchor of the cross-implementation parity suite
  (``tests/test_sz_parity.py``).
- :func:`decode_weighted_wavefront` — the batch state machine.  Points with
  equal *dependency-relevant* coordinate sum form one wave and are
  reconstructed in a single NumPy step; the gather/scatter index tables for a
  given shape are built once and cached (:class:`_WavefrontPlan`), so decoding
  the thousands of same-shaped chunks of an archive pays the planning cost
  once.  Waves are *fat*: axes that cannot carry a dependency (zero weight
  with no Lorenzo term, or extent one) are dropped from the wave key, which
  merges many standard anti-diagonals into one batch step — in the extreme
  (no dependency-carrying axis at all) the whole array decodes in a single
  step.  Large 3D inputs run through a blocked variant that marches slab
  blocks along the leading axis and reuses one sub-plan for every slab,
  keeping the index tables small without changing a single arithmetic
  operation.

Both decoders accept arbitrary weights, so the pure-Lorenzo baseline (weights
``[1, 0, ..., 0]``) and the full hybrid model share one code path, and both
perform the identical per-point float64 accumulation (Lorenzo term first, then
the axis terms in order) so their outputs are bit-identical — the contract the
parity suite enforces.  See ``docs/architecture.md`` ("The wavefront batch
decoder") for the index-table construction and the parity-testing contract,
and ``docs/observability.md`` for the ``sz.wavefront.*`` metric names.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.obs import recorder as _obs
from repro.utils.validation import ensure_ndim

__all__ = [
    "weighted_predict_full",
    "decode_weighted_sequential",
    "decode_weighted_wavefront",
    "decode_reference",
    "wavefront_plan_info",
    "clear_wavefront_plans",
]

#: 3D inputs above this many points decode through the blocked (slab) variant
#: so the cached index tables stay bounded; shared sub-plans make the extra
#: wave steps cheap.  Tests shrink it to force the blocked path on small data.
BLOCKED_3D_THRESHOLD = 1 << 20

#: Upper bound on the total number of points whose index tables the plan cache
#: may hold (each point costs 16 bytes of tables).
_PLAN_CACHE_MAX_ELEMENTS = 1 << 22


def _check_inputs(
    residuals: np.ndarray,
    diff_codes: Sequence[np.ndarray],
    weights: Sequence[float],
) -> Tuple[np.ndarray, List[np.ndarray], np.ndarray]:
    residuals = np.asarray(residuals)
    if not np.issubdtype(residuals.dtype, np.integer):
        raise TypeError("residuals must be integer lattice codes")
    ensure_ndim(residuals, (1, 2, 3), "residuals")
    ndim = residuals.ndim
    try:
        weights = np.asarray(weights, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"weights must be a flat numeric sequence: {exc}") from exc
    if weights.ndim != 1 or weights.shape != (ndim + 1,):
        raise ValueError(
            f"weights must be a flat sequence of length ndim+1 = {ndim + 1} "
            f"(one Lorenzo weight plus one per axis of the {ndim}D residuals), "
            f"got shape {tuple(weights.shape)}"
        )
    if not np.all(np.isfinite(weights)):
        raise ValueError("weights must be finite (no NaN/inf)")
    diffs: List[np.ndarray] = []
    if len(diff_codes) != ndim:
        raise ValueError(
            f"expected {ndim} cross-field difference arrays (one per axis of the "
            f"{ndim}D residuals), got {len(diff_codes)}"
        )
    for d, diff in enumerate(diff_codes):
        diff = np.asarray(diff)
        if diff.shape != residuals.shape:
            raise ValueError(
                f"diff_codes[{d}] has shape {diff.shape}, expected {residuals.shape}"
            )
        if not np.issubdtype(diff.dtype, np.integer):
            raise TypeError("cross-field difference codes must be integers")
        diffs.append(diff.astype(np.int64))
    return residuals.astype(np.int64), diffs, weights


def _lorenzo_terms(ndim: int) -> List[Tuple[Tuple[int, ...], int]]:
    """Offsets (1 = previous index along that axis) and signs of the Lorenzo sum."""
    terms = []
    for mask in range(1, 1 << ndim):
        offsets = tuple((mask >> d) & 1 for d in range(ndim))
        sign = -1 if (sum(offsets) % 2 == 0) else 1
        terms.append((offsets, sign))
    return terms


# --------------------------------------------------------------------------- #
# full-array prediction (compression side)
# --------------------------------------------------------------------------- #
def weighted_predict_full(
    codes: np.ndarray,
    diff_codes: Sequence[np.ndarray],
    weights: Sequence[float],
) -> np.ndarray:
    """Hybrid prediction of every point from the *known* prequantized array.

    ``prediction = w_0 * lorenzo + sum_d w_{d+1} * (previous-along-d + diff_d)``,
    rounded to the nearest integer.  This is the compression-side counterpart of
    the decoders below; dual quantization guarantees the decoder sees the same
    neighbour values, hence the same predictions.
    """
    codes = np.asarray(codes, dtype=np.int64)
    residual_like, diffs, weights = _check_inputs(codes, diff_codes, weights)
    shape = codes.shape
    ndim = codes.ndim
    padded = np.zeros(tuple(s + 1 for s in shape), dtype=np.int64)
    padded[tuple(slice(1, None) for _ in shape)] = codes

    def shifted(offsets):
        index = tuple(slice(1 - off, 1 - off + size) for off, size in zip(offsets, shape))
        return padded[index]

    prediction = np.zeros(shape, dtype=np.float64)
    if weights[0] != 0.0:
        lorenzo = np.zeros(shape, dtype=np.int64)
        for offsets, sign in _lorenzo_terms(ndim):
            lorenzo += sign * shifted(offsets)
        prediction += weights[0] * lorenzo
    for d in range(ndim):
        if weights[d + 1] == 0.0:
            continue
        offsets = tuple(1 if axis == d else 0 for axis in range(ndim))
        prediction += weights[d + 1] * (shifted(offsets) + diffs[d])
    return np.rint(prediction).astype(np.int64)


# --------------------------------------------------------------------------- #
# sequential reference decoder
# --------------------------------------------------------------------------- #
def decode_weighted_sequential(
    residuals: np.ndarray,
    diff_codes: Sequence[np.ndarray],
    weights: Sequence[float],
) -> np.ndarray:
    """Reference decoder: reconstruct codes point by point in C order."""
    residuals, diffs, weights = _check_inputs(residuals, diff_codes, weights)
    shape = residuals.shape
    ndim = residuals.ndim
    padded = np.zeros(tuple(s + 1 for s in shape), dtype=np.int64)
    terms = _lorenzo_terms(ndim)

    for index in np.ndindex(*shape):
        pindex = tuple(i + 1 for i in index)
        prediction = 0.0
        if weights[0] != 0.0:
            lorenzo = 0
            for offsets, sign in terms:
                neighbour = tuple(p - off for p, off in zip(pindex, offsets))
                lorenzo += sign * padded[neighbour]
            prediction += weights[0] * lorenzo
        for d in range(ndim):
            if weights[d + 1] == 0.0:
                continue
            neighbour = tuple(p - (1 if axis == d else 0) for axis, p in enumerate(pindex))
            prediction += weights[d + 1] * (padded[neighbour] + diffs[d][index])
        padded[pindex] = int(np.rint(prediction)) + residuals[index]
    return padded[tuple(slice(1, None) for _ in shape)].copy()


#: Scalar reference path, named after the pattern the entropy layer uses
#: (``HuffmanCodec.decode_reference``): the slow, obviously-correct decoder the
#: parity suite measures the batch state machine against.
decode_reference = decode_weighted_sequential


# --------------------------------------------------------------------------- #
# wavefront (batch state machine) decoder
# --------------------------------------------------------------------------- #
@dataclass
class _WavefrontPlan:
    """Precomputed gather/scatter index tables for one (shape, stencil) pair.

    ``pidx``/``oidx`` hold the padded-array and original-array flat indices of
    every point, sorted by wave; ``bounds[w]:bounds[w+1]`` delimits wave ``w``.
    Plans are shape-relative: the blocked 3D path reuses one slab plan at many
    offsets by adding the slab's base flat index (valid because the trailing
    axes — and therefore the flat strides — are identical for every slab).
    """

    shape: Tuple[int, ...]
    active: Tuple[int, ...]
    bounds: np.ndarray
    pidx: np.ndarray
    oidx: np.ndarray

    @property
    def n_waves(self) -> int:
        return len(self.bounds) - 1

    @property
    def n_points(self) -> int:
        return int(self.pidx.size)


_PLAN_CACHE: "OrderedDict[Tuple, _WavefrontPlan]" = OrderedDict()
_PLAN_LOCK = threading.Lock()
_PLAN_STATS = {"hits": 0, "misses": 0}


def _active_axes(shape: Tuple[int, ...], weights: np.ndarray) -> Tuple[int, ...]:
    """Axes that can carry a decode dependency given the weights.

    With a non-zero Lorenzo weight every axis appears in the stencil; without
    it only axes whose own cross-field weight is non-zero do.  Axes of extent
    one never have an in-array predecessor (the neighbour is always the zero
    padding), so they are dropped unconditionally — together this is what
    merges anti-diagonals into fat waves.
    """
    ndim = len(shape)
    if weights[0] != 0.0:
        return tuple(d for d in range(ndim) if shape[d] > 1)
    return tuple(d for d in range(ndim) if shape[d] > 1 and weights[d + 1] != 0.0)


def _build_plan(shape: Tuple[int, ...], active: Tuple[int, ...]) -> _WavefrontPlan:
    ndim = len(shape)
    n = int(np.prod(shape)) if shape else 0
    padded_shape = tuple(s + 1 for s in shape)
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return _WavefrontPlan(shape, active, np.zeros(1, dtype=np.int64), empty, empty)
    coords = np.indices(shape).reshape(ndim, -1)
    if active:
        key = coords[list(active)].sum(axis=0)
    else:
        key = np.zeros(n, dtype=np.int64)
    # stable counting sort by wave key: C-order ties keep their relative order
    order = np.argsort(key, kind="stable").astype(np.int64)
    counts = np.bincount(key, minlength=int(key.max()) + 1)
    bounds = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    pidx_all = np.ravel_multi_index(tuple(coords + 1), padded_shape).astype(np.int64)
    return _WavefrontPlan(shape, active, bounds, pidx_all[order], order)


def _plan_for(shape: Tuple[int, ...], active: Tuple[int, ...]) -> _WavefrontPlan:
    key = (shape, active)
    with _PLAN_LOCK:
        plan = _PLAN_CACHE.get(key)
        if plan is not None:
            _PLAN_CACHE.move_to_end(key)
            _PLAN_STATS["hits"] += 1
            return plan
        _PLAN_STATS["misses"] += 1
    plan = _build_plan(shape, active)
    with _PLAN_LOCK:
        _PLAN_CACHE[key] = plan
        total = sum(p.n_points for p in _PLAN_CACHE.values())
        while total > _PLAN_CACHE_MAX_ELEMENTS and len(_PLAN_CACHE) > 1:
            _, evicted = _PLAN_CACHE.popitem(last=False)
            total -= evicted.n_points
    return plan


def wavefront_plan_info() -> Dict[str, int]:
    """Cache statistics of the wavefront planner (for tests and benchmarks)."""
    with _PLAN_LOCK:
        return {
            "entries": len(_PLAN_CACHE),
            "points": sum(p.n_points for p in _PLAN_CACHE.values()),
            "hits": _PLAN_STATS["hits"],
            "misses": _PLAN_STATS["misses"],
        }


def clear_wavefront_plans() -> None:
    """Drop every cached plan and reset the hit/miss counters."""
    with _PLAN_LOCK:
        _PLAN_CACHE.clear()
        _PLAN_STATS["hits"] = 0
        _PLAN_STATS["misses"] = 0


def _decode_block(
    plan: _WavefrontPlan,
    padded_flat: np.ndarray,
    residual_flat: np.ndarray,
    diff_flats: List[np.ndarray],
    weights: np.ndarray,
    lorenzo_offsets: List[Tuple[int, int]],
    axis_offsets: List[int],
    pad_offset: int = 0,
    orig_offset: int = 0,
) -> int:
    """Replay the recurrence over one planned block; returns the wave count.

    The per-point arithmetic — int64 Lorenzo accumulation in ``_lorenzo_terms``
    order, then float64 ``w0 * lorenzo`` followed by the axis terms in axis
    order — mirrors :func:`decode_weighted_sequential` exactly, which is what
    makes the two decoders bit-identical.
    """
    pidx = plan.pidx if pad_offset == 0 else plan.pidx + pad_offset
    oidx = plan.oidx if orig_offset == 0 else plan.oidx + orig_offset
    res_sorted = residual_flat[oidx]
    use_lorenzo = weights[0] != 0.0
    axis_terms = [
        (weights[d + 1], axis_offsets[d], diff_flats[d][oidx])
        for d in range(len(axis_offsets))
        if weights[d + 1] != 0.0
    ]
    bounds = plan.bounds
    for wave in range(plan.n_waves):
        start, stop = int(bounds[wave]), int(bounds[wave + 1])
        if start == stop:
            continue
        p = pidx[start:stop]
        prediction = np.zeros(stop - start, dtype=np.float64)
        if use_lorenzo:
            lorenzo = np.zeros(stop - start, dtype=np.int64)
            for offset, sign in lorenzo_offsets:
                lorenzo += sign * padded_flat[p - offset]
            prediction += weights[0] * lorenzo
        for weight, offset, diff_sorted in axis_terms:
            prediction += weight * (padded_flat[p - offset] + diff_sorted[start:stop])
        padded_flat[p] = np.rint(prediction).astype(np.int64) + res_sorted[start:stop]
    return plan.n_waves


def decode_weighted_wavefront(
    residuals: np.ndarray,
    diff_codes: Sequence[np.ndarray],
    weights: Sequence[float],
) -> np.ndarray:
    """Vectorised exact decoder: a batch state machine over planned waves.

    Every point ``(i_0, …, i_{n-1})`` only depends on points whose coordinate
    sum over the *dependency-active* axes is strictly smaller, so all points
    sharing that sum form one wave and are reconstructed in a single NumPy
    gather/compute/scatter step.  The flattened index tables for a shape are
    built once and cached; large 3D inputs march slab blocks along the leading
    axis through one shared sub-plan.  Output is bit-identical to
    :func:`decode_weighted_sequential` for every weight vector.
    """
    residuals, diffs, weights = _check_inputs(residuals, diff_codes, weights)
    shape = residuals.shape
    ndim = residuals.ndim
    n = int(residuals.size)
    if n == 0:
        return residuals.copy()

    recorder = _obs.get_recorder()
    start_time = time.perf_counter() if recorder.enabled else 0.0

    padded_shape = tuple(s + 1 for s in shape)
    padded = np.zeros(padded_shape, dtype=np.int64)
    padded_flat = padded.reshape(-1)
    padded_strides = [int(np.prod(padded_shape[d + 1 :])) for d in range(ndim)]
    lorenzo_offsets = [
        (sum(off * stride for off, stride in zip(offsets, padded_strides)), sign)
        for offsets, sign in _lorenzo_terms(ndim)
    ]
    axis_offsets = [padded_strides[d] for d in range(ndim)]

    residual_flat = np.ascontiguousarray(residuals).reshape(-1)
    diff_flats = [np.ascontiguousarray(d).reshape(-1) for d in diffs]
    active = _active_axes(shape, weights)

    n_waves = 0
    if ndim == 3 and n > BLOCKED_3D_THRESHOLD and shape[0] > 1:
        # blocked variant: slabs along axis 0 share flat strides with the full
        # padded array, so one sub-plan serves every equal-sized slab with a
        # per-slab base offset; cross-slab dependencies resolve through the
        # shared padded buffer.
        trailing = shape[1] * shape[2]
        slab_rows = max(1, BLOCKED_3D_THRESHOLD // max(trailing, 1))
        row = 0
        while row < shape[0]:
            rows = min(slab_rows, shape[0] - row)
            block_shape = (rows,) + shape[1:]
            block_active = _active_axes(block_shape, weights)
            plan = _plan_for(block_shape, block_active)
            n_waves += _decode_block(
                plan, padded_flat, residual_flat, diff_flats, weights,
                lorenzo_offsets, axis_offsets,
                pad_offset=(row) * padded_strides[0],
                orig_offset=row * trailing,
            )
            row += rows
    else:
        plan = _plan_for(shape, active)
        n_waves = _decode_block(
            plan, padded_flat, residual_flat, diff_flats, weights,
            lorenzo_offsets, axis_offsets,
        )

    if recorder.enabled:
        recorder.observe("sz.wavefront.decode_seconds", time.perf_counter() - start_time)
        recorder.count("sz.wavefront.points", n)
        recorder.count("sz.wavefront.waves", n_waves)

    return padded[tuple(slice(1, None) for _ in shape)].copy()
