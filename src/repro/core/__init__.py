"""The paper's contribution: cross-field prediction for lossy compression.

- :class:`~repro.core.cfnn.CFNN`: the Cross-Field Neural Network that predicts
  the first-order backward differences of a target field from the backward
  differences of anchor fields (paper Sections III-B and III-D2).
- :class:`~repro.core.hybrid.HybridPredictor`: the hybrid prediction model that
  combines the per-axis cross-field predictions with the Lorenzo prediction
  through learned weights (paper Section III-D3).
- :class:`~repro.core.compressor.CrossFieldCompressor`: the full compressor
  integrating both into the SZ dual-quantization pipeline (paper Section III-C).
- :mod:`repro.core.anchors`: the anchor-field configuration of paper Table III.
"""

from repro.core.anchors import AnchorSpec, get_anchor_spec, ANCHOR_TABLE, list_anchor_specs
from repro.core.cfnn import CFNN, CFNNConfig, build_cfnn_network
from repro.core.hybrid import HybridPredictor
from repro.core.training import TrainingConfig, make_difference_patches
from repro.core.compressor import (
    CrossFieldCompressor,
    FieldSetCompressionReport,
    compress_fieldset,
)

__all__ = [
    "AnchorSpec",
    "get_anchor_spec",
    "list_anchor_specs",
    "ANCHOR_TABLE",
    "CFNN",
    "CFNNConfig",
    "build_cfnn_network",
    "HybridPredictor",
    "TrainingConfig",
    "make_difference_patches",
    "CrossFieldCompressor",
    "FieldSetCompressionReport",
    "compress_fieldset",
]
