"""Anchor-field configuration (paper Table III).

The cross-field predictor needs to know, for every target field, which other
fields of the same dataset act as anchors.  The paper selects anchors by basic
physical reasoning (e.g. wind components and pressure to predict vertical wind)
and leaves automatic selection to future work; this module records the
paper's pairing for the three evaluated datasets and lets users register their
own specifications.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.data.fields import FieldSet
from repro.metrics.correlation import mutual_information_score

__all__ = ["AnchorSpec", "ANCHOR_TABLE", "get_anchor_spec", "list_anchor_specs", "suggest_anchors"]


@dataclass(frozen=True)
class AnchorSpec:
    """Which anchor fields predict a given target field of a dataset."""

    dataset: str
    target: str
    anchors: Tuple[str, ...]
    note: str = ""

    def validate(self, fieldset: FieldSet) -> None:
        """Check that the target and anchors exist in ``fieldset`` and are distinct."""
        missing = [name for name in (self.target, *self.anchors) if name not in fieldset]
        if missing:
            raise KeyError(
                f"field(s) {missing} not present in dataset {fieldset.name!r}; "
                f"available: {fieldset.names}"
            )
        if self.target in self.anchors:
            raise ValueError(f"target field {self.target!r} cannot be its own anchor")
        if len(set(self.anchors)) != len(self.anchors):
            raise ValueError("anchor fields must be distinct")
        if not self.anchors:
            raise ValueError("at least one anchor field is required")


#: The anchor/target combinations evaluated in the paper (Table III).
ANCHOR_TABLE: Dict[Tuple[str, str], AnchorSpec] = {}


def _register(spec: AnchorSpec) -> None:
    ANCHOR_TABLE[(spec.dataset.lower(), spec.target)] = spec


_register(AnchorSpec("scale", "RH", ("T", "QV", "PRES"), "humidity from temperature, vapour, pressure"))
_register(AnchorSpec("scale", "W", ("U", "V", "PRES"), "vertical wind from horizontal wind and pressure"))
_register(AnchorSpec("hurricane", "Wf", ("Uf", "Vf", "Pf"), "vertical wind from horizontal wind and pressure"))
_register(AnchorSpec("cesm", "CLDTOT", ("CLDLOW", "CLDMED", "CLDHGH"), "total cloud from per-level cloud"))
_register(AnchorSpec("cesm", "LWCF", ("FLUTC", "FLNT"), "longwave cloud forcing from radiative fluxes"))
_register(AnchorSpec("cesm", "FLUT", ("FLNT", "FLNTC", "FLUTC", "LWCF"), "upwelling flux from related fluxes"))


def get_anchor_spec(dataset: str, target: str) -> AnchorSpec:
    """Return the paper's anchor specification for ``(dataset, target)``."""
    key = (dataset.lower(), target)
    aliases = {"cesm-atm": "cesm", "scale-letkf": "scale", "hurricane-isabel": "hurricane"}
    key = (aliases.get(key[0], key[0]), key[1])
    if key not in ANCHOR_TABLE:
        available = sorted(f"{d}:{t}" for d, t in ANCHOR_TABLE)
        raise KeyError(f"no anchor spec for {dataset}:{target}; available: {available}")
    return ANCHOR_TABLE[key]


def list_anchor_specs(dataset: Optional[str] = None) -> List[AnchorSpec]:
    """All registered specs, optionally filtered by dataset name."""
    specs = list(ANCHOR_TABLE.values())
    if dataset is not None:
        dataset = dataset.lower()
        aliases = {"cesm-atm": "cesm", "scale-letkf": "scale", "hurricane-isabel": "hurricane"}
        dataset = aliases.get(dataset, dataset)
        specs = [s for s in specs if s.dataset == dataset]
    return specs


def suggest_anchors(
    fieldset: FieldSet,
    target: str,
    max_anchors: int = 3,
    bins: int = 48,
) -> AnchorSpec:
    """Heuristic automatic anchor selection by mutual information.

    The paper lists automatic anchor selection as future work; this helper
    provides a simple baseline for it: rank every other field by its mutual
    information with the target and keep the top ``max_anchors``.
    """
    if target not in fieldset:
        raise KeyError(f"target {target!r} not in dataset {fieldset.name!r}")
    if max_anchors < 1:
        raise ValueError("max_anchors must be positive")
    scores = []
    target_data = fieldset[target].data
    for name in fieldset.names:
        if name == target:
            continue
        scores.append((mutual_information_score(fieldset[name].data, target_data, bins=bins), name))
    scores.sort(reverse=True)
    chosen = tuple(name for _, name in scores[:max_anchors])
    if not chosen:
        raise ValueError("dataset has no candidate anchor fields")
    return AnchorSpec(fieldset.name.lower(), target, chosen, note="selected by mutual information")
