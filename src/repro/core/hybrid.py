"""The hybrid prediction model (paper Section III-D3).

After cross-field and Lorenzo prediction there are ``n + 1`` candidate
predictions for every point of an ``n``-dimensional field: one per-axis
cross-field prediction (previous value along that axis plus the CFNN-predicted
backward difference) and the Lorenzo prediction.  The hybrid model learns a
weighted sum of these candidates.  The paper keeps this model deliberately tiny
(4-5 parameters, Table III) because its evaluation sits inside the sequential
decompression loop.

Two fitting procedures are provided:

- ``lstsq``: closed-form least squares on the prequantized codes (default —
  equivalent to training the linear model to convergence);
- ``sgd``: iterative mini-batch gradient descent, which also produces the
  training-loss curve reproduced in paper Figure 5 (right panel).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.sz.predictors import lorenzo_predict
from repro.utils.validation import ensure_in

__all__ = ["HybridPredictor", "build_candidate_predictions"]


def build_candidate_predictions(
    codes: np.ndarray, diff_codes: Sequence[np.ndarray]
) -> np.ndarray:
    """Stack the ``n + 1`` candidate predictions for every point.

    Returns an array of shape ``(ndim + 1, *codes.shape)`` where index 0 is the
    Lorenzo prediction and index ``d + 1`` is the cross-field prediction along
    axis ``d`` (previous value along ``d`` plus the quantized predicted
    difference).  All candidates are computed from the prequantized codes, the
    same values the decoder reconstructs exactly.
    """
    codes = np.asarray(codes, dtype=np.int64)
    ndim = codes.ndim
    if len(diff_codes) != ndim:
        raise ValueError(f"expected {ndim} difference arrays, got {len(diff_codes)}")
    candidates = np.empty((ndim + 1,) + codes.shape, dtype=np.float64)
    candidates[0] = lorenzo_predict(codes)
    padded = np.zeros(tuple(s + 1 for s in codes.shape), dtype=np.int64)
    padded[tuple(slice(1, None) for _ in codes.shape)] = codes
    for d in range(ndim):
        diff = np.asarray(diff_codes[d], dtype=np.int64)
        if diff.shape != codes.shape:
            raise ValueError("difference arrays must match the code array shape")
        offsets = tuple(1 if axis == d else 0 for axis in range(ndim))
        index = tuple(
            slice(1 - off, 1 - off + size) for off, size in zip(offsets, codes.shape)
        )
        candidates[d + 1] = padded[index] + diff
    return candidates


@dataclass
class HybridPredictor:
    """Learned linear combination of the ``n + 1`` candidate predictions."""

    ndim: int
    weights: Optional[np.ndarray] = None
    loss_history: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.ndim not in (1, 2, 3):
            raise ValueError("HybridPredictor supports 1D-3D data")
        if self.weights is not None:
            self.weights = np.asarray(self.weights, dtype=np.float64)
            if self.weights.shape != (self.ndim + 1,):
                raise ValueError(f"weights must have shape ({self.ndim + 1},)")

    # ------------------------------------------------------------------ #
    # fitting
    # ------------------------------------------------------------------ #
    def fit(
        self,
        codes: np.ndarray,
        diff_codes: Sequence[np.ndarray],
        method: str = "lstsq",
        epochs: int = 30,
        learning_rate: float = 0.05,
        batch_size: int = 65536,
        sample_limit: int = 2_000_000,
        seed: int = 0,
        ridge: float = 1e-6,
    ) -> np.ndarray:
        """Fit the combination weights on the prequantized codes.

        Parameters mirror the two supported methods; ``sample_limit`` bounds the
        number of points used so fitting stays cheap on large fields.
        Returns the fitted weight vector.
        """
        ensure_in(method, ("lstsq", "sgd"), "method")
        codes = np.asarray(codes, dtype=np.int64)
        if codes.ndim != self.ndim:
            raise ValueError(f"codes must be {self.ndim}D")
        candidates = build_candidate_predictions(codes, diff_codes)
        design = candidates.reshape(self.ndim + 1, -1).T  # (N, ndim+1)
        target = codes.reshape(-1).astype(np.float64)

        rng = np.random.default_rng(seed)
        if design.shape[0] > sample_limit:
            keep = rng.choice(design.shape[0], size=sample_limit, replace=False)
            design = design[keep]
            target = target[keep]

        if method == "lstsq":
            gram = design.T @ design + ridge * np.eye(self.ndim + 1)
            rhs = design.T @ target
            self.weights = np.linalg.solve(gram, rhs)
            residual = design @ self.weights - target
            self.loss_history = [float(np.mean(residual**2))]
        else:
            weights = np.full(self.ndim + 1, 1.0 / (self.ndim + 1), dtype=np.float64)
            self.loss_history = []
            n = design.shape[0]
            for _ in range(epochs):
                order = rng.permutation(n)
                epoch_loss = 0.0
                for start in range(0, n, batch_size):
                    batch = order[start : start + batch_size]
                    pred = design[batch] @ weights
                    error = pred - target[batch]
                    grad = 2.0 * design[batch].T @ error / batch.size
                    # normalise the gradient scale by the candidate magnitude so the
                    # learning rate is dimensionless
                    scale = np.mean(design[batch] ** 2, axis=0) + 1e-12
                    weights -= learning_rate * grad / scale
                    epoch_loss += float(np.mean(error**2)) * batch.size
                self.loss_history.append(epoch_loss / n)
            self.weights = weights
        return self.weights

    # ------------------------------------------------------------------ #
    # use
    # ------------------------------------------------------------------ #
    def predict(self, codes: np.ndarray, diff_codes: Sequence[np.ndarray]) -> np.ndarray:
        """Hybrid prediction (rounded to the integer lattice) for every point."""
        if self.weights is None:
            raise RuntimeError("HybridPredictor has not been fitted")
        candidates = build_candidate_predictions(codes, diff_codes)
        combined = np.tensordot(self.weights, candidates, axes=(0, 0))
        return np.rint(combined).astype(np.int64)

    def weight_shares(self) -> Dict[str, float]:
        """Normalised absolute weight shares (the interpretation given in Section IV-B)."""
        if self.weights is None:
            raise RuntimeError("HybridPredictor has not been fitted")
        magnitude = np.abs(self.weights)
        total = float(magnitude.sum())
        if total == 0.0:
            shares = np.zeros_like(magnitude)
        else:
            shares = magnitude / total
        labels = ["lorenzo"] + [f"axis{d}" for d in range(self.ndim)]
        return {label: float(share) for label, share in zip(labels, shares)}

    @property
    def num_parameters(self) -> int:
        """Number of scalar parameters (the "Model Size Hybrid" column of Table III)."""
        return self.ndim + 1

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict:
        """JSON-serialisable state (weights are stored losslessly as floats)."""
        if self.weights is None:
            raise RuntimeError("HybridPredictor has not been fitted")
        return {"ndim": self.ndim, "weights": [float(w) for w in self.weights]}

    @classmethod
    def from_dict(cls, payload: Dict) -> "HybridPredictor":
        """Inverse of :meth:`to_dict`."""
        return cls(ndim=int(payload["ndim"]), weights=np.asarray(payload["weights"], dtype=np.float64))
