"""Training configuration and patch dataset construction for the CFNN.

The CFNN is trained on aligned patches sampled from the backward differences of
the anchor fields (inputs) and of the target field (outputs), both normalised
so the network operates on well-scaled values (paper Section III-B notes that
learning differences rather than raw values is what makes small models and
small input areas sufficient).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.data.differences import backward_differences_all_dims
from repro.data.slicing import extract_patches_nd
from repro.utils.validation import ensure_array

__all__ = ["TrainingConfig", "make_difference_patches", "normalisation_scales"]


@dataclass
class TrainingConfig:
    """Hyper-parameters for CFNN (and hybrid model) training.

    The defaults are sized for the scaled-down synthetic datasets so that a
    full compression run (training included) completes in seconds; they can be
    raised for full-resolution data.
    """

    epochs: int = 12
    batch_size: int = 8
    learning_rate: float = 2e-3
    n_patches: int = 96
    patch_size_2d: int = 32
    patch_size_3d: int = 12
    validation_fraction: float = 0.1
    clip_grad_norm: Optional[float] = 5.0
    seed: int = 1234

    def patch_shape(self, ndim: int, data_shape: Sequence[int]) -> Tuple[int, ...]:
        """Patch shape for ``ndim``-dimensional data, clamped to the data size."""
        if ndim == 2:
            base = (self.patch_size_2d, self.patch_size_2d)
        elif ndim == 3:
            base = (self.patch_size_3d,) * 3
        else:
            raise ValueError("training patches support 2D and 3D data only")
        return tuple(min(p, s) for p, s in zip(base, data_shape))

    def validate(self) -> None:
        """Sanity-check the hyper-parameters."""
        if self.epochs < 1:
            raise ValueError("epochs must be positive")
        if self.batch_size < 1:
            raise ValueError("batch_size must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.n_patches < 1:
            raise ValueError("n_patches must be positive")
        if not 0.0 <= self.validation_fraction < 1.0:
            raise ValueError("validation_fraction must be in [0, 1)")


def normalisation_scales(arrays: Sequence[np.ndarray], floor: float = 1e-8) -> np.ndarray:
    """Per-array scale factors (standard deviation, floored) used to normalise channels."""
    scales = []
    for arr in arrays:
        arr = np.asarray(arr, dtype=np.float64)
        scales.append(max(float(arr.std()), floor))
    return np.asarray(scales, dtype=np.float64)


def make_difference_patches(
    anchor_arrays: Sequence[np.ndarray],
    target_array: np.ndarray,
    config: TrainingConfig,
    anchor_scales: Optional[np.ndarray] = None,
    target_scales: Optional[np.ndarray] = None,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Build the CFNN training set.

    Returns ``(inputs, targets, anchor_scales, target_scales)`` where

    - ``inputs`` has shape ``(n_patches, n_anchors * ndim, *patch_shape)``: the
      normalised backward differences of every anchor along every axis,
    - ``targets`` has shape ``(n_patches, ndim, *patch_shape)``: the normalised
      backward differences of the target field,
    - the scale arrays are the per-channel normalisation factors (reused at
      inference time; the target scales are stored in the compressed stream).
    """
    config.validate()
    if rng is None:
        rng = np.random.default_rng(config.seed)
    target_array = ensure_array(target_array, "target_array", dtype=np.float64)
    ndim = target_array.ndim
    anchor_arrays = [ensure_array(a, "anchor", dtype=np.float64) for a in anchor_arrays]
    for a in anchor_arrays:
        if a.shape != target_array.shape:
            raise ValueError("anchor and target fields must share the same grid")

    anchor_diffs: List[np.ndarray] = []
    for anchor in anchor_arrays:
        anchor_diffs.extend(backward_differences_all_dims(anchor))
    target_diffs = backward_differences_all_dims(target_array)

    if anchor_scales is None:
        anchor_scales = normalisation_scales(anchor_diffs)
    else:
        anchor_scales = np.asarray(anchor_scales, dtype=np.float64)
        if anchor_scales.shape[0] != len(anchor_diffs):
            raise ValueError("anchor_scales length must equal n_anchors * ndim")
    if target_scales is None:
        target_scales = normalisation_scales(target_diffs)
    else:
        target_scales = np.asarray(target_scales, dtype=np.float64)
        if target_scales.shape[0] != ndim:
            raise ValueError("target_scales length must equal ndim")

    normalised_anchor = [d / s for d, s in zip(anchor_diffs, anchor_scales)]
    normalised_target = [d / s for d, s in zip(target_diffs, target_scales)]

    patch_shape = config.patch_shape(ndim, target_array.shape)
    all_arrays = normalised_anchor + normalised_target
    patches = extract_patches_nd(all_arrays, patch_shape, config.n_patches, rng=rng)
    anchor_patches = patches[: len(normalised_anchor)]
    target_patches = patches[len(normalised_anchor) :]

    inputs = np.stack(anchor_patches, axis=1)
    targets = np.stack(target_patches, axis=1)
    return inputs, targets, anchor_scales, target_scales
