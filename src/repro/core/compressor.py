"""The cross-field compressor (paper Section III).

:class:`CrossFieldCompressor` plugs the CFNN and the hybrid prediction model
into the dual-quantization SZ pipeline:

1. prequantize the target field onto the error-bound lattice;
2. train (or reuse) a CFNN on the anchor fields, predict the target's backward
   differences, and quantize them onto the same lattice;
3. fit the hybrid model combining the per-axis cross-field predictions with the
   Lorenzo prediction;
4. code the residuals of the hybrid prediction with the same entropy stage as
   the baseline; the serialised CFNN weights and the hybrid weights travel
   inside the compressed stream (their size counts against the ratio, exactly
   as in the paper's accounting).

Decompression reconstructs the CFNN from the stream, recomputes the cross-field
predictions from the *same anchor arrays* (callers must supply the anchors that
were used at compression time — normally the decompressed anchor fields), and
replays the prediction recurrence with the wavefront decoder.

:func:`compress_fieldset` orchestrates a whole dataset: anchors are compressed
with the baseline first, their reconstructions feed the cross-field compression
of the target, and a baseline result for the target is produced alongside for
the Table II style comparison.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.anchors import AnchorSpec
from repro.core.cfnn import CFNN, CFNNConfig
from repro.core.hybrid import HybridPredictor
from repro.core.training import TrainingConfig
from repro.data.fields import FieldSet
from repro.encoding.container import CompressedBlob
from repro.encoding.entropy import get_entropy_coder
from repro.encoding.lossless import get_backend
from repro.sz.decode import decode_weighted_sequential, decode_weighted_wavefront, weighted_predict_full
from repro.sz.errors import ErrorBound
from repro.sz.pipeline import CompressionResult, SZCompressor, decode_integer_stream, encode_integer_stream
from repro.sz.quantizer import (
    QUANT_RADIUS_DEFAULT,
    dequantize,
    effective_error_bound,
    prequantize,
)
from repro.utils.validation import ensure_array, ensure_in

__all__ = ["CrossFieldCompressor", "FieldSetCompressionReport", "compress_fieldset"]


class CrossFieldCompressor:
    """Error-bounded lossy compressor enhanced with cross-field prediction.

    Parameters
    ----------
    error_bound:
        Error bound (the paper sweeps value-range-relative bounds 5e-3 … 2e-4).
    cfnn_config:
        Optional architecture override; by default a configuration matching the
        number of anchors and the data dimensionality is built automatically.
    training:
        CFNN training hyper-parameters.
    hybrid_method:
        ``"lstsq"`` (default) or ``"sgd"`` fitting of the hybrid weights.
    include_model:
        Whether the serialised CFNN is embedded in the payload (default) — it
        then counts against the compression ratio, mirroring the paper.  Set to
        ``False`` only when an externally managed model is reused across many
        snapshots and should be accounted separately.
    allow_fallback:
        When True (default) the compressor also encodes the codes with the
        plain Lorenzo predictor and keeps whichever stream (hybrid + embedded
        model vs. local-only) is smaller, so weak cross-field signal can never
        make the output larger than the baseline by more than the metadata
        overhead.  Set to ``False`` to always store the hybrid stream.
    decoder:
        ``"wavefront"`` (default, the batched index-table decoder described in
        ``docs/architecture.md`` "The wavefront batch decoder") or
        ``"sequential"`` (the scalar reference path, bit-identical by the
        parity contract in ``tests/test_sz_parity.py``).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import CrossFieldCompressor, TrainingConfig
    >>> from repro.data import make_dataset
    >>> from repro.sz import ErrorBound
    >>> ds = make_dataset("cesm", shape=(48, 96))
    >>> anchors = [ds[n].data for n in ("CLDLOW", "CLDMED", "CLDHGH")]
    >>> comp = CrossFieldCompressor(error_bound=ErrorBound.relative(1e-3),
    ...                             training=TrainingConfig(epochs=2, n_patches=24))
    >>> result = comp.compress(ds["CLDTOT"].data, anchors)
    >>> recon = comp.decompress(result.payload, anchors)
    >>> bool(np.max(np.abs(recon - ds["CLDTOT"].data)) <= result.abs_error_bound)
    True
    """

    format_name = "sz-cross-field"

    def __init__(
        self,
        error_bound: ErrorBound = ErrorBound.relative(1e-3),
        cfnn_config: Optional[CFNNConfig] = None,
        training: Optional[TrainingConfig] = None,
        entropy: str = "huffman",
        backend: str = "zlib",
        quant_radius: int = QUANT_RADIUS_DEFAULT,
        tile_size: int = 64,
        hybrid_method: str = "lstsq",
        include_model: bool = True,
        allow_fallback: bool = True,
        decoder: str = "wavefront",
    ) -> None:
        if not isinstance(error_bound, ErrorBound):
            raise TypeError("error_bound must be an ErrorBound instance")
        ensure_in(hybrid_method, ("lstsq", "sgd"), "hybrid_method")
        ensure_in(decoder, ("wavefront", "sequential"), "decoder")
        get_entropy_coder(entropy)  # unknown names raise, listing the registry
        self.error_bound = error_bound
        self.cfnn_config = cfnn_config
        self.training = training if training is not None else TrainingConfig()
        self.entropy = entropy
        self.backend = backend
        self.quant_radius = int(quant_radius)
        self.tile_size = int(tile_size)
        self.hybrid_method = hybrid_method
        self.include_model = bool(include_model)
        self.allow_fallback = bool(allow_fallback)
        self.decoder = decoder

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _validate_anchors(
        self, target: np.ndarray, anchor_arrays: Sequence[np.ndarray]
    ) -> List[np.ndarray]:
        if not anchor_arrays:
            raise ValueError("cross-field compression needs at least one anchor field")
        anchors = [ensure_array(a, "anchor", dtype=np.float64) for a in anchor_arrays]
        for anchor in anchors:
            if anchor.shape != target.shape:
                raise ValueError(
                    f"anchor shape {anchor.shape} does not match target shape {target.shape}"
                )
        return anchors

    def _build_cfnn(self, n_anchors: int, ndim: int) -> CFNN:
        config = self.cfnn_config
        if config is None:
            if ndim == 2:
                config = CFNNConfig(n_anchors=n_anchors, ndim=2, hidden_channels=8, expanded_channels=16)
            else:
                config = CFNNConfig(n_anchors=n_anchors, ndim=3, hidden_channels=8, expanded_channels=16)
        if config.n_anchors != n_anchors or config.ndim != ndim:
            raise ValueError(
                "cfnn_config does not match the number of anchors / data dimensionality"
            )
        return CFNN(config, tile_size=self.tile_size)

    @staticmethod
    def _quantize_differences(
        predicted_diffs: Sequence[np.ndarray], abs_eb: float
    ) -> List[np.ndarray]:
        """Quantize predicted (float) backward differences onto the code lattice."""
        return [np.rint(np.asarray(d, dtype=np.float64) / (2.0 * abs_eb)).astype(np.int64) for d in predicted_diffs]

    # ------------------------------------------------------------------ #
    # compression
    # ------------------------------------------------------------------ #
    def compress(
        self,
        target_data: np.ndarray,
        anchor_arrays: Sequence[np.ndarray],
        field_name: str = "",
        cfnn: Optional[CFNN] = None,
    ) -> CompressionResult:
        """Compress ``target_data`` using ``anchor_arrays`` for cross-field prediction.

        ``anchor_arrays`` must be exactly the arrays that will be supplied again
        at decompression time (typically the decompressed anchor fields).  A
        pre-trained :class:`CFNN` can be passed via ``cfnn`` to reuse one model
        across several error bounds of the same field, as the paper does.
        """
        target_data = ensure_array(target_data, "target_data")
        if target_data.ndim not in (2, 3):
            raise ValueError("CrossFieldCompressor supports 2D and 3D data")
        anchors = self._validate_anchors(target_data, anchor_arrays)
        timings: Dict[str, float] = {}

        # stage 1: prequantization (identical to the baseline)
        t0 = time.perf_counter()
        abs_eb = self.error_bound.resolve(target_data)
        quant_eb = effective_error_bound(abs_eb)
        codes = prequantize(target_data, quant_eb)
        timings["prequantize"] = time.perf_counter() - t0

        # stage 2a: cross-field model
        t0 = time.perf_counter()
        if cfnn is None:
            cfnn = self._build_cfnn(len(anchors), target_data.ndim)
            cfnn.train(anchors, np.asarray(target_data, dtype=np.float64), self.training)
        elif not cfnn.is_trained:
            raise ValueError("a supplied CFNN must already be trained")
        # Round-trip the model through its serialised (float32) form so that the
        # predictions used for residual coding are bit-identical to what the
        # decompressor will compute from the embedded weights.
        model_bytes = cfnn.to_bytes()
        inference_model = CFNN.from_bytes(model_bytes)
        timings["train_cfnn"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        predicted_diffs = inference_model.predict_differences(anchors)
        diff_codes = self._quantize_differences(predicted_diffs, quant_eb)
        timings["cross_field_predict"] = time.perf_counter() - t0

        # stage 2b: hybrid combination
        t0 = time.perf_counter()
        hybrid = HybridPredictor(ndim=target_data.ndim)
        hybrid.fit(codes, diff_codes, method=self.hybrid_method)
        weights = np.asarray(hybrid.weights, dtype=np.float64)
        prediction = weighted_predict_full(codes, diff_codes, weights)
        residuals = codes - prediction
        from repro.sz.predictors import lorenzo_predict

        candidate_lorenzo = lorenzo_predict(codes)
        timings["hybrid_predict"] = time.perf_counter() - t0

        # stage 3: entropy coding.  The hybrid stream carries the embedded CFNN,
        # so its total size is compared against a plain Lorenzo encoding of the
        # same codes; if the local predictor alone is smaller (this happens when
        # the cross-field signal is weak and the model overhead dominates), the
        # compressor falls back to it — mirroring SZ's "best-fit predictor"
        # philosophy while keeping the error bound untouched.
        t0 = time.perf_counter()
        backend = get_backend(self.backend)
        sections, stream_meta = encode_integer_stream(
            residuals, self.entropy, self.backend, self.quant_radius
        )
        hybrid_total = sum(len(v) for v in sections.values())
        if self.include_model:
            model_section = backend.compress(model_bytes)
            hybrid_total += len(model_section)

        from repro.sz.predictors import lorenzo_transform

        lorenzo_sections, lorenzo_meta = encode_integer_stream(
            codes - candidate_lorenzo, self.entropy, self.backend, self.quant_radius
        )
        lorenzo_total = sum(len(v) for v in lorenzo_sections.values())

        use_fallback = self.allow_fallback and lorenzo_total < hybrid_total
        if use_fallback:
            sections, stream_meta = lorenzo_sections, lorenzo_meta
            mode = "lorenzo-fallback"
        else:
            mode = "hybrid"
            if self.include_model:
                sections["model.cfnn"] = model_section
        timings["encode"] = time.perf_counter() - t0

        metadata = {
            "format": self.format_name,
            "field_name": field_name,
            "shape": list(target_data.shape),
            "dtype": str(target_data.dtype),
            "error_bound": self.error_bound.to_dict(),
            "abs_error_bound": abs_eb,
            "stream": stream_meta,
            "hybrid": hybrid.to_dict(),
            "mode": mode,
            "n_anchors": len(anchors),
            "model_included": self.include_model and not use_fallback,
            "cfnn_parameters": cfnn.num_parameters,
            "hybrid_parameters": hybrid.num_parameters,
        }

        blob = CompressedBlob(metadata=metadata, sections=sections)
        payload = blob.to_bytes()
        result = CompressionResult(
            payload=payload,
            original_nbytes=int(target_data.nbytes),
            compressed_nbytes=len(payload),
            abs_error_bound=abs_eb,
            element_count=int(target_data.size),
            element_size=int(target_data.dtype.itemsize),
            section_sizes=blob.section_sizes(),
            timings=timings,
            metadata=metadata,
        )
        return result

    # ------------------------------------------------------------------ #
    # decompression
    # ------------------------------------------------------------------ #
    def decompress(
        self,
        payload: bytes,
        anchor_arrays: Sequence[np.ndarray],
        cfnn: Optional[CFNN] = None,
        scheduler=None,
    ) -> np.ndarray:
        """Decompress a payload produced by :meth:`compress`.

        ``anchor_arrays`` must match the arrays used at compression time.  When
        the payload was produced with ``include_model=False`` the same trained
        :class:`CFNN` must be supplied via ``cfnn``.  ``scheduler`` (optional)
        lets the entropy stage fan its checkpointed sub-blocks out across a
        :class:`~repro.parallel.engine.ChunkScheduler`.
        """
        blob = CompressedBlob.from_bytes(payload)
        metadata = blob.metadata
        if metadata.get("format") != self.format_name:
            raise ValueError(
                f"payload format {metadata.get('format')!r} is not {self.format_name!r}"
            )
        shape = tuple(metadata["shape"])
        dtype = np.dtype(metadata["dtype"])
        abs_eb = float(metadata["abs_error_bound"])
        quant_eb = effective_error_bound(abs_eb)
        backend = get_backend(metadata["stream"]["backend"])

        anchors = [ensure_array(a, "anchor", dtype=np.float64) for a in anchor_arrays]
        if len(anchors) != int(metadata["n_anchors"]):
            raise ValueError(
                f"payload was compressed with {metadata['n_anchors']} anchors, got {len(anchors)}"
            )
        for anchor in anchors:
            if anchor.shape != shape:
                raise ValueError("anchor arrays must match the compressed field's grid")

        residuals = decode_integer_stream(
            blob.sections, metadata["stream"], scheduler=scheduler
        ).reshape(shape)

        if metadata.get("mode") == "lorenzo-fallback":
            # the compressor determined that the pure local prediction encoded
            # smaller than the hybrid prediction (including the embedded model),
            # so the payload is a plain Lorenzo stream: no CFNN inference needed.
            weights = np.zeros(len(shape) + 1, dtype=np.float64)
            weights[0] = 1.0
            diff_codes = [np.zeros(shape, dtype=np.int64) for _ in range(len(shape))]
        else:
            if metadata.get("model_included", True):
                model = CFNN.from_bytes(backend.decompress(blob.get_section("model.cfnn")))
            else:
                if cfnn is None or not cfnn.is_trained:
                    raise ValueError(
                        "payload does not embed the CFNN; supply the trained model via `cfnn`"
                    )
                model = CFNN.from_bytes(cfnn.to_bytes())
            predicted_diffs = model.predict_differences(anchors)
            diff_codes = self._quantize_differences(predicted_diffs, quant_eb)
            weights = np.asarray(
                HybridPredictor.from_dict(metadata["hybrid"]).weights, dtype=np.float64
            )

        if self.decoder == "wavefront":
            codes = decode_weighted_wavefront(residuals, diff_codes, weights)
        else:
            codes = decode_weighted_sequential(residuals, diff_codes, weights)
        return dequantize(codes, quant_eb, dtype=dtype)


# --------------------------------------------------------------------------- #
# whole-dataset orchestration
# --------------------------------------------------------------------------- #
@dataclass
class FieldSetCompressionReport:
    """Results of compressing one target field of a dataset with both methods."""

    dataset: str
    target: str
    anchors: Tuple[str, ...]
    error_bound: ErrorBound
    baseline: CompressionResult
    cross_field: CompressionResult
    anchor_results: Dict[str, CompressionResult] = field(default_factory=dict)

    @property
    def improvement_percent(self) -> float:
        """Relative compression-ratio improvement of ours over the baseline (in %)."""
        return 100.0 * (self.cross_field.ratio / self.baseline.ratio - 1.0)

    def row(self) -> Dict[str, float]:
        """Flat dictionary matching one cell group of paper Table II."""
        return {
            "dataset": self.dataset,
            "field": self.target,
            "error_bound": self.error_bound.value,
            "baseline_ratio": self.baseline.ratio,
            "ours_ratio": self.cross_field.ratio,
            "improvement_percent": self.improvement_percent,
        }


def compress_fieldset(
    fieldset: FieldSet,
    spec: AnchorSpec,
    error_bound: ErrorBound,
    training: Optional[TrainingConfig] = None,
    cfnn: Optional[CFNN] = None,
    entropy: str = "huffman",
    backend: str = "zlib",
    baseline_predictor: str = "lorenzo",
) -> FieldSetCompressionReport:
    """Compress one target field of ``fieldset`` with both the baseline and ours.

    The anchor fields are first compressed/decompressed with the baseline at the
    same error bound (that is what would happen in a real multi-field snapshot),
    and their *reconstructions* drive the cross-field compression of the target —
    so the decompressor has exactly the same anchors available.
    """
    spec.validate(fieldset)
    training = training if training is not None else TrainingConfig()

    baseline_compressor = SZCompressor(
        error_bound=error_bound, predictor=baseline_predictor, entropy=entropy, backend=backend
    )

    anchor_results: Dict[str, CompressionResult] = {}
    decompressed_anchors: List[np.ndarray] = []
    for name in spec.anchors:
        anchor_result = baseline_compressor.compress(fieldset[name].data, field_name=name)
        anchor_results[name] = anchor_result
        decompressed_anchors.append(
            baseline_compressor.decompress(anchor_result.payload).astype(np.float64)
        )

    target_data = fieldset[spec.target].data
    baseline_result = baseline_compressor.compress(target_data, field_name=spec.target)

    cross_compressor = CrossFieldCompressor(
        error_bound=error_bound, training=training, entropy=entropy, backend=backend
    )
    cross_result = cross_compressor.compress(
        target_data, decompressed_anchors, field_name=spec.target, cfnn=cfnn
    )

    return FieldSetCompressionReport(
        dataset=spec.dataset,
        target=spec.target,
        anchors=spec.anchors,
        error_bound=error_bound,
        baseline=baseline_result,
        cross_field=cross_result,
        anchor_results=anchor_results,
    )
