"""The Cross-Field Neural Network (CFNN).

Architecture (paper Figure 4): an initial convolution extracting local spatial
features, a depthwise separable convolution module (depthwise + pointwise), a
channel attention block that re-weights the channels, and a final convolution
producing one output channel per data dimension — the predicted first-order
backward differences of the target field.

Design points carried over from the paper:

- inputs and outputs are *backward differences*, not raw values (Section III-B);
- the network is trained on normalised original data, so one trained model is
  reused for every error bound of the same field (Section III-D2);
- the model is deliberately compact (thousands of parameters, Table III)
  because its serialised weights are stored in the compressed stream.

Inference over a full field is tiled with a halo so memory stays bounded; the
tiling is deterministic and recorded in the compressed metadata, so compressor
and decompressor always produce identical predictions.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.training import TrainingConfig, make_difference_patches, normalisation_scales
from repro.data.differences import backward_differences_all_dims
from repro.nn import (
    Adam,
    ChannelAttention,
    Conv2d,
    Conv3d,
    DepthwiseSeparableConv2d,
    DepthwiseSeparableConv3d,
    MSELoss,
    ReLU,
    Sequential,
    Trainer,
    TrainingHistory,
    count_parameters,
    state_from_bytes,
    state_to_bytes,
)
from repro.utils.validation import ensure_array

__all__ = ["CFNNConfig", "build_cfnn_network", "CFNN"]


@dataclass
class CFNNConfig:
    """Architecture hyper-parameters of the CFNN."""

    n_anchors: int
    ndim: int
    hidden_channels: int = 16
    expanded_channels: int = 32
    kernel_size: int = 3
    attention_reduction: int = 4
    seed: int = 7

    def __post_init__(self) -> None:
        if self.ndim not in (2, 3):
            raise ValueError("CFNN supports 2D and 3D data")
        if self.n_anchors < 1:
            raise ValueError("at least one anchor field is required")
        if self.kernel_size % 2 == 0:
            raise ValueError("kernel_size must be odd ('same' padding)")

    @property
    def in_channels(self) -> int:
        """Input channels: one backward-difference channel per anchor per axis."""
        return self.n_anchors * self.ndim

    @property
    def out_channels(self) -> int:
        """Output channels: one predicted backward difference per axis."""
        return self.ndim

    @property
    def halo(self) -> int:
        """Receptive-field halo needed for exact tiled inference of the conv stack."""
        # three k-sized convolutions (initial, depthwise, final) with 'same' padding
        return 3 * (self.kernel_size // 2)

    def to_dict(self) -> Dict:
        """JSON-serialisable representation stored in the compressed metadata."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict) -> "CFNNConfig":
        """Inverse of :meth:`to_dict`."""
        return cls(**payload)


def build_cfnn_network(config: CFNNConfig, rng: Optional[np.random.Generator] = None) -> Sequential:
    """Instantiate the CFNN layer stack for the given configuration."""
    rng = rng if rng is not None else np.random.default_rng(config.seed)
    if config.ndim == 2:
        initial = Conv2d(config.in_channels, config.hidden_channels, config.kernel_size, rng=rng)
        separable = DepthwiseSeparableConv2d(
            config.hidden_channels, config.expanded_channels, config.kernel_size, rng=rng
        )
        final = Conv2d(config.expanded_channels, config.out_channels, config.kernel_size, rng=rng)
    else:
        initial = Conv3d(config.in_channels, config.hidden_channels, config.kernel_size, rng=rng)
        separable = DepthwiseSeparableConv3d(
            config.hidden_channels, config.expanded_channels, config.kernel_size, rng=rng
        )
        final = Conv3d(config.expanded_channels, config.out_channels, config.kernel_size, rng=rng)
    attention = ChannelAttention(config.expanded_channels, config.attention_reduction, rng=rng)
    return Sequential(initial, ReLU(), separable, ReLU(), attention, final)


class CFNN:
    """Cross-field predictor: trained CNN plus its normalisation state.

    Parameters
    ----------
    config:
        Architecture description (:class:`CFNNConfig`).
    tile_size:
        Spatial tile edge used for full-field inference (memory control).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import CFNN, CFNNConfig, TrainingConfig
    >>> rng = np.random.default_rng(0)
    >>> anchors = [rng.normal(size=(32, 32)).cumsum(axis=1) for _ in range(2)]
    >>> target = 0.5 * anchors[0] + 0.5 * anchors[1]
    >>> model = CFNN(CFNNConfig(n_anchors=2, ndim=2))
    >>> history = model.train(anchors, target, TrainingConfig(epochs=2, n_patches=16))
    >>> diffs = model.predict_differences(anchors)
    >>> len(diffs), diffs[0].shape
    (2, (32, 32))
    """

    def __init__(self, config: CFNNConfig, tile_size: int = 64) -> None:
        if tile_size < 4 * (config.kernel_size // 2) + 2:
            raise ValueError("tile_size too small for the receptive field")
        self.config = config
        self.tile_size = int(tile_size)
        self.network = build_cfnn_network(config)
        self.anchor_scales: Optional[np.ndarray] = None
        self.target_scales: Optional[np.ndarray] = None
        self.history: Optional[TrainingHistory] = None

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #
    @property
    def num_parameters(self) -> int:
        """Number of scalar parameters (the "Model Size CFNN" column of Table III)."""
        return count_parameters(self.network)

    @property
    def is_trained(self) -> bool:
        """Whether normalisation state exists (set by :meth:`train` or :meth:`from_bytes`)."""
        return self.anchor_scales is not None and self.target_scales is not None

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #
    def train(
        self,
        anchor_arrays: Sequence[np.ndarray],
        target_array: np.ndarray,
        training: Optional[TrainingConfig] = None,
    ) -> TrainingHistory:
        """Train the CFNN on aligned anchor/target backward-difference patches.

        The anchors should be the arrays that will also be available at
        decompression time (typically the *decompressed* anchor fields); the
        target is the original field being compressed (the paper trains on
        original values so one model serves every error bound).
        """
        if len(anchor_arrays) != self.config.n_anchors:
            raise ValueError(
                f"expected {self.config.n_anchors} anchor arrays, got {len(anchor_arrays)}"
            )
        training = training if training is not None else TrainingConfig()
        rng = np.random.default_rng(training.seed)
        inputs, targets, anchor_scales, target_scales = make_difference_patches(
            anchor_arrays, target_array, training, rng=rng
        )
        self.anchor_scales = anchor_scales
        self.target_scales = target_scales

        n_val = int(round(training.validation_fraction * inputs.shape[0]))
        validation = None
        if n_val > 0 and inputs.shape[0] - n_val >= training.batch_size:
            validation = (inputs[-n_val:], targets[-n_val:])
            inputs, targets = inputs[:-n_val], targets[:-n_val]

        optimizer = Adam(self.network.parameters(), lr=training.learning_rate)
        trainer = Trainer(
            self.network,
            optimizer,
            MSELoss(),
            batch_size=training.batch_size,
            clip_grad_norm=training.clip_grad_norm,
            rng=rng,
        )
        self.history = trainer.fit(inputs, targets, epochs=training.epochs, validation=validation)
        return self.history

    # ------------------------------------------------------------------ #
    # inference
    # ------------------------------------------------------------------ #
    def _prepare_input(self, anchor_arrays: Sequence[np.ndarray]) -> np.ndarray:
        """Stack normalised anchor backward differences into a (1, C, *S) tensor."""
        if self.anchor_scales is None:
            raise RuntimeError("CFNN has no normalisation state; train or load it first")
        if len(anchor_arrays) != self.config.n_anchors:
            raise ValueError(
                f"expected {self.config.n_anchors} anchor arrays, got {len(anchor_arrays)}"
            )
        diffs: List[np.ndarray] = []
        shape = None
        for anchor in anchor_arrays:
            anchor = ensure_array(anchor, "anchor", dtype=np.float64)
            if anchor.ndim != self.config.ndim:
                raise ValueError(
                    f"anchor has {anchor.ndim} dimensions, CFNN is configured for {self.config.ndim}"
                )
            if shape is None:
                shape = anchor.shape
            elif anchor.shape != shape:
                raise ValueError("anchor arrays must share the same grid")
            diffs.extend(backward_differences_all_dims(anchor))
        stacked = np.stack([d / s for d, s in zip(diffs, self.anchor_scales)], axis=0)
        return stacked[np.newaxis, ...]

    def _tiles(self, spatial_shape: Tuple[int, ...]):
        """Yield (core_slices, padded_slices, crop_slices) for halo-padded tiling."""
        halo = self.config.halo
        tile = self.tile_size
        starts = [range(0, s, tile) for s in spatial_shape]
        import itertools

        for combo in itertools.product(*starts):
            core = tuple(
                slice(start, min(start + tile, size)) for start, size in zip(combo, spatial_shape)
            )
            padded = tuple(
                slice(max(c.start - halo, 0), min(c.stop + halo, size))
                for c, size in zip(core, spatial_shape)
            )
            crop = tuple(
                slice(c.start - p.start, (c.start - p.start) + (c.stop - c.start))
                for c, p in zip(core, padded)
            )
            yield core, padded, crop

    def predict_differences(self, anchor_arrays: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Predict the target field's backward differences along every axis.

        Returns one float64 array per axis, in physical (de-normalised) units.
        Inference runs tile-by-tile with a receptive-field halo so arbitrarily
        large fields fit in memory; the tiling is deterministic, which is what
        keeps compressor and decompressor predictions identical.
        """
        if self.target_scales is None:
            raise RuntimeError("CFNN has no normalisation state; train or load it first")
        batch = self._prepare_input(anchor_arrays)
        spatial_shape = batch.shape[2:]
        output = np.zeros((self.config.out_channels,) + spatial_shape, dtype=np.float64)
        for core, padded, crop in self._tiles(spatial_shape):
            tile_input = batch[(slice(None), slice(None)) + padded]
            tile_output = self.network(tile_input)[0]
            output[(slice(None),) + core] = tile_output[(slice(None),) + crop]
        return [output[d] * self.target_scales[d] for d in range(self.config.out_channels)]

    # ------------------------------------------------------------------ #
    # serialization (weights + scales travel inside the compressed stream)
    # ------------------------------------------------------------------ #
    def to_bytes(self) -> bytes:
        """Serialise weights and normalisation scales to bytes (float32 payload)."""
        if not self.is_trained:
            raise RuntimeError("cannot serialise an untrained CFNN")
        import json
        import struct

        # float16 weight storage halves the embedded-model overhead; the
        # decompressor reloads the same rounded weights, so predictions stay
        # bit-identical between compression and decompression.
        weights = state_to_bytes(self.network, dtype=np.float16)
        header = {
            "config": self.config.to_dict(),
            "tile_size": self.tile_size,
            "anchor_scales": [float(s) for s in self.anchor_scales],
            "target_scales": [float(s) for s in self.target_scales],
        }
        header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
        return struct.pack("<I", len(header_bytes)) + header_bytes + weights

    @classmethod
    def from_bytes(cls, payload: bytes) -> "CFNN":
        """Reconstruct a trained CFNN serialised by :meth:`to_bytes`."""
        import json
        import struct

        (header_len,) = struct.unpack_from("<I", payload, 0)
        header = json.loads(payload[4 : 4 + header_len].decode("utf-8"))
        config = CFNNConfig.from_dict(header["config"])
        model = cls(config, tile_size=int(header["tile_size"]))
        model.anchor_scales = np.asarray(header["anchor_scales"], dtype=np.float64)
        model.target_scales = np.asarray(header["target_scales"], dtype=np.float64)
        state_from_bytes(model.network, payload[4 + header_len :])
        return model
