"""Size metrics: compression ratio and bit rate.

The paper reports both interchangeably (Section II-A): the compression ratio is
``original bytes / compressed bytes`` and the bit rate is the average number of
compressed bits per data point (32 bits per value for uncompressed
single-precision data).
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import ensure_positive

__all__ = ["compression_ratio", "bit_rate", "bit_rate_to_ratio", "ratio_to_bit_rate"]


def compression_ratio(original_nbytes: int, compressed_nbytes: int) -> float:
    """Ratio between original and compressed sizes (higher is better)."""
    ensure_positive(original_nbytes, "original_nbytes")
    ensure_positive(compressed_nbytes, "compressed_nbytes")
    return float(original_nbytes) / float(compressed_nbytes)


def bit_rate(compressed_nbytes: int, element_count: int) -> float:
    """Average compressed bits per data point."""
    ensure_positive(compressed_nbytes, "compressed_nbytes")
    ensure_positive(element_count, "element_count")
    return 8.0 * float(compressed_nbytes) / float(element_count)


def bit_rate_to_ratio(rate: float, element_bits: int = 32) -> float:
    """Convert a bit rate into a compression ratio for ``element_bits`` inputs."""
    ensure_positive(rate, "rate")
    ensure_positive(element_bits, "element_bits")
    return float(element_bits) / float(rate)


def ratio_to_bit_rate(ratio: float, element_bits: int = 32) -> float:
    """Convert a compression ratio into a bit rate for ``element_bits`` inputs."""
    ensure_positive(ratio, "ratio")
    ensure_positive(element_bits, "element_bits")
    return float(element_bits) / float(ratio)
