"""Point-wise distortion metrics for reconstructed data.

PSNR is the primary distortion metric in the paper's rate-distortion figures
(Figure 8); it follows the SDRBench/SZ convention of normalising by the value
range of the *original* data rather than a fixed peak value.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import ensure_array, ensure_shape_match

__all__ = ["mse", "rmse", "nrmse", "psnr", "max_abs_error", "mean_abs_error"]


def _pair(original, reconstructed):
    original = ensure_array(original, "original", dtype=np.float64)
    reconstructed = ensure_array(reconstructed, "reconstructed", dtype=np.float64)
    ensure_shape_match(original, reconstructed, "original", "reconstructed")
    return original, reconstructed


def mse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Mean squared error."""
    original, reconstructed = _pair(original, reconstructed)
    return float(np.mean((original - reconstructed) ** 2))


def rmse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Root mean squared error."""
    return float(np.sqrt(mse(original, reconstructed)))


def nrmse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """RMSE normalised by the value range of the original data.

    Returns the plain RMSE when the original is constant (zero range).
    """
    original, reconstructed = _pair(original, reconstructed)
    value_range = float(np.max(original) - np.min(original))
    root = float(np.sqrt(np.mean((original - reconstructed) ** 2)))
    if value_range == 0.0:
        return root
    return root / value_range


def psnr(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB, SZ/SDRBench convention.

    ``PSNR = 20 * log10(range(original)) - 10 * log10(MSE)``.  Identical arrays
    return ``inf``.
    """
    original, reconstructed = _pair(original, reconstructed)
    error = mse(original, reconstructed)
    if error == 0.0:
        return float("inf")
    value_range = float(np.max(original) - np.min(original))
    if value_range == 0.0:
        value_range = 1.0
    return float(20.0 * np.log10(value_range) - 10.0 * np.log10(error))


def max_abs_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Maximum point-wise absolute error (the quantity the error bound constrains)."""
    original, reconstructed = _pair(original, reconstructed)
    return float(np.max(np.abs(original - reconstructed)))


def mean_abs_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Mean point-wise absolute error."""
    original, reconstructed = _pair(original, reconstructed)
    return float(np.mean(np.abs(original - reconstructed)))
