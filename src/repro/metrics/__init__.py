"""Quality and size metrics used in the paper's evaluation.

Distortion metrics (PSNR, MSE, NRMSE, maximum error), structural similarity
(SSIM), size metrics (compression ratio, bit rate), rate-distortion curve
helpers, and cross-field correlation measures.
"""

from repro.metrics.distortion import mse, rmse, nrmse, psnr, max_abs_error, mean_abs_error
from repro.metrics.ssim import ssim
from repro.metrics.ratio import compression_ratio, bit_rate, bit_rate_to_ratio, ratio_to_bit_rate
from repro.metrics.rate_distortion import RatePoint, RateDistortionCurve
from repro.metrics.correlation import pearson_correlation, cross_field_correlation_matrix, mutual_information_score

__all__ = [
    "mse",
    "rmse",
    "nrmse",
    "psnr",
    "max_abs_error",
    "mean_abs_error",
    "ssim",
    "compression_ratio",
    "bit_rate",
    "bit_rate_to_ratio",
    "ratio_to_bit_rate",
    "RatePoint",
    "RateDistortionCurve",
    "pearson_correlation",
    "cross_field_correlation_matrix",
    "mutual_information_score",
]
