"""Cross-field correlation measures (paper Figure 1 and Section III-A).

The paper motivates cross-field prediction by the visually obvious, but
nonlinear, correlation between fields such as U/V/W in SCALE.  These helpers
quantify that: plain Pearson correlation, a correlation matrix over a whole
:class:`~repro.data.fields.FieldSet`, and a histogram-based mutual-information
score that also captures nonlinear dependence.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.data.fields import FieldSet
from repro.utils.validation import ensure_array, ensure_shape_match

__all__ = [
    "pearson_correlation",
    "cross_field_correlation_matrix",
    "mutual_information_score",
]


def pearson_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Pearson correlation coefficient between two equally shaped arrays.

    Returns 0.0 when either array is constant.
    """
    a = ensure_array(a, "a", dtype=np.float64).ravel()
    b = ensure_array(b, "b", dtype=np.float64).ravel()
    ensure_shape_match(a, b, "a", "b")
    a = a - a.mean()
    b = b - b.mean()
    denom = np.sqrt(np.sum(a * a) * np.sum(b * b))
    if denom == 0.0:
        return 0.0
    return float(np.sum(a * b) / denom)


def mutual_information_score(a: np.ndarray, b: np.ndarray, bins: int = 64) -> float:
    """Histogram-estimated mutual information (in bits) between two arrays.

    Captures nonlinear dependence the Pearson coefficient misses — the kind of
    relationship the CFNN is designed to exploit.
    """
    a = ensure_array(a, "a", dtype=np.float64).ravel()
    b = ensure_array(b, "b", dtype=np.float64).ravel()
    ensure_shape_match(a, b, "a", "b")
    if bins < 2:
        raise ValueError("bins must be at least 2")
    joint, _, _ = np.histogram2d(a, b, bins=bins)
    total = joint.sum()
    if total == 0:
        return 0.0
    p_xy = joint / total
    p_x = p_xy.sum(axis=1, keepdims=True)
    p_y = p_xy.sum(axis=0, keepdims=True)
    mask = p_xy > 0
    ratio = np.zeros_like(p_xy)
    ratio[mask] = p_xy[mask] / (p_x @ p_y)[mask]
    return float(np.sum(p_xy[mask] * np.log2(ratio[mask])))


def cross_field_correlation_matrix(
    fieldset: FieldSet,
    names: Optional[Sequence[str]] = None,
    method: str = "pearson",
    bins: int = 64,
) -> Dict[str, Dict[str, float]]:
    """Pairwise correlation (or mutual information) matrix over a field set.

    Returns a nested dictionary ``{field_a: {field_b: score}}``; the diagonal is
    included (1.0 for Pearson, the field's self-information for MI).
    """
    if names is None:
        names = fieldset.names
    if method not in ("pearson", "mutual_information"):
        raise ValueError("method must be 'pearson' or 'mutual_information'")
    matrix: Dict[str, Dict[str, float]] = {}
    for name_a in names:
        row: Dict[str, float] = {}
        for name_b in names:
            a = fieldset[name_a].data
            b = fieldset[name_b].data
            if method == "pearson":
                row[name_b] = pearson_correlation(a, b)
            else:
                row[name_b] = mutual_information_score(a, b, bins=bins)
        matrix[name_a] = row
    return matrix
