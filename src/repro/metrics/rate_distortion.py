"""Rate-distortion curve containers (paper Figure 8).

A rate-distortion curve collects (bit-rate, PSNR) points measured at different
error bounds for one compressor on one field.  The container keeps the points
sorted by bit rate, can interpolate PSNR at a given rate (for matched-rate
comparisons such as paper Figure 9), and can be rendered as the text series the
benchmark harness prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

__all__ = ["RatePoint", "RateDistortionCurve"]


@dataclass(frozen=True)
class RatePoint:
    """A single rate-distortion measurement."""

    bit_rate: float
    psnr: float
    error_bound: float = float("nan")
    compression_ratio: float = float("nan")
    ssim: float = float("nan")

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for report serialization."""
        return {
            "bit_rate": self.bit_rate,
            "psnr": self.psnr,
            "error_bound": self.error_bound,
            "compression_ratio": self.compression_ratio,
            "ssim": self.ssim,
        }


@dataclass
class RateDistortionCurve:
    """Named collection of :class:`RatePoint`, kept sorted by bit rate."""

    label: str
    points: List[RatePoint] = field(default_factory=list)

    def add(self, point: RatePoint) -> None:
        """Insert a point, keeping the curve sorted by bit rate."""
        self.points.append(point)
        self.points.sort(key=lambda p: p.bit_rate)

    def add_measurement(
        self,
        bit_rate: float,
        psnr: float,
        error_bound: float = float("nan"),
        compression_ratio: float = float("nan"),
        ssim: float = float("nan"),
    ) -> None:
        """Convenience wrapper building the :class:`RatePoint` inline."""
        self.add(RatePoint(bit_rate, psnr, error_bound, compression_ratio, ssim))

    @property
    def bit_rates(self) -> np.ndarray:
        """Bit rates in ascending order."""
        return np.array([p.bit_rate for p in self.points], dtype=np.float64)

    @property
    def psnrs(self) -> np.ndarray:
        """PSNR values matching :attr:`bit_rates`."""
        return np.array([p.psnr for p in self.points], dtype=np.float64)

    def psnr_at(self, bit_rate: float) -> float:
        """PSNR linearly interpolated at ``bit_rate`` (clamped to the range)."""
        if not self.points:
            raise ValueError("curve has no points")
        rates = self.bit_rates
        values = self.psnrs
        return float(np.interp(bit_rate, rates, values))

    def average_psnr_gain_over(self, other: "RateDistortionCurve") -> float:
        """Mean PSNR difference (self - other) over the shared bit-rate range.

        This is the Bjøntegaard-style summary used to compare the "ours" and
        "baseline" curves of paper Figure 8.  When the two curves do not overlap
        in bit rate, the comparison falls back to clamped interpolation over the
        union of both ranges (each curve is evaluated at its nearest endpoint
        outside its own range).
        """
        if not self.points or not other.points:
            raise ValueError("both curves need at least one point")
        lo = max(self.bit_rates.min(), other.bit_rates.min())
        hi = min(self.bit_rates.max(), other.bit_rates.max())
        if hi <= lo:
            lo = min(self.bit_rates.min(), other.bit_rates.min())
            hi = max(self.bit_rates.max(), other.bit_rates.max())
        grid = np.linspace(lo, hi, 64)
        return float(np.mean([self.psnr_at(r) - other.psnr_at(r) for r in grid]))

    def to_table(self) -> List[Dict[str, float]]:
        """List of per-point dictionaries (report serialization)."""
        return [p.as_dict() for p in self.points]

    def format(self) -> str:
        """Text rendering of the series, one ``bit_rate psnr`` pair per line."""
        lines = [f"# {self.label}"]
        for p in self.points:
            lines.append(f"{p.bit_rate:8.4f}  {p.psnr:8.3f}")
        return "\n".join(lines)
