"""Structural Similarity Index (SSIM).

SSIM is the second data-quality metric named in paper Section II-A.  The
implementation follows Wang et al. (2004) with a Gaussian sliding window,
computed with separable Gaussian filtering so it stays fast on the large 2D
slices used in the visual experiments.  3D inputs are evaluated slice-by-slice
along the first axis and averaged.
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import gaussian_filter

from repro.utils.validation import ensure_array, ensure_shape_match

__all__ = ["ssim"]


def _ssim_2d(
    x: np.ndarray,
    y: np.ndarray,
    data_range: float,
    sigma: float,
    k1: float,
    k2: float,
) -> float:
    c1 = (k1 * data_range) ** 2
    c2 = (k2 * data_range) ** 2

    mu_x = gaussian_filter(x, sigma)
    mu_y = gaussian_filter(y, sigma)
    mu_x2 = mu_x * mu_x
    mu_y2 = mu_y * mu_y
    mu_xy = mu_x * mu_y

    sigma_x2 = gaussian_filter(x * x, sigma) - mu_x2
    sigma_y2 = gaussian_filter(y * y, sigma) - mu_y2
    sigma_xy = gaussian_filter(x * y, sigma) - mu_xy

    numerator = (2.0 * mu_xy + c1) * (2.0 * sigma_xy + c2)
    denominator = (mu_x2 + mu_y2 + c1) * (sigma_x2 + sigma_y2 + c2)
    return float(np.mean(numerator / denominator))


def ssim(
    original: np.ndarray,
    reconstructed: np.ndarray,
    data_range: float | None = None,
    sigma: float = 1.5,
    k1: float = 0.01,
    k2: float = 0.03,
) -> float:
    """Mean SSIM between ``original`` and ``reconstructed``.

    Parameters
    ----------
    original, reconstructed:
        Arrays of identical shape; 1D, 2D or 3D.  3D volumes are scored as the
        average SSIM over 2D slices along the first axis.
    data_range:
        Dynamic range used for the stabilising constants; defaults to the value
        range of ``original`` (or 1.0 for constant data).
    sigma:
        Standard deviation of the Gaussian window.
    k1, k2:
        Stabilisation constants from the original SSIM paper.
    """
    original = ensure_array(original, "original", dtype=np.float64)
    reconstructed = ensure_array(reconstructed, "reconstructed", dtype=np.float64)
    ensure_shape_match(original, reconstructed, "original", "reconstructed")
    if data_range is None:
        data_range = float(np.max(original) - np.min(original))
        if data_range == 0.0:
            data_range = 1.0
    if original.ndim == 1:
        original = original[np.newaxis, :]
        reconstructed = reconstructed[np.newaxis, :]
    if original.ndim == 2:
        return _ssim_2d(original, reconstructed, data_range, sigma, k1, k2)
    if original.ndim == 3:
        scores = [
            _ssim_2d(original[i], reconstructed[i], data_range, sigma, k1, k2)
            for i in range(original.shape[0])
        ]
        return float(np.mean(scores))
    raise ValueError("ssim supports 1D, 2D and 3D arrays")
