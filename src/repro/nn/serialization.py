"""Model parameter (de)serialisation and size accounting.

The compressed stream has to embed the CFNN and hybrid-model parameters (the
paper counts them against the compressed size and reports them in Table III),
so models must serialise to a compact, self-describing byte string: a JSON
header with parameter names/shapes followed by raw ``float32`` data.
"""

from __future__ import annotations

import json
import struct
from typing import Dict

import numpy as np

from repro.nn.module import Module

__all__ = ["state_to_bytes", "state_from_bytes", "count_parameters", "parameter_nbytes"]


def count_parameters(model: Module) -> int:
    """Number of scalar trainable parameters in ``model``."""
    return model.num_parameters()


def parameter_nbytes(model: Module, dtype=np.float32) -> int:
    """Bytes required to store the raw parameters of ``model`` in ``dtype``."""
    return count_parameters(model) * np.dtype(dtype).itemsize


def state_to_bytes(model: Module, dtype=np.float32) -> bytes:
    """Serialise a model's parameters: JSON header + packed raw values."""
    state = model.state_dict()
    header = {
        "dtype": np.dtype(dtype).name,
        "params": [
            {"name": name, "shape": list(np.asarray(value).shape)}
            for name, value in state.items()
        ],
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    body = b"".join(np.asarray(value, dtype=dtype).tobytes() for value in state.values())
    return struct.pack("<I", len(header_bytes)) + header_bytes + body


def state_from_bytes(model: Module, payload: bytes) -> Module:
    """Load parameters serialised by :func:`state_to_bytes` into ``model`` (in place)."""
    if len(payload) < 4:
        raise ValueError("payload too small to contain a model state header")
    (header_len,) = struct.unpack_from("<I", payload, 0)
    header = json.loads(payload[4 : 4 + header_len].decode("utf-8"))
    dtype = np.dtype(header["dtype"])
    offset = 4 + header_len
    state: Dict[str, np.ndarray] = {}
    for entry in header["params"]:
        shape = tuple(int(s) for s in entry["shape"])
        count = int(np.prod(shape)) if shape else 1
        nbytes = count * dtype.itemsize
        chunk = payload[offset : offset + nbytes]
        if len(chunk) != nbytes:
            raise ValueError(f"truncated state payload for parameter {entry['name']!r}")
        state[entry["name"]] = np.frombuffer(chunk, dtype=dtype).reshape(shape).astype(np.float64)
        offset += nbytes
    model.load_state_dict(state)
    return model
