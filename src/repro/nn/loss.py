"""Loss functions.

The paper trains both the CFNN and the hybrid prediction model with mean
squared error (Section IV-B, Figure 5); mean absolute error is provided for
ablations.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["MSELoss", "MAELoss"]


class MSELoss:
    """Mean squared error over all elements."""

    def __init__(self) -> None:
        self._diff: Optional[np.ndarray] = None
        self._count: int = 0

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        prediction = np.asarray(prediction, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        if prediction.shape != target.shape:
            raise ValueError(
                f"prediction shape {prediction.shape} does not match target shape {target.shape}"
            )
        self._diff = prediction - target
        self._count = prediction.size
        return float(np.mean(self._diff**2))

    def backward(self) -> np.ndarray:
        """Gradient of the loss with respect to the prediction."""
        if self._diff is None:
            raise RuntimeError("backward called before forward")
        return 2.0 * self._diff / self._count

    __call__ = forward


class MAELoss:
    """Mean absolute error over all elements."""

    def __init__(self) -> None:
        self._diff: Optional[np.ndarray] = None
        self._count: int = 0

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        prediction = np.asarray(prediction, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        if prediction.shape != target.shape:
            raise ValueError(
                f"prediction shape {prediction.shape} does not match target shape {target.shape}"
            )
        self._diff = prediction - target
        self._count = prediction.size
        return float(np.mean(np.abs(self._diff)))

    def backward(self) -> np.ndarray:
        """Sub-gradient of the loss with respect to the prediction."""
        if self._diff is None:
            raise RuntimeError("backward called before forward")
        return np.sign(self._diff) / self._count

    __call__ = forward
