"""Core tensor operations for the NumPy NN substrate.

Implements N-dimensional (2D and 3D) cross-correlation ("convolution" in deep
learning parlance) with stride 1 and symmetric zero padding, plus its backward
pass, using ``numpy.lib.stride_tricks.sliding_window_view`` so the forward pass
is a single tensor contraction.  Depthwise (per-channel) convolution has its own
pair of functions because its contraction pattern differs.

All functions operate on ``(batch, channels, *spatial)`` arrays in float64.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

__all__ = [
    "pad_spatial",
    "conv_forward",
    "conv_backward",
    "depthwise_conv_forward",
    "depthwise_conv_backward",
    "sigmoid",
    "relu",
]


def pad_spatial(x: np.ndarray, padding: Sequence[int]) -> np.ndarray:
    """Zero-pad the spatial dimensions of a ``(N, C, *S)`` tensor symmetrically."""
    pads = [(0, 0), (0, 0)] + [(int(p), int(p)) for p in padding]
    if all(p == 0 for p in padding):
        return x
    return np.pad(x, pads)


def _check_conv_args(x: np.ndarray, kernel_spatial: Tuple[int, ...], padding: Sequence[int]):
    spatial = x.ndim - 2
    if spatial not in (1, 2, 3):
        raise ValueError(f"convolutions support 1-3 spatial dimensions, got {spatial}")
    if len(kernel_spatial) != spatial:
        raise ValueError("kernel rank does not match input rank")
    if len(padding) != spatial:
        raise ValueError("padding must provide one value per spatial dimension")
    for size, k, p in zip(x.shape[2:], kernel_spatial, padding):
        if size + 2 * p < k:
            raise ValueError(
                f"spatial size {size} with padding {p} is smaller than kernel size {k}"
            )


# --------------------------------------------------------------------------- #
# standard convolution
# --------------------------------------------------------------------------- #
def conv_forward(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray],
    padding: Sequence[int],
) -> Tuple[np.ndarray, Tuple]:
    """Cross-correlate ``x`` (N, Cin, *S) with ``weight`` (Cout, Cin, *K), stride 1.

    Returns ``(output, cache)`` where the cache carries what
    :func:`conv_backward` needs.
    """
    kernel_spatial = weight.shape[2:]
    _check_conv_args(x, kernel_spatial, padding)
    spatial = x.ndim - 2
    xp = pad_spatial(x, padding)
    windows = sliding_window_view(xp, kernel_spatial, axis=tuple(range(2, 2 + spatial)))
    # windows: (N, Cin, *S_out, *K)
    contract_windows = (1,) + tuple(range(2 + spatial, 2 + 2 * spatial))
    contract_weight = (1,) + tuple(range(2, 2 + spatial))
    out = np.tensordot(windows, weight, axes=(contract_windows, contract_weight))
    # out: (N, *S_out, Cout) -> (N, Cout, *S_out)
    out = np.moveaxis(out, -1, 1)
    if bias is not None:
        out = out + bias.reshape((1, -1) + (1,) * spatial)
    cache = (x.shape, xp, windows, weight, tuple(int(p) for p in padding))
    return np.ascontiguousarray(out), cache


def conv_backward(
    grad_output: np.ndarray, cache: Tuple
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Backward pass of :func:`conv_forward`.

    Returns ``(grad_input, grad_weight, grad_bias)``.
    """
    x_shape, xp, windows, weight, padding = cache
    spatial = len(x_shape) - 2
    out_spatial = grad_output.shape[2:]

    grad_bias = grad_output.sum(axis=(0,) + tuple(range(2, 2 + spatial)))

    # grad_weight: contract batch and output-spatial dims of grad_output / windows
    axes_g = (0,) + tuple(range(2, 2 + spatial))
    axes_w = (0,) + tuple(range(2, 2 + spatial))
    grad_weight = np.tensordot(grad_output, windows, axes=(axes_g, axes_w))
    # result: (Cout, Cin, *K)

    # grad_input: scatter each kernel offset's contribution back onto the padded grid
    grad_xp = np.zeros_like(xp)
    kernel_spatial = weight.shape[2:]
    for offset in np.ndindex(*kernel_spatial):
        w_slice = weight[(slice(None), slice(None)) + offset]  # (Cout, Cin)
        contrib = np.tensordot(grad_output, w_slice, axes=([1], [0]))  # (N, *S_out, Cin)
        contrib = np.moveaxis(contrib, -1, 1)
        slices = (slice(None), slice(None)) + tuple(
            slice(o, o + s) for o, s in zip(offset, out_spatial)
        )
        grad_xp[slices] += contrib
    unpad = (slice(None), slice(None)) + tuple(
        slice(p, p + s) for p, s in zip(padding, x_shape[2:])
    )
    grad_input = grad_xp[unpad]
    return np.ascontiguousarray(grad_input), grad_weight, grad_bias


# --------------------------------------------------------------------------- #
# depthwise convolution
# --------------------------------------------------------------------------- #
def depthwise_conv_forward(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray],
    padding: Sequence[int],
) -> Tuple[np.ndarray, Tuple]:
    """Depthwise cross-correlation: ``weight`` has shape (C, *K), one filter per channel."""
    kernel_spatial = weight.shape[1:]
    _check_conv_args(x, kernel_spatial, padding)
    spatial = x.ndim - 2
    channels = x.shape[1]
    if weight.shape[0] != channels:
        raise ValueError(f"weight covers {weight.shape[0]} channels, input has {channels}")
    xp = pad_spatial(x, padding)
    windows = sliding_window_view(xp, kernel_spatial, axis=tuple(range(2, 2 + spatial)))
    # windows: (N, C, *S_out, *K); contract the kernel dims against weight per channel
    if spatial == 2:
        out = np.einsum("ncabij,cij->ncab", windows, weight, optimize=True)
    elif spatial == 3:
        out = np.einsum("ncabdijk,cijk->ncabd", windows, weight, optimize=True)
    else:  # spatial == 1
        out = np.einsum("ncai,ci->nca", windows, weight, optimize=True)
    if bias is not None:
        out = out + bias.reshape((1, -1) + (1,) * spatial)
    cache = (x.shape, xp, windows, weight, tuple(int(p) for p in padding))
    return np.ascontiguousarray(out), cache


def depthwise_conv_backward(
    grad_output: np.ndarray, cache: Tuple
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Backward pass of :func:`depthwise_conv_forward`."""
    x_shape, xp, windows, weight, padding = cache
    spatial = len(x_shape) - 2
    out_spatial = grad_output.shape[2:]

    grad_bias = grad_output.sum(axis=(0,) + tuple(range(2, 2 + spatial)))

    if spatial == 2:
        grad_weight = np.einsum("ncabij,ncab->cij", windows, grad_output, optimize=True)
    elif spatial == 3:
        grad_weight = np.einsum("ncabdijk,ncabd->cijk", windows, grad_output, optimize=True)
    else:
        grad_weight = np.einsum("ncai,nca->ci", windows, grad_output, optimize=True)

    grad_xp = np.zeros_like(xp)
    kernel_spatial = weight.shape[1:]
    for offset in np.ndindex(*kernel_spatial):
        w_slice = weight[(slice(None),) + offset]  # (C,)
        contrib = grad_output * w_slice.reshape((1, -1) + (1,) * spatial)
        slices = (slice(None), slice(None)) + tuple(
            slice(o, o + s) for o, s in zip(offset, out_spatial)
        )
        grad_xp[slices] += contrib
    unpad = (slice(None), slice(None)) + tuple(
        slice(p, p + s) for p, s in zip(padding, x_shape[2:])
    )
    grad_input = grad_xp[unpad]
    return np.ascontiguousarray(grad_input), grad_weight, grad_bias


# --------------------------------------------------------------------------- #
# activations (stateless helpers)
# --------------------------------------------------------------------------- #
def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(x, dtype=np.float64)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)
