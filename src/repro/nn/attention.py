"""Channel attention block (CBAM-style).

The CFNN refines the features produced by the depthwise separable convolution
with a channel attention mechanism (paper Section III-D2): global average
pooling and global max pooling produce two compact per-channel descriptors,
both are passed through a small shared two-layer MLP, the results are summed
and squashed with a sigmoid to give per-channel weights, and the feature map is
rescaled by those weights.

The block works for both 2D and 3D feature maps (any number of trailing spatial
dimensions).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.functional import sigmoid
from repro.nn.initializers import xavier_uniform, zeros_init
from repro.nn.module import Module, Parameter

__all__ = ["ChannelAttention"]


class ChannelAttention(Module):
    """CBAM channel attention: ``out = x * sigmoid(MLP(avgpool(x)) + MLP(maxpool(x)))``."""

    def __init__(
        self,
        channels: int,
        reduction: int = 4,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if channels < 1:
            raise ValueError("channels must be positive")
        if reduction < 1:
            raise ValueError("reduction must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.channels = int(channels)
        self.hidden = max(1, int(channels) // int(reduction))
        # shared MLP weights (used by both the average-pool and max-pool branches)
        self.w1 = self.register_parameter("w1", Parameter(xavier_uniform((self.hidden, channels), rng)))
        self.b1 = self.register_parameter("b1", Parameter(zeros_init((self.hidden,))))
        self.w2 = self.register_parameter("w2", Parameter(xavier_uniform((channels, self.hidden), rng)))
        self.b2 = self.register_parameter("b2", Parameter(zeros_init((channels,))))
        self._cache: Optional[Tuple] = None

    # ------------------------------------------------------------------ #
    # shared MLP helpers
    # ------------------------------------------------------------------ #
    def _mlp_forward(self, pooled: np.ndarray) -> Tuple[np.ndarray, Tuple]:
        hidden_pre = pooled @ self.w1.data.T + self.b1.data
        hidden = np.maximum(hidden_pre, 0.0)
        out = hidden @ self.w2.data.T + self.b2.data
        return out, (pooled, hidden_pre, hidden)

    def _mlp_backward(self, grad_out: np.ndarray, cache: Tuple) -> np.ndarray:
        pooled, hidden_pre, hidden = cache
        self.w2.grad += grad_out.T @ hidden
        self.b2.grad += grad_out.sum(axis=0)
        grad_hidden = grad_out @ self.w2.data
        grad_hidden_pre = grad_hidden * (hidden_pre > 0)
        self.w1.grad += grad_hidden_pre.T @ pooled
        self.b1.grad += grad_hidden_pre.sum(axis=0)
        return grad_hidden_pre @ self.w1.data

    # ------------------------------------------------------------------ #
    # forward / backward
    # ------------------------------------------------------------------ #
    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim < 3:
            raise ValueError("ChannelAttention expects (batch, channels, *spatial) input")
        if x.shape[1] != self.channels:
            raise ValueError(f"expected {self.channels} channels, got {x.shape[1]}")
        batch = x.shape[0]
        spatial_axes = tuple(range(2, x.ndim))
        n_spatial = int(np.prod(x.shape[2:]))

        flat = x.reshape(batch, self.channels, n_spatial)
        avg_pool = flat.mean(axis=2)
        argmax = flat.argmax(axis=2)
        max_pool = np.take_along_axis(flat, argmax[:, :, None], axis=2)[:, :, 0]

        avg_out, avg_cache = self._mlp_forward(avg_pool)
        max_out, max_cache = self._mlp_forward(max_pool)
        attention = sigmoid(avg_out + max_out)  # (batch, channels)

        att_shaped = attention.reshape((batch, self.channels) + (1,) * len(spatial_axes))
        out = x * att_shaped
        self._cache = (x, attention, avg_cache, max_cache, argmax, n_spatial)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x, attention, avg_cache, max_cache, argmax, n_spatial = self._cache
        grad_output = np.asarray(grad_output, dtype=np.float64)
        batch = x.shape[0]
        spatial_ndim = x.ndim - 2

        att_shaped = attention.reshape((batch, self.channels) + (1,) * spatial_ndim)
        grad_x = grad_output * att_shaped

        # gradient w.r.t. the attention weights
        grad_attention = (grad_output * x).reshape(batch, self.channels, n_spatial).sum(axis=2)
        grad_logits = grad_attention * attention * (1.0 - attention)

        # both branches receive the same logit gradient (they were summed)
        grad_avg_pool = self._mlp_backward(grad_logits, avg_cache)
        grad_max_pool = self._mlp_backward(grad_logits, max_cache)

        # distribute the average-pool gradient uniformly over the spatial positions
        grad_x_flat = grad_x.reshape(batch, self.channels, n_spatial)
        grad_x_flat += grad_avg_pool[:, :, None] / n_spatial
        # route the max-pool gradient to the argmax positions
        batch_idx = np.arange(batch)[:, None]
        channel_idx = np.arange(self.channels)[None, :]
        grad_x_flat[batch_idx, channel_idx, argmax] += grad_max_pool
        return grad_x_flat.reshape(x.shape)
