"""Pure-NumPy neural network substrate.

PyTorch is not available in the offline reproduction environment, so the CFNN
and the hybrid prediction model are built on this small, self-contained NN
library: N-dimensional convolutions (2D and 3D) via ``sliding_window_view``,
depthwise-separable convolutions, a CBAM-style channel attention block, fully
connected layers, MSE loss, SGD/Adam optimizers, a mini-batch trainer, and
parameter (de)serialisation used for the model-size accounting of paper
Table III.

Layout convention: ``(batch, channels, *spatial)`` — NCHW for 2D data and
NCDHW for 3D data.
"""

from repro.nn.module import Module, Parameter, Sequential
from repro.nn.layers import (
    Conv2d,
    Conv3d,
    DepthwiseConv2d,
    DepthwiseConv3d,
    PointwiseConv2d,
    PointwiseConv3d,
    DepthwiseSeparableConv2d,
    DepthwiseSeparableConv3d,
    Linear,
    ReLU,
    LeakyReLU,
    Sigmoid,
    Tanh,
    Identity,
)
from repro.nn.attention import ChannelAttention
from repro.nn.loss import MSELoss, MAELoss
from repro.nn.optim import SGD, Adam
from repro.nn.trainer import Trainer, TrainingHistory
from repro.nn.serialization import (
    state_to_bytes,
    state_from_bytes,
    count_parameters,
    parameter_nbytes,
)
from repro.nn.initializers import he_normal, xavier_uniform, zeros_init

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "Conv2d",
    "Conv3d",
    "DepthwiseConv2d",
    "DepthwiseConv3d",
    "PointwiseConv2d",
    "PointwiseConv3d",
    "DepthwiseSeparableConv2d",
    "DepthwiseSeparableConv3d",
    "Linear",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Identity",
    "ChannelAttention",
    "MSELoss",
    "MAELoss",
    "SGD",
    "Adam",
    "Trainer",
    "TrainingHistory",
    "state_to_bytes",
    "state_from_bytes",
    "count_parameters",
    "parameter_nbytes",
    "he_normal",
    "xavier_uniform",
    "zeros_init",
]
