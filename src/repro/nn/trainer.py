"""Mini-batch training loop.

A small, dependency-free trainer that drives a :class:`~repro.nn.module.Module`
through epochs of shuffled mini-batches, records the loss history (used to
reproduce the training-loss curves of paper Figure 5), and supports optional
validation data and gradient clipping.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn.loss import MSELoss
from repro.nn.module import Module
from repro.nn.optim import Optimizer
from repro.utils.logging import get_logger

__all__ = ["TrainingHistory", "Trainer"]

logger = get_logger("nn.trainer")


@dataclass
class TrainingHistory:
    """Per-epoch record of training (and optionally validation) loss."""

    epochs: List[int] = field(default_factory=list)
    train_loss: List[float] = field(default_factory=list)
    val_loss: List[float] = field(default_factory=list)
    epoch_seconds: List[float] = field(default_factory=list)

    def record(self, epoch: int, train: float, val: Optional[float], seconds: float) -> None:
        """Append one epoch's measurements."""
        self.epochs.append(int(epoch))
        self.train_loss.append(float(train))
        if val is not None:
            self.val_loss.append(float(val))
        self.epoch_seconds.append(float(seconds))

    @property
    def final_loss(self) -> float:
        """Training loss of the last epoch."""
        if not self.train_loss:
            raise ValueError("history is empty")
        return self.train_loss[-1]

    @property
    def best_loss(self) -> float:
        """Lowest training loss over all epochs."""
        if not self.train_loss:
            raise ValueError("history is empty")
        return float(min(self.train_loss))

    def improved(self) -> bool:
        """Whether the final loss is lower than the first epoch's loss."""
        return len(self.train_loss) >= 2 and self.train_loss[-1] < self.train_loss[0]

    def as_dict(self) -> Dict[str, List[float]]:
        """Serialisable dictionary (used by experiment reports)."""
        return {
            "epochs": list(self.epochs),
            "train_loss": list(self.train_loss),
            "val_loss": list(self.val_loss),
            "epoch_seconds": list(self.epoch_seconds),
        }


class Trainer:
    """Drives mini-batch gradient training of a model.

    Parameters
    ----------
    model:
        Module mapping an input batch to a prediction batch.
    optimizer:
        Optimizer constructed over ``model.parameters()``.
    loss:
        Loss object with ``forward(prediction, target)`` and ``backward()``.
    batch_size:
        Mini-batch size.
    clip_grad_norm:
        Optional global gradient-norm clip applied before every update.
    rng:
        Random generator controlling shuffling (pass a seeded generator for
        reproducible training).
    """

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        loss: Optional[MSELoss] = None,
        batch_size: int = 8,
        shuffle: bool = True,
        clip_grad_norm: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.model = model
        self.optimizer = optimizer
        self.loss = loss if loss is not None else MSELoss()
        self.batch_size = int(batch_size)
        self.shuffle = bool(shuffle)
        self.clip_grad_norm = clip_grad_norm
        self.rng = rng if rng is not None else np.random.default_rng()

    # ------------------------------------------------------------------ #
    def _iterate_batches(self, n_samples: int):
        indices = np.arange(n_samples)
        if self.shuffle:
            self.rng.shuffle(indices)
        for start in range(0, n_samples, self.batch_size):
            yield indices[start : start + self.batch_size]

    def evaluate(self, inputs: np.ndarray, targets: np.ndarray) -> float:
        """Average loss of the model on ``(inputs, targets)`` without updates."""
        total = 0.0
        count = 0
        for batch in self._iterate_batches(inputs.shape[0]):
            prediction = self.model(inputs[batch])
            total += self.loss(prediction, targets[batch]) * batch.size
            count += batch.size
        return total / max(count, 1)

    def fit(
        self,
        inputs: np.ndarray,
        targets: np.ndarray,
        epochs: int = 10,
        validation: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train for ``epochs`` epochs and return the loss history."""
        inputs = np.asarray(inputs, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if inputs.shape[0] != targets.shape[0]:
            raise ValueError("inputs and targets must have the same number of samples")
        if epochs < 1:
            raise ValueError("epochs must be positive")

        history = TrainingHistory()
        for epoch in range(1, epochs + 1):
            start = time.perf_counter()
            epoch_loss = 0.0
            seen = 0
            for batch in self._iterate_batches(inputs.shape[0]):
                x = inputs[batch]
                y = targets[batch]
                self.optimizer.zero_grad()
                prediction = self.model(x)
                batch_loss = self.loss(prediction, y)
                grad = self.loss.backward()
                self.model.backward(grad)
                if self.clip_grad_norm is not None:
                    self.optimizer.clip_gradients(self.clip_grad_norm)
                self.optimizer.step()
                epoch_loss += batch_loss * batch.size
                seen += batch.size
            train_loss = epoch_loss / max(seen, 1)
            val_loss = None
            if validation is not None:
                val_loss = self.evaluate(
                    np.asarray(validation[0], dtype=np.float64),
                    np.asarray(validation[1], dtype=np.float64),
                )
            elapsed = time.perf_counter() - start
            history.record(epoch, train_loss, val_loss, elapsed)
            if verbose:
                message = f"epoch {epoch:3d}/{epochs}  loss {train_loss:.6f}"
                if val_loss is not None:
                    message += f"  val {val_loss:.6f}"
                logger.info(message)
        return history
