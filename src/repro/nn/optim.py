"""Gradient-based optimizers."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.nn.module import Parameter

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimizer holding the parameter list."""

    def __init__(self, parameters: Sequence[Parameter], lr: float) -> None:
        parameters = list(parameters)
        if not parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.parameters = parameters
        self.lr = float(lr)

    def zero_grad(self) -> None:
        """Reset all parameter gradients."""
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        """Apply one update using the accumulated gradients."""
        raise NotImplementedError

    def clip_gradients(self, max_norm: float) -> float:
        """Scale gradients so their global L2 norm does not exceed ``max_norm``.

        Returns the pre-clipping norm.
        """
        total = 0.0
        for p in self.parameters:
            total += float(np.sum(p.grad**2))
        norm = float(np.sqrt(total))
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            for p in self.parameters:
                p.grad *= scale
        return norm


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity: List[np.ndarray] = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, velocity in zip(self.parameters, self._velocity):
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            p.data -= self.lr * update


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-3,
        betas: Sequence[float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = float(betas[0]), float(betas[1])
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._step = 0
        self._m: List[np.ndarray] = [np.zeros_like(p.data) for p in self.parameters]
        self._v: List[np.ndarray] = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        bias1 = 1.0 - self.beta1**self._step
        bias2 = 1.0 - self.beta2**self._step
        for p, m, v in zip(self.parameters, self._m, self._v):
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
