"""Weight initialisation schemes."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = ["he_normal", "xavier_uniform", "zeros_init", "fan_in_out"]


def fan_in_out(shape: Sequence[int]) -> Tuple[int, int]:
    """Compute (fan_in, fan_out) for a weight tensor.

    Convolution kernels are assumed to be laid out ``(out_ch, in_ch, *spatial)``
    and dense weights ``(out_features, in_features)``.
    """
    shape = tuple(int(s) for s in shape)
    if len(shape) < 2:
        raise ValueError("weight tensors need at least 2 dimensions")
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def he_normal(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """Kaiming/He normal initialisation (suited to ReLU activations)."""
    fan_in, _ = fan_in_out(shape)
    std = np.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=tuple(shape)).astype(np.float64)


def xavier_uniform(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialisation (suited to sigmoid/tanh activations)."""
    fan_in, fan_out = fan_in_out(shape)
    limit = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-limit, limit, size=tuple(shape)).astype(np.float64)


def zeros_init(shape: Sequence[int], rng: np.random.Generator | None = None) -> np.ndarray:
    """All-zeros initialisation (biases)."""
    return np.zeros(tuple(shape), dtype=np.float64)
