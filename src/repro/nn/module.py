"""Module and parameter abstractions for the NumPy NN substrate.

Every layer is a :class:`Module` exposing ``forward`` (caching whatever the
backward pass needs) and ``backward`` (returning the gradient with respect to
the input and accumulating parameter gradients).  There is no autograd tape —
gradients are derived by hand per layer, which keeps the substrate small,
dependency-free and easy to verify against finite differences in the tests.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Parameter", "Module", "Sequential"]


class Parameter:
    """A trainable tensor: value plus accumulated gradient."""

    def __init__(self, data: np.ndarray, name: str = "param") -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)
        self.name = name

    @property
    def shape(self) -> Tuple[int, ...]:
        """Tensor shape."""
        return self.data.shape

    @property
    def size(self) -> int:
        """Number of scalar parameters."""
        return int(self.data.size)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero."""
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Parameter(name={self.name!r}, shape={self.shape})"


class Module:
    """Base class for all layers and models."""

    def __init__(self) -> None:
        self._parameters: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def register_parameter(self, name: str, param: Parameter) -> Parameter:
        """Register a trainable parameter under ``name``."""
        param.name = name
        self._parameters[name] = param
        return param

    def register_module(self, name: str, module: "Module") -> "Module":
        """Register a child module under ``name``."""
        self._modules[name] = module
        return module

    # ------------------------------------------------------------------ #
    # traversal
    # ------------------------------------------------------------------ #
    def parameters(self) -> List[Parameter]:
        """All parameters of this module and its children (depth-first order)."""
        params = list(self._parameters.values())
        for child in self._modules.values():
            params.extend(child.parameters())
        return params

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def children(self) -> List["Module"]:
        """Immediate child modules."""
        return list(self._modules.values())

    def zero_grad(self) -> None:
        """Reset every parameter gradient."""
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------ #
    # computation
    # ------------------------------------------------------------------ #
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute the layer output (must cache what backward needs)."""
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate ``grad_output``, returning the gradient w.r.t. the input."""
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # ------------------------------------------------------------------ #
    # state
    # ------------------------------------------------------------------ #
    def state_dict(self, prefix: str = "") -> Dict[str, np.ndarray]:
        """Flat ``{dotted_name: array}`` copy of all parameter values."""
        return {name: param.data.copy() for name, param in self.named_parameters(prefix)}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter values saved by :meth:`state_dict`.

        Raises ``KeyError`` on missing entries and ``ValueError`` on shape
        mismatches.
        """
        own = dict(self.named_parameters())
        for name, param in own.items():
            if name not in state:
                raise KeyError(f"state dict is missing parameter {name!r}")
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"parameter {name!r} has shape {param.data.shape}, "
                    f"state provides {value.shape}"
                )
            param.data[...] = value

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return sum(p.size for p in self.parameters())


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._ordered: List[Module] = []
        for index, module in enumerate(modules):
            self.append(module)

    def append(self, module: Module) -> None:
        """Append a module to the chain."""
        if not isinstance(module, Module):
            raise TypeError("Sequential can only contain Module instances")
        name = f"layer{len(self._ordered)}"
        self.register_module(name, module)
        self._ordered.append(module)

    def __len__(self) -> int:
        return len(self._ordered)

    def __getitem__(self, index: int) -> Module:
        return self._ordered[index]

    def forward(self, x: np.ndarray) -> np.ndarray:
        for module in self._ordered:
            x = module(x)
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        for module in reversed(self._ordered):
            grad_output = module.backward(grad_output)
        return grad_output
