"""Layers of the NumPy NN substrate.

Convolution layers support 2D (NCHW) and 3D (NCDHW) inputs with stride 1 and
"same" or explicit symmetric zero padding — exactly what the CFNN architecture
of paper Figure 4 needs (initial convolution, depthwise separable convolution,
output convolution), plus the dense layers used inside the channel attention
block and the hybrid prediction model.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.nn.functional import (
    conv_backward,
    conv_forward,
    depthwise_conv_backward,
    depthwise_conv_forward,
    sigmoid,
)
from repro.nn.initializers import he_normal, xavier_uniform, zeros_init
from repro.nn.module import Module, Parameter, Sequential

__all__ = [
    "ConvNd",
    "Conv2d",
    "Conv3d",
    "DepthwiseConvNd",
    "DepthwiseConv2d",
    "DepthwiseConv3d",
    "PointwiseConv2d",
    "PointwiseConv3d",
    "DepthwiseSeparableConv2d",
    "DepthwiseSeparableConv3d",
    "Linear",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Identity",
]


def _resolve_kernel(kernel_size: Union[int, Sequence[int]], spatial_ndim: int) -> Tuple[int, ...]:
    if np.isscalar(kernel_size):
        return (int(kernel_size),) * spatial_ndim
    kernel = tuple(int(k) for k in kernel_size)
    if len(kernel) != spatial_ndim:
        raise ValueError(f"kernel_size must have {spatial_ndim} entries, got {kernel}")
    return kernel


def _resolve_padding(
    padding: Union[str, int, Sequence[int]], kernel: Tuple[int, ...]
) -> Tuple[int, ...]:
    if padding == "same":
        if any(k % 2 == 0 for k in kernel):
            raise ValueError("'same' padding requires odd kernel sizes")
        return tuple(k // 2 for k in kernel)
    if padding == "valid":
        return tuple(0 for _ in kernel)
    if np.isscalar(padding):
        return (int(padding),) * len(kernel)
    pad = tuple(int(p) for p in padding)
    if len(pad) != len(kernel):
        raise ValueError("padding must provide one value per spatial dimension")
    return pad


# --------------------------------------------------------------------------- #
# convolutions
# --------------------------------------------------------------------------- #
class ConvNd(Module):
    """Standard convolution over ``spatial_ndim`` spatial dimensions (stride 1)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: Union[int, Sequence[int]],
        spatial_ndim: int,
        padding: Union[str, int, Sequence[int]] = "same",
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if spatial_ndim not in (1, 2, 3):
            raise ValueError("spatial_ndim must be 1, 2 or 3")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.spatial_ndim = spatial_ndim
        self.kernel_size = _resolve_kernel(kernel_size, spatial_ndim)
        self.padding = _resolve_padding(padding, self.kernel_size)
        weight_shape = (self.out_channels, self.in_channels) + self.kernel_size
        self.weight = self.register_parameter("weight", Parameter(he_normal(weight_shape, rng)))
        self.bias = (
            self.register_parameter("bias", Parameter(zeros_init((self.out_channels,))))
            if bias
            else None
        )
        self._cache: Optional[Tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != self.spatial_ndim + 2:
            raise ValueError(
                f"expected a {self.spatial_ndim + 2}D input (batch, channels, *spatial), got {x.ndim}D"
            )
        if x.shape[1] != self.in_channels:
            raise ValueError(f"expected {self.in_channels} input channels, got {x.shape[1]}")
        out, self._cache = conv_forward(
            x, self.weight.data, self.bias.data if self.bias is not None else None, self.padding
        )
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        grad_input, grad_weight, grad_bias = conv_backward(
            np.asarray(grad_output, dtype=np.float64), self._cache
        )
        self.weight.grad += grad_weight
        if self.bias is not None:
            self.bias.grad += grad_bias
        return grad_input


class Conv2d(ConvNd):
    """2D convolution (NCHW)."""

    def __init__(self, in_channels, out_channels, kernel_size, padding="same", bias=True, rng=None):
        super().__init__(in_channels, out_channels, kernel_size, 2, padding, bias, rng)


class Conv3d(ConvNd):
    """3D convolution (NCDHW)."""

    def __init__(self, in_channels, out_channels, kernel_size, padding="same", bias=True, rng=None):
        super().__init__(in_channels, out_channels, kernel_size, 3, padding, bias, rng)


class DepthwiseConvNd(Module):
    """Depthwise convolution: one filter per channel (groups == channels)."""

    def __init__(
        self,
        channels: int,
        kernel_size: Union[int, Sequence[int]],
        spatial_ndim: int,
        padding: Union[str, int, Sequence[int]] = "same",
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if spatial_ndim not in (1, 2, 3):
            raise ValueError("spatial_ndim must be 1, 2 or 3")
        rng = rng if rng is not None else np.random.default_rng()
        self.channels = int(channels)
        self.spatial_ndim = spatial_ndim
        self.kernel_size = _resolve_kernel(kernel_size, spatial_ndim)
        self.padding = _resolve_padding(padding, self.kernel_size)
        weight_shape = (self.channels,) + self.kernel_size
        # treat each depthwise filter as fan_in = prod(kernel)
        init = he_normal((self.channels, 1) + self.kernel_size, rng).reshape(weight_shape)
        self.weight = self.register_parameter("weight", Parameter(init))
        self.bias = (
            self.register_parameter("bias", Parameter(zeros_init((self.channels,))))
            if bias
            else None
        )
        self._cache: Optional[Tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != self.spatial_ndim + 2:
            raise ValueError(
                f"expected a {self.spatial_ndim + 2}D input (batch, channels, *spatial), got {x.ndim}D"
            )
        if x.shape[1] != self.channels:
            raise ValueError(f"expected {self.channels} channels, got {x.shape[1]}")
        out, self._cache = depthwise_conv_forward(
            x, self.weight.data, self.bias.data if self.bias is not None else None, self.padding
        )
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        grad_input, grad_weight, grad_bias = depthwise_conv_backward(
            np.asarray(grad_output, dtype=np.float64), self._cache
        )
        self.weight.grad += grad_weight
        if self.bias is not None:
            self.bias.grad += grad_bias
        return grad_input


class DepthwiseConv2d(DepthwiseConvNd):
    """2D depthwise convolution."""

    def __init__(self, channels, kernel_size, padding="same", bias=True, rng=None):
        super().__init__(channels, kernel_size, 2, padding, bias, rng)


class DepthwiseConv3d(DepthwiseConvNd):
    """3D depthwise convolution."""

    def __init__(self, channels, kernel_size, padding="same", bias=True, rng=None):
        super().__init__(channels, kernel_size, 3, padding, bias, rng)


class PointwiseConv2d(Conv2d):
    """1x1 convolution recombining channels (the pointwise half of a separable conv)."""

    def __init__(self, in_channels, out_channels, bias=True, rng=None):
        super().__init__(in_channels, out_channels, 1, padding="valid", bias=bias, rng=rng)


class PointwiseConv3d(Conv3d):
    """1x1x1 convolution recombining channels."""

    def __init__(self, in_channels, out_channels, bias=True, rng=None):
        super().__init__(in_channels, out_channels, 1, padding="valid", bias=bias, rng=rng)


class DepthwiseSeparableConv2d(Sequential):
    """Depthwise convolution followed by a pointwise convolution (Xception-style).

    This is the "Depthwise Separable Convolution module" of the CFNN
    architecture (paper Section III-D2): the depthwise convolution processes
    each channel independently to keep the cost low and the pointwise
    convolution recombines channel information.
    """

    def __init__(self, in_channels, out_channels, kernel_size=3, padding="same", rng=None):
        rng = rng if rng is not None else np.random.default_rng()
        super().__init__(
            DepthwiseConv2d(in_channels, kernel_size, padding=padding, rng=rng),
            PointwiseConv2d(in_channels, out_channels, rng=rng),
        )


class DepthwiseSeparableConv3d(Sequential):
    """3D depthwise separable convolution."""

    def __init__(self, in_channels, out_channels, kernel_size=3, padding="same", rng=None):
        rng = rng if rng is not None else np.random.default_rng()
        super().__init__(
            DepthwiseConv3d(in_channels, kernel_size, padding=padding, rng=rng),
            PointwiseConv3d(in_channels, out_channels, rng=rng),
        )


# --------------------------------------------------------------------------- #
# dense layer
# --------------------------------------------------------------------------- #
class Linear(Module):
    """Fully connected layer: ``y = x @ W.T + b`` on ``(batch, features)`` inputs."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.weight = self.register_parameter(
            "weight", Parameter(xavier_uniform((out_features, in_features), rng))
        )
        self.bias = (
            self.register_parameter("bias", Parameter(zeros_init((out_features,))))
            if bias
            else None
        )
        self._input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"Linear expects input of shape (batch, {self.in_features}), got {x.shape}"
            )
        self._input = x
        out = x @ self.weight.data.T
        if self.bias is not None:
            out = out + self.bias.data
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before forward")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        self.weight.grad += grad_output.T @ self._input
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=0)
        return grad_output @ self.weight.data


# --------------------------------------------------------------------------- #
# activations
# --------------------------------------------------------------------------- #
class ReLU(Module):
    """Rectified linear unit."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return np.where(self._mask, np.asarray(grad_output, dtype=np.float64), 0.0)


class LeakyReLU(Module):
    """Leaky rectified linear unit."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = float(negative_slope)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._mask = x > 0
        return np.where(self._mask, x, self.negative_slope * x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        return np.where(self._mask, grad_output, self.negative_slope * grad_output)


class Sigmoid(Module):
    """Logistic sigmoid."""

    def __init__(self) -> None:
        super().__init__()
        self._output: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = sigmoid(np.asarray(x, dtype=np.float64))
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        return np.asarray(grad_output, dtype=np.float64) * self._output * (1.0 - self._output)


class Tanh(Module):
    """Hyperbolic tangent."""

    def __init__(self) -> None:
        super().__init__()
        self._output: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = np.tanh(np.asarray(x, dtype=np.float64))
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        return np.asarray(grad_output, dtype=np.float64) * (1.0 - self._output**2)


class Identity(Module):
    """Pass-through layer (useful as a placeholder in configurable models)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(x, dtype=np.float64)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return np.asarray(grad_output, dtype=np.float64)
