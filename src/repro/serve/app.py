"""FastAPI frontend for :class:`~repro.serve.service.ArchiveService`.

Routes map one-to-one onto the service's ``handle_*`` methods, so behaviour
(ETag/304 semantics, 404/416/422 error mapping, ``http.*`` telemetry) is
identical to the stdlib server — FastAPI only contributes the ASGI surface,
OpenAPI docs at ``/docs``, and uvicorn's event-loop concurrency.

This module requires the optional ``[serve]`` extra (``pip install
repro[serve]``); importing it without fastapi installed raises an
``ImportError`` that says so.  Nothing else in :mod:`repro.serve` imports it
eagerly, so the core service, the stdlib server and the tier-1 test suite
work without the extra.
"""

from __future__ import annotations

from typing import Optional

try:
    from fastapi import FastAPI, Header, Query, Request, Response
except ImportError as exc:  # pragma: no cover - exercised only without the extra
    raise ImportError(
        "the FastAPI frontend requires the optional [serve] extra; "
        "install it with: pip install repro[serve] (or: pip install fastapi uvicorn). "
        "The dependency-free stdlib server (repro.serve.http / `repro serve`) "
        "offers the same endpoints without it."
    ) from exc

from repro.serve.service import ArchiveService, ServiceResponse

__all__ = ["create_app"]


def _transmit(result: ServiceResponse) -> Response:
    """Render a service-core response as a FastAPI/Starlette response."""
    return Response(
        content=result.body,
        status_code=result.status,
        media_type=result.media_type,
        headers=result.headers,
    )


def create_app(service: ArchiveService) -> "FastAPI":
    """Wrap ``service`` in a FastAPI application (one route per endpoint)."""
    app = FastAPI(
        title="repro archive service",
        description=(
            "Region, preview and timestep reads from XFA1 archives over one "
            "shared single-flight chunk cache, with manifest-generation ETags."
        ),
        version="1.0",
    )
    app.state.service = service

    @app.get("/healthz")
    def healthz() -> Response:
        return _transmit(service.handle_health())

    @app.get("/stats")
    def stats() -> Response:
        return _transmit(service.handle_stats())

    @app.get("/archives")
    def archives() -> Response:
        return _transmit(service.handle_archives())

    @app.get("/archives/{archive_id}/manifest")
    def manifest(
        archive_id: str, if_none_match: Optional[str] = Header(default=None)
    ) -> Response:
        return _transmit(service.handle_manifest(archive_id, if_none_match=if_none_match))

    @app.get("/archives/{archive_id}/stats")
    def archive_stats(archive_id: str) -> Response:
        return _transmit(service.handle_stats(archive_id))

    @app.get("/archives/{archive_id}/fields/{field_name}/region")
    def region(
        archive_id: str,
        field_name: str,
        region: Optional[str] = Query(default=None, description="slice syntax, e.g. 0:10,20:40"),
        format: str = Query(default="npy", description="npy | json"),
        if_none_match: Optional[str] = Header(default=None),
    ) -> Response:
        return _transmit(
            service.handle_region(
                archive_id, field_name, region=region, fmt=format, if_none_match=if_none_match
            )
        )

    @app.get("/archives/{archive_id}/fields/{field_name}/preview")
    def preview(
        archive_id: str,
        field_name: str,
        fraction: str = Query(default="0.25", description="entropy-byte budget in (0, 1]"),
        region: Optional[str] = Query(default=None),
        format: str = Query(default="npy", description="npy | json"),
        if_none_match: Optional[str] = Header(default=None),
    ) -> Response:
        return _transmit(
            service.handle_preview(
                archive_id,
                field_name,
                fraction=fraction,
                region=region,
                fmt=format,
                if_none_match=if_none_match,
            )
        )

    @app.get("/archives/{archive_id}/timesteps")
    def timesteps(
        archive_id: str, if_none_match: Optional[str] = Header(default=None)
    ) -> Response:
        return _transmit(service.handle_timesteps(archive_id, if_none_match=if_none_match))

    @app.get("/archives/{archive_id}/timesteps/{step}")
    def timestep(
        archive_id: str,
        step: str,
        fields: Optional[str] = Query(default=None, description="comma-separated field names"),
        format: str = Query(default="json", description="json | npz"),
    ) -> Response:
        return _transmit(service.handle_timestep(archive_id, step, fields=fields, fmt=format))

    @app.get("/archives/{archive_id}/timerange")
    def timerange(
        archive_id: str,
        start: Optional[str] = Query(default=None),
        stop: Optional[str] = Query(default=None),
        fields: Optional[str] = Query(default=None),
        include: str = Query(default="stats", description="stats | data"),
    ) -> Response:
        return _transmit(
            service.handle_timerange(
                archive_id, start=start, stop=stop, fields=fields, include=include
            )
        )

    @app.post("/archives/{archive_id}/refresh")
    def refresh(archive_id: str) -> Response:
        return _transmit(service.handle_refresh(archive_id))

    return app
