"""HTTP archive service: the XFA1 read stack served to many clients.

The package splits transport from behaviour:

- :mod:`repro.serve.service` — :class:`~repro.serve.service.ArchiveService`,
  the framework-agnostic core: endpoint handlers returning
  :class:`~repro.serve.service.ServiceResponse` objects, generation ETags,
  reopen-on-new-generation reader leases, the shared decode cache, and the
  404/416/422 error mapping.
- :mod:`repro.serve.http` — a dependency-free threaded HTTP server on the
  stdlib ``http.server``; what ``repro serve`` runs by default and what the
  test suite and load benchmark drive.
- :mod:`repro.serve.app` — :func:`~repro.serve.app.create_app`, the FastAPI
  frontend (optional ``repro[serve]`` extra; import-guarded so the rest of
  the package works without it).
"""

from repro.serve.service import ArchiveHandle, ArchiveService, ServiceError, ServiceResponse

__all__ = [
    "ArchiveHandle",
    "ArchiveService",
    "ServiceError",
    "ServiceResponse",
    "create_app",
]


def create_app(*args, **kwargs):
    """Build the FastAPI application (requires the ``[serve]`` extra)."""
    from repro.serve.app import create_app as _create_app

    return _create_app(*args, **kwargs)
