"""Dependency-free HTTP frontend for :class:`~repro.serve.service.ArchiveService`.

A ``ThreadingHTTPServer`` whose request handler parses the URL and headers,
calls :meth:`ArchiveService.dispatch`, and writes the
:class:`~repro.serve.service.ServiceResponse` back — nothing more.  Because
the service core owns routing, ETags, error mapping and telemetry, this
frontend stays ~100 lines and needs only the stdlib, which keeps ``repro
serve`` runnable (and the serve test suite + load benchmark meaningful) in
environments without the optional FastAPI/uvicorn extra.

Concurrency model: one thread per connection (``ThreadingHTTPServer``), with
all decoded-chunk reuse delegated to the service's
:class:`~repro.store.shared_cache.SharedChunkCache` — concurrent requests for
the same chunk coalesce onto a single decode regardless of which thread runs
them.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from repro.serve.service import ArchiveService, ServiceResponse

__all__ = ["ArchiveHTTPServer", "serve", "serve_in_thread"]


class _ServiceRequestHandler(BaseHTTPRequestHandler):
    """Translate one HTTP exchange to a ``service.dispatch`` call."""

    protocol_version = "HTTP/1.1"
    server: "ArchiveHTTPServer"

    def _respond(self, response: ServiceResponse) -> None:
        self.send_response(response.status)
        self.send_header("Content-Type", response.media_type)
        self.send_header("Content-Length", str(len(response.body)))
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.end_headers()
        if response.body:
            self.wfile.write(response.body)

    def _handle(self, method: str) -> None:
        parts = urlsplit(self.path)
        query = dict(parse_qsl(parts.query, keep_blank_values=True))
        try:
            response = self.server.service.dispatch(
                method, parts.path, query=query, headers=dict(self.headers.items())
            )
        except Exception as exc:  # dispatch maps expected errors; this is a bug
            response = ServiceResponse.error(500, f"internal error: {exc}")
        try:
            self._respond(response)
        except (BrokenPipeError, ConnectionResetError):  # client went away
            pass
        self.server.note_request()

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler naming
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._handle("POST")

    def log_message(self, format: str, *args) -> None:
        # request logging flows through the service's http.* telemetry instead
        pass


class ArchiveHTTPServer(ThreadingHTTPServer):
    """Threaded stdlib HTTP server bound to one :class:`ArchiveService`.

    ``max_requests`` (``None`` = unlimited) shuts the server down after that
    many requests have been answered — the hook tests and ``repro serve
    --max-requests`` use to run a bounded, deterministic serving session.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        service: ArchiveService,
        host: str = "127.0.0.1",
        port: int = 0,
        max_requests: Optional[int] = None,
    ) -> None:
        super().__init__((host, port), _ServiceRequestHandler)
        self.service = service
        self.max_requests = max_requests
        self._handled = 0
        self._count_lock = threading.Lock()

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    @property
    def requests_handled(self) -> int:
        with self._count_lock:
            return self._handled

    def note_request(self) -> None:
        with self._count_lock:
            self._handled += 1
            done = self.max_requests is not None and self._handled >= self.max_requests
        if done:
            # shutdown() blocks until serve_forever exits; never call it from
            # the serving thread itself
            threading.Thread(target=self.shutdown, daemon=True).start()


def serve(
    service: ArchiveService,
    host: str = "127.0.0.1",
    port: int = 0,
    max_requests: Optional[int] = None,
    ready_callback=None,
) -> ArchiveHTTPServer:
    """Serve ``service`` until shutdown; returns the (closed) server.

    ``ready_callback(server)``, when given, fires after the socket is bound
    and before the accept loop starts — the CLI uses it to print (and
    ``--ready-file`` to persist) the actual bound URL when ``port=0`` picked
    an ephemeral port.
    """
    server = ArchiveHTTPServer(service, host=host, port=port, max_requests=max_requests)
    try:
        if ready_callback is not None:
            ready_callback(server)
        server.serve_forever(poll_interval=0.05)
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return server


def serve_in_thread(
    service: ArchiveService,
    host: str = "127.0.0.1",
    port: int = 0,
    max_requests: Optional[int] = None,
) -> Tuple[ArchiveHTTPServer, threading.Thread]:
    """Start the server on a daemon thread; returns ``(server, thread)``.

    The server is bound (``server.url`` valid) before this returns.  Callers
    stop it with ``server.shutdown(); server.server_close(); thread.join()``.
    """
    server = ArchiveHTTPServer(service, host=host, port=port, max_requests=max_requests)
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    thread.start()
    return server, thread
