"""Framework-agnostic core of the ``repro serve`` archive service.

:class:`ArchiveService` exposes the read stack of one or more ``XFA1``
archives as HTTP-shaped request handlers: manifest listings, binary/JSON
region reads, progressive previews, timestep and time-range reads.  The class
itself speaks no socket protocol — every handler returns a
:class:`ServiceResponse` (status, headers, body) that an adapter transmits:
the stdlib threaded server in :mod:`repro.serve.http` (always available) and
the FastAPI app in :mod:`repro.serve.app` (the optional ``[serve]`` extra)
both delegate to the same handlers, so behaviour, error mapping and telemetry
are identical regardless of the frontend.

**Shared decode cache.**  Every served archive is opened with
``ArchiveReader(shared_cache=...)`` on one
:class:`~repro.store.shared_cache.SharedChunkCache` (the process-wide
singleton by default), so N concurrent clients requesting the same region
trigger exactly one decode per chunk — concurrent misses coalesce onto a
single in-flight decode and every request receives the same frozen array.

**Generations and ETags.**  An archive's *generation* is the published end
offset of the footer its manifest came from (monotonic across append
flushes).  Every data response carries a strong ETag built on it; a request
whose ``If-None-Match`` still names the served generation gets a ``304`` with
no body.  While an appender publishes generation G+1, requests keep reading
the consistent G snapshot — chunk payloads are immutable and appends only add
bytes — until the handle *reopens*: automatically on the next request once the
file's stat signature changes (``refresh="auto"``, the default) or explicitly
via ``POST /archives/{id}/refresh`` (``refresh="manual"``).  Reopening swaps
in a new reader atomically; requests still inside the old one finish on the
retired reader, which is closed when its last lease drops.

**Error mapping.**  Typed reader errors become HTTP statuses instead of
leaking 500s: unknown archive/field/timestep → 404, out-of-bounds or
malformed regions (:class:`~repro.store.manifest.ArchiveError`) → 416,
invalid parameters (bad ``fraction``, bad slice syntax — ``ValueError``) →
422, CRC/framing corruption → 500 with the corruption detail.

Telemetry (``http.*``): ``http.request.count`` / ``http.request.seconds`` /
``http.request.bytes_out`` plus per-status ``http.request.status.<code>``
and per-endpoint ``http.endpoint.<name>.seconds``, with one
``http.<endpoint>`` trace span per request.  An always-on per-service
recorder backs :meth:`ArchiveService.request_stats` even when global
telemetry is disabled.
"""

from __future__ import annotations

import io
import json
import os
import re
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Union
from urllib.parse import unquote

import numpy as np

from repro.obs import recorder as _obs
from repro.store.cli import parse_region
from repro.store.manifest import ArchiveCorruptionError, ArchiveError
from repro.store.reader import ArchiveReader
from repro.store.shared_cache import SharedChunkCache, process_chunk_cache

__all__ = [
    "ServiceError",
    "ServiceResponse",
    "ArchiveHandle",
    "ArchiveService",
]

PathLike = Union[str, os.PathLike]

#: Media type of binary array responses (``np.save`` output).
NPY_MEDIA_TYPE = "application/x-npy"
NPZ_MEDIA_TYPE = "application/x-npz"
JSON_MEDIA_TYPE = "application/json"


@dataclass
class ServiceResponse:
    """One HTTP-shaped handler result, transport-agnostic."""

    status: int
    body: bytes = b""
    media_type: str = JSON_MEDIA_TYPE
    headers: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def json(cls, payload, status: int = 200, headers: Optional[Dict[str, str]] = None):
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        return cls(status=status, body=body, media_type=JSON_MEDIA_TYPE, headers=dict(headers or {}))

    @classmethod
    def error(cls, status: int, detail: str):
        return cls.json({"detail": str(detail)}, status=status)

    @classmethod
    def not_modified(cls, etag: str, generation: int):
        return cls(
            status=304,
            body=b"",
            media_type=JSON_MEDIA_TYPE,
            headers={"ETag": etag, "X-Repro-Generation": str(generation)},
        )


class ServiceError(Exception):
    """A handler-raised error with an explicit HTTP status."""

    def __init__(self, status: int, detail: str) -> None:
        super().__init__(detail)
        self.status = int(status)
        self.detail = str(detail)

    def to_response(self) -> ServiceResponse:
        return ServiceResponse.error(self.status, self.detail)


def _etag_for(archive_id: str, generation: int) -> str:
    """Strong ETag for one archive snapshot: the manifest generation."""
    return f'"{archive_id}:g{int(generation)}"'


def _etag_matches(if_none_match: Optional[str], etag: str) -> bool:
    """RFC 7232 ``If-None-Match`` comparison (weak validators accepted)."""
    if not if_none_match:
        return False
    if if_none_match.strip() == "*":
        return True
    for candidate in if_none_match.split(","):
        candidate = candidate.strip()
        if candidate.startswith("W/"):
            candidate = candidate[2:]
        if candidate == etag:
            return True
    return False


class _ReaderLease:
    """One reader plus its in-flight request count; closed when retired and idle."""

    __slots__ = ("reader", "refs", "retired")

    def __init__(self, reader: ArchiveReader) -> None:
        self.reader = reader
        self.refs = 0
        self.retired = False


class ArchiveHandle:
    """One served archive: a leased :class:`ArchiveReader` with reopen-on-append.

    Requests borrow the current reader through :meth:`reader` (a context
    manager that refcounts the lease).  :meth:`refresh` opens the file again
    and atomically swaps the new reader in when it publishes a newer
    generation; the retired reader keeps serving its in-flight requests and
    is closed when the last one releases it.  :meth:`maybe_refresh` is the
    cheap per-request probe: one ``stat`` call, a full reopen only when the
    file's size/mtime signature changed since the last look.
    """

    def __init__(
        self,
        archive_id: str,
        path: PathLike,
        cache: SharedChunkCache,
        backend: str = "auto",
        jobs: Optional[int] = None,
        auto_refresh: bool = True,
    ) -> None:
        self.id = str(archive_id)
        self.path = Path(path)
        self.auto_refresh = bool(auto_refresh)
        self._cache = cache
        self._backend = backend
        self._jobs = jobs
        self._lock = threading.Lock()
        self._lease = _ReaderLease(self._open_reader())
        self._stat_sig = self._stat_signature()

    def _open_reader(self) -> ArchiveReader:
        return ArchiveReader(
            self.path, shared_cache=self._cache, backend=self._backend, jobs=self._jobs
        )

    def _stat_signature(self) -> Tuple[int, int]:
        st = os.stat(self.path)
        return (int(st.st_size), int(st.st_mtime_ns))

    @property
    def generation(self) -> int:
        """Manifest generation of the currently served snapshot."""
        with self._lock:
            return self._lease.reader.generation

    @property
    def etag(self) -> str:
        return _etag_for(self.id, self.generation)

    @contextmanager
    def reader(self) -> Iterator[ArchiveReader]:
        """Borrow the current reader for one request (refcounted lease)."""
        if self.auto_refresh:
            self.maybe_refresh()
        with self._lock:
            lease = self._lease
            lease.refs += 1
        try:
            yield lease.reader
        finally:
            with self._lock:
                lease.refs -= 1
                close_now = lease.retired and lease.refs == 0
            if close_now:
                lease.reader.close()

    def maybe_refresh(self) -> bool:
        """Reopen only if the file changed on disk since the last probe."""
        try:
            sig = self._stat_signature()
        except OSError:
            # the file vanished under us: keep serving the open snapshot
            return False
        with self._lock:
            if sig == self._stat_sig:
                return False
        return self.refresh()

    def refresh(self) -> bool:
        """Reopen the archive; swap readers when a newer generation published.

        Returns ``True`` when the served snapshot advanced.  A torn tail (an
        append session mid-flush) or a vanished file keeps the current
        snapshot — the service never degrades below the generation it already
        serves.
        """
        try:
            fresh = self._open_reader()
        except (OSError, ArchiveError):
            return False
        close_retired = False
        with self._lock:
            current = self._lease
            swapped = fresh.generation != current.reader.generation
            if swapped:
                self._lease = _ReaderLease(fresh)
                current.retired = True
                close_retired = current.refs == 0
            try:
                self._stat_sig = self._stat_signature()
            except OSError:
                pass
        if not swapped:
            fresh.close()
            return False
        if close_retired:
            current.reader.close()
        return True

    def close(self) -> None:
        """Retire the handle; the reader closes once its last lease drops."""
        with self._lock:
            lease = self._lease
            lease.retired = True
            close_now = lease.refs == 0
        if close_now:
            lease.reader.close()


# --------------------------------------------------------------------------- #
# the service
# --------------------------------------------------------------------------- #
class ArchiveService:
    """HTTP-shaped read service over one or more XFA1 archives.

    Parameters
    ----------
    archives:
        Archives to serve: a mapping of ``id -> path``, or an iterable of
        paths (ids default to the file stem) / ``"id=path"`` specs.
    cache:
        The :class:`~repro.store.shared_cache.SharedChunkCache` every served
        reader plugs into; ``None`` (default) uses the process-wide singleton
        so the service shares decodes with in-process readers too.
    refresh:
        ``"auto"`` (default) probes the file's stat signature on each request
        and reopens when an appender published a new generation; ``"manual"``
        only reopens on an explicit :meth:`handle_refresh` / ``POST
        /archives/{id}/refresh``.
    backend / jobs:
        Forwarded to every :class:`~repro.store.reader.ArchiveReader`.
    """

    def __init__(
        self,
        archives: Union[None, Dict[str, PathLike], List] = None,
        cache: Optional[SharedChunkCache] = None,
        refresh: str = "auto",
        backend: str = "auto",
        jobs: Optional[int] = None,
    ) -> None:
        if refresh not in ("auto", "manual"):
            raise ValueError(f"refresh must be 'auto' or 'manual', got {refresh!r}")
        self.cache = cache if cache is not None else process_chunk_cache()
        self.refresh_mode = refresh
        self._backend = backend
        self._jobs = jobs
        self._handles: Dict[str, ArchiveHandle] = {}
        self._handles_lock = threading.Lock()
        self._closed = False
        # Always-on per-service recorder (mirrors ChunkFetcher.telemetry):
        # request counts/latencies are available for stats and load tests even
        # when global telemetry is disabled.
        self.telemetry = _obs.Recorder()
        if archives:
            items = archives.items() if isinstance(archives, dict) else [
                self._parse_spec(spec) for spec in archives
            ]
            for archive_id, path in items:
                self.add_archive(path, archive_id=archive_id)

    @staticmethod
    def _parse_spec(spec) -> Tuple[Optional[str], PathLike]:
        """Split an ``"id=path"`` CLI spec; a bare path gets a stem-derived id."""
        if isinstance(spec, (tuple, list)) and len(spec) == 2:
            return spec[0], spec[1]
        text = os.fspath(spec)
        archive_id, sep, path = text.partition("=")
        if sep and archive_id.strip() and not os.sep in archive_id:
            return archive_id.strip(), path
        return None, text

    def add_archive(self, path: PathLike, archive_id: Optional[str] = None) -> ArchiveHandle:
        """Open an archive and serve it under ``archive_id`` (default: file stem)."""
        if archive_id is None:
            archive_id = Path(path).stem
        archive_id = str(archive_id)
        with self._handles_lock:
            if archive_id in self._handles:
                raise ValueError(f"archive id {archive_id!r} is already being served")
        handle = ArchiveHandle(
            archive_id,
            path,
            cache=self.cache,
            backend=self._backend,
            jobs=self._jobs,
            auto_refresh=self.refresh_mode == "auto",
        )
        with self._handles_lock:
            if archive_id in self._handles:  # pragma: no cover - racing add_archive
                handle.close()
                raise ValueError(f"archive id {archive_id!r} is already being served")
            self._handles[archive_id] = handle
        return handle

    @property
    def archive_ids(self) -> List[str]:
        with self._handles_lock:
            return sorted(self._handles)

    def handle(self, archive_id: str) -> ArchiveHandle:
        """The handle serving ``archive_id`` (``KeyError`` → 404)."""
        with self._handles_lock:
            if archive_id not in self._handles:
                raise KeyError(
                    f"no archive {archive_id!r} is being served; "
                    f"available: {sorted(self._handles)}"
                )
            return self._handles[archive_id]

    def close(self) -> None:
        """Retire every handle (idempotent); in-flight readers close on release."""
        if self._closed:
            return
        with self._handles_lock:
            handles = list(self._handles.values())
            self._handles.clear()
        for handle in handles:
            handle.close()
        self._closed = True

    def __enter__(self) -> "ArchiveService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # request execution: metrics + error mapping shared by every endpoint
    # ------------------------------------------------------------------ #
    def _execute(
        self, endpoint: str, fn: Callable[[], ServiceResponse], **span_args
    ) -> ServiceResponse:
        recorder = _obs.get_recorder()
        started = time.perf_counter()
        try:
            with recorder.span(f"http.{endpoint}", **span_args):
                response = fn()
        except ServiceError as exc:
            response = exc.to_response()
        except KeyError as exc:
            # KeyError.__str__ wraps the message in spurious quotes
            detail = exc.args[0] if exc.args else str(exc)
            response = ServiceResponse.error(404, detail)
        except ArchiveCorruptionError as exc:
            response = ServiceResponse.error(500, str(exc))
        except ArchiveError as exc:
            # out-of-bounds / malformed regions: Range Not Satisfiable
            response = ServiceResponse.error(416, str(exc))
        except ValueError as exc:
            # bad fraction, bad slice syntax, bad query parameters
            response = ServiceResponse.error(422, str(exc))
        except OSError as exc:
            response = ServiceResponse.error(500, str(exc))
        elapsed = time.perf_counter() - started
        self.telemetry.count("http.request.count")
        self.telemetry.count(f"http.request.status.{response.status}")
        self.telemetry.count("http.request.bytes_out", len(response.body))
        self.telemetry.observe("http.request.seconds", elapsed)
        self.telemetry.observe(f"http.endpoint.{endpoint}.seconds", elapsed)
        if recorder.enabled:
            recorder.count("http.request.count")
            recorder.count(f"http.request.status.{response.status}")
            recorder.count("http.request.bytes_out", len(response.body))
            recorder.observe("http.request.seconds", elapsed)
            recorder.observe(f"http.endpoint.{endpoint}.seconds", elapsed)
        return response

    # ------------------------------------------------------------------ #
    # response builders
    # ------------------------------------------------------------------ #
    @staticmethod
    def _check_format(fmt: str, allowed: Tuple[str, ...]) -> str:
        fmt = (fmt or allowed[0]).lower()
        if fmt not in allowed:
            raise ServiceError(
                422, f"format must be one of {list(allowed)}, got {fmt!r}"
            )
        return fmt

    @staticmethod
    def _array_response(
        data: np.ndarray,
        fmt: str,
        etag: str,
        generation: int,
        extra_headers: Optional[Dict[str, str]] = None,
        extra_payload: Optional[Dict] = None,
    ) -> ServiceResponse:
        headers = {
            "ETag": etag,
            "X-Repro-Generation": str(generation),
            "X-Repro-Shape": ",".join(map(str, data.shape)),
            "X-Repro-Dtype": str(data.dtype),
        }
        headers.update(extra_headers or {})
        if fmt == "npy":
            buffer = io.BytesIO()
            np.save(buffer, data, allow_pickle=False)
            return ServiceResponse(
                status=200, body=buffer.getvalue(), media_type=NPY_MEDIA_TYPE, headers=headers
            )
        payload = {
            "shape": list(data.shape),
            "dtype": str(data.dtype),
            "generation": int(generation),
            "data": data.tolist(),
        }
        payload.update(extra_payload or {})
        return ServiceResponse.json(payload, headers=headers)

    # ------------------------------------------------------------------ #
    # endpoints
    # ------------------------------------------------------------------ #
    def handle_health(self) -> ServiceResponse:
        """``GET /healthz`` — liveness plus the served archive count."""
        def run() -> ServiceResponse:
            with self._handles_lock:
                count = len(self._handles)
            return ServiceResponse.json({"status": "ok", "archives": count})

        return self._execute("health", run)

    def handle_archives(self) -> ServiceResponse:
        """``GET /archives`` — id, path, generation and sizes of every archive."""
        def run() -> ServiceResponse:
            with self._handles_lock:
                handles = sorted(self._handles.values(), key=lambda h: h.id)
            listing = []
            for handle in handles:
                with handle.reader() as reader:
                    listing.append(
                        {
                            "id": handle.id,
                            "path": str(handle.path),
                            "generation": reader.generation,
                            "fields": len(reader.names),
                            "steps": len(reader.steps),
                        }
                    )
            return ServiceResponse.json({"archives": listing})

        return self._execute("archives", run)

    def handle_manifest(
        self, archive_id: str, if_none_match: Optional[str] = None
    ) -> ServiceResponse:
        """``GET /archives/{id}/manifest`` — fields, codec params, timestep index."""
        def run() -> ServiceResponse:
            handle = self.handle(archive_id)
            with handle.reader() as reader:
                etag = _etag_for(handle.id, reader.generation)
                if _etag_matches(if_none_match, etag):
                    return ServiceResponse.not_modified(etag, reader.generation)
                fields = []
                for entry in reader.fields():
                    payload = entry.to_dict()
                    payload.pop("chunks")  # offsets are server-internal noise
                    payload["chunk_count"] = len(entry.chunks)
                    payload["compressed_nbytes"] = entry.compressed_nbytes
                    payload["grid_counts"] = list(entry.grid_counts)
                    fields.append(payload)
                document = {
                    "id": handle.id,
                    "format": "XFA1",
                    "generation": reader.generation,
                    "attrs": reader.attrs,
                    "fields": fields,
                    "timesteps": [ts.to_dict() for ts in reader.timesteps],
                }
                return ServiceResponse.json(
                    document,
                    headers={"ETag": etag, "X-Repro-Generation": str(reader.generation)},
                )

        return self._execute("manifest", run, archive=archive_id)

    def handle_region(
        self,
        archive_id: str,
        field_name: str,
        region: Optional[str] = None,
        fmt: str = "npy",
        if_none_match: Optional[str] = None,
    ) -> ServiceResponse:
        """``GET /archives/{id}/fields/{name}/region`` — binary npy or JSON slice.

        ``region`` is the CLI slice syntax (``"0:10,20:40"``; absent reads the
        whole field).  Unknown fields map to 404, out-of-bounds regions to
        416, malformed slice strings to 422.
        """
        def run() -> ServiceResponse:
            response_format = self._check_format(fmt, ("npy", "json"))
            sls = parse_region(region) if region else None
            handle = self.handle(archive_id)
            with handle.reader() as reader:
                etag = _etag_for(handle.id, reader.generation)
                if _etag_matches(if_none_match, etag):
                    return ServiceResponse.not_modified(etag, reader.generation)
                data = reader.read_region(field_name, sls)
                return self._array_response(
                    data,
                    response_format,
                    etag,
                    reader.generation,
                    extra_payload={"field": field_name, "region": region},
                )

        return self._execute("region", run, archive=archive_id, field=field_name)

    def handle_preview(
        self,
        archive_id: str,
        field_name: str,
        fraction: Union[str, float] = 0.25,
        region: Optional[str] = None,
        fmt: str = "npy",
        if_none_match: Optional[str] = None,
    ) -> ServiceResponse:
        """``GET /archives/{id}/fields/{name}/preview?fraction=`` — coarse read.

        Rides the grouped progressive layout where the field's codec supports
        it; other codecs serve a full decode with ``fallback: true`` in the
        report (and the ``X-Repro-Preview-Fallback`` header) so clients can
        tell a real prefix decode from a full-price one.  An out-of-range
        ``fraction`` maps to 422.
        """
        def run() -> ServiceResponse:
            response_format = self._check_format(fmt, ("npy", "json"))
            budget = float(fraction)  # ValueError -> 422
            sls = parse_region(region) if region else None
            handle = self.handle(archive_id)
            with handle.reader() as reader:
                etag = _etag_for(handle.id, reader.generation)
                if _etag_matches(if_none_match, etag):
                    return ServiceResponse.not_modified(etag, reader.generation)
                data, info = reader.read_region_preview(field_name, sls, fraction=budget)
                headers = {
                    "X-Repro-Preview-Fraction": f"{info['fraction']:g}",
                    "X-Repro-Preview-Bytes": str(info["bytes_decoded"]),
                    "X-Repro-Preview-Bytes-Total": str(info["bytes_total"]),
                    "X-Repro-Preview-Groups": str(info["groups_decoded"]),
                    "X-Repro-Preview-Groups-Total": str(info["groups_total"]),
                    "X-Repro-Preview-RMS-Estimate": f"{info['rms_error_estimate']:g}",
                    "X-Repro-Preview-Fallback": "true" if info["fallback"] else "false",
                }
                return self._array_response(
                    data,
                    response_format,
                    etag,
                    reader.generation,
                    extra_headers=headers,
                    extra_payload={"field": field_name, "region": region, "preview": info},
                )

        return self._execute("preview", run, archive=archive_id, field=field_name)

    def handle_timesteps(self, archive_id: str, if_none_match: Optional[str] = None) -> ServiceResponse:
        """``GET /archives/{id}/timesteps`` — the timestep index with sizes."""
        def run() -> ServiceResponse:
            handle = self.handle(archive_id)
            with handle.reader() as reader:
                etag = _etag_for(handle.id, reader.generation)
                if _etag_matches(if_none_match, etag):
                    return ServiceResponse.not_modified(etag, reader.generation)
                steps = []
                for ts in reader.timesteps:
                    entry = ts.to_dict()
                    entry["compressed_nbytes"] = sum(
                        reader.field(stored).compressed_nbytes
                        for stored in ts.fields.values()
                    )
                    steps.append(entry)
                return ServiceResponse.json(
                    {"id": handle.id, "generation": reader.generation, "steps": steps},
                    headers={"ETag": etag, "X-Repro-Generation": str(reader.generation)},
                )

        return self._execute("timesteps", run, archive=archive_id)

    def handle_timestep(
        self,
        archive_id: str,
        step: Union[str, int],
        fields: Optional[str] = None,
        fmt: str = "json",
    ) -> ServiceResponse:
        """``GET /archives/{id}/timesteps/{step}`` — one decoded timestep.

        ``fmt="npz"`` streams the fields as one ``np.savez`` container;
        ``fmt="json"`` nests them as lists.  Unknown steps and unknown field
        selections map to 404.
        """
        def run() -> ServiceResponse:
            response_format = self._check_format(fmt, ("json", "npz"))
            step_id = int(step)  # ValueError -> 422
            names = _split_fields(fields)
            handle = self.handle(archive_id)
            with handle.reader() as reader:
                etag = _etag_for(handle.id, reader.generation)
                try:
                    entry = reader.manifest.timestep(step_id)
                    fieldset = reader.read_timestep(step_id, fields=names)
                except ArchiveError as exc:
                    # a missing step / missing field selection is Not Found,
                    # not an unsatisfiable range
                    raise ServiceError(404, str(exc))
                headers = {"ETag": etag, "X-Repro-Generation": str(reader.generation)}
                if response_format == "npz":
                    buffer = io.BytesIO()
                    np.savez(
                        buffer, **{name: fieldset[name].data for name in fieldset.names}
                    )
                    headers["X-Repro-Step"] = str(entry.step)
                    return ServiceResponse(
                        status=200,
                        body=buffer.getvalue(),
                        media_type=NPZ_MEDIA_TYPE,
                        headers=headers,
                    )
                payload = {
                    "id": handle.id,
                    "generation": reader.generation,
                    "step": entry.step,
                    "time": entry.time,
                    "fields": {
                        name: {
                            "shape": list(fieldset[name].data.shape),
                            "dtype": str(fieldset[name].data.dtype),
                            "data": fieldset[name].data.tolist(),
                        }
                        for name in fieldset.names
                    },
                }
                return ServiceResponse.json(payload, headers=headers)

        return self._execute("timestep", run, archive=archive_id, step=str(step))

    def handle_timerange(
        self,
        archive_id: str,
        start: Union[None, str, int] = None,
        stop: Union[None, str, int] = None,
        fields: Optional[str] = None,
        include: str = "stats",
    ) -> ServiceResponse:
        """``GET /archives/{id}/timerange?start=&stop=`` — a decoded step range.

        ``include="stats"`` (default) summarises each field (shape, min, max,
        mean) so long ranges stay cheap to transfer; ``include="data"`` nests
        the full arrays.
        """
        def run() -> ServiceResponse:
            mode = self._check_format(include, ("stats", "data"))
            lo = int(start) if start is not None else None  # ValueError -> 422
            hi = int(stop) if stop is not None else None
            names = _split_fields(fields)
            handle = self.handle(archive_id)
            with handle.reader() as reader:
                etag = _etag_for(handle.id, reader.generation)
                try:
                    selected = reader.read_time_range(lo, hi, fields=names)
                except ArchiveError as exc:
                    raise ServiceError(404, str(exc))
                steps = []
                for entry, fieldset in selected:
                    rendered: Dict = {"step": entry.step, "time": entry.time, "fields": {}}
                    for name in fieldset.names:
                        data = fieldset[name].data
                        item: Dict = {"shape": list(data.shape), "dtype": str(data.dtype)}
                        if mode == "data":
                            item["data"] = data.tolist()
                        else:
                            item.update(
                                min=float(data.min()),
                                max=float(data.max()),
                                mean=float(data.mean()),
                            )
                        rendered["fields"][name] = item
                    steps.append(rendered)
                return ServiceResponse.json(
                    {"id": handle.id, "generation": reader.generation, "steps": steps},
                    headers={"ETag": etag, "X-Repro-Generation": str(reader.generation)},
                )

        return self._execute("timerange", run, archive=archive_id)

    def handle_refresh(self, archive_id: str) -> ServiceResponse:
        """``POST /archives/{id}/refresh`` — explicit reopen-on-new-generation."""
        def run() -> ServiceResponse:
            handle = self.handle(archive_id)
            reopened = handle.refresh()
            return ServiceResponse.json(
                {"id": handle.id, "generation": handle.generation, "reopened": reopened}
            )

        return self._execute("refresh", run, archive=archive_id)

    def handle_stats(self, archive_id: Optional[str] = None) -> ServiceResponse:
        """``GET /stats`` / ``GET /archives/{id}/stats`` — cache + request stats."""
        def run() -> ServiceResponse:
            document: Dict = {"requests": self.request_stats()}
            document["shared_cache"] = {
                key: int(value) for key, value in self.cache.stats.items()
            }
            if archive_id is not None:
                handle = self.handle(archive_id)
                with handle.reader() as reader:
                    document["archive"] = {
                        "id": handle.id,
                        "generation": reader.generation,
                        "cache": {
                            key: value
                            for key, value in reader.cache_stats().items()
                            if not isinstance(value, dict)
                        },
                    }
            return ServiceResponse.json(document)

        return self._execute("stats", run, archive=archive_id or "-")

    def request_stats(self) -> Dict[str, float]:
        """Aggregate request counters from the always-on service recorder."""
        snapshot = self.telemetry.snapshot()
        stats = {
            name: value
            for name, value in snapshot.counters.items()
            if name.startswith("http.")
        }
        histogram = snapshot.histograms.get("http.request.seconds")
        if histogram is not None and histogram.count:
            stats["http.request.p50_seconds"] = histogram.quantile(0.5)
            stats["http.request.p99_seconds"] = histogram.quantile(0.99)
        return stats

    # ------------------------------------------------------------------ #
    # transport-agnostic dispatch (used by the stdlib server)
    # ------------------------------------------------------------------ #
    _ROUTES: List[Tuple[str, "re.Pattern", str]] = [
        ("GET", re.compile(r"^/healthz/?$"), "health"),
        ("GET", re.compile(r"^/stats/?$"), "stats"),
        ("GET", re.compile(r"^/archives/?$"), "archives"),
        ("GET", re.compile(r"^/archives/(?P<archive_id>[^/]+)/manifest/?$"), "manifest"),
        ("GET", re.compile(r"^/archives/(?P<archive_id>[^/]+)/stats/?$"), "archive_stats"),
        (
            "GET",
            re.compile(r"^/archives/(?P<archive_id>[^/]+)/fields/(?P<field>[^/]+)/region/?$"),
            "region",
        ),
        (
            "GET",
            re.compile(r"^/archives/(?P<archive_id>[^/]+)/fields/(?P<field>[^/]+)/preview/?$"),
            "preview",
        ),
        ("GET", re.compile(r"^/archives/(?P<archive_id>[^/]+)/timesteps/?$"), "timesteps"),
        (
            "GET",
            re.compile(r"^/archives/(?P<archive_id>[^/]+)/timesteps/(?P<step>[^/]+)/?$"),
            "timestep",
        ),
        ("GET", re.compile(r"^/archives/(?P<archive_id>[^/]+)/timerange/?$"), "timerange"),
        ("POST", re.compile(r"^/archives/(?P<archive_id>[^/]+)/refresh/?$"), "refresh"),
    ]

    def dispatch(
        self,
        method: str,
        path: str,
        query: Optional[Dict[str, str]] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> ServiceResponse:
        """Route one request to its endpoint handler.

        ``query`` values are plain strings (last value wins for repeats);
        ``headers`` keys are matched case-insensitively.  Used by the stdlib
        HTTP server and by in-process callers (scenario smoke traffic); the
        FastAPI app routes natively onto the same ``handle_*`` methods.
        """
        query = dict(query or {})
        lowered = {str(k).lower(): v for k, v in (headers or {}).items()}
        if_none_match = lowered.get("if-none-match")
        matched_path = False
        for route_method, pattern, endpoint in self._ROUTES:
            match = pattern.match(path)
            if match is None:
                continue
            matched_path = True
            if method.upper() != route_method:
                continue
            params = {key: unquote(value) for key, value in match.groupdict().items()}
            if endpoint == "health":
                return self.handle_health()
            if endpoint == "stats":
                return self.handle_stats()
            if endpoint == "archives":
                return self.handle_archives()
            if endpoint == "manifest":
                return self.handle_manifest(params["archive_id"], if_none_match=if_none_match)
            if endpoint == "archive_stats":
                return self.handle_stats(params["archive_id"])
            if endpoint == "region":
                return self.handle_region(
                    params["archive_id"],
                    params["field"],
                    region=query.get("region"),
                    fmt=query.get("format", "npy"),
                    if_none_match=if_none_match,
                )
            if endpoint == "preview":
                return self.handle_preview(
                    params["archive_id"],
                    params["field"],
                    fraction=query.get("fraction", 0.25),
                    region=query.get("region"),
                    fmt=query.get("format", "npy"),
                    if_none_match=if_none_match,
                )
            if endpoint == "timesteps":
                return self.handle_timesteps(params["archive_id"], if_none_match=if_none_match)
            if endpoint == "timestep":
                return self.handle_timestep(
                    params["archive_id"],
                    params["step"],
                    fields=query.get("fields"),
                    fmt=query.get("format", "json"),
                )
            if endpoint == "timerange":
                return self.handle_timerange(
                    params["archive_id"],
                    start=query.get("start"),
                    stop=query.get("stop"),
                    fields=query.get("fields"),
                    include=query.get("include", "stats"),
                )
            if endpoint == "refresh":
                return self.handle_refresh(params["archive_id"])
        if matched_path:
            response = ServiceResponse.error(405, f"method {method} not allowed for {path}")
        else:
            response = ServiceResponse.error(404, f"no route for {method} {path}")
        self.telemetry.count("http.request.count")
        self.telemetry.count(f"http.request.status.{response.status}")
        return response


def _split_fields(fields: Optional[str]) -> Optional[List[str]]:
    """Parse a ``fields=a,b`` query value (``None``/empty selects everything)."""
    if fields is None:
        return None
    names = [token.strip() for token in str(fields).split(",") if token.strip()]
    return names or None
