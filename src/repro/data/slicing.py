"""Patch extraction, block decomposition and slicing utilities.

Training the CFNN uses random patches sampled from the anchor/target difference
fields; the block-parallel compressor decomposes a grid into independent blocks
(made possible by dual quantization); the visual experiments (paper Figures 1,
6, 7, 9) extract 2D slices and zoom windows.  All of that lives here.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.validation import ensure_array

__all__ = [
    "extract_patches",
    "extract_patches_nd",
    "iter_blocks",
    "reassemble_blocks",
    "take_slice",
    "zoom_window",
]


def extract_patches(
    arrays: Sequence[np.ndarray],
    patch_size: int,
    n_patches: int,
    rng: Optional[np.random.Generator] = None,
) -> List[np.ndarray]:
    """Sample ``n_patches`` aligned random 2D patches from each array in ``arrays``.

    All arrays must share the same 2D shape.  The same patch locations are used
    for every array so that anchor-field patches and target-field patches stay
    point-wise aligned — the property CFNN training depends on.

    Returns a list with one ``(n_patches, patch_size, patch_size)`` array per
    input array.
    """
    if rng is None:
        rng = np.random.default_rng()
    arrays = [ensure_array(a, f"arrays[{i}]") for i, a in enumerate(arrays)]
    shape = arrays[0].shape
    if any(a.shape != shape for a in arrays):
        raise ValueError("all arrays must share the same shape")
    if len(shape) != 2:
        raise ValueError(f"extract_patches expects 2D arrays, got shape {shape}")
    h, w = shape
    if patch_size > h or patch_size > w:
        raise ValueError(f"patch_size {patch_size} exceeds array shape {shape}")
    rows = rng.integers(0, h - patch_size + 1, size=n_patches)
    cols = rng.integers(0, w - patch_size + 1, size=n_patches)
    outputs = []
    for arr in arrays:
        patches = np.empty((n_patches, patch_size, patch_size), dtype=arr.dtype)
        for k, (r, c) in enumerate(zip(rows, cols)):
            patches[k] = arr[r : r + patch_size, c : c + patch_size]
        outputs.append(patches)
    return outputs


def extract_patches_nd(
    arrays: Sequence[np.ndarray],
    patch_shape: Sequence[int],
    n_patches: int,
    rng: Optional[np.random.Generator] = None,
) -> List[np.ndarray]:
    """N-dimensional generalisation of :func:`extract_patches`.

    ``patch_shape`` must have the same length as the array ndim.  Returns one
    ``(n_patches, *patch_shape)`` array per input array, with aligned sampling
    locations across arrays.
    """
    if rng is None:
        rng = np.random.default_rng()
    arrays = [ensure_array(a, f"arrays[{i}]") for i, a in enumerate(arrays)]
    shape = arrays[0].shape
    if any(a.shape != shape for a in arrays):
        raise ValueError("all arrays must share the same shape")
    patch_shape = tuple(int(p) for p in patch_shape)
    if len(patch_shape) != len(shape):
        raise ValueError(f"patch_shape {patch_shape} rank must match array rank {len(shape)}")
    for p, s in zip(patch_shape, shape):
        if p > s:
            raise ValueError(f"patch_shape {patch_shape} exceeds array shape {shape}")
    starts = [
        rng.integers(0, s - p + 1, size=n_patches) for p, s in zip(patch_shape, shape)
    ]
    outputs = []
    for arr in arrays:
        patches = np.empty((n_patches, *patch_shape), dtype=arr.dtype)
        for k in range(n_patches):
            index = tuple(
                slice(int(starts[d][k]), int(starts[d][k]) + patch_shape[d])
                for d in range(len(shape))
            )
            patches[k] = arr[index]
        outputs.append(patches)
    return outputs


def iter_blocks(
    shape: Sequence[int], block_shape: Sequence[int]
) -> Iterator[Tuple[slice, ...]]:
    """Yield index tuples tiling ``shape`` with blocks of at most ``block_shape``.

    Edge blocks are truncated to fit.  Blocks are yielded in C order so that
    :func:`reassemble_blocks` can restore the original array.
    """
    shape = tuple(int(s) for s in shape)
    block_shape = tuple(int(b) for b in block_shape)
    if len(block_shape) != len(shape):
        raise ValueError("block_shape rank must match shape rank")
    if any(b <= 0 for b in block_shape):
        raise ValueError("block_shape entries must be positive")
    counts = [int(np.ceil(s / b)) for s, b in zip(shape, block_shape)]
    for flat in range(int(np.prod(counts))):
        idx = np.unravel_index(flat, counts)
        yield tuple(
            slice(int(i) * b, min((int(i) + 1) * b, s)) for i, b, s in zip(idx, block_shape, shape)
        )


def reassemble_blocks(
    blocks: Sequence[np.ndarray],
    shape: Sequence[int],
    block_shape: Sequence[int],
    dtype=None,
) -> np.ndarray:
    """Inverse of decomposing with :func:`iter_blocks`: paste blocks back together."""
    shape = tuple(int(s) for s in shape)
    out_dtype = dtype if dtype is not None else blocks[0].dtype
    out = np.empty(shape, dtype=out_dtype)
    slices = list(iter_blocks(shape, block_shape))
    if len(slices) != len(blocks):
        raise ValueError(f"expected {len(slices)} blocks, got {len(blocks)}")
    for sl, block in zip(slices, blocks):
        expected_shape = tuple(s.stop - s.start for s in sl)
        if block.shape != expected_shape:
            raise ValueError(f"block shape {block.shape} does not match slot {expected_shape}")
        out[sl] = block
    return out


def take_slice(data: np.ndarray, axis: int, index: int) -> np.ndarray:
    """Extract the 2D (or (n-1)-D) slice ``index`` along ``axis``.

    Used to reproduce the visual figures (e.g. "the 49th slice along the first
    dimension" in paper Figure 1).
    """
    data = ensure_array(data, "data")
    if not -data.ndim <= axis < data.ndim:
        raise ValueError(f"axis {axis} out of range for ndim {data.ndim}")
    axis = axis % data.ndim
    if not 0 <= index < data.shape[axis]:
        raise IndexError(f"index {index} out of range for axis {axis} with size {data.shape[axis]}")
    return np.take(data, index, axis=axis)


def zoom_window(image: np.ndarray, center: Tuple[int, int], size: int) -> np.ndarray:
    """Extract a ``size x size`` window centred at ``center`` (clipped to bounds).

    Mirrors the zoom-in comparisons in paper Figures 7 and 9.
    """
    image = ensure_array(image, "image")
    if image.ndim != 2:
        raise ValueError("zoom_window expects a 2D image")
    h, w = image.shape
    half = size // 2
    r0 = min(max(center[0] - half, 0), max(h - size, 0))
    c0 = min(max(center[1] - half, 0), max(w - size, 0))
    return image[r0 : r0 + size, c0 : c0 + size]
