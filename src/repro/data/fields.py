"""Containers for named scientific data fields.

Scientific simulation snapshots consist of several *fields* (variables) defined
on the same grid — e.g. the SCALE-LETKF snapshot contains U, V, W, T, QV, PRES,
RH and more on a ``98 x 1200 x 1200`` grid.  The cross-field compressor needs to
address fields by name, know their grid, normalise them, and group a target
field with its anchor fields.  :class:`Field` and :class:`FieldSet` provide that
plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.utils.validation import ensure_array

__all__ = ["Field", "FieldSet"]


@dataclass
class Field:
    """A single named scientific variable on a regular grid.

    Parameters
    ----------
    name:
        Field name (e.g. ``"U"``, ``"CLDTOT"``).
    data:
        The raw values.  Stored as ``float32`` by default to match the
        single-precision SDRBench datasets used in the paper.
    units:
        Optional physical units string, purely informational.
    description:
        Optional human readable description.
    """

    name: str
    data: np.ndarray
    units: str = ""
    description: str = ""

    def __post_init__(self) -> None:
        self.data = ensure_array(self.data, name=f"field {self.name!r}")
        if self.data.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            self.data = self.data.astype(np.float32)

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        """Grid shape."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of grid dimensions."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Number of data points."""
        return self.data.size

    @property
    def nbytes(self) -> int:
        """Uncompressed size in bytes."""
        return self.data.nbytes

    @property
    def dtype(self) -> np.dtype:
        """Data dtype."""
        return self.data.dtype

    @property
    def value_range(self) -> float:
        """``max - min`` of the data; used for relative error bounds."""
        return float(np.max(self.data) - np.min(self.data))

    # ------------------------------------------------------------------ #
    # transforms
    # ------------------------------------------------------------------ #
    def normalized(self, lo: float = 0.0, hi: float = 1.0) -> "Field":
        """Return a copy linearly mapped to ``[lo, hi]``.

        Constant fields map to ``lo`` everywhere.
        """
        dmin = float(np.min(self.data))
        rng = self.value_range
        if rng == 0.0:
            scaled = np.full_like(self.data, lo)
        else:
            scaled = (self.data - dmin) / rng * (hi - lo) + lo
        return Field(self.name, scaled.astype(self.data.dtype), self.units, self.description)

    def astype(self, dtype) -> "Field":
        """Return a copy cast to ``dtype``."""
        return Field(self.name, self.data.astype(dtype), self.units, self.description)

    def copy(self) -> "Field":
        """Deep copy."""
        return Field(self.name, self.data.copy(), self.units, self.description)

    def with_data(self, data: np.ndarray) -> "Field":
        """Return a new field with the same metadata but different values."""
        return Field(self.name, data, self.units, self.description)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Field(name={self.name!r}, shape={self.shape}, dtype={self.dtype}, "
            f"range=[{float(np.min(self.data)):.4g}, {float(np.max(self.data)):.4g}])"
        )


class FieldSet:
    """An ordered, name-addressable collection of :class:`Field` on one grid.

    All fields in a set must share the same shape — that is what makes
    cross-field prediction meaningful (point-wise correspondence between
    fields).
    """

    def __init__(self, fields: Iterable[Field] = (), name: str = "dataset") -> None:
        self.name = name
        self._fields: Dict[str, Field] = {}
        for f in fields:
            self.add(f)

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def add(self, field: Field) -> None:
        """Add a field, enforcing the shared-grid invariant."""
        if not isinstance(field, Field):
            raise TypeError(f"expected Field, got {type(field).__name__}")
        if self._fields:
            expected = next(iter(self._fields.values())).shape
            if field.shape != expected:
                raise ValueError(
                    f"field {field.name!r} has shape {field.shape}, but the set grid is {expected}"
                )
        if field.name in self._fields:
            raise ValueError(f"duplicate field name {field.name!r}")
        self._fields[field.name] = field

    def remove(self, name: str) -> Field:
        """Remove and return a field by name."""
        if name not in self._fields:
            raise KeyError(name)
        return self._fields.pop(name)

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    def __getitem__(self, name: str) -> Field:
        if name not in self._fields:
            raise KeyError(f"no field named {name!r}; available: {self.names}")
        return self._fields[name]

    def __contains__(self, name: str) -> bool:
        return name in self._fields

    def __iter__(self) -> Iterator[Field]:
        return iter(self._fields.values())

    def __len__(self) -> int:
        return len(self._fields)

    @property
    def names(self) -> List[str]:
        """Field names in insertion order."""
        return list(self._fields.keys())

    @property
    def shape(self) -> Tuple[int, ...]:
        """Shared grid shape (raises if the set is empty)."""
        if not self._fields:
            raise ValueError("FieldSet is empty")
        return next(iter(self._fields.values())).shape

    @property
    def ndim(self) -> int:
        """Number of grid dimensions."""
        return len(self.shape)

    @property
    def nbytes(self) -> int:
        """Total uncompressed bytes across all fields."""
        return sum(f.nbytes for f in self._fields.values())

    def subset(self, names: Sequence[str], name: Optional[str] = None) -> "FieldSet":
        """Return a new set containing only ``names`` (order preserved)."""
        return FieldSet([self[n] for n in names], name=name or self.name)

    def arrays(self, names: Optional[Sequence[str]] = None) -> List[np.ndarray]:
        """Return the raw arrays of ``names`` (all fields when ``None``)."""
        if names is None:
            names = self.names
        return [self[n].data for n in names]

    def stacked(self, names: Optional[Sequence[str]] = None) -> np.ndarray:
        """Stack the selected fields into a ``(n_fields, *grid)`` array."""
        return np.stack(self.arrays(names), axis=0)

    def to_dict(self) -> Mapping[str, np.ndarray]:
        """Return a ``{name: array}`` mapping (views, not copies)."""
        return {name: f.data for name, f in self._fields.items()}

    @classmethod
    def from_dict(cls, mapping: Mapping[str, np.ndarray], name: str = "dataset") -> "FieldSet":
        """Build a set from a ``{name: array}`` mapping."""
        return cls([Field(n, arr) for n, arr in mapping.items()], name=name)

    def describe(self) -> str:
        """Multi-line text summary of the set (used by examples and reports)."""
        lines = [f"FieldSet {self.name!r}: {len(self)} fields, grid {self.shape if self._fields else ()}"]
        for f in self:
            lines.append(
                f"  {f.name:<10s} min={float(np.min(f.data)):>12.4g} "
                f"max={float(np.max(f.data)):>12.4g} mean={float(np.mean(f.data)):>12.4g}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FieldSet(name={self.name!r}, fields={self.names})"
