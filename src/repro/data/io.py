"""Binary IO in the SDRBench layout.

SDRBench distributes each field of a dataset as a separate headerless binary
file of little-endian ``float32`` values in row-major (C) order, e.g.
``SCALE-98x1200x1200/U.f32``.  These helpers read and write that layout, plus a
small JSON-manifest convenience format for whole :class:`~repro.data.fields.FieldSet`
objects so synthetic datasets can be cached on disk between benchmark runs.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.data.fields import Field, FieldSet
from repro.utils.validation import ensure_array

__all__ = ["read_sdrbench", "write_sdrbench", "read_fieldset", "write_fieldset"]

PathLike = Union[str, os.PathLike]


def read_sdrbench(
    path: PathLike,
    shape: Sequence[int],
    dtype=np.float32,
    name: Optional[str] = None,
) -> Field:
    """Read one SDRBench-style raw binary field.

    Parameters
    ----------
    path:
        Path to the ``.f32`` / ``.dat`` file.
    shape:
        Grid shape the flat file should be reshaped to (C order).
    dtype:
        On-disk dtype; SDRBench uses little-endian ``float32``.
    name:
        Field name; defaults to the file stem.

    Raises
    ------
    ValueError
        If the file size does not match ``prod(shape) * itemsize``.
    """
    path = Path(path)
    shape = tuple(int(s) for s in shape)
    expected = int(np.prod(shape)) * np.dtype(dtype).itemsize
    actual = path.stat().st_size
    if actual != expected:
        raise ValueError(
            f"{path} holds {actual} bytes but shape {shape} with dtype {np.dtype(dtype)} "
            f"requires {expected} bytes"
        )
    data = np.fromfile(path, dtype=dtype).reshape(shape)
    return Field(name or path.stem, data)


def write_sdrbench(field: Field, path: PathLike, dtype=np.float32) -> Path:
    """Write a field as a headerless raw binary file (SDRBench layout)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    field.data.astype(dtype).tofile(path)
    return path


def write_fieldset(fieldset: FieldSet, directory: PathLike, dtype=np.float32) -> Path:
    """Write every field of a set plus a ``manifest.json`` describing the grid.

    The manifest records the dataset name, grid shape, dtype, and per-field
    file names/units/descriptions so that :func:`read_fieldset` can restore the
    set without external knowledge.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest: Dict = {
        "name": fieldset.name,
        "shape": list(fieldset.shape),
        "dtype": np.dtype(dtype).name,
        "fields": [],
    }
    for field in fieldset:
        filename = f"{field.name}.f32"
        write_sdrbench(field, directory / filename, dtype=dtype)
        manifest["fields"].append(
            {
                "name": field.name,
                "file": filename,
                "units": field.units,
                "description": field.description,
            }
        )
    with open(directory / "manifest.json", "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2)
    return directory


def read_fieldset(directory: PathLike) -> FieldSet:
    """Read a field set previously written by :func:`write_fieldset`."""
    directory = Path(directory)
    manifest_path = directory / "manifest.json"
    if not manifest_path.exists():
        raise FileNotFoundError(f"no manifest.json in {directory}")
    with open(manifest_path, "r", encoding="utf-8") as fh:
        manifest = json.load(fh)
    shape = tuple(manifest["shape"])
    dtype = np.dtype(manifest["dtype"])
    fields = []
    for entry in manifest["fields"]:
        field = read_sdrbench(directory / entry["file"], shape, dtype=dtype, name=entry["name"])
        field.units = entry.get("units", "")
        field.description = entry.get("description", "")
        fields.append(field)
    return FieldSet(fields, name=manifest.get("name", directory.name))
