"""First-order finite-difference operators.

The cross-field neural network (CFNN) does not predict raw field values — it
predicts the *first-order backward difference* of the target field along each
dimension, taking the backward differences of the anchor fields as input
(paper Section III-B).  Backward differences are also what makes the predictor
compatible with the Lorenzo decode order (paper Figure 3): the reconstruction
of point ``(i, j)`` only needs values at smaller indices.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.utils.validation import ensure_array

__all__ = [
    "backward_difference",
    "forward_difference",
    "central_difference",
    "backward_differences_all_dims",
    "integrate_backward_difference",
]


def backward_difference(data: np.ndarray, axis: int) -> np.ndarray:
    """First-order backward difference ``d[i] = x[i] - x[i-1]`` along ``axis``.

    The first element along ``axis`` (which has no predecessor) is defined as
    ``x[0] - 0 = x[0]`` so that the difference field has the same shape as the
    input and :func:`integrate_backward_difference` is an exact inverse.
    """
    data = ensure_array(data, "data")
    axis = _normalize_axis(axis, data.ndim)
    out = data.copy()
    src = [slice(None)] * data.ndim
    dst = [slice(None)] * data.ndim
    src[axis] = slice(None, -1)
    dst[axis] = slice(1, None)
    out[tuple(dst)] = data[tuple(dst)] - data[tuple(src)]
    return out


def forward_difference(data: np.ndarray, axis: int) -> np.ndarray:
    """First-order forward difference ``d[i] = x[i+1] - x[i]`` along ``axis``.

    The last element along ``axis`` is set to zero (no successor).
    """
    data = ensure_array(data, "data")
    axis = _normalize_axis(axis, data.ndim)
    out = np.zeros_like(data)
    src = [slice(None)] * data.ndim
    dst = [slice(None)] * data.ndim
    src[axis] = slice(1, None)
    dst[axis] = slice(None, -1)
    out[tuple(dst)] = data[tuple(src)] - data[tuple(dst)]
    return out


def central_difference(data: np.ndarray, axis: int) -> np.ndarray:
    """First-order central difference ``d[i] = (x[i+1] - x[i-1]) / 2``.

    Boundary points fall back to one-sided differences.  The paper notes that
    central differences predict slightly better but are incompatible with the
    Lorenzo decode order; this implementation exists for the corresponding
    ablation.
    """
    data = ensure_array(data, "data")
    axis = _normalize_axis(axis, data.ndim)
    out = np.empty_like(data)
    n = data.shape[axis]
    if n == 1:
        out[...] = 0
        return out
    mid_dst = [slice(None)] * data.ndim
    plus = [slice(None)] * data.ndim
    minus = [slice(None)] * data.ndim
    mid_dst[axis] = slice(1, -1)
    plus[axis] = slice(2, None)
    minus[axis] = slice(None, -2)
    out[tuple(mid_dst)] = (data[tuple(plus)] - data[tuple(minus)]) / 2.0
    first_dst = [slice(None)] * data.ndim
    first_dst[axis] = slice(0, 1)
    second = [slice(None)] * data.ndim
    second[axis] = slice(1, 2)
    out[tuple(first_dst)] = data[tuple(second)] - data[tuple(first_dst)]
    last_dst = [slice(None)] * data.ndim
    last_dst[axis] = slice(n - 1, n)
    prev = [slice(None)] * data.ndim
    prev[axis] = slice(n - 2, n - 1)
    out[tuple(last_dst)] = data[tuple(last_dst)] - data[tuple(prev)]
    return out


def backward_differences_all_dims(data: np.ndarray) -> List[np.ndarray]:
    """Backward differences along every axis, in axis order.

    This is the stacked multi-channel representation fed to (and predicted by)
    the CFNN: for an ``n``-dimensional field it returns ``n`` arrays.
    """
    data = ensure_array(data, "data")
    return [backward_difference(data, axis) for axis in range(data.ndim)]


def integrate_backward_difference(diff: np.ndarray, axis: int) -> np.ndarray:
    """Exact inverse of :func:`backward_difference` (cumulative sum along ``axis``)."""
    diff = ensure_array(diff, "diff")
    axis = _normalize_axis(axis, diff.ndim)
    return np.cumsum(diff, axis=axis, dtype=np.float64).astype(diff.dtype)


def _normalize_axis(axis: int, ndim: int) -> int:
    if not -ndim <= axis < ndim:
        raise ValueError(f"axis {axis} out of range for ndim {ndim}")
    return axis % ndim
