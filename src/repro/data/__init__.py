"""Scientific field data substrate.

Provides the containers (:class:`Field`, :class:`FieldSet`), finite-difference
operators used by the cross-field predictor, SDRBench-compatible binary IO, and
synthetic multi-field dataset generators emulating the SCALE-LETKF, CESM-ATM and
Hurricane ISABEL datasets used in the paper.
"""

from repro.data.fields import Field, FieldSet
from repro.data.differences import (
    backward_difference,
    forward_difference,
    central_difference,
    backward_differences_all_dims,
    integrate_backward_difference,
)
from repro.data.io import read_sdrbench, write_sdrbench, read_fieldset, write_fieldset
from repro.data.slicing import (
    extract_patches,
    extract_patches_nd,
    iter_blocks,
    reassemble_blocks,
    take_slice,
)
from repro.data.synthetic import (
    gaussian_random_field,
    fourier_shift,
    make_scale_dataset,
    make_hurricane_dataset,
    make_cesm_dataset,
    make_dataset,
    make_timeseries,
    DATASET_GENERATORS,
)

__all__ = [
    "Field",
    "FieldSet",
    "backward_difference",
    "forward_difference",
    "central_difference",
    "backward_differences_all_dims",
    "integrate_backward_difference",
    "read_sdrbench",
    "write_sdrbench",
    "read_fieldset",
    "write_fieldset",
    "extract_patches",
    "extract_patches_nd",
    "iter_blocks",
    "reassemble_blocks",
    "take_slice",
    "gaussian_random_field",
    "fourier_shift",
    "make_scale_dataset",
    "make_hurricane_dataset",
    "make_cesm_dataset",
    "make_dataset",
    "make_timeseries",
    "DATASET_GENERATORS",
]
