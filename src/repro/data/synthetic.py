"""Synthetic multi-field scientific datasets with cross-field correlations.

The paper evaluates on three SDRBench datasets (SCALE-LETKF, CESM-ATM and
Hurricane ISABEL).  Those files are not available offline, so this module
generates synthetic substitutes that preserve the two properties the method
exploits:

1. **Within-field smoothness** — each field is built from spectrally synthesised
   Gaussian random fields with a power-law spectrum, so local predictors
   (Lorenzo) work about as well as on real climate data.
2. **Nonlinear cross-field correlation** — fields within a dataset are derived
   from *shared latent fields* through physically motivated, nonlinear
   relations (winds from a shared streamfunction, relative humidity from
   temperature and moisture, outgoing radiation from cloud cover, …), so a
   cross-field predictor has real signal to learn, but the relation is not a
   simple linear map.

Every generator accepts the full paper-sized grid; defaults are scaled down so
tests and benchmarks run in seconds in pure Python.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.fields import Field, FieldSet

__all__ = [
    "gaussian_random_field",
    "fourier_shift",
    "make_scale_dataset",
    "make_hurricane_dataset",
    "make_cesm_dataset",
    "make_dataset",
    "make_timeseries",
    "resolve_dataset_name",
    "DATASET_GENERATORS",
    "DATASET_ALIASES",
    "PAPER_DIMS",
    "DEFAULT_DIMS",
]

#: Grid sizes used in the paper (Table I).
PAPER_DIMS: Dict[str, Tuple[int, ...]] = {
    "scale": (98, 1200, 1200),
    "cesm": (1800, 3600),
    "hurricane": (100, 500, 500),
}

#: Scaled-down defaults used by tests and benchmarks (same rank and aspect).
DEFAULT_DIMS: Dict[str, Tuple[int, ...]] = {
    "scale": (24, 96, 96),
    "cesm": (180, 360),
    "hurricane": (25, 100, 100),
}


# --------------------------------------------------------------------------- #
# latent-field synthesis
# --------------------------------------------------------------------------- #
def gaussian_random_field(
    shape: Sequence[int],
    rng: np.random.Generator,
    power: float = 3.0,
    anisotropy: Optional[Sequence[float]] = None,
) -> np.ndarray:
    """Spectrally synthesised Gaussian random field with ``1/k^power`` spectrum.

    Larger ``power`` gives smoother fields.  ``anisotropy`` rescales the
    wavenumber of each axis (useful for atmospheric data where the vertical
    dimension is much shorter and rougher than the horizontal ones).

    The result is normalised to zero mean and unit standard deviation.
    """
    shape = tuple(int(s) for s in shape)
    if any(s < 2 for s in shape):
        raise ValueError(f"every dimension must be >= 2, got {shape}")
    if power < 0:
        raise ValueError("power must be non-negative")
    if anisotropy is None:
        anisotropy = [1.0] * len(shape)
    anisotropy = list(anisotropy)
    if len(anisotropy) != len(shape):
        raise ValueError("anisotropy must have one entry per dimension")

    freqs = [np.fft.fftfreq(n) * a for n, a in zip(shape, anisotropy)]
    grids = np.meshgrid(*freqs, indexing="ij")
    k2 = np.zeros(shape, dtype=np.float64)
    for g in grids:
        k2 += g**2
    k = np.sqrt(k2)
    # avoid the DC singularity; smallest nonzero wavenumber sets the floor
    k_min = np.min(k[k > 0]) if np.any(k > 0) else 1.0
    k[k == 0] = k_min
    amplitude = k ** (-power / 2.0)
    amplitude.flat[0] = 0.0  # remove the mean component explicitly

    noise = rng.standard_normal(shape)
    spectrum = np.fft.fftn(noise) * amplitude
    field = np.real(np.fft.ifftn(spectrum))
    field -= field.mean()
    std = field.std()
    if std > 0:
        field /= std
    return field.astype(np.float64)


def _smooth_noise(shape, rng, power=2.0, scale=1.0):
    """Small-amplitude smooth perturbation used to decorrelate derived fields."""
    return scale * gaussian_random_field(shape, rng, power=power)


# --------------------------------------------------------------------------- #
# SCALE-LETKF-like dataset
# --------------------------------------------------------------------------- #
def make_scale_dataset(
    shape: Optional[Sequence[int]] = None,
    seed: int = 0,
    noise_level: float = 0.08,
) -> FieldSet:
    """Synthetic SCALE-LETKF-like climate snapshot.

    Fields (matching the names used by the paper and SDRBench):

    - ``U``, ``V``: horizontal wind components, derived from a shared
      streamfunction (rotational part) plus a velocity potential (divergent
      part) — hence strongly but nonlinearly related to each other and to W.
    - ``W``: vertical wind speed, proportional to the horizontal convergence
      (continuity equation) plus smooth noise.
    - ``PRES``: pressure, hydrostatic background decreasing with the vertical
      level plus a dynamic component tied to the streamfunction.
    - ``T``: temperature, lapse-rate background plus advected anomalies.
    - ``QV``: water-vapour mixing ratio, Clausius–Clapeyron-like exponential
      function of temperature, modulated by humidity anomalies.
    - ``RH``: relative humidity, a saturating nonlinear function of QV and T.
    """
    if shape is None:
        shape = DEFAULT_DIMS["scale"]
    shape = tuple(int(s) for s in shape)
    if len(shape) != 3:
        raise ValueError(f"SCALE dataset is 3D, got shape {shape}")
    rng = np.random.default_rng(seed)
    nz = shape[0]

    aniso = [shape[1] / max(shape[0], 1), 1.0, 1.0]
    psi = gaussian_random_field(shape, rng, power=4.0, anisotropy=aniso)  # streamfunction
    chi = gaussian_random_field(shape, rng, power=4.0, anisotropy=aniso)  # velocity potential
    theta = gaussian_random_field(shape, rng, power=3.8, anisotropy=aniso)  # thermal anomaly
    moist = gaussian_random_field(shape, rng, power=3.6, anisotropy=aniso)  # humidity anomaly

    # winds: rotational (from psi) + divergent (from chi) components
    dpsi_dy = np.gradient(psi, axis=1)
    dpsi_dx = np.gradient(psi, axis=2)
    dchi_dx = np.gradient(chi, axis=2)
    dchi_dy = np.gradient(chi, axis=1)
    scale_wind = 18.0  # m/s characteristic magnitude
    u = scale_wind * (-dpsi_dy + 0.35 * dchi_dx) * shape[2]
    v = scale_wind * (dpsi_dx + 0.35 * dchi_dy) * shape[1]
    # re-normalise winds to a realistic range
    u = 15.0 * u / (np.abs(u).max() + 1e-12) + _smooth_noise(shape, rng, scale=noise_level)
    v = 15.0 * v / (np.abs(v).max() + 1e-12) + _smooth_noise(shape, rng, scale=noise_level)

    # vertical velocity from horizontal convergence
    div = np.gradient(u, axis=2) + np.gradient(v, axis=1)
    w = -0.8 * div
    w = 2.5 * w / (np.abs(w).max() + 1e-12) + _smooth_noise(shape, rng, scale=0.5 * noise_level)

    # pressure: hydrostatic column + dynamic part
    level = np.arange(nz, dtype=np.float64).reshape(-1, 1, 1) / max(nz - 1, 1)
    p_background = 100000.0 * np.exp(-1.2 * level)
    pres = p_background + 900.0 * psi + 250.0 * _smooth_noise(shape, rng, scale=1.0)

    # temperature: lapse rate + anomalies tied to the streamfunction
    t = 300.0 - 55.0 * level + 6.0 * theta + 2.0 * psi + _smooth_noise(shape, rng, scale=noise_level)

    # water vapour: exponential function of temperature (Clausius-Clapeyron-like)
    qv_sat = 0.02 * np.exp(0.065 * (t - 300.0))
    saturation = _sigmoid(1.5 * moist + 0.8 * theta)
    qv = np.clip(qv_sat * saturation, 0.0, None)

    # relative humidity in percent, saturating nonlinearity
    rh = 100.0 * np.clip(qv / (qv_sat + 1e-9), 0.0, 1.05)
    rh = np.clip(rh + 2.0 * _smooth_noise(shape, rng, scale=noise_level), 0.0, 110.0)

    fields = [
        Field("U", u.astype(np.float32), "m/s", "zonal wind speed"),
        Field("V", v.astype(np.float32), "m/s", "meridional wind speed"),
        Field("W", w.astype(np.float32), "m/s", "vertical wind speed"),
        Field("PRES", pres.astype(np.float32), "Pa", "pressure"),
        Field("T", t.astype(np.float32), "K", "temperature"),
        Field("QV", qv.astype(np.float32), "kg/kg", "water vapour mixing ratio"),
        Field("RH", rh.astype(np.float32), "%", "relative humidity"),
    ]
    return FieldSet(fields, name="SCALE")


# --------------------------------------------------------------------------- #
# Hurricane-ISABEL-like dataset
# --------------------------------------------------------------------------- #
def make_hurricane_dataset(
    shape: Optional[Sequence[int]] = None,
    seed: int = 1,
    noise_level: float = 0.08,
) -> FieldSet:
    """Synthetic Hurricane-ISABEL-like snapshot with a coherent vortex.

    Fields:

    - ``Uf``, ``Vf``: horizontal winds of a Rankine-like vortex embedded in a
      large-scale background flow.
    - ``Wf``: vertical wind, driven by convergence near the eyewall plus
      convective cells — nonlinearly related to Uf/Vf/Pf, matching the paper's
      target field.
    - ``Pf``: pressure, cyclostrophic-balance-like drop toward the vortex core.
    - ``TCf``: cloud temperature anomaly (extra field for anchor ablations).
    """
    if shape is None:
        shape = DEFAULT_DIMS["hurricane"]
    shape = tuple(int(s) for s in shape)
    if len(shape) != 3:
        raise ValueError(f"Hurricane dataset is 3D, got shape {shape}")
    rng = np.random.default_rng(seed)
    nz, ny, nx = shape

    z = np.linspace(0.0, 1.0, nz).reshape(-1, 1, 1)
    y = np.linspace(-1.0, 1.0, ny).reshape(1, -1, 1)
    x = np.linspace(-1.0, 1.0, nx).reshape(1, 1, -1)

    # vortex centre drifts slightly with height, like a tilted hurricane core
    cx = 0.15 * (z - 0.5)
    cy = -0.10 * (z - 0.5)
    dx = x - cx
    dy = y - cy
    r = np.sqrt(dx**2 + dy**2) + 1e-6
    r_core = 0.18
    # Rankine-like tangential wind profile: solid-body inside the core, 1/r outside
    v_tan = 55.0 * np.where(r < r_core, r / r_core, r_core / r) * (1.0 - 0.5 * z)

    background_u = 6.0 * gaussian_random_field(shape, rng, power=3.8)
    background_v = 6.0 * gaussian_random_field(shape, rng, power=3.8)
    uf = -v_tan * dy / r + background_u + _smooth_noise(shape, rng, scale=noise_level)
    vf = v_tan * dx / r + background_v + _smooth_noise(shape, rng, scale=noise_level)

    # vertical velocity: strong updrafts on the eyewall annulus, modulated by
    # convective cells; nonlinear in r and in the horizontal winds
    eyewall = np.exp(-(((r - r_core) / (0.6 * r_core)) ** 2))
    cells = gaussian_random_field(shape, rng, power=3.4)
    convergence = -(np.gradient(uf, axis=2) + np.gradient(vf, axis=1))
    wf = 4.0 * eyewall * (0.6 + 0.4 * np.tanh(1.5 * cells)) + 12.0 * convergence
    wf = wf * (0.3 + 0.7 * np.sin(np.pi * np.clip(z, 0, 1)))
    wf = wf + _smooth_noise(shape, rng, scale=0.5 * noise_level)

    # pressure: cyclostrophic-like core deficit plus background
    pf = 101000.0 - 6500.0 * np.exp(-((r / (1.8 * r_core)) ** 2)) * (1.0 - 0.4 * z)
    pf = pf + 120.0 * gaussian_random_field(shape, rng, power=3.8)

    # cloud temperature anomaly tied to updrafts and humidity
    tcf = -8.0 * np.tanh(0.8 * wf) + 3.0 * gaussian_random_field(shape, rng, power=3.6)

    fields = [
        Field("Uf", uf.astype(np.float32), "m/s", "zonal wind at 1000 hPa"),
        Field("Vf", vf.astype(np.float32), "m/s", "meridional wind at 1000 hPa"),
        Field("Wf", wf.astype(np.float32), "m/s", "vertical (upward) wind"),
        Field("Pf", pf.astype(np.float32), "Pa", "pressure"),
        Field("TCf", tcf.astype(np.float32), "K", "cloud temperature anomaly"),
    ]
    return FieldSet(fields, name="Hurricane")


# --------------------------------------------------------------------------- #
# CESM-ATM-like 2D dataset
# --------------------------------------------------------------------------- #
def make_cesm_dataset(
    shape: Optional[Sequence[int]] = None,
    seed: int = 2,
    noise_level: float = 0.05,
) -> FieldSet:
    """Synthetic CESM-ATM-like 2D snapshot (cloud and radiative fields).

    Fields and relations (mirroring the couplings the paper exploits):

    - ``CLDLOW``, ``CLDMED``, ``CLDHGH``: low/medium/high cloud fractions from
      correlated latent fields, each squashed to [0, 1].
    - ``CLDTOT``: total cloud cover from random-overlap combination
      ``1 - (1-low)(1-med)(1-high)`` — a nonlinear function of its anchors.
    - ``FLNT``: net longwave flux at top of model, decreasing with cloud cover.
    - ``FLNTC``: clear-sky counterpart of FLNT (no cloud dependence).
    - ``LWCF``: longwave cloud forcing, ``FLNTC - FLNT``.
    - ``FLUT``: upwelling longwave flux at top of model, closely mirroring FLNT
      (the example given in paper Section III-A).
    - ``FLUTC``: clear-sky counterpart of FLUT.
    """
    if shape is None:
        shape = DEFAULT_DIMS["cesm"]
    shape = tuple(int(s) for s in shape)
    if len(shape) != 2:
        raise ValueError(f"CESM-ATM dataset is 2D, got shape {shape}")
    rng = np.random.default_rng(seed)

    latent_a = gaussian_random_field(shape, rng, power=4.0)
    latent_b = gaussian_random_field(shape, rng, power=3.6)
    latent_c = gaussian_random_field(shape, rng, power=3.4)
    temp_like = gaussian_random_field(shape, rng, power=4.2)

    cldlow = _sigmoid(1.4 * latent_a + 0.5 * latent_b)
    cldmed = _sigmoid(1.2 * latent_b + 0.4 * latent_c)
    cldhgh = _sigmoid(1.3 * latent_c + 0.3 * latent_a)
    for arr in (cldlow, cldmed, cldhgh):
        arr += noise_level * 0.2 * gaussian_random_field(shape, rng, power=3.4)
        np.clip(arr, 0.0, 1.0, out=arr)

    cldtot = 1.0 - (1.0 - cldlow) * (1.0 - cldmed) * (1.0 - cldhgh)
    cldtot = np.clip(cldtot + noise_level * 0.1 * gaussian_random_field(shape, rng, power=3.4), 0.0, 1.0)

    # clear-sky longwave flux depends on the temperature-like latent only
    flntc = 265.0 + 45.0 * temp_like
    flutc = flntc + 6.0 + 2.0 * gaussian_random_field(shape, rng, power=3.8)

    # all-sky flux: clouds reduce the outgoing longwave radiation
    cloud_effect = 70.0 * cldtot * (0.55 + 0.45 * cldhgh)
    flnt = flntc - cloud_effect + noise_level * 4.0 * gaussian_random_field(shape, rng, power=3.4)
    flut = flnt + 5.5 + 1.5 * gaussian_random_field(shape, rng, power=3.8)
    lwcf = flntc - flnt

    fields = [
        Field("CLDLOW", cldlow.astype(np.float32), "fraction", "low cloud fraction"),
        Field("CLDMED", cldmed.astype(np.float32), "fraction", "medium cloud fraction"),
        Field("CLDHGH", cldhgh.astype(np.float32), "fraction", "high cloud fraction"),
        Field("CLDTOT", cldtot.astype(np.float32), "fraction", "total cloud fraction"),
        Field("FLNT", flnt.astype(np.float32), "W/m^2", "net longwave flux at top of model"),
        Field("FLNTC", flntc.astype(np.float32), "W/m^2", "clear-sky net longwave flux"),
        Field("LWCF", lwcf.astype(np.float32), "W/m^2", "longwave cloud forcing"),
        Field("FLUT", flut.astype(np.float32), "W/m^2", "upwelling longwave flux"),
        Field("FLUTC", flutc.astype(np.float32), "W/m^2", "clear-sky upwelling longwave flux"),
    ]
    return FieldSet(fields, name="CESM-ATM")


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


# --------------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------------- #
DATASET_GENERATORS: Dict[str, Callable[..., FieldSet]] = {
    "scale": make_scale_dataset,
    "hurricane": make_hurricane_dataset,
    "cesm": make_cesm_dataset,
}

#: SDRBench-style long names accepted as aliases of the generator keys.
DATASET_ALIASES: Dict[str, str] = {
    "cesm-atm": "cesm",
    "scale-letkf": "scale",
    "hurricane-isabel": "hurricane",
}


def resolve_dataset_name(name: str) -> Optional[str]:
    """Canonical generator key for ``name`` (alias-aware), or ``None`` if unknown."""
    key = str(name).lower()
    key = DATASET_ALIASES.get(key, key)
    return key if key in DATASET_GENERATORS else None


def make_dataset(
    name: str,
    shape: Optional[Sequence[int]] = None,
    seed: Optional[int] = None,
    **kwargs,
) -> FieldSet:
    """Generate a dataset by name (``"scale"``, ``"hurricane"``, ``"cesm"``)."""
    key = resolve_dataset_name(name)
    if key is None:
        raise ValueError(f"unknown dataset {name!r}; available: {sorted(DATASET_GENERATORS)}")
    generator = DATASET_GENERATORS[key]
    if seed is not None:
        kwargs["seed"] = seed
    return generator(shape=shape, **kwargs)


# --------------------------------------------------------------------------- #
# temporally correlated time series
# --------------------------------------------------------------------------- #
def fourier_shift(data: np.ndarray, shift: Sequence[float]) -> np.ndarray:
    """Shift a periodic field by a (fractional) number of grid cells per axis.

    Implemented as a phase shift in Fourier space, so sub-cell shifts are
    smooth interpolation, not nearest-neighbour jumps — exactly the gentle
    advection that makes successive simulation outputs highly correlated.
    """
    data = np.asarray(data, dtype=np.float64)
    shift = [float(s) for s in shift]
    if len(shift) != data.ndim:
        raise ValueError(f"shift must have one entry per dimension, got {shift}")
    freqs = np.meshgrid(*[np.fft.fftfreq(n) for n in data.shape], indexing="ij")
    phase = np.zeros(data.shape, dtype=np.float64)
    for grid, delta in zip(freqs, shift):
        phase += grid * delta
    spectrum = np.fft.fftn(data) * np.exp(-2j * np.pi * phase)
    return np.real(np.fft.ifftn(spectrum))


def make_timeseries(
    name: str,
    shape: Optional[Sequence[int]] = None,
    steps: int = 4,
    seed: Optional[int] = None,
    fields: Optional[Sequence[str]] = None,
    drift: float = 0.2,
    noise_level: float = 0.005,
    **kwargs,
) -> List[FieldSet]:
    """A temporally correlated sequence of snapshots of one synthetic dataset.

    Step 0 is the plain :func:`make_dataset` snapshot; every later step is the
    previous state advected by a fixed fractional-cell velocity (``drift``
    cells per step, split across the axes) plus a small fresh smooth
    perturbation (``noise_level`` of each field's standard deviation).  The
    result has exactly the structure streaming ingest sees in practice —
    successive steps are highly correlated, so temporal-difference coding has
    real signal — while every step remains a full, self-contained fieldset.

    ``fields`` restricts the series to a subset of the dataset's fields; the
    remaining keyword arguments go to the dataset generator.
    """
    steps = int(steps)
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    base = make_dataset(name, shape=shape, seed=seed, **kwargs)
    if fields is not None:
        base = base.subset(list(fields))
    rng = np.random.default_rng(0 if seed is None else int(seed) + 0x5EED)
    ndim = base.ndim
    # one shared velocity for the whole set (coherent advection), spread
    # unevenly across the axes so no axis is exactly stationary
    velocity = drift * rng.uniform(0.4, 1.0, size=ndim)
    series: List[FieldSet] = []
    for t in range(steps):
        snapshot = FieldSet(name=f"{base.name}-t{t}")
        for field in base:
            data = fourier_shift(field.data, velocity * t)
            if noise_level:
                scale = noise_level * float(np.std(field.data))
                data = data + scale * gaussian_random_field(field.shape, rng, power=3.4)
            snapshot.add(
                Field(field.name, data.astype(field.data.dtype), field.units, field.description)
            )
        series.append(snapshot)
    return series
