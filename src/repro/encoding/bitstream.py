"""Bit-level stream writer and reader.

Huffman code words have arbitrary bit lengths, so the codec needs a byte buffer
that can be written and read at bit granularity.  The writer keeps a small
Python integer accumulator and flushes whole bytes into a ``bytearray``; the
reader mirrors it.  Both are MSB-first, which matches the canonical Huffman
code ordering used in :mod:`repro.encoding.huffman`.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

__all__ = ["BitWriter", "BitReader"]


class BitWriter:
    """Accumulates bits MSB-first into a byte buffer."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._accumulator = 0
        self._n_bits = 0
        self._total_bits = 0

    def write(self, value: int, n_bits: int) -> None:
        """Write the lowest ``n_bits`` bits of ``value`` (MSB of those first)."""
        if n_bits < 0:
            raise ValueError("n_bits must be non-negative")
        if n_bits == 0:
            return
        if value < 0:
            raise ValueError("value must be non-negative; zigzag-encode signed data first")
        if value >> n_bits:
            raise ValueError(f"value {value} does not fit in {n_bits} bits")
        self._accumulator = (self._accumulator << n_bits) | value
        self._n_bits += n_bits
        self._total_bits += n_bits
        while self._n_bits >= 8:
            self._n_bits -= 8
            byte = (self._accumulator >> self._n_bits) & 0xFF
            self._buffer.append(byte)
        # keep the accumulator small
        self._accumulator &= (1 << self._n_bits) - 1

    def write_unary(self, value: int) -> None:
        """Write ``value`` as a unary code: ``value`` ones followed by a zero."""
        if value < 0:
            raise ValueError("unary codes require non-negative values")
        remaining = value
        while remaining >= 32:
            self.write((1 << 32) - 1, 32)
            remaining -= 32
        self.write(((1 << remaining) - 1) << 1, remaining + 1)

    @property
    def bit_length(self) -> int:
        """Number of bits written so far."""
        return self._total_bits

    def getvalue(self) -> bytes:
        """Return the buffer padded with zero bits to a whole number of bytes."""
        out = bytearray(self._buffer)
        if self._n_bits:
            out.append((self._accumulator << (8 - self._n_bits)) & 0xFF)
        return bytes(out)


class BitReader:
    """Reads bits MSB-first from a byte buffer produced by :class:`BitWriter`."""

    def __init__(self, data: bytes) -> None:
        self._data = np.frombuffer(bytes(data), dtype=np.uint8)
        self._bit_pos = 0

    def read(self, n_bits: int) -> int:
        """Read ``n_bits`` bits and return them as a non-negative integer."""
        if n_bits < 0:
            raise ValueError("n_bits must be non-negative")
        if n_bits == 0:
            return 0
        if self._bit_pos + n_bits > len(self._data) * 8:
            raise EOFError("attempt to read past the end of the bitstream")
        value = 0
        remaining = n_bits
        while remaining > 0:
            byte_index = self._bit_pos // 8
            bit_offset = self._bit_pos % 8
            available = 8 - bit_offset
            take = min(available, remaining)
            byte = int(self._data[byte_index])
            chunk = (byte >> (available - take)) & ((1 << take) - 1)
            value = (value << take) | chunk
            self._bit_pos += take
            remaining -= take
        return value

    def read_unary(self) -> int:
        """Read a unary code written by :meth:`BitWriter.write_unary`."""
        count = 0
        while True:
            bit = self.read(1)
            if bit == 0:
                return count
            count += 1

    @property
    def bits_remaining(self) -> int:
        """Number of unread bits (including any trailing padding)."""
        return len(self._data) * 8 - self._bit_pos

    @property
    def bit_position(self) -> int:
        """Current absolute bit offset."""
        return self._bit_pos

    def seek_bit(self, position: int) -> None:
        """Move to an absolute bit offset."""
        if not 0 <= position <= len(self._data) * 8:
            raise ValueError("bit position out of range")
        self._bit_pos = position
