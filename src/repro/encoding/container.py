"""Self-describing container for compressed payloads.

A compressed field consists of several heterogeneous sections (JSON metadata,
Huffman table, entropy-coded residuals, outlier values, embedded model
parameters, …).  :class:`CompressedBlob` packs named byte sections into a single
byte string with a magic number, version, and CRC so corruption is detected at
decode time, and the compression-ratio accounting can report exactly how many
bytes each stage contributes.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, ItemsView, Iterable, List, Mapping, Tuple

__all__ = ["CompressedBlob", "pack_sections", "unpack_sections"]

MAGIC = b"XFC1"  # cross-field compression, container version 1
_HEADER_FMT = "<4sBII"  # magic, version, n_sections, crc32 of the body
_SECTION_HEADER_FMT = "<HQ"  # name length, payload length


@dataclass
class CompressedBlob:
    """Named byte sections plus a JSON-serialisable metadata dictionary."""

    metadata: Dict = field(default_factory=dict)
    sections: Dict[str, bytes] = field(default_factory=dict)

    def add_section(self, name: str, payload: bytes) -> None:
        """Add (or replace) a named byte section."""
        if not isinstance(payload, (bytes, bytearray, memoryview)):
            raise TypeError(f"section {name!r} payload must be bytes-like")
        self.sections[str(name)] = bytes(payload)

    def get_section(self, name: str) -> bytes:
        """Return a section payload by name."""
        if name not in self.sections:
            raise KeyError(f"no section named {name!r}; available: {sorted(self.sections)}")
        return self.sections[name]

    def __contains__(self, name: str) -> bool:
        return name in self.sections

    def section_sizes(self) -> Dict[str, int]:
        """Per-section byte counts (useful for size breakdowns in reports)."""
        sizes = {name: len(payload) for name, payload in self.sections.items()}
        sizes["__metadata__"] = len(self._metadata_bytes())
        return sizes

    @property
    def nbytes(self) -> int:
        """Total serialized size in bytes.

        Computed arithmetically from the header, metadata and section sizes —
        no serialization happens, so querying the size of a multi-gigabyte
        blob is free.  Always equals ``len(self.to_bytes())``.
        """
        total = struct.calcsize(_HEADER_FMT) + 4 + len(self._metadata_bytes())
        section_header = struct.calcsize(_SECTION_HEADER_FMT)
        for name, payload in self.sections.items():
            total += section_header + len(name.encode("utf-8")) + len(payload)
        return total

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #
    def _metadata_bytes(self) -> bytes:
        return json.dumps(self.metadata, sort_keys=True).encode("utf-8")

    def to_bytes(self) -> bytes:
        """Serialize the blob (magic + version + CRC-protected body)."""
        body = bytearray()
        meta_bytes = self._metadata_bytes()
        body += struct.pack("<I", len(meta_bytes))
        body += meta_bytes
        for name, payload in self.sections.items():
            name_bytes = name.encode("utf-8")
            body += struct.pack(_SECTION_HEADER_FMT, len(name_bytes), len(payload))
            body += name_bytes
            body += payload
        crc = zlib.crc32(bytes(body)) & 0xFFFFFFFF
        header = struct.pack(_HEADER_FMT, MAGIC, 1, len(self.sections), crc)
        return header + bytes(body)

    @classmethod
    def from_bytes(cls, payload) -> "CompressedBlob":
        """Parse a blob serialized by :meth:`to_bytes`, verifying magic and CRC.

        Accepts any bytes-like object — in particular a ``memoryview`` over a
        memory-mapped archive.  Parsing is zero-copy until the per-section
        extraction: header fields come from ``struct.unpack_from``, the CRC
        runs directly over the buffer, and only each section's final payload
        is materialised as ``bytes``.
        """
        view = memoryview(payload)
        header_size = struct.calcsize(_HEADER_FMT)
        if len(view) < header_size:
            raise ValueError("payload too small to be a compressed blob")
        magic, version, n_sections, crc = struct.unpack_from(_HEADER_FMT, view, 0)
        if magic != MAGIC:
            raise ValueError(f"bad magic {magic!r}; not a cross-field compression container")
        if version != 1:
            raise ValueError(f"unsupported container version {version}")
        body = view[header_size:]
        if (zlib.crc32(body) & 0xFFFFFFFF) != crc:
            raise ValueError("container CRC mismatch: payload is corrupted")
        offset = 0
        if len(body) < 4:
            raise ValueError("container truncated: missing metadata length")
        (meta_len,) = struct.unpack_from("<I", body, offset)
        offset += 4
        if len(body) < offset + meta_len:
            raise ValueError("container truncated: metadata shorter than declared")
        metadata = json.loads(bytes(body[offset : offset + meta_len]).decode("utf-8"))
        offset += meta_len
        section_header = struct.calcsize(_SECTION_HEADER_FMT)
        sections: Dict[str, bytes] = {}
        for _ in range(n_sections):
            if len(body) < offset + section_header:
                raise ValueError("container truncated: missing section header")
            name_len, payload_len = struct.unpack_from(_SECTION_HEADER_FMT, body, offset)
            offset += section_header
            if len(body) < offset + name_len + payload_len:
                raise ValueError("container truncated: section shorter than declared")
            name = bytes(body[offset : offset + name_len]).decode("utf-8")
            offset += name_len
            sections[name] = bytes(body[offset : offset + payload_len])
            offset += payload_len
        return cls(metadata=metadata, sections=sections)


def pack_sections(metadata: Mapping, sections: Mapping[str, bytes]) -> bytes:
    """Convenience: build and serialize a :class:`CompressedBlob` in one call."""
    blob = CompressedBlob(metadata=dict(metadata))
    for name, payload in sections.items():
        blob.add_section(name, payload)
    return blob.to_bytes()


def unpack_sections(payload: bytes) -> Tuple[Dict, Dict[str, bytes]]:
    """Convenience: parse bytes into ``(metadata, sections)``."""
    blob = CompressedBlob.from_bytes(payload)
    return blob.metadata, blob.sections
