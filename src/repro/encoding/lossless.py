"""Pluggable lossless byte-stream backends.

SZ applies a general-purpose lossless compressor (zstd in the reference
implementation) after Huffman coding.  Offline we use :mod:`zlib` from the
standard library as the equivalent; a ``RawBackend`` pass-through exists for
ablations that isolate the entropy stage.
"""

from __future__ import annotations

import zlib
from abc import ABC, abstractmethod
from typing import Dict, List, Type

__all__ = [
    "LosslessBackend",
    "ZlibBackend",
    "RawBackend",
    "get_backend",
    "available_backends",
    "register_backend",
]


class LosslessBackend(ABC):
    """Interface every lossless byte backend must implement."""

    #: Registry key.
    name: str = "abstract"

    @abstractmethod
    def compress(self, data: bytes) -> bytes:
        """Compress a byte string."""

    @abstractmethod
    def decompress(self, data: bytes) -> bytes:
        """Decompress a byte string produced by :meth:`compress`."""


class ZlibBackend(LosslessBackend):
    """DEFLATE (zlib) backend — the stand-in for SZ's zstd stage."""

    name = "zlib"

    def __init__(self, level: int = 6) -> None:
        if not 0 <= level <= 9:
            raise ValueError("zlib level must be in [0, 9]")
        self.level = level

    def compress(self, data: bytes) -> bytes:
        return zlib.compress(bytes(data), self.level)

    def decompress(self, data: bytes) -> bytes:
        return zlib.decompress(bytes(data))


class RawBackend(LosslessBackend):
    """Identity backend: stores bytes unmodified (for ablation studies)."""

    name = "raw"

    def compress(self, data: bytes) -> bytes:
        return bytes(data)

    def decompress(self, data: bytes) -> bytes:
        return bytes(data)


_REGISTRY: Dict[str, Type[LosslessBackend]] = {
    ZlibBackend.name: ZlibBackend,
    RawBackend.name: RawBackend,
}


def register_backend(cls: Type[LosslessBackend]) -> Type[LosslessBackend]:
    """Register a new backend class under ``cls.name`` (usable as a decorator)."""
    if not issubclass(cls, LosslessBackend):
        raise TypeError("backend must subclass LosslessBackend")
    _REGISTRY[cls.name] = cls
    return cls


def get_backend(name: str, **kwargs) -> LosslessBackend:
    """Instantiate a backend by name."""
    if isinstance(name, LosslessBackend):
        return name
    key = str(name).lower()
    if key not in _REGISTRY:
        raise ValueError(f"unknown lossless backend {name!r}; available: {sorted(_REGISTRY)}")
    return _REGISTRY[key](**kwargs)


def available_backends() -> List[str]:
    """Names of all registered backends."""
    return sorted(_REGISTRY)
