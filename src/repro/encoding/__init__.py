"""Entropy coding and byte-stream substrate for the compression pipeline.

Implements the third SZ stage ("customized Huffman coding and additional
lossless compression"): a bit-level stream writer/reader, a canonical Huffman
coder with vectorised encode *and* decode, a pluggable entropy-coder registry
(:mod:`repro.encoding.entropy`), zigzag/RLE integer transforms, pluggable
lossless backends, and the on-disk container format for compressed payloads.
"""

from repro.encoding.bitstream import BitWriter, BitReader
from repro.encoding.huffman import HuffmanCodec, HuffmanTable
from repro.encoding.entropy import (
    EntropyCoder,
    HuffmanEntropyCoder,
    ZlibEntropyCoder,
    RawEntropyCoder,
    register_entropy_coder,
    get_entropy_coder,
    available_entropy_coders,
)
from repro.encoding.rle import zigzag_encode, zigzag_decode, rle_encode, rle_decode
from repro.encoding.lossless import (
    LosslessBackend,
    ZlibBackend,
    RawBackend,
    get_backend,
    available_backends,
)
from repro.encoding.container import CompressedBlob, pack_sections, unpack_sections

__all__ = [
    "BitWriter",
    "BitReader",
    "HuffmanCodec",
    "HuffmanTable",
    "EntropyCoder",
    "HuffmanEntropyCoder",
    "ZlibEntropyCoder",
    "RawEntropyCoder",
    "register_entropy_coder",
    "get_entropy_coder",
    "available_entropy_coders",
    "zigzag_encode",
    "zigzag_decode",
    "rle_encode",
    "rle_decode",
    "LosslessBackend",
    "ZlibBackend",
    "RawBackend",
    "get_backend",
    "available_backends",
    "CompressedBlob",
    "pack_sections",
    "unpack_sections",
]
