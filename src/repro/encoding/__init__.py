"""Entropy coding and byte-stream substrate for the compression pipeline.

Implements the third SZ stage ("customized Huffman coding and additional
lossless compression"): a bit-level stream writer/reader, a canonical Huffman
coder with a vectorised encoder, zigzag/RLE integer transforms, pluggable
lossless backends, and the on-disk container format for compressed payloads.
"""

from repro.encoding.bitstream import BitWriter, BitReader
from repro.encoding.huffman import HuffmanCodec, HuffmanTable
from repro.encoding.rle import zigzag_encode, zigzag_decode, rle_encode, rle_decode
from repro.encoding.lossless import (
    LosslessBackend,
    ZlibBackend,
    RawBackend,
    get_backend,
    available_backends,
)
from repro.encoding.container import CompressedBlob, pack_sections, unpack_sections

__all__ = [
    "BitWriter",
    "BitReader",
    "HuffmanCodec",
    "HuffmanTable",
    "zigzag_encode",
    "zigzag_decode",
    "rle_encode",
    "rle_decode",
    "LosslessBackend",
    "ZlibBackend",
    "RawBackend",
    "get_backend",
    "available_backends",
    "CompressedBlob",
    "pack_sections",
    "unpack_sections",
]
