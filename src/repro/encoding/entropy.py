"""Pluggable entropy-coder layer: one registry over every symbol coder.

The SZ-style pipelines all end the same way — an integer symbol stream
(zigzagged residuals with escape markers) must become named byte sections and
back.  Historically each entropy mode lived in ``if entropy == ...`` branches
inside :func:`repro.sz.pipeline.encode_integer_stream`; this module lifts them
into first-class :class:`EntropyCoder` objects behind a registry, so

- every layer that accepts an ``entropy=`` knob (the SZ/ZFP/cross-field
  compressors, the store codecs, pipeline configs, the ``repro`` CLI)
  validates names against one source of truth instead of a hard-coded tuple,
- new coders plug in with :func:`register_entropy_coder` and are immediately
  usable across the whole stack, and
- decode-side capabilities (the Huffman coder's checkpointed sub-block
  fan-out across a :class:`~repro.parallel.engine.ChunkScheduler`) stay
  behind the same interface.

A coder sees the symbol stream *after* outlier extraction and zigzag mapping
(that transform is shared, in :func:`~repro.sz.pipeline.encode_integer_stream`)
and produces unprefixed sections — the caller namespaces them per stream.
The lossless byte ``backend`` is handed in so coders decide what travels
through it; metadata returned by :meth:`EntropyCoder.encode` is merged into
the stream metadata and handed back verbatim on decode.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Tuple, Type, Union

import numpy as np

from repro.encoding.huffman import HuffmanCodec, HuffmanTable
from repro.encoding.lossless import LosslessBackend

__all__ = [
    "EntropyCoder",
    "HuffmanEntropyCoder",
    "ZlibEntropyCoder",
    "RawEntropyCoder",
    "register_entropy_coder",
    "get_entropy_coder",
    "available_entropy_coders",
    "HUFFMAN_SYMBOL_LIMIT",
]

#: If more distinct symbols than this appear, Huffman falls back to byte coding
#: (keeps the decoder lookup table and the length-limited code construction sane).
HUFFMAN_SYMBOL_LIMIT = 32768


class EntropyCoder(ABC):
    """Interface every entropy coder must implement.

    Subclasses set :attr:`name` (the registry key) and may set
    :attr:`fallback` — the registry name of the coder to use instead when
    :meth:`supports` rejects a stream (the Huffman coder delegates huge
    alphabets to ``"zlib"``).
    """

    #: Registry key.
    name: str = "abstract"
    #: Registry name substituted when :meth:`supports` returns False.
    fallback: Optional[str] = None

    def supports(self, symbols: np.ndarray) -> bool:
        """Whether this coder can encode ``symbols`` (1-D non-negative int64)."""
        return True

    @abstractmethod
    def encode(
        self, symbols: np.ndarray, backend: LosslessBackend
    ) -> Tuple[Dict[str, bytes], Dict]:
        """Encode a symbol stream into unprefixed named sections.

        Returns ``(sections, extra_meta)``; ``extra_meta`` is merged into the
        stream metadata and passed back to :meth:`decode`.
        """

    @abstractmethod
    def decode(
        self,
        sections: Dict[str, bytes],
        meta: Dict,
        backend: LosslessBackend,
        scheduler=None,
    ) -> np.ndarray:
        """Inverse of :meth:`encode`; returns the int64 symbol stream.

        ``scheduler`` is an optional :class:`~repro.parallel.engine.ChunkScheduler`
        for coders whose decode can fan out internally; coders without that
        capability ignore it.
        """


class HuffmanEntropyCoder(EntropyCoder):
    """Canonical Huffman coding with checkpointed, vectorised decode.

    Sections: ``symbols`` (the checkpointed bit stream) and ``huffman_table``
    (sparse code lengths), both through the lossless backend.  Falls back to
    ``"zlib"`` when the stream has more than :data:`HUFFMAN_SYMBOL_LIMIT`
    distinct symbols.
    """

    name = "huffman"
    fallback = "zlib"

    def __init__(self, checkpoint_interval: Optional[int] = None) -> None:
        self.codec = (
            HuffmanCodec()
            if checkpoint_interval is None
            else HuffmanCodec(checkpoint_interval=checkpoint_interval)
        )

    def supports(self, symbols: np.ndarray) -> bool:
        return np.unique(symbols).size <= HUFFMAN_SYMBOL_LIMIT

    def encode(
        self, symbols: np.ndarray, backend: LosslessBackend
    ) -> Tuple[Dict[str, bytes], Dict]:
        payload, table = self.codec.encode(symbols)
        return (
            {
                "symbols": backend.compress(payload),
                "huffman_table": backend.compress(table.to_bytes()),
            },
            {},
        )

    def decode(
        self,
        sections: Dict[str, bytes],
        meta: Dict,
        backend: LosslessBackend,
        scheduler=None,
    ) -> np.ndarray:
        payload = backend.decompress(sections["symbols"])
        table = HuffmanTable.from_bytes(backend.decompress(sections["huffman_table"]))
        return self.codec.decode(payload, table, scheduler=scheduler)


class ZlibEntropyCoder(EntropyCoder):
    """No entropy stage of its own: int32 symbol bytes through the backend.

    The name is historical — with the default ``zlib`` backend the symbols are
    DEFLATE-compressed, which is what the entropy-backend ablation compares
    Huffman against.
    """

    name = "zlib"

    def encode(
        self, symbols: np.ndarray, backend: LosslessBackend
    ) -> Tuple[Dict[str, bytes], Dict]:
        return {"symbols": backend.compress(symbols.astype(np.int32).tobytes())}, {}

    def decode(
        self,
        sections: Dict[str, bytes],
        meta: Dict,
        backend: LosslessBackend,
        scheduler=None,
    ) -> np.ndarray:
        raw = backend.decompress(sections["symbols"])
        return np.frombuffer(raw, dtype=np.int32).astype(np.int64)


class RawEntropyCoder(EntropyCoder):
    """Verbatim int32 symbol bytes, bypassing the backend (ablation baseline)."""

    name = "raw"

    def encode(
        self, symbols: np.ndarray, backend: LosslessBackend
    ) -> Tuple[Dict[str, bytes], Dict]:
        return {"symbols": symbols.astype(np.int32).tobytes()}, {}

    def decode(
        self,
        sections: Dict[str, bytes],
        meta: Dict,
        backend: LosslessBackend,
        scheduler=None,
    ) -> np.ndarray:
        return np.frombuffer(sections["symbols"], dtype=np.int32).astype(np.int64)


# --------------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------------- #
_REGISTRY: Dict[str, Type[EntropyCoder]] = {}


def register_entropy_coder(cls: Type[EntropyCoder]) -> Type[EntropyCoder]:
    """Register a coder class under ``cls.name`` (usable as a decorator).

    Names are case-insensitive, matching the lowercased lookups in
    :func:`get_entropy_coder`.
    """
    if not (isinstance(cls, type) and issubclass(cls, EntropyCoder)):
        raise TypeError("entropy coder must subclass EntropyCoder")
    if not cls.name or cls.name == EntropyCoder.name:
        raise ValueError("entropy coder class must define a unique `name`")
    _REGISTRY[cls.name.lower()] = cls
    return cls


def get_entropy_coder(name: Union[str, EntropyCoder], **params) -> EntropyCoder:
    """Instantiate a coder by registry name (instances pass through)."""
    if isinstance(name, EntropyCoder):
        return name
    key = str(name).lower()
    if key not in _REGISTRY:
        raise ValueError(
            f"unknown entropy coder {name!r}; available: {available_entropy_coders()}"
        )
    return _REGISTRY[key](**params)


def available_entropy_coders() -> List[str]:
    """Names of all registered entropy coders."""
    return sorted(_REGISTRY)


for _cls in (HuffmanEntropyCoder, ZlibEntropyCoder, RawEntropyCoder):
    register_entropy_coder(_cls)
