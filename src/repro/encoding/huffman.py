"""Canonical Huffman coding for quantization codes.

SZ-style compressors emit one small integer "quantization code" per data point
(centred on the zero-error bin), whose distribution is heavily peaked — exactly
the regime where Huffman coding shines.  This module implements:

- length-limited Huffman code construction (so the decoder can use a single
  lookup table),
- canonical code assignment (so only the code *lengths* need to be stored),
- a vectorised encoder that packs code words with NumPy bit arithmetic, and
- a vectorised, checkpointed decoder.

The decoder treats the prefix lookup table as a state machine over bit
positions: every bit position of the stream is resolved to "the code word
starting here is ``step`` bits long" in one batch LUT gather, which turns the
table into a jump table ``position -> position + step``.  The positions that
actually start code words are then enumerated with pointer doubling (jump
tables for 1, 2, 4, ... symbols composed with batch gathers), so the whole
decode is NumPy array operations that release the GIL — no per-symbol Python
loop.  See ``docs/entropy.md`` for the full walk-through.

Payloads come in two wire formats (both decoded transparently):

- **v1** (legacy): ``<n_symbols:u64><n_bits:u64><bit data>`` — one opaque bit
  stream that must be decoded front to back.
- **v2** (default): a ``HFV2`` header that additionally records the bit offset
  of every ``checkpoint_interval``-th symbol.  Checkpoints split the stream
  into independently decodable sub-blocks, so one decode call can fan the
  sub-blocks out across a :class:`~repro.parallel.engine.ChunkScheduler`.

The codec is completely generic: it maps any array of non-negative integers to
bytes and back, and is reused by both the baseline SZ pipeline and the
cross-field compressor (via :mod:`repro.encoding.entropy`).
"""

from __future__ import annotations

import heapq
import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

__all__ = [
    "HuffmanTable",
    "HuffmanCodec",
    "MAX_CODE_LENGTH",
    "DEFAULT_CHECKPOINT_INTERVAL",
]

#: Maximum code length: keeps the decoder lookup table at 2**16 entries.
MAX_CODE_LENGTH = 16

#: Symbols per independently decodable v2 sub-block.  Small enough that a
#: large stream yields hundreds of sub-blocks (the wavefront decoder's batch
#: width), large enough that the recorded offsets stay ~1% of the payload.
DEFAULT_CHECKPOINT_INTERVAL = 1024

#: Below this many sub-blocks the wavefront decoder's batch width cannot
#: amortise its per-step dispatch; pointer doubling wins.
_WAVEFRONT_MIN_BLOCKS = 32

#: Pointer doubling materialises O(total_bits) temporaries (~16 bytes per
#: stream bit); streams past this limit that cannot take the O(total_bits/8)
#: wavefront fall back to the scalar loop, which is slow but O(n_symbols).
#: 2**25 bits = 4 MB of payload — far beyond any chunk this codebase writes.
_SPAN_BITS_LIMIT = 1 << 25

#: v2 payload magic.  v1 payloads start with the symbol count (little-endian
#: u64), so a collision would require a stream of exactly 0x...32564648
#: symbols — far beyond any payload this codec can produce in practice.
_MAGIC_V2 = b"HFV2"

#: v2 fixed header: magic, checkpoint interval (u32), n_symbols (u64),
#: n_bits (u64), checkpoint count (u32); followed by one u32 bit-offset
#: *delta* per checkpoint (offsets are strictly increasing, and one
#: sub-block spans at most ``interval * MAX_CODE_LENGTH`` bits, so deltas
#: always fit), then the bit data.
_V2_HEADER = struct.Struct("<4sIQQI")

#: Sparse table serialization entry: ``(symbol:u4, length:u1)``, packed.
_TABLE_ENTRY_DTYPE = np.dtype([("symbol", "<u4"), ("length", "u1")])


# --------------------------------------------------------------------------- #
# code construction
# --------------------------------------------------------------------------- #
def _huffman_code_lengths(frequencies: np.ndarray) -> np.ndarray:
    """Compute Huffman code lengths from symbol frequencies.

    Returns an array of per-symbol lengths (0 for unused symbols).  Handles the
    degenerate single-symbol alphabet by assigning it a 1-bit code.
    """
    freq = np.asarray(frequencies, dtype=np.int64)
    symbols = np.nonzero(freq)[0]
    if symbols.size == 0:
        raise ValueError("cannot build a Huffman table from an all-zero histogram")
    lengths = np.zeros(freq.shape[0], dtype=np.int64)
    if symbols.size == 1:
        lengths[symbols[0]] = 1
        return lengths

    # classic heap-based Huffman; nodes are (freq, tie-breaker, [symbols...])
    heap: List[Tuple[int, int, List[int]]] = []
    counter = 0
    for s in symbols:
        heap.append((int(freq[s]), counter, [int(s)]))
        counter += 1
    heapq.heapify(heap)
    depth = {int(s): 0 for s in symbols}
    while len(heap) > 1:
        f1, _, group1 = heapq.heappop(heap)
        f2, _, group2 = heapq.heappop(heap)
        for s in group1 + group2:
            depth[s] += 1
        heapq.heappush(heap, (f1 + f2, counter, group1 + group2))
        counter += 1
    for s, d in depth.items():
        lengths[s] = d
    return lengths


def _limit_code_lengths(lengths: np.ndarray, max_length: int) -> np.ndarray:
    """Clamp code lengths to ``max_length`` while keeping the Kraft sum <= 1.

    Uses the standard "bit-length adjustment" employed by zlib: clamp, then
    while the Kraft sum exceeds 1, lengthen the shortest over-represented codes;
    finally shorten codes where possible without violating the inequality.
    """
    lengths = lengths.copy()
    used = lengths > 0
    if not np.any(lengths > max_length):
        return lengths
    lengths[used & (lengths > max_length)] = max_length

    def kraft(ls):
        return np.sum(1.0 / np.exp2(ls[ls > 0]))

    # lengthen codes (starting with the currently shortest) until Kraft <= 1
    while kraft(lengths) > 1.0 + 1e-12:
        candidates = np.where(used & (lengths < max_length))[0]
        if candidates.size == 0:  # pragma: no cover - cannot happen for valid input
            raise RuntimeError("cannot satisfy Kraft inequality")
        shortest = candidates[np.argmin(lengths[candidates])]
        lengths[shortest] += 1
    return lengths


def _canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Assign canonical code words given per-symbol code lengths."""
    codes = np.zeros(lengths.shape[0], dtype=np.uint32)
    order = sorted(
        (int(length), int(sym)) for sym, length in enumerate(lengths) if length > 0
    )
    code = 0
    prev_length = 0
    for length, sym in order:
        code <<= length - prev_length
        codes[sym] = code
        code += 1
        prev_length = length
    return codes


@dataclass
class HuffmanTable:
    """Canonical Huffman table: per-symbol code lengths and code words."""

    lengths: np.ndarray
    codes: np.ndarray

    @classmethod
    def from_frequencies(
        cls, frequencies: np.ndarray, max_length: int = MAX_CODE_LENGTH
    ) -> "HuffmanTable":
        """Build a length-limited canonical table from a symbol histogram."""
        lengths = _huffman_code_lengths(frequencies)
        lengths = _limit_code_lengths(lengths, max_length)
        codes = _canonical_codes(lengths)
        return cls(lengths=lengths.astype(np.uint8), codes=codes)

    @classmethod
    def from_lengths(cls, lengths: np.ndarray) -> "HuffmanTable":
        """Rebuild the canonical table from code lengths alone (decoder side)."""
        lengths = np.asarray(lengths, dtype=np.uint8)
        codes = _canonical_codes(lengths.astype(np.int64))
        return cls(lengths=lengths, codes=codes)

    @property
    def alphabet_size(self) -> int:
        """Number of representable symbols (including unused ones)."""
        return int(self.lengths.shape[0])

    @property
    def max_length(self) -> int:
        """Longest code length in the table."""
        return int(self.lengths.max()) if self.lengths.size else 0

    def expected_bits(self, frequencies: np.ndarray) -> float:
        """Total encoded bits for a stream with the given symbol histogram."""
        freq = np.asarray(frequencies, dtype=np.float64)
        if freq.shape[0] != self.alphabet_size:
            raise ValueError("histogram size does not match the alphabet")
        return float(np.sum(freq * self.lengths))

    # ------------------------------------------------------------------ #
    # serialization: (alphabet_size, sparse symbol->length pairs)
    # ------------------------------------------------------------------ #
    def to_bytes(self) -> bytes:
        """Serialize the table as sparse ``(symbol, length)`` pairs."""
        used = np.nonzero(self.lengths)[0]
        entries = np.empty(used.size, dtype=_TABLE_ENTRY_DTYPE)
        entries["symbol"] = used
        entries["length"] = self.lengths[used]
        return struct.pack("<II", self.alphabet_size, used.size) + entries.tobytes()

    @classmethod
    def from_bytes(cls, payload: bytes) -> "HuffmanTable":
        """Inverse of :meth:`to_bytes`."""
        if len(payload) < 8:
            raise ValueError("truncated Huffman table")
        alphabet_size, n_used = struct.unpack_from("<II", payload, 0)
        if len(payload) < 8 + n_used * _TABLE_ENTRY_DTYPE.itemsize:
            raise ValueError("truncated Huffman table")
        entries = np.frombuffer(payload, dtype=_TABLE_ENTRY_DTYPE, count=n_used, offset=8)
        symbols = entries["symbol"].astype(np.int64)
        if symbols.size and int(symbols.max()) >= alphabet_size:
            raise ValueError(
                f"Huffman table entry names symbol {int(symbols.max())} outside "
                f"the declared alphabet of {alphabet_size}"
            )
        lengths = np.zeros(alphabet_size, dtype=np.uint8)
        lengths[symbols] = entries["length"]
        return cls.from_lengths(lengths)


# --------------------------------------------------------------------------- #
# codec
# --------------------------------------------------------------------------- #
class HuffmanCodec:
    """Encode/decode arrays of non-negative integers with canonical Huffman codes.

    Parameters
    ----------
    max_length:
        Length limit for code construction (and the decoder LUT width).
    checkpoint_interval:
        Symbols per v2 sub-block; the encoder records one bit-offset
        checkpoint every ``checkpoint_interval`` symbols.
    """

    def __init__(
        self,
        max_length: int = MAX_CODE_LENGTH,
        checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
    ) -> None:
        if not 1 <= max_length <= 32:
            raise ValueError("max_length must be in [1, 32]")
        if checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        if checkpoint_interval > 1 << 26:
            # keeps every checkpoint delta below 2**32 (one sub-block spans at
            # most interval * 32 bits); streams that want no checkpoints at
            # all should encode with version=1 instead
            raise ValueError("checkpoint_interval must be <= 2**26")
        self.max_length = max_length
        self.checkpoint_interval = int(checkpoint_interval)

    # ------------------------------------------------------------------ #
    # encoding
    # ------------------------------------------------------------------ #
    def encode(
        self,
        symbols: np.ndarray,
        table: Optional[HuffmanTable] = None,
        version: int = 2,
    ) -> Tuple[bytes, HuffmanTable]:
        """Encode ``symbols`` (non-negative ints); returns ``(payload, table)``.

        ``version=2`` (the default) emits the checkpointed ``HFV2`` layout;
        ``version=1`` emits the legacy header-only layout, byte-identical to
        payloads written before checkpoints existed.
        """
        if version not in (1, 2):
            raise ValueError(f"unknown Huffman payload version {version!r}")
        symbols = np.asarray(symbols)
        if symbols.size == 0:
            empty = HuffmanTable(lengths=np.zeros(1, dtype=np.uint8), codes=np.zeros(1, dtype=np.uint32))
            return struct.pack("<QQ", 0, 0), table if table is not None else empty
        if symbols.ndim != 1:
            symbols = symbols.ravel()
        if np.issubdtype(symbols.dtype, np.floating):
            raise TypeError("Huffman symbols must be integers")
        if symbols.min() < 0:
            raise ValueError("Huffman symbols must be non-negative")
        symbols = symbols.astype(np.int64)
        alphabet = int(symbols.max()) + 1
        if table is None:
            frequencies = np.bincount(symbols, minlength=alphabet)
            table = HuffmanTable.from_frequencies(frequencies, self.max_length)
        elif table.alphabet_size < alphabet:
            raise ValueError(
                f"supplied table covers {table.alphabet_size} symbols, data needs {alphabet}"
            )

        lengths = table.lengths[symbols].astype(np.int64)
        if np.any(lengths == 0):
            missing = int(symbols[np.argmax(lengths == 0)])
            raise ValueError(f"symbol {missing} has no code in the supplied table")
        codes = table.codes[symbols].astype(np.uint32)

        bit_offsets = np.concatenate(([0], np.cumsum(lengths)[:-1]))
        total_bits = int(bit_offsets[-1] + lengths[-1]) if symbols.size else 0
        buffer = np.zeros((total_bits + 7) // 8, dtype=np.uint8)

        max_len = int(lengths.max())
        for bit in range(max_len):
            mask = lengths > bit
            if not np.any(mask):
                continue
            # bit index `bit` counts from the MSB of each code word
            shift = lengths[mask] - 1 - bit
            bit_values = (codes[mask] >> shift.astype(np.uint32)) & 1
            set_positions = bit_offsets[mask][bit_values.astype(bool)] + bit
            byte_index = set_positions // 8
            bit_in_byte = 7 - (set_positions % 8)
            np.bitwise_or.at(buffer, byte_index, (1 << bit_in_byte).astype(np.uint8))

        if version == 1:
            header = struct.pack("<QQ", symbols.size, total_bits)
            return header + buffer.tobytes(), table

        # v2: the bit offset of every checkpoint_interval-th symbol is already
        # sitting in bit_offsets — recording it costs one strided slice.
        interval = self.checkpoint_interval
        checkpoints = bit_offsets[interval::interval]
        deltas = np.diff(checkpoints, prepend=0).astype("<u4")
        header = _V2_HEADER.pack(
            _MAGIC_V2, interval, symbols.size, total_bits, checkpoints.size
        )
        return header + deltas.tobytes() + buffer.tobytes(), table

    # ------------------------------------------------------------------ #
    # decoding
    # ------------------------------------------------------------------ #
    def decode(
        self,
        payload: bytes,
        table: HuffmanTable,
        scheduler=None,
    ) -> np.ndarray:
        """Decode a payload produced by :meth:`encode` back to an int64 array.

        Both payload versions are detected from the bytes themselves.  For a
        v2 payload with more than one checkpointed sub-block, ``scheduler``
        (a :class:`~repro.parallel.engine.ChunkScheduler` or anything with its
        ``imap_unordered``) fans the sub-block decodes out across workers;
        without one the sub-blocks decode sequentially (still vectorised).
        """
        n_symbols, total_bits, interval, checkpoints, data = self._parse_payload(payload)
        if n_symbols == 0:
            return np.zeros(0, dtype=np.int64)
        if len(data) * 8 < total_bits:
            raise ValueError("truncated Huffman payload")

        lut_bits = min(max(table.max_length, 1), self.max_length)
        lut_symbols, lut_lengths = self._build_lut(table, lut_bits)

        # sub-block bit boundaries (monotonicity is enforced by
        # _parse_payload: delta-coded checkpoints are strictly increasing)
        bounds = np.concatenate(([0], checkpoints, [total_bits])).astype(np.int64)
        # the lockstep wavefront runs only over *full* sub-blocks, so every
        # cursor retires the same number of symbols; a partial tail block is
        # decoded separately by the doubling span
        n_full = n_symbols // interval if checkpoints.size else 0

        if n_full >= _WAVEFRONT_MIN_BLOCKS and total_bits < np.iinfo(np.int32).max:
            # corrupt cursors may drift past the stream end until the final
            # boundary check; padding keeps every drifted window in bounds
            pad = 4 + (interval * lut_bits + 7) // 8
            fused = self._fuse_bytes(data, total_bits, pad)
            out = np.empty(n_symbols, dtype=np.int64)
            out[: n_full * interval] = self._decode_blocks_wavefront(
                fused, lut_symbols, lut_lengths, bounds, n_full, lut_bits, interval, scheduler
            )
            tail = n_symbols - n_full * interval
            if tail:
                tail_lo = int(bounds[n_full])
                windows = self._window_values(fused, tail_lo, total_bits, lut_bits)
                out[n_full * interval :] = self._decode_span(
                    lut_lengths[windows], windows, lut_symbols, tail
                )
            return out

        if total_bits > _SPAN_BITS_LIMIT:
            # a giant stream with too few checkpoints for the wavefront (deep
            # legacy v1 payloads, mostly): bounded memory beats speed
            return self.decode_reference(payload, table)

        # few blocks: the sub-blocks are contiguous in the bit stream, so the
        # checkpoints cannot pay for themselves — decode the whole stream as
        # one span with pointer doubling (still validating the recorded
        # checkpoints against the code-word positions the span derives)
        fused = self._fuse_bytes(data, total_bits)
        windows = self._window_values(fused, 0, total_bits, lut_bits)
        return self._decode_span(
            lut_lengths[windows], windows, lut_symbols, n_symbols,
            interval=interval, checkpoints=checkpoints,
        )

    def _decode_blocks_wavefront(
        self,
        fused: np.ndarray,
        lut_symbols: np.ndarray,
        lut_lengths: np.ndarray,
        bounds: np.ndarray,
        n_full: int,
        lut_bits: int,
        interval: int,
        scheduler,
    ) -> np.ndarray:
        """Decode the full checkpointed sub-blocks in lockstep (optionally fanned out).

        Contiguous runs of sub-blocks form groups; each group is one wavefront
        (see :meth:`_decode_wavefront`).  With a scheduler, groups are sized to
        its worker count and submitted through ``imap_unordered`` — each group
        decode is NumPy batch work that releases the GIL, so groups genuinely
        overlap on a thread backend.
        """
        n_groups = 1
        if scheduler is not None:
            jobs = int(getattr(scheduler, "effective_jobs", 1) or 1)
            n_groups = max(1, min(jobs, n_full // _WAVEFRONT_MIN_BLOCKS))

        def decode_group(span: Tuple[int, int]) -> np.ndarray:
            lo, hi = span
            return self._decode_wavefront(
                fused, lut_symbols, lut_lengths, bounds[lo:hi], bounds[lo + 1 : hi + 1],
                lut_bits, interval,
            )

        if n_groups == 1:
            return decode_group((0, n_full))
        edges = np.linspace(0, n_full, n_groups + 1).astype(int)
        spans = [(int(lo), int(hi)) for lo, hi in zip(edges[:-1], edges[1:]) if hi > lo]
        out = np.empty(n_full * interval, dtype=np.int64)
        for index, decoded in scheduler.imap_unordered(decode_group, spans):
            sym_start = spans[index][0] * interval
            out[sym_start : sym_start + decoded.size] = decoded
        return out

    # ------------------------------------------------------------------ #
    # decode internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _parse_payload(payload: bytes):
        """Split either payload version into its decode inputs.

        Returns ``(n_symbols, total_bits, interval, checkpoints, bit_data)``;
        v1 payloads come back with an empty checkpoint list and an interval
        covering the whole stream.
        """
        if payload[:4] == _MAGIC_V2:
            if len(payload) < _V2_HEADER.size:
                raise ValueError("truncated Huffman payload")
            _, interval, n_symbols, total_bits, n_checkpoints = _V2_HEADER.unpack_from(
                payload, 0
            )
            if interval < 1:
                raise ValueError("corrupt Huffman payload: checkpoint interval < 1")
            expected = (n_symbols - 1) // interval if n_symbols else 0
            if n_checkpoints != expected:
                raise ValueError(
                    f"corrupt Huffman payload: {n_checkpoints} checkpoints recorded, "
                    f"{expected} expected for {n_symbols} symbols every {interval}"
                )
            offset = _V2_HEADER.size
            end = offset + 4 * n_checkpoints
            if len(payload) < end:
                raise ValueError("truncated Huffman payload")
            deltas = np.frombuffer(payload, dtype="<u4", count=n_checkpoints, offset=offset)
            if n_checkpoints and int(deltas.min()) == 0:
                raise ValueError("corrupt Huffman payload: checkpoints not increasing")
            checkpoints = np.cumsum(deltas.astype(np.int64))
            if n_checkpoints and int(checkpoints[-1]) >= total_bits:
                raise ValueError("corrupt Huffman payload: checkpoint past the end of the stream")
            return n_symbols, total_bits, interval, checkpoints, payload[end:]
        if len(payload) < 16:
            raise ValueError("truncated Huffman payload")
        n_symbols, total_bits = struct.unpack_from("<QQ", payload, 0)
        return n_symbols, total_bits, max(n_symbols, 1), np.zeros(0, np.int64), payload[16:]

    @staticmethod
    def _fuse_bytes(data: bytes, total_bits: int, pad_bytes: int = 4) -> np.ndarray:
        """Fuse four staggered byte lanes into one u32 per byte position.

        ``fused[b]`` holds bits ``8b .. 8b+31`` of the stream MSB-first, so any
        ``lut_bits <= 16``-wide window at bit ``p`` is a shift of
        ``fused[p // 8]``.  Padding zeros beyond the stream match the scalar
        reference decoder's behaviour at the tail; ``pad_bytes`` sizes the
        zero tail (the wavefront decoder asks for enough that even a corrupt,
        drifting cursor stays in bounds until it is caught).
        """
        raw = np.frombuffer(data, dtype=np.uint8)
        n_bytes = (total_bits + 7) // 8
        padded = np.zeros(n_bytes + max(pad_bytes, 4), dtype=np.uint8)
        padded[:n_bytes] = raw[:n_bytes]
        lanes = padded.astype(np.uint32)
        return (
            (lanes[:-3] << np.uint32(24))
            | (lanes[1:-2] << np.uint32(16))
            | (lanes[2:-1] << np.uint32(8))
            | lanes[3:]
        )

    @staticmethod
    def _window_values(fused: np.ndarray, start: int, stop: int, lut_bits: int) -> np.ndarray:
        """``lut_bits``-wide bit windows at every bit position in ``[start, stop)``."""
        positions = np.arange(start, stop, dtype=np.int64)
        shifts = (np.uint32(32 - lut_bits) - (positions & 7).astype(np.uint32)).astype(np.uint32)
        mask = np.uint32((1 << lut_bits) - 1)
        return ((fused[positions >> 3] >> shifts) & mask).astype(np.int32)

    @staticmethod
    def _decode_wavefront(
        fused: np.ndarray,
        lut_symbols: np.ndarray,
        lut_lengths: np.ndarray,
        starts: np.ndarray,
        stops: np.ndarray,
        lut_bits: int,
        interval: int,
    ) -> np.ndarray:
        """Decode a contiguous run of *full* checkpointed sub-blocks in lockstep.

        One decode cursor per sub-block advances through the LUT state machine
        simultaneously: each round gathers every cursor's bit window, emits
        every cursor's symbol, and steps every cursor by its code length — a
        handful of batch operations per *symbol index*, not per symbol.  The
        checkpoint interval bounds the round count while the number of
        sub-blocks provides the batch width.

        The loop body carries no bounds checks: a corrupt cursor drifts at
        most ``interval * lut_bits`` bits past the stream (the caller pads
        ``fused`` accordingly) and is caught afterwards, when every cursor
        must sit exactly on its sub-block's recorded end bit.
        """
        shift_lut = np.uint32(32 - lut_bits) - np.arange(8, dtype=np.uint32)
        mask = np.uint32((1 << lut_bits) - 1)
        lengths32 = lut_lengths.astype(np.int32)
        cur = starts.astype(np.int32)
        out = np.empty((interval, starts.size), dtype=np.int64)
        for i in range(interval):
            window = (fused[cur >> 3] >> shift_lut[cur & 7]) & mask
            out[i] = lut_symbols[window]
            cur = cur + lengths32[window]
        if not np.array_equal(cur, stops.astype(np.int32)):
            raise ValueError("corrupt Huffman stream")
        return out.T.ravel()

    @staticmethod
    def _decode_span(
        step: np.ndarray,
        windows: np.ndarray,
        lut_symbols: np.ndarray,
        n_symbols: int,
        interval: Optional[int] = None,
        checkpoints: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Decode one contiguous span of ``n_symbols`` code words.

        ``step``/``windows`` cover exactly the span's bit range.  The jump
        table ``p -> p + step[p]`` is iterated from bit 0 with pointer
        doubling: the jump table for ``m`` symbols is composed with itself to
        get ``2m``, and each round resolves the positions of ``m`` further
        symbols with a single batch gather.

        ``checkpoints`` (span-relative bit offsets of every ``interval``-th
        symbol, when the payload recorded any) are cross-checked against the
        derived code-word positions, so a corrupted checkpoint list fails
        loudly even on the span path that does not need it.
        """
        n_bits = step.shape[0]
        index_dtype = np.int32 if n_bits < np.iinfo(np.int32).max else np.int64
        jump = np.arange(n_bits, dtype=index_dtype)
        jump += step.astype(index_dtype)
        # dead positions (no code word starts here) and overruns both land on
        # the sentinel slot n_bits, which maps to itself
        jump[step == 0] = n_bits
        np.minimum(jump, n_bits, out=jump)
        jump = np.append(jump, index_dtype(n_bits))

        positions = np.empty(n_symbols, dtype=index_dtype)
        positions[0] = 0
        filled = 1
        while filled < n_symbols:
            take = min(filled, n_symbols - filled)
            positions[filled : filled + take] = jump[positions[:take]]
            filled += take
            if filled < n_symbols:
                jump = jump[jump]

        if int(positions[-1]) >= n_bits:
            raise ValueError("corrupt Huffman stream")
        lengths_at = step[positions]
        if np.any(lengths_at == 0):
            raise ValueError("corrupt Huffman stream")
        if int(positions[-1]) + int(lengths_at[-1]) != n_bits:
            raise ValueError("corrupt Huffman stream")
        if checkpoints is not None and checkpoints.size:
            derived = positions[interval::interval][: checkpoints.size].astype(np.int64)
            if not np.array_equal(derived, checkpoints):
                raise ValueError("corrupt Huffman payload: checkpoints do not match the stream")
        return lut_symbols[windows[positions]]

    def decode_reference(self, payload: bytes, table: HuffmanTable) -> np.ndarray:
        """Scalar per-symbol decode: the pre-vectorisation reference loop.

        Kept as the correctness oracle for the vectorised decoder (property
        tests compare against it) and as the baseline in the entropy-backend
        decode-throughput benchmark.  Handles both payload versions.
        """
        n_symbols, total_bits, _, _, data = self._parse_payload(payload)
        if n_symbols == 0:
            return np.zeros(0, dtype=np.int64)
        if len(data) * 8 < total_bits:
            raise ValueError("truncated Huffman payload")

        lut_bits = min(max(table.max_length, 1), self.max_length)
        lut_symbols, lut_lengths = self._build_lut(table, lut_bits)

        out = np.empty(n_symbols, dtype=np.int64)
        acc = 0
        n_acc = 0
        pos = 0
        data_len = len(data)
        mask = (1 << lut_bits) - 1
        lut_sym_list = lut_symbols.tolist()
        lut_len_list = lut_lengths.tolist()
        for i in range(n_symbols):
            while n_acc < lut_bits and pos < data_len:
                acc = (acc << 8) | data[pos]
                pos += 1
                n_acc += 8
            if n_acc >= lut_bits:
                window = (acc >> (n_acc - lut_bits)) & mask
            else:
                window = (acc << (lut_bits - n_acc)) & mask
            sym = lut_sym_list[window]
            length = lut_len_list[window]
            if length == 0 or length > n_acc:
                raise ValueError("corrupt Huffman stream")
            n_acc -= length
            acc &= (1 << n_acc) - 1
            out[i] = sym
        return out

    @staticmethod
    def _build_lut(table: HuffmanTable, lut_bits: int) -> Tuple[np.ndarray, np.ndarray]:
        """Build a prefix lookup table mapping every ``lut_bits`` window to (symbol, length)."""
        size = 1 << lut_bits
        lut_symbols = np.zeros(size, dtype=np.int64)
        lut_lengths = np.zeros(size, dtype=np.int32)
        for sym in np.nonzero(table.lengths)[0]:
            length = int(table.lengths[sym])
            if length > lut_bits:  # pragma: no cover - prevented by length limiting
                raise ValueError("code length exceeds decoder lookup width")
            code = int(table.codes[sym])
            prefix = code << (lut_bits - length)
            count = 1 << (lut_bits - length)
            lut_symbols[prefix : prefix + count] = sym
            lut_lengths[prefix : prefix + count] = length
        return lut_symbols, lut_lengths
