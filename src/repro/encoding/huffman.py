"""Canonical Huffman coding for quantization codes.

SZ-style compressors emit one small integer "quantization code" per data point
(centred on the zero-error bin), whose distribution is heavily peaked — exactly
the regime where Huffman coding shines.  This module implements:

- length-limited Huffman code construction (so the decoder can use a single
  lookup table),
- canonical code assignment (so only the code *lengths* need to be stored),
- a vectorised encoder that packs code words with NumPy bit arithmetic, and
- a table-driven decoder.

The codec is completely generic: it maps any array of non-negative integers to
bytes and back, and is reused by both the baseline SZ pipeline and the
cross-field compressor.
"""

from __future__ import annotations

import heapq
import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.encoding.bitstream import BitReader, BitWriter

__all__ = ["HuffmanTable", "HuffmanCodec"]

#: Maximum code length: keeps the decoder lookup table at 2**16 entries.
MAX_CODE_LENGTH = 16


# --------------------------------------------------------------------------- #
# code construction
# --------------------------------------------------------------------------- #
def _huffman_code_lengths(frequencies: np.ndarray) -> np.ndarray:
    """Compute Huffman code lengths from symbol frequencies.

    Returns an array of per-symbol lengths (0 for unused symbols).  Handles the
    degenerate single-symbol alphabet by assigning it a 1-bit code.
    """
    freq = np.asarray(frequencies, dtype=np.int64)
    symbols = np.nonzero(freq)[0]
    if symbols.size == 0:
        raise ValueError("cannot build a Huffman table from an all-zero histogram")
    lengths = np.zeros(freq.shape[0], dtype=np.int64)
    if symbols.size == 1:
        lengths[symbols[0]] = 1
        return lengths

    # classic heap-based Huffman; nodes are (freq, tie-breaker, [symbols...])
    heap: List[Tuple[int, int, List[int]]] = []
    counter = 0
    for s in symbols:
        heap.append((int(freq[s]), counter, [int(s)]))
        counter += 1
    heapq.heapify(heap)
    depth = {int(s): 0 for s in symbols}
    while len(heap) > 1:
        f1, _, group1 = heapq.heappop(heap)
        f2, _, group2 = heapq.heappop(heap)
        for s in group1 + group2:
            depth[s] += 1
        heapq.heappush(heap, (f1 + f2, counter, group1 + group2))
        counter += 1
    for s, d in depth.items():
        lengths[s] = d
    return lengths


def _limit_code_lengths(lengths: np.ndarray, max_length: int) -> np.ndarray:
    """Clamp code lengths to ``max_length`` while keeping the Kraft sum <= 1.

    Uses the standard "bit-length adjustment" employed by zlib: clamp, then
    while the Kraft sum exceeds 1, lengthen the shortest over-represented codes;
    finally shorten codes where possible without violating the inequality.
    """
    lengths = lengths.copy()
    used = lengths > 0
    if not np.any(lengths > max_length):
        return lengths
    lengths[used & (lengths > max_length)] = max_length

    def kraft(ls):
        return np.sum(1.0 / np.exp2(ls[ls > 0]))

    # lengthen codes (starting with the currently shortest) until Kraft <= 1
    while kraft(lengths) > 1.0 + 1e-12:
        candidates = np.where(used & (lengths < max_length))[0]
        if candidates.size == 0:  # pragma: no cover - cannot happen for valid input
            raise RuntimeError("cannot satisfy Kraft inequality")
        shortest = candidates[np.argmin(lengths[candidates])]
        lengths[shortest] += 1
    return lengths


def _canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Assign canonical code words given per-symbol code lengths."""
    codes = np.zeros(lengths.shape[0], dtype=np.uint32)
    order = sorted(
        (int(length), int(sym)) for sym, length in enumerate(lengths) if length > 0
    )
    code = 0
    prev_length = 0
    for length, sym in order:
        code <<= length - prev_length
        codes[sym] = code
        code += 1
        prev_length = length
    return codes


@dataclass
class HuffmanTable:
    """Canonical Huffman table: per-symbol code lengths and code words."""

    lengths: np.ndarray
    codes: np.ndarray

    @classmethod
    def from_frequencies(
        cls, frequencies: np.ndarray, max_length: int = MAX_CODE_LENGTH
    ) -> "HuffmanTable":
        """Build a length-limited canonical table from a symbol histogram."""
        lengths = _huffman_code_lengths(frequencies)
        lengths = _limit_code_lengths(lengths, max_length)
        codes = _canonical_codes(lengths)
        return cls(lengths=lengths.astype(np.uint8), codes=codes)

    @classmethod
    def from_lengths(cls, lengths: np.ndarray) -> "HuffmanTable":
        """Rebuild the canonical table from code lengths alone (decoder side)."""
        lengths = np.asarray(lengths, dtype=np.uint8)
        codes = _canonical_codes(lengths.astype(np.int64))
        return cls(lengths=lengths, codes=codes)

    @property
    def alphabet_size(self) -> int:
        """Number of representable symbols (including unused ones)."""
        return int(self.lengths.shape[0])

    @property
    def max_length(self) -> int:
        """Longest code length in the table."""
        return int(self.lengths.max()) if self.lengths.size else 0

    def expected_bits(self, frequencies: np.ndarray) -> float:
        """Total encoded bits for a stream with the given symbol histogram."""
        freq = np.asarray(frequencies, dtype=np.float64)
        if freq.shape[0] != self.alphabet_size:
            raise ValueError("histogram size does not match the alphabet")
        return float(np.sum(freq * self.lengths))

    # ------------------------------------------------------------------ #
    # serialization: (alphabet_size, sparse symbol->length pairs)
    # ------------------------------------------------------------------ #
    def to_bytes(self) -> bytes:
        """Serialize the table as sparse ``(symbol, length)`` pairs."""
        used = np.nonzero(self.lengths)[0].astype(np.uint32)
        header = struct.pack("<II", self.alphabet_size, used.size)
        body = b"".join(
            struct.pack("<IB", int(sym), int(self.lengths[sym])) for sym in used
        )
        return header + body

    @classmethod
    def from_bytes(cls, payload: bytes) -> "HuffmanTable":
        """Inverse of :meth:`to_bytes`."""
        alphabet_size, n_used = struct.unpack_from("<II", payload, 0)
        lengths = np.zeros(alphabet_size, dtype=np.uint8)
        offset = 8
        for _ in range(n_used):
            sym, length = struct.unpack_from("<IB", payload, offset)
            offset += 5
            lengths[sym] = length
        return cls.from_lengths(lengths)


# --------------------------------------------------------------------------- #
# codec
# --------------------------------------------------------------------------- #
class HuffmanCodec:
    """Encode/decode arrays of non-negative integers with canonical Huffman codes."""

    def __init__(self, max_length: int = MAX_CODE_LENGTH) -> None:
        if not 1 <= max_length <= 32:
            raise ValueError("max_length must be in [1, 32]")
        self.max_length = max_length

    # ------------------------------------------------------------------ #
    # encoding
    # ------------------------------------------------------------------ #
    def encode(self, symbols: np.ndarray, table: Optional[HuffmanTable] = None) -> Tuple[bytes, HuffmanTable]:
        """Encode ``symbols`` (non-negative ints); returns ``(payload, table)``.

        The payload layout is ``<n_symbols:uint64><n_bits:uint64><bit data>``.
        """
        symbols = np.asarray(symbols)
        if symbols.size == 0:
            empty = HuffmanTable(lengths=np.zeros(1, dtype=np.uint8), codes=np.zeros(1, dtype=np.uint32))
            return struct.pack("<QQ", 0, 0), table if table is not None else empty
        if symbols.ndim != 1:
            symbols = symbols.ravel()
        if np.issubdtype(symbols.dtype, np.floating):
            raise TypeError("Huffman symbols must be integers")
        if symbols.min() < 0:
            raise ValueError("Huffman symbols must be non-negative")
        symbols = symbols.astype(np.int64)
        alphabet = int(symbols.max()) + 1
        if table is None:
            frequencies = np.bincount(symbols, minlength=alphabet)
            table = HuffmanTable.from_frequencies(frequencies, self.max_length)
        elif table.alphabet_size < alphabet:
            raise ValueError(
                f"supplied table covers {table.alphabet_size} symbols, data needs {alphabet}"
            )

        lengths = table.lengths[symbols].astype(np.int64)
        if np.any(lengths == 0):
            missing = int(symbols[np.argmax(lengths == 0)])
            raise ValueError(f"symbol {missing} has no code in the supplied table")
        codes = table.codes[symbols].astype(np.uint32)

        bit_offsets = np.concatenate(([0], np.cumsum(lengths)[:-1]))
        total_bits = int(bit_offsets[-1] + lengths[-1]) if symbols.size else 0
        buffer = np.zeros((total_bits + 7) // 8, dtype=np.uint8)

        max_len = int(lengths.max())
        for bit in range(max_len):
            mask = lengths > bit
            if not np.any(mask):
                continue
            # bit index `bit` counts from the MSB of each code word
            shift = lengths[mask] - 1 - bit
            bit_values = (codes[mask] >> shift.astype(np.uint32)) & 1
            set_positions = bit_offsets[mask][bit_values.astype(bool)] + bit
            byte_index = set_positions // 8
            bit_in_byte = 7 - (set_positions % 8)
            np.bitwise_or.at(buffer, byte_index, (1 << bit_in_byte).astype(np.uint8))

        header = struct.pack("<QQ", symbols.size, total_bits)
        return header + buffer.tobytes(), table

    # ------------------------------------------------------------------ #
    # decoding
    # ------------------------------------------------------------------ #
    def decode(self, payload: bytes, table: HuffmanTable) -> np.ndarray:
        """Decode a payload produced by :meth:`encode` back to an int64 array."""
        n_symbols, total_bits = struct.unpack_from("<QQ", payload, 0)
        if n_symbols == 0:
            return np.zeros(0, dtype=np.int64)
        data = payload[16:]
        if len(data) * 8 < total_bits:
            raise ValueError("truncated Huffman payload")

        lut_bits = min(max(table.max_length, 1), self.max_length)
        lut_symbols, lut_lengths = self._build_lut(table, lut_bits)

        out = np.empty(n_symbols, dtype=np.int64)
        acc = 0
        n_acc = 0
        pos = 0
        data_len = len(data)
        mask = (1 << lut_bits) - 1
        lut_sym_list = lut_symbols.tolist()
        lut_len_list = lut_lengths.tolist()
        for i in range(n_symbols):
            while n_acc < lut_bits and pos < data_len:
                acc = (acc << 8) | data[pos]
                pos += 1
                n_acc += 8
            if n_acc >= lut_bits:
                window = (acc >> (n_acc - lut_bits)) & mask
            else:
                window = (acc << (lut_bits - n_acc)) & mask
            sym = lut_sym_list[window]
            length = lut_len_list[window]
            if length == 0 or length > n_acc:
                raise ValueError("corrupt Huffman stream")
            n_acc -= length
            acc &= (1 << n_acc) - 1
            out[i] = sym
        return out

    @staticmethod
    def _build_lut(table: HuffmanTable, lut_bits: int) -> Tuple[np.ndarray, np.ndarray]:
        """Build a prefix lookup table mapping every ``lut_bits`` window to (symbol, length)."""
        size = 1 << lut_bits
        lut_symbols = np.zeros(size, dtype=np.int64)
        lut_lengths = np.zeros(size, dtype=np.int64)
        for sym in np.nonzero(table.lengths)[0]:
            length = int(table.lengths[sym])
            if length > lut_bits:  # pragma: no cover - prevented by length limiting
                raise ValueError("code length exceeds decoder lookup width")
            code = int(table.codes[sym])
            prefix = code << (lut_bits - length)
            count = 1 << (lut_bits - length)
            lut_symbols[prefix : prefix + count] = sym
            lut_lengths[prefix : prefix + count] = length
        return lut_symbols, lut_lengths
