"""Integer stream transforms: zigzag mapping and run-length encoding.

Quantization residuals are signed and centred on zero; Huffman symbols must be
non-negative, so the residuals are zigzag-mapped first.  Long runs of the
zero-error bin are common at loose error bounds, which run-length encoding
captures cheaply before the entropy stage.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["zigzag_encode", "zigzag_decode", "rle_encode", "rle_decode"]


def zigzag_encode(values: np.ndarray) -> np.ndarray:
    """Map signed integers to non-negative: 0,-1,1,-2,2 -> 0,1,2,3,4."""
    values = np.asarray(values)
    if not np.issubdtype(values.dtype, np.integer):
        raise TypeError("zigzag_encode expects integer input")
    v = values.astype(np.int64)
    return np.where(v >= 0, 2 * v, -2 * v - 1).astype(np.int64)


def zigzag_decode(values: np.ndarray) -> np.ndarray:
    """Inverse of :func:`zigzag_encode`."""
    values = np.asarray(values)
    if not np.issubdtype(values.dtype, np.integer):
        raise TypeError("zigzag_decode expects integer input")
    v = values.astype(np.int64)
    if v.size and v.min() < 0:
        raise ValueError("zigzag-encoded values must be non-negative")
    return np.where(v % 2 == 0, v // 2, -(v + 1) // 2).astype(np.int64)


def rle_encode(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Run-length encode a 1D integer array into ``(run_values, run_lengths)``."""
    values = np.asarray(values).ravel()
    if values.size == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    values = values.astype(np.int64)
    change = np.nonzero(np.diff(values))[0] + 1
    starts = np.concatenate(([0], change))
    ends = np.concatenate((change, [values.size]))
    run_values = values[starts]
    run_lengths = (ends - starts).astype(np.int64)
    return run_values, run_lengths


def rle_decode(run_values: np.ndarray, run_lengths: np.ndarray) -> np.ndarray:
    """Inverse of :func:`rle_encode`."""
    run_values = np.asarray(run_values, dtype=np.int64).ravel()
    run_lengths = np.asarray(run_lengths, dtype=np.int64).ravel()
    if run_values.shape != run_lengths.shape:
        raise ValueError("run_values and run_lengths must have the same length")
    if run_lengths.size and run_lengths.min() <= 0:
        raise ValueError("run lengths must be positive")
    return np.repeat(run_values, run_lengths)
