"""Experiment configuration: datasets, fields, error bounds and paper reference values.

The paper's evaluation (Section IV) uses three SDRBench datasets, six target
fields, and value-range-relative error bounds between 5e-3 and 2e-4.  This
module centralises that configuration, provides three *scales* at which every
experiment can run (``smoke`` for unit tests, ``default`` for the benchmark
suite, ``paper`` for full-size runs), and records the numbers published in the
paper so the harness can print paper-vs-measured comparisons.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.anchors import AnchorSpec, get_anchor_spec
from repro.core.training import TrainingConfig

__all__ = [
    "ExperimentScale",
    "FieldExperiment",
    "TABLE2_ERROR_BOUNDS",
    "TABLE2_EXPERIMENTS",
    "PAPER_TABLE2_BASELINE",
    "PAPER_TABLE2_OURS",
    "PAPER_TABLE3_MODEL_SIZES",
    "PAPER_DATASET_DIMS",
    "dataset_shapes",
    "default_training_config",
    "resolve_scale",
]


class ExperimentScale(str, Enum):
    """How large the synthetic datasets and training budgets are."""

    SMOKE = "smoke"      #: tiny grids, 1-2 training epochs — unit tests
    DEFAULT = "default"  #: moderate grids — the benchmark suite
    PAPER = "paper"      #: the paper's full grid sizes (hours in pure Python)


def resolve_scale(scale: Optional[object] = None) -> ExperimentScale:
    """Resolve a scale argument or the ``REPRO_BENCH_SCALE`` environment variable."""
    if scale is None:
        scale = os.environ.get("REPRO_BENCH_SCALE", ExperimentScale.DEFAULT.value)
    if isinstance(scale, ExperimentScale):
        return scale
    return ExperimentScale(str(scale).lower())


#: Grid shapes per dataset and scale (the paper's shapes are in Table I).
_SHAPES: Dict[ExperimentScale, Dict[str, Tuple[int, ...]]] = {
    ExperimentScale.SMOKE: {
        "scale": (10, 40, 40),
        "hurricane": (10, 40, 40),
        "cesm": (60, 120),
    },
    ExperimentScale.DEFAULT: {
        "scale": (24, 96, 96),
        "hurricane": (24, 96, 96),
        "cesm": (300, 600),
    },
    ExperimentScale.PAPER: {
        "scale": (98, 1200, 1200),
        "hurricane": (100, 500, 500),
        "cesm": (1800, 3600),
    },
}

#: Grid shapes reported in paper Table I.
PAPER_DATASET_DIMS: Dict[str, Tuple[int, ...]] = {
    "scale": (98, 1200, 1200),
    "cesm": (1800, 3600),
    "hurricane": (100, 500, 500),
}

#: Dataset descriptions from paper Table I.
DATASET_DESCRIPTIONS: Dict[str, str] = {
    "scale": "Climate simulation",
    "cesm": "Climate simulation",
    "hurricane": "Weather simulation",
}


def dataset_shapes(scale: Optional[object] = None) -> Dict[str, Tuple[int, ...]]:
    """Grid shapes to use for every dataset at the requested scale."""
    return dict(_SHAPES[resolve_scale(scale)])


def default_training_config(ndim: int, scale: Optional[object] = None) -> TrainingConfig:
    """CFNN training budget appropriate for the data dimensionality and scale."""
    scale = resolve_scale(scale)
    if scale is ExperimentScale.SMOKE:
        return TrainingConfig(epochs=2, n_patches=16, batch_size=4, patch_size_2d=16, patch_size_3d=8)
    if ndim == 2:
        return TrainingConfig(epochs=24, n_patches=128, learning_rate=4e-3)
    budget = TrainingConfig(epochs=8, n_patches=64, learning_rate=2e-3)
    if scale is ExperimentScale.PAPER:
        budget = TrainingConfig(epochs=20, n_patches=256, learning_rate=2e-3, patch_size_3d=16)
    return budget


#: The error bounds of paper Table II (value-range relative).
TABLE2_ERROR_BOUNDS: Tuple[float, ...] = (5e-3, 2e-3, 1e-3, 5e-4, 2e-4)


@dataclass(frozen=True)
class FieldExperiment:
    """One target field of Table II: dataset, anchors and the error bounds evaluated."""

    dataset: str
    target: str
    error_bounds: Tuple[float, ...]

    @property
    def anchor_spec(self) -> AnchorSpec:
        """The anchor configuration of paper Table III for this target."""
        return get_anchor_spec(self.dataset, self.target)

    @property
    def key(self) -> str:
        """Stable identifier such as ``"scale:RH"``."""
        return f"{self.dataset}:{self.target}"


#: The Table II field/error-bound grid ("/" cells in the paper are omitted).
TABLE2_EXPERIMENTS: Tuple[FieldExperiment, ...] = (
    FieldExperiment("scale", "RH", (2e-3, 1e-3, 5e-4, 2e-4)),
    FieldExperiment("scale", "W", (1e-3, 5e-4, 2e-4)),
    FieldExperiment("hurricane", "Wf", (2e-3, 1e-3, 5e-4, 2e-4)),
    FieldExperiment("cesm", "CLDTOT", (5e-3, 2e-3, 1e-3, 5e-4, 2e-4)),
    FieldExperiment("cesm", "LWCF", (2e-3, 1e-3, 5e-4, 2e-4)),
    FieldExperiment("cesm", "FLUT", (1e-3, 5e-4, 2e-4)),
)


#: Compression ratios reported in paper Table II for the baseline (SZ3-Lorenzo + dual quant).
PAPER_TABLE2_BASELINE: Dict[str, Dict[float, float]] = {
    "scale:RH": {2e-3: 31.15, 1e-3: 25.75, 5e-4: 21.68, 2e-4: 16.14},
    "scale:W": {1e-3: 27.48, 5e-4: 22.96, 2e-4: 19.29},
    "hurricane:Wf": {2e-3: 25.13, 1e-3: 18.99, 5e-4: 15.98, 2e-4: 12.55},
    "cesm:CLDTOT": {5e-3: 27.9, 2e-3: 20.72, 1e-3: 15.73, 5e-4: 11.65, 2e-4: 8.21},
    "cesm:LWCF": {2e-3: 30.1, 1e-3: 23.64, 5e-4: 18.21, 2e-4: 12.2},
    "cesm:FLUT": {1e-3: 26.04, 5e-4: 20.68, 2e-4: 14.33},
}

#: Compression ratios reported in paper Table II for the cross-field method ("Ours").
PAPER_TABLE2_OURS: Dict[str, Dict[float, float]] = {
    "scale:RH": {2e-3: 32.44, 1e-3: 26.72, 5e-4: 21.51, 2e-4: 15.6},
    "scale:W": {1e-3: 27.73, 5e-4: 21.32, 2e-4: 16.28},
    "hurricane:Wf": {2e-3: 26.03, 1e-3: 22.72, 5e-4: 18.66, 2e-4: 13.72},
    "cesm:CLDTOT": {5e-3: 28.54, 2e-3: 21.81, 1e-3: 17.15, 5e-4: 12.51, 2e-4: 8.26},
    "cesm:LWCF": {2e-3: 31.45, 1e-3: 24.29, 5e-4: 20.27, 2e-4: 14.79},
    "cesm:FLUT": {1e-3: 27.56, 5e-4: 23.49, 2e-4: 18.31},
}

#: Model sizes (parameter counts) reported in paper Table III.
PAPER_TABLE3_MODEL_SIZES: Dict[str, Dict[str, int]] = {
    "scale:RH": {"cfnn": 32871, "hybrid": 5},
    "scale:W": {"cfnn": 32871, "hybrid": 5},
    "hurricane:Wf": {"cfnn": 32871, "hybrid": 5},
    "cesm:CLDTOT": {"cfnn": 5270, "hybrid": 4},
    "cesm:LWCF": {"cfnn": 4470, "hybrid": 4},
    "cesm:FLUT": {"cfnn": 6070, "hybrid": 4},
}
