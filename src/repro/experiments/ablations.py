"""Ablation studies for the design choices called out in DESIGN.md.

These go beyond the paper's tables/figures and probe the individual design
decisions: dual quantization vs the classic sequential quantizer, the choice of
local predictor, the entropy backend, block-parallel execution, and the anchor
selection heuristic (the paper's stated future work).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core import CrossFieldCompressor, TrainingConfig
from repro.core.anchors import get_anchor_spec, suggest_anchors
from repro.data import make_dataset
from repro.experiments.config import dataset_shapes, default_training_config, resolve_scale
from repro.experiments.report import format_table
from repro.metrics import psnr
from repro.parallel import BlockParallelCompressor
from repro.sz import ErrorBound, SZCompressor
from repro.sz.pipeline import encode_integer_stream
from repro.sz.predictors import lorenzo_transform
from repro.sz.quantizer import classic_quantize_lorenzo, prequantize
from repro.zfp import ZFPLikeCompressor

__all__ = [
    "AblationResult",
    "run_dual_quant_ablation",
    "run_predictor_ablation",
    "run_entropy_backend_ablation",
    "run_parallel_block_ablation",
    "run_anchor_selection_ablation",
]


@dataclass
class AblationResult:
    """Generic ablation result: named rows of measurements."""

    name: str
    headers: List[str] = field(default_factory=list)
    rows: List[List] = field(default_factory=list)

    def format(self) -> str:
        """Aligned text table."""
        return f"== {self.name} ==\n" + format_table(self.headers, self.rows)

    def column(self, header: str) -> List:
        """Values of one column across all rows."""
        index = self.headers.index(header)
        return [row[index] for row in self.rows]


def run_dual_quant_ablation(
    shape: Sequence[int] = (48, 48),
    error_bound: float = 1e-3,
    seed: int = 0,
) -> AblationResult:
    """Dual quantization vs classic predict-then-quantize (paper Section III-D1).

    Compares the quantization-code entropy (bytes after the shared entropy
    stage) and the wall-clock time of the two quantization strategies on the
    same field.  Dual quantization removes the sequential dependency, which is
    visible as a large runtime gap even in pure Python.
    """
    data = make_dataset("cesm", shape=dataset_shapes("smoke")["cesm"], seed=seed)["CLDTOT"].data
    if tuple(shape) != data.shape:
        data = make_dataset("cesm", shape=shape, seed=seed)["CLDTOT"].data
    abs_eb = ErrorBound.relative(error_bound).resolve(data)

    start = time.perf_counter()
    codes = prequantize(data, abs_eb)
    residuals_dual = lorenzo_transform(codes)
    dual_seconds = time.perf_counter() - start
    dual_sections, _ = encode_integer_stream(residuals_dual, "huffman", "zlib")
    dual_bytes = sum(len(v) for v in dual_sections.values())

    start = time.perf_counter()
    classic_codes, outliers, _ = classic_quantize_lorenzo(data, abs_eb)
    classic_seconds = time.perf_counter() - start
    classic_sections, _ = encode_integer_stream(classic_codes, "huffman", "zlib")
    classic_bytes = sum(len(v) for v in classic_sections.values())

    result = AblationResult(
        name="dual quantization vs classic quantization",
        headers=["scheme", "quant+predict seconds", "entropy-coded bytes", "outliers"],
        rows=[
            ["dual-quant (vectorised)", dual_seconds, dual_bytes, 0],
            ["classic (sequential)", classic_seconds, classic_bytes, int(outliers.sum())],
        ],
    )
    return result


def run_predictor_ablation(
    scale: Optional[object] = None,
    dataset: str = "cesm",
    target: str = "FLUT",
    error_bound: float = 1e-3,
) -> AblationResult:
    """Compare the local predictors (Lorenzo / interpolation / regression) and ZFP."""
    shapes = dataset_shapes(scale)
    data = make_dataset(dataset, shape=shapes[dataset])[target].data
    eb = ErrorBound.relative(error_bound)
    rows = []
    for predictor in ("lorenzo", "interpolation", "regression"):
        compressor = SZCompressor(error_bound=eb, predictor=predictor)
        start = time.perf_counter()
        result = compressor.compress(data)
        seconds = time.perf_counter() - start
        recon = compressor.decompress(result.payload)
        rows.append([predictor, result.ratio, result.bit_rate, psnr(data, recon), seconds])
    zfp = ZFPLikeCompressor(error_bound=eb)
    start = time.perf_counter()
    zfp_result = zfp.compress(data)
    seconds = time.perf_counter() - start
    zfp_recon = zfp.decompress(zfp_result.payload)
    rows.append(["zfp-like", zfp_result.ratio, zfp_result.bit_rate, psnr(data, zfp_recon), seconds])
    return AblationResult(
        name=f"predictor ablation ({dataset}:{target} @ rel {error_bound:g})",
        headers=["predictor", "ratio", "bit_rate", "psnr", "compress seconds"],
        rows=rows,
    )


def run_entropy_backend_ablation(
    scale: Optional[object] = None,
    dataset: str = "cesm",
    target: str = "CLDTOT",
    error_bound: float = 1e-3,
) -> AblationResult:
    """Isolate the entropy stage: Huffman+zlib vs zlib-only vs raw."""
    shapes = dataset_shapes(scale)
    data = make_dataset(dataset, shape=shapes[dataset])[target].data
    eb = ErrorBound.relative(error_bound)
    rows = []
    for entropy, backend in (("huffman", "zlib"), ("zlib", "zlib"), ("huffman", "raw"), ("raw", "raw")):
        compressor = SZCompressor(error_bound=eb, entropy=entropy, backend=backend)
        result = compressor.compress(data)
        recon = compressor.decompress(result.payload)
        max_error = float(np.max(np.abs(recon.astype(np.float64) - data.astype(np.float64))))
        rows.append([f"{entropy}+{backend}", result.ratio, result.bit_rate, max_error <= result.abs_error_bound * (1 + 1e-9)])
    return AblationResult(
        name=f"entropy backend ablation ({dataset}:{target} @ rel {error_bound:g})",
        headers=["entropy+backend", "ratio", "bit_rate", "error bound held"],
        rows=rows,
    )


def run_parallel_block_ablation(
    scale: Optional[object] = None,
    dataset: str = "cesm",
    target: str = "FLNT",
    error_bound: float = 1e-3,
    block_size: int = 64,
    max_workers: int = 4,
) -> AblationResult:
    """Serial vs thread-pool block compression (enabled by dual quantization)."""
    shapes = dataset_shapes(scale)
    data = make_dataset(dataset, shape=shapes[dataset])[target].data
    eb = ErrorBound.relative(error_bound)
    single = SZCompressor(error_bound=eb)

    start = time.perf_counter()
    single_result = single.compress(data)
    single_seconds = time.perf_counter() - start

    rows = [["single-shot", single_result.ratio, single_seconds, 1]]
    block_shape = tuple(block_size for _ in data.shape)
    for kind, workers in (("serial", 1), ("thread", max_workers)):
        parallel = BlockParallelCompressor(
            compressor=SZCompressor(error_bound=eb),
            block_shape=block_shape,
            max_workers=workers,
            executor_kind=kind,
        )
        start = time.perf_counter()
        result = parallel.compress(data)
        seconds = time.perf_counter() - start
        recon = parallel.decompress(result.payload)
        assert np.max(np.abs(recon.astype(np.float64) - data.astype(np.float64))) <= result.abs_error_bound * (1 + 1e-9)
        rows.append([f"blocks-{kind}", result.ratio, seconds, workers])
    return AblationResult(
        name=f"block-parallel ablation ({dataset}:{target} @ rel {error_bound:g})",
        headers=["configuration", "ratio", "compress seconds", "workers"],
        rows=rows,
    )


def run_anchor_selection_ablation(
    scale: Optional[object] = None,
    dataset: str = "cesm",
    target: str = "LWCF",
    error_bound: float = 1e-3,
    training: Optional[TrainingConfig] = None,
) -> AblationResult:
    """Paper anchors vs mutual-information-selected anchors vs a single anchor.

    This probes the paper's future-work direction of automatic anchor selection.
    """
    scale = resolve_scale(scale)
    shapes = dataset_shapes(scale)
    fieldset = make_dataset(dataset, shape=shapes[dataset])
    target_data = fieldset[target].data
    eb = ErrorBound.relative(error_bound)
    if training is None:
        training = default_training_config(target_data.ndim, scale)
    baseline = SZCompressor(error_bound=eb).compress(target_data)

    paper_spec = get_anchor_spec(dataset, target)
    auto_spec = suggest_anchors(fieldset, target, max_anchors=len(paper_spec.anchors))
    single_spec_anchors = (paper_spec.anchors[0],)

    rows = [["baseline (no anchors)", baseline.ratio, 0.0, ""]]
    for label, anchors in (
        ("paper anchors", paper_spec.anchors),
        ("mutual-information anchors", auto_spec.anchors),
        ("single anchor", single_spec_anchors),
    ):
        anchor_data = [fieldset[name].data.astype(np.float64) for name in anchors]
        compressor = CrossFieldCompressor(error_bound=eb, training=training)
        result = compressor.compress(target_data, anchor_data)
        improvement = 100.0 * (result.ratio / baseline.ratio - 1.0)
        rows.append([label, result.ratio, improvement, ",".join(anchors)])
    return AblationResult(
        name=f"anchor selection ablation ({dataset}:{target} @ rel {error_bound:g})",
        headers=["configuration", "ratio", "improvement % vs baseline", "anchors"],
        rows=rows,
    )
